"""SCALE: cost and structure of the checkers as networks grow.

Two ablations from DESIGN.md:

* **CWG vs CDG as verification object** -- for HPL the CWG stays acyclic at
  every size while the CDG is cyclic, and the CWG's *waited-target* set is a
  small fraction of the CDG's target set: the paper's point that most
  dependencies cannot deadlock;
* **checker runtime scaling** -- building the CWG and verifying Theorem 2
  across mesh/hypercube sizes (the worst case is exponential; these
  instances are the polynomial fast path because the CWGs are acyclic).
"""

import time

from repro.core import ChannelWaitingGraph, find_one_cycle
from repro.deps import ChannelDependencyGraph
from repro.routing import EnhancedFullyAdaptive, HighestPositiveLast
from repro.topology import build_hypercube, build_mesh
from repro.verify import verify


def test_scaling_hpl_meshes(benchmark, once, table):
    sizes = [(3, 3), (4, 4), (6, 6), (8, 8), (4, 4, 4)]

    def sweep():
        rows = []
        for dims in sizes:
            net = build_mesh(dims)
            ra = HighestPositiveLast(net)
            t0 = time.perf_counter()
            cwg = ChannelWaitingGraph(ra)
            cdg = ChannelDependencyGraph(ra)
            verdict = verify(ra, cwg=cwg)
            dt = time.perf_counter() - t0
            cwg_targets = len({b for (_, b) in cwg.edges})
            cdg_targets = len({b for (_, b) in cdg.edges})
            rows.append((
                dims, len(net.link_channels), len(cwg), len(cdg),
                cwg_targets, cdg_targets,
                find_one_cycle(cwg.graph()) is None,
                not cdg.is_acyclic(),
                verdict.deadlock_free,
                f"{dt:.2f}s",
            ))
        return rows

    rows = once(benchmark, sweep)
    table("Checker scaling: HPL on growing meshes",
          ["mesh", "channels", "CWG edges", "CDG edges",
           "waited targets", "CDG targets", "CWG acyclic", "CDG cyclic",
           "deadlock-free", "time"], rows)
    for r in rows:
        assert r[6] and r[7] and r[8]
        assert r[4] < r[5]  # waiting targets are the smaller set


def test_scaling_efa_hypercubes(benchmark, once, table):
    def sweep():
        rows = []
        for n in (2, 3, 4, 5):
            net = build_hypercube(n, num_vcs=2)
            ra = EnhancedFullyAdaptive(net)
            t0 = time.perf_counter()
            v = verify(ra)
            dt = time.perf_counter() - t0
            rows.append((n, len(net.link_channels), v.evidence.get("cwg_edges"),
                         v.deadlock_free, f"{dt:.2f}s"))
        return rows

    rows = once(benchmark, sweep)
    table("Checker scaling: EFA on growing hypercubes",
          ["dim", "channels", "CWG edges", "deadlock-free", "time"], rows)
    assert all(r[3] for r in rows)
