"""SCALE: cost and structure of the checkers as networks grow.

Two ablations from DESIGN.md:

* **CWG vs CDG as verification object** -- for HPL the CWG stays acyclic at
  every size while the CDG is cyclic, and the CWG's *waited-target* set is a
  small fraction of the CDG's target set: the paper's point that most
  dependencies cannot deadlock;
* **checker runtime scaling** -- building the CWG and verifying Theorem 2
  across mesh/hypercube sizes (the worst case is exponential; these
  instances are the polynomial fast path because the CWGs are acyclic);
* **batch pipeline modes** -- the full-catalog sweep serial-vs-parallel and
  cold-vs-warm-cache: the content-addressed verdict cache must make warm
  re-runs at least 2x faster than a cold serial sweep.
"""

import time

import pytest

from repro.core import ChannelWaitingGraph, find_one_cycle
from repro.deps import ChannelDependencyGraph
from repro.pipeline import BatchVerifier, VerificationCache, catalog_specs
from repro.routing import EnhancedFullyAdaptive, HighestPositiveLast
from repro.topology import build_hypercube, build_mesh
from repro.verify import verify


def test_scaling_hpl_meshes(benchmark, once, table):
    sizes = [(3, 3), (4, 4), (6, 6), (8, 8), (4, 4, 4)]

    def sweep():
        rows = []
        for dims in sizes:
            net = build_mesh(dims)
            ra = HighestPositiveLast(net)
            t0 = time.perf_counter()
            cwg = ChannelWaitingGraph(ra)
            cdg = ChannelDependencyGraph(ra)
            verdict = verify(ra, cwg=cwg)
            dt = time.perf_counter() - t0
            cwg_targets = len({b for (_, b) in cwg.edges})
            cdg_targets = len({b for (_, b) in cdg.edges})
            rows.append((
                dims, len(net.link_channels), len(cwg), len(cdg),
                cwg_targets, cdg_targets,
                find_one_cycle(cwg.graph()) is None,
                not cdg.is_acyclic(),
                verdict.deadlock_free,
                f"{dt:.2f}s",
            ))
        return rows

    rows = once(benchmark, sweep)
    table("Checker scaling: HPL on growing meshes",
          ["mesh", "channels", "CWG edges", "CDG edges",
           "waited targets", "CDG targets", "CWG acyclic", "CDG cyclic",
           "deadlock-free", "time"], rows)
    for r in rows:
        assert r[6] and r[7] and r[8]
        assert r[4] < r[5]  # waiting targets are the smaller set


def test_scaling_efa_hypercubes(benchmark, once, table):
    def sweep():
        rows = []
        for n in (2, 3, 4, 5):
            net = build_hypercube(n, num_vcs=2)
            ra = EnhancedFullyAdaptive(net)
            t0 = time.perf_counter()
            v = verify(ra)
            dt = time.perf_counter() - t0
            rows.append((n, len(net.link_channels), v.evidence.get("cwg_edges"),
                         v.deadlock_free, f"{dt:.2f}s"))
        return rows

    rows = once(benchmark, sweep)
    table("Checker scaling: EFA on growing hypercubes",
          ["dim", "channels", "CWG edges", "deadlock-free", "time"], rows)
    assert all(r[3] for r in rows)


#: algorithm -> (Theorem-1/2/3 verdict, Duato verdict) on the smoke
#: topologies, pinned before the depgraph-kernel refactor -- the checkers
#: may get faster, never different.
EXPECTED_SMOKE_VERDICTS = {
    "adaptive-mesh3d": (True, True),
    "dally-seitz-torus": (True, False),
    "draper-ghosh-meca": (True, True),
    "duato-hypercube": (True, True),
    "duato-mesh": (True, True),
    "duato-torus": (True, False),
    "e-cube": (True, True),
    "e-cube-mesh": (True, True),
    "enhanced-fully-adaptive": (True, False),
    "highest-positive-last": (True, False),
    "incoherent-example": (True, False),
    "li-hypercube": (True, False),
    "negative-first": (True, True),
    "north-last": (True, True),
    "pillar-diag-3d": (False, False),
    "pillar-wall-3d": (True, True),
    "relaxed-efa": (False, False),
    "ring-figure4": (True, False),
    "unrestricted-minimal": (False, False),
    "west-first": (True, True),
    "yang-tsai": (True, True),
}


@pytest.mark.checker_smoke
def test_checker_smoke_quick(benchmark, once, table):
    """The CI checker tier: Theorem + Duato verdicts on the whole catalog.

    Small topologies (3x3 mesh / 4x4 torus / 3-cube, plus the canonical
    3x3x3 instances of the 3D scenarios) keep it to a couple of seconds;
    the full 21-algorithm verdict matrix is asserted against the pinned
    values (the original 18 recorded before the depgraph-kernel refactor,
    the 3D rows when they were registered).  Doubles as the perf
    regression guard: wall time must stay within a generous factor of the
    recorded pre-kernel baseline in ``BASELINE.json`` -- loose enough for
    runner-to-runner variance, tight enough to catch a return to the
    exhaustive ``networkx`` cycle search, which costs an order of magnitude.
    """
    from conftest import load_baseline

    specs = catalog_specs(mesh_dims=(3, 3), torus_dims=(4, 4), hypercube_dim=3,
                          conditions=("theorem", "duato"))

    def sweep():
        t0 = time.perf_counter()
        report = BatchVerifier().run(specs)
        return report, time.perf_counter() - t0

    report, seconds = once(benchmark, sweep)
    assert not report.errors, report.errors
    theorem = report.verdicts("theorem")
    duato = report.verdicts("duato")
    got = {name: (theorem[name], duato[name]) for name in theorem}
    table("Checker smoke: catalog verdicts (theorem, duato)",
          ["algorithm", "theorem", "duato"],
          [(n, t, d) for n, (t, d) in sorted(got.items())])
    assert got == EXPECTED_SMOKE_VERDICTS
    base = load_baseline().get("test_checker_smoke_quick")
    if base:
        assert seconds <= base * 3, (
            f"checker perf regression: smoke took {seconds:.2f}s vs "
            f"{base:.2f}s pre-kernel baseline (tolerance 3x)"
        )


def test_scaling_batch_pipeline(benchmark, once, table, tmp_path):
    """Catalog sweep through the batch engine: serial/parallel, cold/warm.

    The largest standard configuration (whole catalog, all three conditions,
    4x4 mesh / 4x4 torus / 3-cube).  Parallel numbers are *reported* only --
    on a single-core runner a process pool cannot win -- but the warm-cache
    speedup is asserted: verdict memoization must pay for the fingerprinting.
    """
    specs = catalog_specs(mesh_dims=(4, 4), torus_dims=(4, 4), hypercube_dim=3)

    def sweep():
        rows = []
        mem = VerificationCache()
        cold = BatchVerifier(cache=mem).run(specs)
        rows.append(("serial cold", cold.seconds, 1.0, len(cold.errors)))
        warm = BatchVerifier(cache=mem).run(specs)
        rows.append(("serial warm", warm.seconds, cold.seconds / warm.seconds,
                     len(warm.errors)))
        disk = str(tmp_path / "cache")
        pcold = BatchVerifier(workers=2, cache_dir=disk).run(specs)
        rows.append(("parallel x2 cold", pcold.seconds,
                     cold.seconds / pcold.seconds, len(pcold.errors)))
        pwarm = BatchVerifier(workers=2, cache_dir=disk).run(specs)
        rows.append(("parallel x2 warm", pwarm.seconds,
                     cold.seconds / pwarm.seconds, len(pwarm.errors)))
        assert cold.verdicts() == warm.verdicts() == pcold.verdicts() == pwarm.verdicts()
        return rows

    rows = once(benchmark, sweep)
    table("Batch pipeline: full catalog, 3 conditions",
          [("mode"), "seconds", "speedup vs cold serial", "errors"],
          [(m, f"{s:.2f}", f"{x:.1f}x", e) for m, s, x, e in rows])
    assert all(r[3] == 0 for r in rows)
    warm_speedup = rows[1][2]
    assert warm_speedup >= 2.0, f"warm cache only {warm_speedup:.1f}x over cold serial"
