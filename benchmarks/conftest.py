"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one of the paper's figures/tables: it computes the
artifact inside a pytest-benchmark timer (one round -- these are
reproductions, not micro-benchmarks) and *prints* the reproduced rows so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment log.
EXPERIMENTS.md records the printed outputs against the paper's claims.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (reproductions are not micro-benchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


@pytest.fixture
def table():
    return print_table
