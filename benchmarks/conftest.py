"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one of the paper's figures/tables: it computes the
artifact inside a pytest-benchmark timer (one round -- these are
reproductions, not micro-benchmarks) and *prints* the reproduced rows so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment log.
EXPERIMENTS.md records the printed outputs against the paper's claims.

Perf snapshots
--------------
Every benchmark run also records machine-readable perf snapshots:
``BENCH_sim.json`` (simulator-bound benches) and ``BENCH_checker.json``
(verifier/checker benches) map each bench to its wall time, its speedup
against the recorded pre-fast-path baseline (``BASELINE.json``), and -- for
simulator benches that register their cycle counts via the ``sim_cycles``
fixture -- simulated cycles per second.  Snapshots merge into the existing
files, so running a subset (e.g. the ``sim_smoke`` tier) updates only the
benches that actually ran and the perf trajectory stays comparable across
PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_FILE = BENCH_DIR / "BASELINE.json"

#: benches whose cost is dominated by the flit-level simulator
SIM_FILES = ("bench_sim_mesh.py", "bench_sim_hypercube.py", "bench_sim_3d.py",
             "bench_deadlock_empirical.py")

#: bench name -> wall seconds of the passing "call" phase, this session
_durations: dict[str, float] = {}
#: bench name -> bench file name
_files: dict[str, str] = {}
#: bench name -> simulated cycles registered via the sim_cycles fixture
_cycles: dict[str, int] = {}


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (reproductions are not micro-benchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


@pytest.fixture
def table():
    return print_table


# ----------------------------------------------------------------------
# perf snapshots
# ----------------------------------------------------------------------
@pytest.fixture
def sim_cycles(request):
    """Register how many simulator cycles this bench ran (for cycles/sec)."""
    name = request.node.nodeid.rpartition("::")[2]

    def add(n: int) -> None:
        _cycles[name] = _cycles.get(name, 0) + int(n)

    return add


def load_baseline() -> dict[str, float]:
    try:
        data = json.loads(BASELINE_FILE.read_text())
    except (OSError, ValueError):
        return {}
    return {k: v for k, v in data.items() if isinstance(v, (int, float))}


def load_snapshot(kind: str) -> dict[str, dict]:
    """The checked-in snapshot (``kind`` is "sim" or "checker")."""
    try:
        data = json.loads((BENCH_DIR / f"BENCH_{kind}.json").read_text())
    except (OSError, ValueError):
        return {}
    return {k: v for k, v in data.items() if isinstance(v, dict)}


def pytest_runtest_logreport(report):
    if report.when != "call" or not report.passed:
        return
    path, _, name = report.nodeid.partition("::")
    fname = path.rpartition("/")[2]
    if fname.startswith("bench_") and name:
        _durations[name] = report.duration
        _files[name] = fname


def _snapshot_entry(name: str, baseline: dict[str, float], prior: dict[str, dict]) -> dict:
    seconds = round(_durations[name], 3)
    entry: dict = {"seconds": seconds}
    base = baseline.get(name)
    if base is None:
        # No pre-fast-path baseline recorded (bench added later): fall back
        # to the bench's first-ever recorded time so every entry carries a
        # comparable baseline/speedup pair rather than silently omitting it.
        prev = prior.get(name, {})
        base = prev.get("baseline_seconds") or prev.get("seconds") or seconds
    entry["baseline_seconds"] = base
    entry["speedup"] = round(base / seconds, 2) if seconds > 0 else None
    cycles = _cycles.get(name)
    if cycles:
        entry["cycles"] = cycles
        entry["cycles_per_sec"] = round(cycles / seconds, 1) if seconds > 0 else None
    return entry


def pytest_sessionfinish(session, exitstatus):
    if not _durations:
        return
    baseline = load_baseline()
    for kind in ("sim", "checker"):
        merged = load_snapshot(kind)
        updates = {
            name: _snapshot_entry(name, baseline, merged)
            for name in _durations
            if (_files[name] in SIM_FILES) == (kind == "sim")
        }
        if not updates:
            continue
        merged.update(updates)
        out = BENCH_DIR / f"BENCH_{kind}.json"
        out.write_text(json.dumps(dict(sorted(merged.items())), indent=2) + "\n")
