"""THM4: Highest Positive Last -- cyclic CDG, acyclic CWG, deadlock-free.

Reproduced claims (Section 9.2 / Theorem 4):

* HPL needs no virtual channels, its CDG is cyclic (every acyclic-CDG
  methodology, Dally--Seitz included, fails to certify it), yet its CWG is
  acyclic, so Theorem 2 proves deadlock freedom -- swept over 2D/3D meshes;
* HPL permits more minimal paths than negative-first, the best prior
  1-channel partially adaptive algorithm (the paper's n(n-1) turn-count
  comparison, measured here as actual permitted-path counts);
* ablation (DESIGN.md #3): CWG vs CDG as verification object.
"""

from repro.core import ChannelWaitingGraph, find_one_cycle
from repro.deps import ChannelDependencyGraph
from repro.metrics import minimal_path_matrix
from repro.routing import HighestPositiveLast, NegativeFirst
from repro.topology import build_mesh
from repro.verify import dally_seitz, verify


def test_thm4_verification_sweep(benchmark, once, table):
    def run():
        rows = []
        for dims in ((3, 3), (4, 4), (5, 5), (3, 3, 3)):
            net = build_mesh(dims)
            hpl = HighestPositiveLast(net)
            cdg_cyclic = not ChannelDependencyGraph(hpl).is_acyclic()
            cwg_acyclic = find_one_cycle(ChannelWaitingGraph(hpl).graph()) is None
            v = verify(hpl)
            ds = dally_seitz(hpl)
            rows.append((dims, cdg_cyclic, cwg_acyclic, v.deadlock_free, ds.deadlock_free))
        return rows

    rows = once(benchmark, run)
    table("Theorem 4: HPL on n-D meshes",
          ["mesh", "CDG cyclic", "CWG acyclic", "Theorem 2", "Dally-Seitz"], rows)
    for dims, cdg_cyclic, cwg_acyclic, thm2, ds in rows:
        assert cdg_cyclic and cwg_acyclic and thm2 and not ds


def test_thm4_adaptiveness_vs_negative_first(benchmark, once, table):
    """HPL's restrictions are *conditional* (lifted whenever a higher
    dimension still needs a negative hop), negative-first's are absolute.
    In 2D the minimal-path counts tie exactly (both free on two quadrants,
    the turn-model symmetry); from three dimensions on HPL permits strictly
    more minimal paths -- the Section 9.2 claim."""

    mesh2d = build_mesh((4, 4))
    mesh3d = build_mesh((3, 3, 3))

    def run():
        out = {}
        for label, net in (("4x4", mesh2d), ("3x3x3", mesh3d)):
            hpl = sum(minimal_path_matrix(HighestPositiveLast(net)).values())
            nf = sum(minimal_path_matrix(NegativeFirst(net)).values())
            out[label] = (hpl, nf)
        return out

    out = once(benchmark, run)
    table("Section 9.2: permitted minimal paths, HPL vs negative-first",
          ["mesh", "HPL", "negative-first"], [
              (label, h, n) for label, (h, n) in out.items()
          ])
    h2, n2 = out["4x4"]
    h3, n3 = out["3x3x3"]
    assert h2 == n2, "2D: turn-model symmetry gives a tie"
    assert h3 > n3, "3D+: HPL strictly more adaptive"
