"""SIM-CUBE: latency vs offered load on a hypercube: EFA vs Duato vs e-cube.

The paper's Section 10 notes that the degree-of-adaptiveness advantage of
EFA over Duato's fully adaptive algorithm (Figure 5) should translate into
simulation performance "with a variety of message traffic patterns".  All
three algorithms run on the *same* 2-VC 5-cube (e-cube pinned to VC 0), so
differences are purely routing restrictions.  Bit-reverse is the
adversarial permutation (dimension-order routing serializes it), uniform
the benign baseline.

Also sweeps VC buffer depth (DESIGN.md ablation #4).
"""

import pytest

from repro.routing import (
    DimensionOrderHypercube,
    DuatoFullyAdaptiveHypercube,
    EnhancedFullyAdaptive,
)
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_hypercube

DIM = 5
CYCLES = 2500
WARMUP = 400
LENGTH = 8

ALGOS = {
    "e-cube": DimensionOrderHypercube,
    "duato": DuatoFullyAdaptiveHypercube,
    "enhanced": EnhancedFullyAdaptive,
}


def run_point(net, algo_cls, pattern, rate, *, depth=4, seed=5):
    ra = algo_cls(net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=rate, pattern=pattern, length=LENGTH, stop_at=CYCLES),
        SimConfig(seed=seed, buffer_depth=depth, deadlock_check_interval=128),
    )
    sim.run(CYCLES)
    assert sim.deadlock is None, f"{ra.name} must not deadlock"
    s = sim.stats.summary(cycles=CYCLES, num_nodes=net.num_nodes, warmup=WARMUP)
    return s.avg_latency, s.throughput_flits_per_node_cycle


@pytest.mark.slow
@pytest.mark.parametrize("pattern", ["uniform", "bit-reverse"])
def test_sim_hypercube_latency_vs_load(benchmark, once, table, sim_cycles, pattern):
    net = build_hypercube(DIM, num_vcs=2)
    rates = [0.1, 0.25, 0.4, 0.55]

    def sweep():
        return {
            name: [run_point(net, cls, pattern, r) for r in rates]
            for name, cls in ALGOS.items()
        }

    grid = once(benchmark, sweep)
    sim_cycles(CYCLES * len(rates) * len(ALGOS))
    rows = [
        (f"{r:.2f}",) + tuple(f"{grid[n][i][0]:8.1f}" for n in ALGOS)
        for i, r in enumerate(rates)
    ]
    table(f"SIM-CUBE latency vs load, {DIM}-cube, {pattern} traffic",
          ["load"] + list(ALGOS), rows)

    # shape: under the adversarial permutation the adaptive algorithms beat
    # e-cube decisively past saturation, with Enhanced at or below Duato --
    # the Figure-5 ordering carried into measured latency; and latency grows
    # with load for everyone
    if pattern == "bit-reverse":
        assert grid["enhanced"][-1][0] < grid["e-cube"][-1][0] * 0.5
        assert grid["duato"][-1][0] < grid["e-cube"][-1][0] * 0.5
        assert grid["enhanced"][-1][0] <= grid["duato"][-1][0] * 1.05
        assert grid["enhanced"][-1][1] >= grid["e-cube"][-1][1]  # throughput
    for name in ALGOS:
        assert grid[name][0][0] < grid[name][-1][0]


@pytest.mark.slow
def test_sim_buffer_depth_ablation(benchmark, once, table, sim_cycles):
    net = build_hypercube(DIM, num_vcs=2)
    depths = [1, 2, 4, 8]

    def sweep():
        return {
            d: run_point(net, EnhancedFullyAdaptive, "uniform", 0.25, depth=d)
            for d in depths
        }

    out = once(benchmark, sweep)
    sim_cycles(CYCLES * len(depths))
    table("Ablation: VC buffer depth (EFA, 5-cube, uniform load 0.25)",
          ["depth", "avg latency", "throughput"], [
              (d, f"{lat:8.1f}", f"{thpt:.4f}") for d, (lat, thpt) in out.items()
          ])
    # deeper buffers can only help average latency (more slack), strongly so
    # from depth 1 to 4
    assert out[4][0] < out[1][0]
