"""SEC8: the worked CWG -> CWG' reduction trace.

The paper's Section 8 runs its formal methodology on the incoherent example:
the cycle list L is built, one cycle is a False Resource Cycle, the five
True Cycles are resolved by removing five edges with the routing algorithm
staying wait-connected, and no backtracking is needed.  This bench replays
the algorithm and prints the step trace next to the paper's.
"""

from repro.core import CWGReducer, ChannelWaitingGraph, CycleClassifier, find_cycles
from repro.routing import IncoherentExample
from repro.topology import build_figure1_network


def test_sec8_reduction_trace(benchmark, once, table):
    net = build_figure1_network()
    ra = IncoherentExample(net)
    cwg = ChannelWaitingGraph(ra)

    def run():
        return CWGReducer(cwg).run()

    res = once(benchmark, run)
    table("Section 8 reduction trace", ["step", "action"], [
        (i + 1, str(s)) for i, s in enumerate(res.steps)
    ])
    removed = sorted(f"{a.label}->{b.label}" for a, b in res.removed)
    print("removed edges (CWG - CWG'):", ", ".join(removed))

    assert res.success
    assert len(res.true_cycles) == 5, "paper: five True Cycles in L"
    assert len(res.false_cycles) == 3
    assert len(res.removed) == 5, "paper: one edge removal per True Cycle"
    assert all(s.action == "remove" for s in res.steps), "paper: no backtracking"

    # the surviving graph is wait-connected and only False-cyclic (Fig. 3)
    classifier = CycleClassifier(cwg)
    remaining = find_cycles(cwg.graph(removed=res.removed))
    assert remaining and all(
        not classifier.classify(cy).possibly_true for cy in remaining
    )
    print(f"CWG' retains {len(remaining)} cycles, all False Resource Cycles")
