"""FIG4: the ten-node ring whose CWG cycles are all False Resource Cycles.

Paper claims (Section 7.1 / Figure 4):

* the ring algorithm's CWG *is* cyclic, but a cycle can close only if two
  messages both leave node 8 on the extra channel ``cA`` -- physically
  impossible, so every cycle is a False Resource Cycle and Theorem 2 gives
  deadlock freedom;
* ablation (DESIGN.md #2): a checker demanding an *acyclic* CWG wrongly
  rejects the algorithm, and the no-class-flip strawman genuinely deadlocks
  (its True Cycle needs ``cA`` only once).
"""

from repro.core import ChannelWaitingGraph, find_one_cycle
from repro.core.deadlock_search import TrueCycleSearch
from repro.routing import RingExample
from repro.topology import build_figure4_ring
from repro.verify import theorem1, verify


def test_fig4_all_cycles_false(benchmark, once, table):
    net = build_figure4_ring()
    ra = RingExample(net)

    def run():
        cwg = ChannelWaitingGraph(ra)
        return cwg, TrueCycleSearch(cwg).search(), verify(ra, cwg=cwg)

    cwg, outcome, verdict = once(benchmark, run)
    table("Figure 4: ring verification", ["check", "result"], [
        ("CWG cyclic", find_one_cycle(cwg.graph()) is not None),
        ("True Cycle exists", outcome.true_cycle is not None),
        ("exhaustive proof", outcome.exhaustive),
        ("Theorem 2 verdict", "deadlock-free" if verdict else "deadlock"),
        ("naive acyclic-CWG checker", "rejects (ablation)" if not theorem1(ra, cwg=cwg) else "accepts"),
    ])
    assert find_one_cycle(cwg.graph()) is not None
    assert outcome.proves_no_true_cycle
    assert verdict.deadlock_free
    assert not theorem1(ra, cwg=cwg).deadlock_free  # the ablation gap


def test_fig4_noflip_strawman_true_cycle(benchmark, once, table):
    net = build_figure4_ring()
    bad = RingExample(net, flip_class=False)

    def run():
        return verify(bad)

    verdict = once(benchmark, run)
    assert not verdict.deadlock_free
    cfg = verdict.evidence["deadlock_configuration"]
    ca_holders = [
        i for i in range(len(cfg))
        if any(c.label == "cA" for c in cfg.held[i])
    ]
    table("Figure 4 strawman (no class flip): deadlock witness",
          ["message", "route", "holds", "waits on"],
          [
              (f"m{i+1}", f"{cfg.sources[i]}->{cfg.dests[i]}",
               ", ".join(c.label or str(c.cid) for c in cfg.held[i]),
               cfg.waits_on[i].label or cfg.waits_on[i].cid)
              for i in range(len(cfg))
          ])
    assert len(ca_holders) == 1, "single cA journey suffices without the flip"
