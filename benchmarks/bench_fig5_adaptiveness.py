"""FIG5: degree of adaptiveness of Enhanced vs Duato vs e-cube.

Regenerates the paper's Figure 5 series exactly (hypercube dimensions
1..12).  Shape expectations from DESIGN.md: every curve starts at 1.0 and
decreases; Enhanced > Duato > e-cube for every dimension >= 2; e-cube
collapses toward 0 while Enhanced stays above one half at dimension 12.

The closed forms / DP are cross-validated against brute-force enumeration
of the actual routing relations on the 3-cube (also timed here, as the
honest cost of the naive method the exact counting replaces).
"""

from math import isclose

from repro.metrics import (
    average_degree,
    duato_ratio,
    ecube_ratio,
    efa_ratio,
    empirical_degree,
    figure5_series,
)
from repro.routing import (
    DimensionOrderHypercube,
    DuatoFullyAdaptiveHypercube,
    EnhancedFullyAdaptive,
)
from repro.topology import build_hypercube


def test_fig5_series(benchmark, once, table):
    series = once(benchmark, lambda: figure5_series(12))
    rows = [
        (n,
         f"{series['e-cube'][i]:.4f}",
         f"{series['duato'][i]:.4f}",
         f"{series['enhanced'][i]:.4f}")
        for i, n in enumerate(series["dimension"])
    ]
    table("Figure 5: degree of adaptiveness (hypercube dimensions 1..12)",
          ["dim", "e-cube", "Duato", "Enhanced"], rows)

    e, d, f = series["e-cube"], series["duato"], series["enhanced"]
    assert e[0] == d[0] == f[0] == 1.0
    for i in range(1, 12):
        assert f[i] > d[i] > e[i]
        assert f[i] <= f[i - 1] and d[i] <= d[i - 1] and e[i] <= e[i - 1]
    assert e[-1] < 0.05 and f[-1] > 0.5


def test_fig5_brute_force_crosscheck(benchmark, once, table):
    h2 = build_hypercube(3, num_vcs=2)
    h1 = build_hypercube(3, num_vcs=1)

    def brute():
        return (
            empirical_degree(DimensionOrderHypercube(h1), vcs=1),
            empirical_degree(DuatoFullyAdaptiveHypercube(h2), vcs=2),
            empirical_degree(EnhancedFullyAdaptive(h2), vcs=2),
        )

    ecube_emp, duato_emp, efa_emp = once(benchmark, brute)
    rows = [
        ("e-cube", f"{ecube_emp:.6f}", f"{average_degree(3, ecube_ratio):.6f}"),
        ("Duato", f"{duato_emp:.6f}", f"{average_degree(3, duato_ratio):.6f}"),
        ("Enhanced", f"{efa_emp:.6f}", f"{average_degree(3, efa_ratio):.6f}"),
    ]
    table("Figure 5 cross-check on the 3-cube (brute force vs closed form)",
          ["algorithm", "enumerated", "exact"], rows)
    assert isclose(ecube_emp, average_degree(3, ecube_ratio), rel_tol=1e-12)
    assert isclose(duato_emp, average_degree(3, duato_ratio), rel_tol=1e-12)
    assert isclose(efa_emp, average_degree(3, efa_ratio), rel_tol=1e-12)
