"""FIG6 + Theorems 5-6: the Enhanced Fully Adaptive hypercube algorithm.

Reproduced claims:

* EFA is fully adaptive, minimal, and deadlock-free (Theorem 5) on 3- to
  5-dimensional cubes with two virtual channels;
* EFA is incoherent -- the Figure 6 witness: a message 0 -> 6 may route
  through node 7's neighborhood in a way no prefix-closed relation allows
  -- so Duato's condition reports itself inapplicable;
* relaxing any single (mu, j) first-class prohibition yields a True Cycle
  and an explicit Definition-12 deadlock configuration (Theorem 6) -- all
  pairs are swept.
"""

from repro.routing import EnhancedFullyAdaptive, RelaxedEFA, is_fully_adaptive, is_prefix_closed
from repro.topology import build_hypercube
from repro.verify import search_escape, verify


def test_theorem5_efa_deadlock_free(benchmark, once, table):
    def run():
        rows = []
        for n in (3, 4, 5):
            net = build_hypercube(n, num_vcs=2)
            v = verify(EnhancedFullyAdaptive(net))
            rows.append((n, v.deadlock_free, v.evidence.get("cwg_edges", "-")))
        return rows

    rows = once(benchmark, run)
    table("Theorem 5: EFA deadlock freedom", ["cube dim", "deadlock-free", "CWG edges"], rows)
    assert all(free for _, free, _ in rows)


def test_fig6_incoherence_and_duato_gap(benchmark, once, table):
    net = build_hypercube(3, num_vcs=2)
    efa = EnhancedFullyAdaptive(net)

    def run():
        return (
            is_fully_adaptive(efa).holds,
            is_prefix_closed(efa).holds,
            search_escape(efa),
        )

    fully, prefix, duato = once(benchmark, run)
    table("Figure 6: EFA structural facts", ["fact", "value"], [
        ("fully adaptive", fully),
        ("prefix-closed", prefix),
        ("Duato's condition", duato.reason[:60]),
    ])
    assert fully and not prefix
    assert "not applicable" in duato.reason


def test_theorem6_relaxation_sweep(benchmark, once, table):
    net = build_hypercube(3, num_vcs=2)

    def sweep():
        rows = []
        for mu in range(3):
            for j in range(mu + 1, 3):
                v = verify(RelaxedEFA(net, pair=(mu, j)))
                cfg = v.evidence.get("deadlock_configuration")
                rows.append(((mu, j), not v.deadlock_free, len(cfg) if cfg else 0))
        return rows

    rows = once(benchmark, sweep)
    table("Theorem 6: every single relaxation deadlocks",
          ["relaxed (mu, j)", "deadlocks", "witness messages"], rows)
    assert all(deadlocks for _, deadlocks, _ in rows)
    assert all(n >= 2 for _, _, n in rows)
