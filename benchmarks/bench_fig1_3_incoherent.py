"""FIG1-3: Duato's incoherent example -- CWG, cycle census, and CWG'.

Paper claims reproduced (Figures 1-3, Sections 5-6):

* the CWG of the incoherent algorithm contains True Cycles and a False
  Resource Cycle (cL2 <-> cB2, realizable only if two messages occupy cA1
  simultaneously);
* with wait-on-specific semantics the algorithm deadlocks (Theorem 2);
* with wait-on-any semantics it is deadlock-free (Theorem 3): a
  wait-connected CWG' without True Cycles exists, and the final CWG'
  retains only False Resource Cycles (Figure 3).

Ablation (design choice #1 in DESIGN.md): the waiting policy is the only
difference between the deadlocking and the safe configuration.
"""

from repro.core import ChannelWaitingGraph, CycleClass, CycleClassifier, find_cycles
from repro.routing import IncoherentExample
from repro.topology import build_figure1_network
from repro.verify import verify


def test_fig1_cwg_census(benchmark, once, table):
    net = build_figure1_network()
    ra = IncoherentExample(net)

    def build():
        cwg = ChannelWaitingGraph(ra)
        cycles = find_cycles(cwg.graph())
        classifier = CycleClassifier(cwg)
        return cwg, [(cy, classifier.classify(cy)) for cy in cycles]

    cwg, census = once(benchmark, build)
    rows = [
        (" -> ".join(c.label for c in cy.channels), cls.kind.value)
        for cy, cls in census
    ]
    table("Figure 2: CWG cycle census (incoherent example)",
          ["cycle", "classification"], rows)
    kinds = [cls.kind for _, cls in census]
    assert len(census) == 8
    assert kinds.count(CycleClass.TRUE) == 5           # paper: five True Cycles
    assert kinds.count(CycleClass.FALSE_RESOURCE) == 3  # incl. cL2 <-> cB2
    print(f"CWG: {len(cwg.vertices)} channels, {len(cwg)} edges")


def test_fig1_wait_policy_ablation(benchmark, once, table):
    net = build_figure1_network()

    def run():
        return (
            verify(IncoherentExample(net, wait_any=False)),
            verify(IncoherentExample(net, wait_any=True)),
        )

    specific, anyw = once(benchmark, run)
    table("Sections 5-6: waiting-policy ablation", ["policy", "verdict", "condition"], [
        ("wait-specific", "NOT deadlock-free" if not specific else "deadlock-free", specific.condition),
        ("wait-any", "deadlock-free" if anyw else "NOT deadlock-free", anyw.condition),
    ])
    assert not specific.deadlock_free and specific.condition == "Theorem 2"
    assert anyw.deadlock_free and anyw.condition == "Theorem 3"
    red = anyw.evidence["reduction"]
    print(f"CWG' found: {len(red.removed)} edges removed, "
          f"{len(red.true_cycles)} True Cycles resolved, "
          f"{len(red.false_cycles)} False Resource Cycles ignored")
