"""SCALE: the existence decision vs relation-level verification.

The existence decider answers a strictly coarser question than the theorem
checker -- "could *any* relation be deadlock-free on this network" versus
"is *this* one" -- and the constructive screens (spanning-tree and greedy
gossip schedules, always re-verified) keep it near-linear in the channel
count on every regular topology.  Two assertions ride on the sweep:

* decision cost grows gently and stays well under the theorem check on
  the same network -- the decider is cheap enough to run as a fuzz-oracle
  prefix on every generated case;
* the full pipeline *including* constructive witness synthesis (which
  certifies each witness with the theorem checker at synthesis time) stays
  within a small factor of a single theorem check -- existence YES is a
  realizable claim, not just a bit.

The smoke tier decides every scenario-registry topology plus the brute
force differential on small digraphs; it is wired into the CI
``existence-smoke`` job.
"""

import time

import pytest

from repro.routing import HighestPositiveLast
from repro.topology import build_hypercube, build_mesh, build_torus
from repro.verify import (
    brute_force_existence,
    decide_existence,
    synthesize_witness,
    verify,
)


def test_existence_scaling_meshes(benchmark, once, table):
    """Decision + witness synthesis vs one theorem check on growing meshes."""
    sizes = [(3, 3), (4, 4), (6, 6), (8, 8), (4, 4, 4)]

    def sweep():
        rows = []
        for dims in sizes:
            net = build_mesh(dims)
            t0 = time.perf_counter()
            verdict = decide_existence(net)
            t_decide = time.perf_counter() - t0
            witness = synthesize_witness(net, verdict.schedule)
            t_witness = time.perf_counter() - t0 - t_decide
            t1 = time.perf_counter()
            theorem = verify(HighestPositiveLast(net))
            t_theorem = time.perf_counter() - t1
            rows.append((
                dims, len(net.link_channels), verdict.exists, verdict.method,
                witness.kind, t_decide, t_witness, t_theorem,
            ))
        return rows

    rows = once(benchmark, sweep)
    table("Existence scaling: decision + witness vs theorem (HPL) on meshes",
          ["mesh", "channels", "exists", "method", "witness",
           "decide", "witness synth", "theorem"],
          [(d, c, e, m, w, f"{a:.3f}s", f"{b:.3f}s", f"{t:.3f}s")
           for d, c, e, m, w, a, b, t in rows])
    for _, _, exists, _, _, t_decide, t_witness, t_theorem in rows:
        assert exists is True
        # the bare decision must be far cheaper than verifying one relation
        assert t_decide <= max(0.05, t_theorem), (t_decide, t_theorem)
        # synthesis certifies the witness with the theorem checker (twice,
        # counting Duato) -- allow that plus generous runner variance
        assert t_decide + t_witness <= max(1.0, 8 * t_theorem)


def test_existence_other_topologies(benchmark, once, table):
    """Hypercubes and tori: multi-VC link channels, wrap links."""
    builds = [
        ("hypercube(3)", lambda: build_hypercube(3)),
        ("hypercube(5)", lambda: build_hypercube(5)),
        ("torus(4,4)v2", lambda: build_torus((4, 4), num_vcs=2)),
        ("torus(8,8)v2", lambda: build_torus((8, 8), num_vcs=2)),
    ]

    def sweep():
        rows = []
        for name, build in builds:
            net = build()
            t0 = time.perf_counter()
            verdict = decide_existence(net)
            dt = time.perf_counter() - t0
            rows.append((name, len(net.link_channels), verdict.exists,
                         verdict.method, dt))
        return rows

    rows = once(benchmark, sweep)
    table("Existence scaling: hypercubes and tori",
          ["network", "channels", "exists", "method", "decide"],
          [(n, c, e, m, f"{t:.3f}s") for n, c, e, m, t in rows])
    assert all(r[2] is True for r in rows)
    assert all(r[4] < 1.0 for r in rows)


@pytest.mark.checker_smoke
def test_existence_smoke_registry_and_brute_force(benchmark, once, table):
    """The CI existence tier: every scenario topology decided (with witness
    synthesis) plus a seeded brute-force differential on small digraphs --
    a budget of a few seconds, like the checker smoke."""
    from repro.scenario import all_specs

    def sweep():
        t0 = time.perf_counter()
        rows = []
        for spec in all_specs():
            net = spec.instantiate().network
            verdict = decide_existence(net)
            witness = (synthesize_witness(net, verdict.schedule).kind
                       if verdict.exists else None)
            rows.append((spec.name, verdict.exists, verdict.method, witness))
        differential = _brute_force_differential(seeds=40)
        return rows, differential, time.perf_counter() - t0

    rows, differential, seconds = once(benchmark, sweep)
    table("Existence smoke: scenario registry",
          ["scenario", "exists", "method", "witness"], rows)
    assert all(r[1] is True for r in rows)
    assert differential == 0, f"{differential} brute-force disagreements"
    assert seconds < 60, f"existence smoke took {seconds:.1f}s"


def _brute_force_differential(*, seeds: int) -> int:
    """Seeded random small digraphs: tiered decision vs enumeration."""
    import random

    from repro.topology.network import Network

    mismatches = 0
    for seed in range(seeds):
        rng = random.Random(0xE715 + seed)
        n = rng.randint(2, 4)
        arcs = [(i, (i + 1) % n) for i in range(n)]
        for _ in range(rng.randint(0, 6 - n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                arcs.append((u, v))
        net = Network(f"bf{seed}")
        net.add_nodes(n)
        vcs: dict[tuple[int, int], int] = {}
        for u, v in arcs:
            vc = vcs.get((u, v), 0)
            vcs[(u, v)] = vc + 1
            net.add_channel(u, v, vc=vc)
        net.freeze()
        verdict = decide_existence(net)
        expected, _ = brute_force_existence(net)
        if verdict.exists is not expected or not verdict.verify(net):
            mismatches += 1
    return mismatches
