"""SIM-3D: the scenario registry's 3D instances under load.

Sweeps the two deadlock-free 3D scenarios -- the dense 3x3x3 mesh and the
collinear pillar wall -- resolved purely through ``repro.scenario`` (no
builder imports here: the registry IS the experiment description).  Each
point runs under both plain ``first-free`` VC selection and the registry's
credit-based adaptive selection with escape-VC fallback, so the sweep
doubles as the selection-policy ablation.

Shape expectations: the pillar wall funnels every inter-plane message
through three columns, so it saturates earlier and carries higher latency
than the dense mesh at the same offered load; and since the verified
relation is identical either way (selection never changes reachability,
Definition 3), both policies must stay deadlock-free at every point.
"""

import pytest

from repro import scenario
from repro.routing.selection import make_selection
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator

CYCLES = 2000
WARMUP = 300
LENGTH = 5

#: the registry scenarios this bench sweeps (both certified deadlock-free
#: by the exact theorem AND by Duato's escape-subfunction condition)
SCENARIOS = ("adaptive-mesh3d", "pillar-wall-3d")
SELECTIONS = ("first-free", "credit")


def run_point(name: str, selection: str, rate: float,
              cycles: int = CYCLES, seed: int = 3):
    entry = scenario.get(name)
    ra = entry.instantiate()
    net = ra.network
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=rate, length=LENGTH, stop_at=cycles),
        SimConfig(seed=seed, buffer_depth=4, deadlock_check_interval=128,
                  selection=make_selection(selection)),
    )
    sim.run(cycles)
    assert sim.deadlock is None, f"{name}/{selection} must not deadlock"
    s = sim.stats.summary(cycles=cycles, num_nodes=net.num_nodes, warmup=WARMUP)
    return s.avg_latency, s.throughput_flits_per_node_cycle


@pytest.mark.slow
def test_sim_3d_latency_vs_load(benchmark, once, table, sim_cycles):
    rates = [0.05, 0.15, 0.25]

    def sweep():
        return {
            (name, sel): [run_point(name, sel, r) for r in rates]
            for name in SCENARIOS for sel in SELECTIONS
        }

    grid = once(benchmark, sweep)
    sim_cycles(CYCLES * len(rates) * len(SCENARIOS) * len(SELECTIONS))
    cols = [(n, s) for n in SCENARIOS for s in SELECTIONS]
    table("SIM-3D latency vs load (3x3x3, uniform traffic, "
          f"{LENGTH}-flit messages)",
          ["load"] + [f"{n}/{s}" for n, s in cols],
          [(f"{r:.2f}",) + tuple(f"{grid[c][i][0]:8.1f}" for c in cols)
           for i, r in enumerate(rates)])
    table("SIM-3D accepted throughput (flits/node/cycle)",
          ["load"] + [f"{n}/{s}" for n, s in cols],
          [(f"{r:.2f}",) + tuple(f"{grid[c][i][1]:.4f}" for c in cols)
           for i, r in enumerate(rates)])

    for col in cols:
        # latency grows with load for every scenario/selection pair
        assert grid[col][0][0] < grid[col][-1][0]
    for sel in SELECTIONS:
        # the pillar funnel costs latency vs the dense mesh at high load
        assert (grid[("pillar-wall-3d", sel)][-1][0]
                > grid[("adaptive-mesh3d", sel)][-1][0])


@pytest.mark.sim_smoke
def test_sim_3d_smoke_quick(benchmark, once, table, sim_cycles):
    """CI tier: both 3D scenarios at one load point under their registered
    selection policy (``credit``), with the cycles/sec regression guard
    against the recorded full-sweep rate in ``BENCH_sim.json``."""
    import time

    from conftest import load_snapshot

    smoke_cycles = 800

    def sweep():
        t0 = time.perf_counter()
        out = {name: run_point(name, scenario.get(name).selection, 0.15,
                               cycles=smoke_cycles)
               for name in SCENARIOS}
        return out, time.perf_counter() - t0

    points, seconds = once(benchmark, sweep)
    sim_cycles(smoke_cycles * len(SCENARIOS))
    cps = smoke_cycles * len(SCENARIOS) / seconds
    table("SIM-3D smoke (3x3x3, uniform 0.15, credit selection)",
          ["scenario", "avg latency", "throughput"],
          [(n, f"{lat:8.1f}", f"{thpt:.4f}") for n, (lat, thpt) in points.items()])
    for name, (lat, thpt) in points.items():
        assert 3 < lat < 100, f"{name}: implausible smoke latency {lat}"
        assert thpt > 0.05, f"{name}: smoke throughput collapsed ({thpt})"

    recorded = load_snapshot("sim").get("test_sim_3d_latency_vs_load", {})
    recorded_cps = recorded.get("cycles_per_sec")
    if recorded_cps:
        assert cps >= recorded_cps / 5, (
            f"simulator perf regression: 3D smoke ran {cps:.0f} cycles/sec vs "
            f"{recorded_cps:.0f} recorded in BENCH_sim.json (tolerance 5x)"
        )
