"""DUATO-NS: the titled ICPP'94 condition, mechanized and cross-validated.

* Duato's fully adaptive mesh/hypercube/torus algorithms are certified by
  his own condition (connected escape subfunction, acyclic extended CDG);
* on every algorithm where Duato's hypotheses hold, his condition and the
  supplied paper's CWG condition agree;
* on the paper's algorithms (HPL, EFA) and examples Duato's condition is
  inapplicable -- the precise gap the CWG condition closes.
"""

from repro.deps import ExtendedChannelDependencyGraph, escape_by_vc
from repro.routing import (
    DimensionOrderMesh,
    DuatoFullyAdaptiveHypercube,
    DuatoFullyAdaptiveMesh,
    DuatoFullyAdaptiveTorus,
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    NegativeFirst,
)
from repro.topology import build_figure1_network, build_hypercube, build_mesh, build_torus
from repro.verify import search_escape, verify


def test_duato_certifies_his_algorithms(benchmark, once, table):
    def run():
        rows = []
        for label, ra in (
            ("duato-mesh 4x4", DuatoFullyAdaptiveMesh(build_mesh((4, 4), num_vcs=2))),
            ("duato-hypercube 3", DuatoFullyAdaptiveHypercube(build_hypercube(3, num_vcs=2))),
            ("duato-torus 4x4", DuatoFullyAdaptiveTorus(build_torus((4, 4), num_vcs=3))),
        ):
            ecdg = ExtendedChannelDependencyGraph(ra, escape_by_vc(ra, (0, 1) if "torus" in label else (0,)))
            rows.append((label, ecdg.subfunction_connected()[0], ecdg.is_acyclic(), len(ecdg)))
        return rows

    rows = once(benchmark, run)
    table("Duato's condition on Duato's algorithms",
          ["algorithm", "R1 connected", "ECDG acyclic", "ECDG deps"], rows)
    for label, connected, acyclic, _ in rows:
        assert connected and acyclic, label


def test_conditions_agree_where_both_apply(benchmark, once, table):
    def run():
        rows = []
        mesh2 = build_mesh((3, 3), num_vcs=2)
        mesh1 = build_mesh((3, 3))
        for ra in (
            DuatoFullyAdaptiveMesh(mesh2),
            DimensionOrderMesh(mesh1),
            NegativeFirst(mesh1),
        ):
            d = search_escape(ra)
            c = verify(ra)
            rows.append((ra.name, d.deadlock_free, c.deadlock_free))
        return rows

    rows = once(benchmark, run)
    table("Agreement: Duato vs CWG condition (coherent algorithms)",
          ["algorithm", "Duato", "CWG (Thm 2/3)"], rows)
    for name, duato, cwg in rows:
        assert duato == cwg, name


def test_duato_gap_on_papers_algorithms(benchmark, once, table):
    def run():
        rows = []
        for ra in (
            HighestPositiveLast(build_mesh((3, 3))),
            EnhancedFullyAdaptive(build_hypercube(3, num_vcs=2)),
            IncoherentExample(build_figure1_network()),
        ):
            d = search_escape(ra)
            c = verify(ra)
            rows.append((ra.name, d.reason[:46], c.deadlock_free))
        return rows

    rows = once(benchmark, run)
    table("The gap: Duato inapplicable, CWG condition decides",
          ["algorithm", "Duato says", "CWG verdict"], rows)
    for name, duato_reason, cwg in rows:
        assert "not applicable" in duato_reason, name
        assert cwg, name  # all three are in fact deadlock-free
