"""DEADLOCK: the theory's verdicts hold empirically in the simulator.

For each (algorithm, verdict) pair the simulator runs adversarial traffic
over several seeds:

* algorithms *proved* deadlock-free (Theorem 2/3) never trip the runtime
  deadlock detector;
* algorithms *proved* deadlock-prone (True Cycle witnesses) deadlock within
  a few thousand cycles at saturating load with long messages -- including
  the Figure-4 no-flip strawman and unrestricted minimal routing.

This is the end-to-end soundness check connecting the graph theory to the
flit-level system model.
"""

from repro.routing import (
    DimensionOrderMesh,
    HighestPositiveLast,
    RingExample,
    UnrestrictedMinimal,
)
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_figure4_ring, build_mesh
from repro.verify import verify

SEEDS = range(4)
CYCLES = 8000


def deadlock_rate(ra, net, *, rate, length):
    hits = 0
    first = None
    for seed in SEEDS:
        sim = WormholeSimulator(
            ra,
            BernoulliTraffic(net, rate=rate, length=length),
            SimConfig(seed=seed, buffer_depth=2, deadlock_check_interval=32),
        )
        sim.run(CYCLES)
        if sim.deadlock is not None:
            hits += 1
            if first is None:
                first = sim.deadlock
    return hits, first


def test_deadlock_theory_vs_simulation(benchmark, once, table):
    mesh = build_mesh((4, 4))
    ring = build_figure4_ring()
    cases = [
        ("e-cube (safe)", DimensionOrderMesh(mesh), mesh, 0.6, 24),
        ("HPL (safe)", HighestPositiveLast(mesh), mesh, 0.6, 24),
        ("ring fig-4 (safe)", RingExample(ring), ring, 0.6, 24),
        ("unrestricted (unsafe)", UnrestrictedMinimal(mesh), mesh, 0.6, 24),
        ("ring no-flip (unsafe)", RingExample(ring, flip_class=False), ring, 0.6, 24),
    ]

    def sweep():
        rows = []
        for label, ra, net, rate, length in cases:
            verdict = verify(ra)
            hits, first = deadlock_rate(ra, net, rate=rate, length=length)
            rows.append((label, verdict.deadlock_free, f"{hits}/{len(SEEDS)}",
                         first.cycle if first else "-"))
        return rows

    rows = once(benchmark, sweep)
    table("Theory vs simulation: deadlock occurrence at saturating load",
          ["algorithm", "proved deadlock-free", "deadlocked runs", "first at cycle"], rows)

    for label, proved_free, hits, _ in rows:
        h = int(hits.split("/")[0])
        if proved_free:
            assert h == 0, f"{label}: safe algorithm deadlocked"
        else:
            assert h > 0, f"{label}: unsafe algorithm never deadlocked"


def test_deadlock_report_is_definition12(benchmark, once):
    """The detector's report is a genuine Definition-12 configuration."""
    mesh = build_mesh((4, 4))
    ra = UnrestrictedMinimal(mesh)

    def find():
        for seed in range(8):
            sim = WormholeSimulator(
                ra, BernoulliTraffic(mesh, rate=0.6, length=24),
                SimConfig(seed=seed, buffer_depth=2, deadlock_check_interval=32),
            )
            sim.run(CYCLES)
            if sim.deadlock is not None:
                return sim
        raise AssertionError("no deadlock found in 8 seeds")

    sim = once(benchmark, find)
    rep = sim.deadlock
    print(rep.describe())
    ids = set(rep.message_ids)
    for mid in rep.message_ids:
        m = sim.messages[mid]
        assert m.held, "every member occupies at least one channel"
        assert m.waiting_for, "every member is blocked on waiting channels"
        for w in m.waiting_for:
            assert sim.owner[w] in ids, "waiting channels held within the set"
