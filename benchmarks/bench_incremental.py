"""Cold rebuild vs incremental re-verification across the catalog.

The service scenario: one long-lived session per algorithm absorbing a
stream of reconfiguration events -- a link flapping twice (down, up, down,
up) and a routing-table edit applied and reverted twice -- with a shared
content-addressed verdict store, exactly how ``python -m repro serve``
deploys the engine.  For every event we time the incremental ``reverify``
*and* an honest cold ``full_check`` of the same mutated relation (fresh
overlay, fresh transition cache, no verdict store), assert the two digests
are bit-identical, and report the per-algorithm and aggregate speedups.

The aggregate (sum of cold seconds over sum of incremental seconds) is the
acceptance bar: >= 10x.  The result lands in ``BENCH_checker.json`` under
the ``incremental_vs_cold`` key, next to the auto-recorded wall times.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.incremental import (
    IncrementalSession,
    default_fault_pair,
    default_table_edit,
)
from repro.pipeline import VerificationCache, catalog_spec
from repro.routing import CATALOG

SNAPSHOT = Path(__file__).resolve().parent / "BENCH_checker.json"

#: flap cycles per scenario -- repeats revisit known fingerprints, which is
#: what the verdict store is for (faults in real fabrics flap, they don't
#: strike exactly once)
CYCLES = 3

#: service-scale topologies (bigger than the smoke dims: the engine's whole
#: point is that cold-rebuild cost grows much faster than delta cost)
DIMS = {"mesh_dims": (5, 5), "torus_dims": (6, 6), "hypercube_dim": 4}


def _episode(name: str, cache: VerificationCache) -> dict | None:
    """One algorithm's event stream; returns timings or None if the
    catalog entry admits neither scenario."""
    session = IncrementalSession(spec=catalog_spec(name, **DIMS), cache=cache,
                                 triage=True)
    session.baseline()  # session warm-up is amortized state, not per-event cost

    events = []
    try:
        down, up = default_fault_pair(session)
        events += [down, up] * CYCLES
    except ValueError:
        pass
    try:
        edit, revert = default_table_edit(session)
        events += [edit, revert] * CYCLES
    except ValueError:
        pass
    if not events:
        return None

    inc = cold = 0.0
    for delta in events:
        t0 = time.perf_counter()
        result = session.reverify(delta)
        inc += time.perf_counter() - t0
        full = session.full_check()
        cold += full.seconds
        assert result.digest == full.digest, f"{name}: diverged after {delta!r}"
    return {
        "events": len(events),
        "cold_seconds": round(cold, 3),
        "incremental_seconds": round(inc, 3),
        "speedup": round(cold / inc, 1) if inc > 0 else None,
    }


def _record(summary: dict) -> None:
    try:
        data = json.loads(SNAPSHOT.read_text())
    except (OSError, ValueError):
        data = {}
    data["incremental_vs_cold"] = summary
    SNAPSHOT.write_text(json.dumps(dict(sorted(data.items())), indent=2) + "\n")


def test_incremental_flap_sweep(benchmark, once, table):
    cache = VerificationCache(max_entries=1024)
    rows: dict[str, dict] = {}

    def sweep():
        for name in sorted(CATALOG):
            episode = _episode(name, cache)
            if episode is not None:
                rows[name] = episode

    once(benchmark, sweep)

    cold = sum(r["cold_seconds"] for r in rows.values())
    inc = sum(r["incremental_seconds"] for r in rows.values())
    aggregate = cold / inc
    table(
        "incremental re-verification vs cold rebuild (flap episodes)",
        ["algorithm", "events", "cold s", "incremental s", "speedup"],
        [
            (n, r["events"], r["cold_seconds"], r["incremental_seconds"],
             f"x{r['speedup']}")
            for n, r in sorted(rows.items())
        ]
        + [("TOTAL", sum(r["events"] for r in rows.values()),
            round(cold, 3), round(inc, 3), f"x{aggregate:.1f}")],
    )
    print(f"verdict store: {cache.stats()}")

    _record({
        "algorithms": len(rows),
        "events": sum(r["events"] for r in rows.values()),
        "cold_seconds": round(cold, 3),
        "incremental_seconds": round(inc, 3),
        "aggregate_speedup": round(aggregate, 1),
        "store_hit_rate": round(cache.hit_rate, 3),
        "per_algorithm": rows,
    })
    assert aggregate >= 10.0, (
        f"incremental sweep only x{aggregate:.1f} vs cold (need >= 10x)"
    )
