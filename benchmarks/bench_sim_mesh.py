"""SIM-MESH: latency vs offered load on an 8x8 mesh (Section 10's call for
"simulations with a variety of message traffic patterns").

All algorithms use one virtual channel per link: e-cube, west-first,
negative-first, and the paper's Highest Positive Last in its minimal
restriction ("hpl-min") and full nonminimal form ("hpl-full").

Shape expectations (DESIGN.md): under the adversarial transpose permutation
at moderate-to-high load, HPL's extra adaptivity beats both e-cube and
negative-first -- the Section 9.2 claim carried into measured latency and
throughput.  The nonminimal variant doubles as an ablation: misrouting
spends bandwidth, so past saturation it loses to its own minimal
restriction (the classic nonminimal-routing trade-off).

Absolute numbers are properties of *this* simulator (Section 3's abstract
model), not the authors' 1994 hardware; the comparison shape is the claim.
"""

import pytest

from repro.routing import (
    DimensionOrderMesh,
    HighestPositiveLast,
    NegativeFirst,
    WestFirst,
)
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh

MESH = (8, 8)
CYCLES = 2500
WARMUP = 400
LENGTH = 8

ALGOS = {
    "e-cube": lambda net: DimensionOrderMesh(net),
    "west-first": lambda net: WestFirst(net),
    "negative-first": lambda net: NegativeFirst(net),
    "hpl-min": lambda net: HighestPositiveLast(net, misroute=False),
    "hpl-full": lambda net: HighestPositiveLast(net),
}


def run_point(net, factory, pattern: str, rate: float, seed: int = 3):
    ra = factory(net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=rate, pattern=pattern, length=LENGTH, stop_at=CYCLES),
        SimConfig(seed=seed, buffer_depth=4, deadlock_check_interval=128),
    )
    sim.run(CYCLES)
    assert sim.deadlock is None, f"{ra.name} must not deadlock"
    s = sim.stats.summary(cycles=CYCLES, num_nodes=net.num_nodes, warmup=WARMUP)
    return s.avg_latency, s.throughput_flits_per_node_cycle


@pytest.mark.parametrize("pattern", ["uniform", "transpose"])
def test_sim_mesh_latency_vs_load(benchmark, once, table, pattern):
    net = build_mesh(MESH)
    rates = [0.05, 0.15, 0.25, 0.35]

    def sweep():
        return {
            name: [run_point(net, f, pattern, r) for r in rates]
            for name, f in ALGOS.items()
        }

    grid = once(benchmark, sweep)
    rows = [
        (f"{r:.2f}",) + tuple(f"{grid[n][i][0]:8.1f}" for n in ALGOS)
        for i, r in enumerate(rates)
    ]
    table(f"SIM-MESH latency vs load, 8x8 mesh, {pattern} traffic "
          f"(avg latency, {LENGTH}-flit messages)",
          ["load"] + list(ALGOS), rows)
    trows = [
        (f"{r:.2f}",) + tuple(f"{grid[n][i][1]:.4f}" for n in ALGOS)
        for i, r in enumerate(rates)
    ]
    table(f"SIM-MESH accepted throughput (flits/node/cycle), {pattern}",
          ["load"] + list(ALGOS), trows)

    # latency grows with load for every algorithm
    for name in ALGOS:
        assert grid[name][0][0] < grid[name][-1][0]
    if pattern == "transpose":
        # the Section 9.2 claim: minimal HPL beats e-cube and negative-first
        # past the onset of congestion, in latency and throughput
        for i in (2, 3):
            assert grid["hpl-min"][i][0] < grid["e-cube"][i][0]
            assert grid["hpl-min"][i][0] < grid["negative-first"][i][0]
            assert grid["hpl-min"][i][1] >= grid["e-cube"][i][1]
        # ablation: misrouting costs bandwidth past saturation
        assert grid["hpl-full"][3][1] <= grid["hpl-min"][3][1]
