"""SIM-MESH: latency vs offered load on an 8x8 mesh (Section 10's call for
"simulations with a variety of message traffic patterns").

All algorithms use one virtual channel per link: e-cube, west-first,
negative-first, and the paper's Highest Positive Last in its minimal
restriction ("hpl-min") and full nonminimal form ("hpl-full").

Shape expectations (DESIGN.md): under the adversarial transpose permutation
at moderate-to-high load, HPL's extra adaptivity beats both e-cube and
negative-first -- the Section 9.2 claim carried into measured latency and
throughput.  The nonminimal variant doubles as an ablation: misrouting
spends bandwidth, so past saturation it loses to its own minimal
restriction (the classic nonminimal-routing trade-off).

Absolute numbers are properties of *this* simulator (Section 3's abstract
model), not the authors' 1994 hardware; the comparison shape is the claim.
"""

import pytest

from repro.routing import (
    DimensionOrderMesh,
    HighestPositiveLast,
    NegativeFirst,
    WestFirst,
)
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh

MESH = (8, 8)
CYCLES = 2500
WARMUP = 400
LENGTH = 8

ALGOS = {
    "e-cube": lambda net: DimensionOrderMesh(net),
    "west-first": lambda net: WestFirst(net),
    "negative-first": lambda net: NegativeFirst(net),
    "hpl-min": lambda net: HighestPositiveLast(net, misroute=False),
    "hpl-full": lambda net: HighestPositiveLast(net),
}


def run_point(net, factory, pattern: str, rate: float, seed: int = 3):
    ra = factory(net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=rate, pattern=pattern, length=LENGTH, stop_at=CYCLES),
        SimConfig(seed=seed, buffer_depth=4, deadlock_check_interval=128),
    )
    sim.run(CYCLES)
    assert sim.deadlock is None, f"{ra.name} must not deadlock"
    s = sim.stats.summary(cycles=CYCLES, num_nodes=net.num_nodes, warmup=WARMUP)
    return s.avg_latency, s.throughput_flits_per_node_cycle


@pytest.mark.slow
@pytest.mark.parametrize("pattern", ["uniform", "transpose"])
def test_sim_mesh_latency_vs_load(benchmark, once, table, sim_cycles, pattern):
    net = build_mesh(MESH)
    rates = [0.05, 0.15, 0.25, 0.35]

    def sweep():
        return {
            name: [run_point(net, f, pattern, r) for r in rates]
            for name, f in ALGOS.items()
        }

    grid = once(benchmark, sweep)
    sim_cycles(CYCLES * len(rates) * len(ALGOS))
    rows = [
        (f"{r:.2f}",) + tuple(f"{grid[n][i][0]:8.1f}" for n in ALGOS)
        for i, r in enumerate(rates)
    ]
    table(f"SIM-MESH latency vs load, 8x8 mesh, {pattern} traffic "
          f"(avg latency, {LENGTH}-flit messages)",
          ["load"] + list(ALGOS), rows)
    trows = [
        (f"{r:.2f}",) + tuple(f"{grid[n][i][1]:.4f}" for n in ALGOS)
        for i, r in enumerate(rates)
    ]
    table(f"SIM-MESH accepted throughput (flits/node/cycle), {pattern}",
          ["load"] + list(ALGOS), trows)

    # latency grows with load for every algorithm
    for name in ALGOS:
        assert grid[name][0][0] < grid[name][-1][0]
    if pattern == "transpose":
        # the Section 9.2 claim: minimal HPL beats e-cube and negative-first
        # past the onset of congestion, in latency and throughput
        for i in (2, 3):
            assert grid["hpl-min"][i][0] < grid["e-cube"][i][0]
            assert grid["hpl-min"][i][0] < grid["negative-first"][i][0]
            assert grid["hpl-min"][i][1] >= grid["e-cube"][i][1]
        # ablation: misrouting costs bandwidth past saturation
        assert grid["hpl-full"][3][1] <= grid["hpl-min"][3][1]


@pytest.mark.sim_smoke
def test_sim_smoke_quick(benchmark, once, table, sim_cycles):
    """The ``--quick`` tier: two algorithms at one moderate load point.

    Doubles as the perf regression guard for CI: simulated cycles/sec must
    stay within a generous factor of the recorded ``BENCH_sim.json``
    full-sweep rate.  The factor absorbs machine-to-machine variance (CI
    runners vs the recording machine) while still catching an accidental
    return to per-message-per-cycle scans, which costs an order of
    magnitude.
    """
    import time

    from conftest import load_snapshot

    net = build_mesh(MESH)
    smoke_cycles = 800
    quick = {"e-cube": ALGOS["e-cube"], "hpl-min": ALGOS["hpl-min"]}

    def sweep():
        t0 = time.perf_counter()
        out = {}
        for name, factory in quick.items():
            ra = factory(net)
            sim = WormholeSimulator(
                ra,
                BernoulliTraffic(net, rate=0.15, pattern="uniform",
                                 length=LENGTH, stop_at=smoke_cycles),
                SimConfig(seed=3, buffer_depth=4, deadlock_check_interval=128),
            )
            sim.run(smoke_cycles)
            assert sim.deadlock is None
            s = sim.stats.summary(cycles=smoke_cycles, num_nodes=net.num_nodes,
                                  warmup=200)
            out[name] = (s.avg_latency, s.throughput_flits_per_node_cycle)
        return out, time.perf_counter() - t0

    (points, seconds) = once(benchmark, sweep)
    sim_cycles(smoke_cycles * len(quick))
    cps = smoke_cycles * len(quick) / seconds
    table("SIM-MESH smoke (8x8 mesh, uniform 0.15)",
          ["algorithm", "avg latency", "throughput"],
          [(n, f"{lat:8.1f}", f"{thpt:.4f}") for n, (lat, thpt) in points.items()])
    for name, (lat, thpt) in points.items():
        assert 5 < lat < 100, f"{name}: implausible smoke latency {lat}"
        assert thpt > 0.10, f"{name}: smoke throughput collapsed ({thpt})"

    recorded = load_snapshot("sim").get("test_sim_mesh_latency_vs_load[uniform]", {})
    recorded_cps = recorded.get("cycles_per_sec")
    if recorded_cps:
        # generous tolerance: smoke must reach 1/5 of the recorded sweep rate
        assert cps >= recorded_cps / 5, (
            f"simulator perf regression: smoke ran {cps:.0f} cycles/sec vs "
            f"{recorded_cps:.0f} recorded in BENCH_sim.json (tolerance 5x)"
        )
