"""The direct True-Cycle search (segment chains, no cycle enumeration)."""

import pytest

from repro.core import ChannelWaitingGraph, CycleClass, CycleClassifier, find_cycles
from repro.core.deadlock_search import TrueCycleSearch
from repro.routing import (
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    RelaxedEFA,
    RingExample,
    UnrestrictedMinimal,
)
from repro.topology import build_hypercube, build_mesh


class TestAgainstEnumeration:
    def test_figure1_finds_true_cycle(self, figure1):
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        outcome = TrueCycleSearch(cwg).search()
        assert outcome.true_cycle is not None
        assert outcome.true_cycle.kind is CycleClass.TRUE

    def test_consistency_with_classifier(self, figure1):
        """Enumeration+classification and the direct search agree on
        existence of True Cycles."""
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        cycles = find_cycles(cwg.graph())
        classifier = CycleClassifier(cwg)
        any_true = any(classifier.classify(c).kind is CycleClass.TRUE for c in cycles)
        outcome = TrueCycleSearch(cwg).search()
        assert (outcome.true_cycle is not None) == any_true


class TestNegativeProofs:
    def test_acyclic_cwg_trivially_clean(self, mesh33):
        cwg = ChannelWaitingGraph(HighestPositiveLast(mesh33))
        outcome = TrueCycleSearch(cwg).search()
        assert outcome.proves_no_true_cycle

    def test_ring_exhaustive_no_true_cycle(self, figure4):
        cwg = ChannelWaitingGraph(RingExample(figure4))
        outcome = TrueCycleSearch(cwg).search()
        assert outcome.proves_no_true_cycle
        assert outcome.nodes_explored > 0

    def test_ring_noflip_finds_single_ca_witness(self, figure4):
        cwg = ChannelWaitingGraph(RingExample(figure4, flip_class=False))
        outcome = TrueCycleSearch(cwg).search()
        assert outcome.true_cycle is not None
        held_cA = [
            seg for seg in outcome.true_cycle.witness
            if any(c.label == "cA" for c in seg.held)
        ]
        assert len(held_cA) == 1  # exactly one message rides cA


class TestBudget:
    def test_budget_exhaustion_reported(self, figure4):
        cwg = ChannelWaitingGraph(RingExample(figure4))
        outcome = TrueCycleSearch(cwg, max_nodes=50).search()
        assert not outcome.exhaustive
        assert not outcome.proves_no_true_cycle


class TestSingleWaitOnly:
    def test_unrestricted_mesh_single_wait_cycle(self):
        m = build_mesh((3, 3))
        cwg = ChannelWaitingGraph(UnrestrictedMinimal(m))
        outcome = TrueCycleSearch(cwg, single_wait_only=True).search()
        assert outcome.true_cycle is not None
        # every witness segment ends at a single-waiting-channel state
        ra = cwg.algorithm
        for seg in outcome.true_cycle.witness:
            final = seg.path[-1]
            dt = cwg.transitions[seg.dest]
            assert len(dt.wait[final]) == 1

    def test_safe_algorithm_clean_under_single_wait(self, cube3_2vc):
        cwg = ChannelWaitingGraph(EnhancedFullyAdaptive(cube3_2vc, wait_any=True))
        outcome = TrueCycleSearch(cwg, single_wait_only=True).search()
        assert outcome.true_cycle is None


class TestSegmentPruning:
    def test_domination_keeps_minimal(self, figure1):
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        search = TrueCycleSearch(cwg)
        by = figure1.channel_by_label
        segs = search.segments_from(by("cA1"))
        # for each waited channel only held-minimal segments survive
        for b in {s.waits_on for s in segs}:
            helds = [s.held for s in segs if s.waits_on == b]
            for h in helds:
                assert not any(o < h for o in helds)

    def test_alt_dests_recorded(self, figure1):
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        search = TrueCycleSearch(cwg)
        by = figure1.channel_by_label
        search.segments_from(by("cL3"))
        assert search._alt_dests  # merged destinations live here
