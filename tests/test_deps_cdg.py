"""The channel dependency graph (Dally & Seitz)."""

import pytest

from repro.deps import ChannelDependencyGraph
from repro.routing import (
    DallySeitzTorus,
    DimensionOrderMesh,
    HighestPositiveLast,
    NegativeFirst,
    UnrestrictedMinimal,
)
from repro.topology import build_ring, build_torus


class TestAcyclicity:
    def test_ecube_acyclic(self, mesh33):
        cdg = ChannelDependencyGraph(DimensionOrderMesh(mesh33))
        assert cdg.is_acyclic()

    def test_negative_first_acyclic(self, mesh44):
        assert ChannelDependencyGraph(NegativeFirst(mesh44)).is_acyclic()

    def test_dateline_torus_acyclic(self, torus5_2vc):
        assert ChannelDependencyGraph(DallySeitzTorus(torus5_2vc)).is_acyclic()

    def test_hpl_cyclic(self, mesh33):
        assert not ChannelDependencyGraph(HighestPositiveLast(mesh33)).is_acyclic()

    def test_unrestricted_mesh_cyclic(self, mesh33):
        assert not ChannelDependencyGraph(UnrestrictedMinimal(mesh33)).is_acyclic()


class TestNumbering:
    def test_numbering_strictly_increasing(self, mesh33):
        cdg = ChannelDependencyGraph(DimensionOrderMesh(mesh33))
        num = cdg.numbering()
        assert num is not None
        for (a, b) in cdg.edges:
            assert num[a] < num[b]

    def test_numbering_none_when_cyclic(self, mesh33):
        assert ChannelDependencyGraph(HighestPositiveLast(mesh33)).numbering() is None


class TestEdges:
    def test_ecube_dependencies_follow_dimension_order(self, mesh33):
        cdg = ChannelDependencyGraph(DimensionOrderMesh(mesh33))
        for (a, b) in cdg.edges:
            # e-cube: never from a higher dimension back to a lower one
            assert a.meta["dim"] <= b.meta["dim"]

    def test_edges_have_destination_witnesses(self, mesh33):
        cdg = ChannelDependencyGraph(DimensionOrderMesh(mesh33))
        for e in cdg.edges:
            assert cdg.destinations_for(e)

    def test_unused_states_excluded(self, mesh33):
        """Dependencies are only recorded from channels actually reachable
        by some message (usable), so e.g. e-cube has no dependency out of a
        dim-1 channel into a dim-0 channel even though the mesh permits the
        turn physically."""
        cdg = ChannelDependencyGraph(DimensionOrderMesh(mesh33))
        assert all(
            not (a.meta["dim"] == 1 and b.meta["dim"] == 0) for (a, b) in cdg.edges
        )

    def test_graph_removed_view(self, mesh33):
        cdg = ChannelDependencyGraph(DimensionOrderMesh(mesh33))
        e = cdg.edges[0]
        assert not cdg.graph(removed=[e]).has_edge(*e)

    def test_repr(self, mesh33):
        assert "CDG" in repr(ChannelDependencyGraph(DimensionOrderMesh(mesh33)))


def test_unidirectional_ring_single_vc_cyclic():
    """The classic motivating example: a ring with one VC has a cyclic CDG."""
    from repro.routing import NodeDestRouting

    net = build_ring(4, bidirectional=False)

    class Minimal(NodeDestRouting):
        name = "ring-minimal"

        def route_nd(self, node, dest):
            if node == dest:
                return frozenset()
            return frozenset(self.network.out_channels(node))

    assert not ChannelDependencyGraph(Minimal(net)).is_acyclic()
