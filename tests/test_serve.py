"""The sharded re-verification service: affinity, audits, accounting.

The service's claims are operational rather than graph-theoretic: jobs for
the same target always land on the same shard (so its incremental session
is never shared across workers), sampled audits compare against a full
rebuild, repeated states hit the content-addressed store, and failures are
recorded per-job instead of taking the burst down.
"""

from __future__ import annotations

import pytest

from repro.incremental import LinkDown, LinkUp, default_fault_pair
from repro.pipeline import VerificationCache, catalog_specs
from repro.serve import (
    ReverifyJob,
    VerificationService,
    shard_of,
)

ALGOS = ("west-first", "duato-mesh", "e-cube")


def _specs(names=ALGOS):
    return catalog_specs(list(names), mesh_dims=(3, 3), torus_dims=(4, 4),
                         hypercube_dim=3)


def _service(**kwargs):
    kwargs.setdefault("workers", 2)
    return VerificationService(_specs(), **kwargs)


def _flap_jobs(service, names=ALGOS, rounds=2):
    """down/up flaps per target, using each session's default fault link."""
    jobs = []
    jid = 0
    for _ in range(rounds):
        for name in names:
            session = service._session(name)
            down, up = default_fault_pair(session)
            for delta in (down, up):
                jobs.append(ReverifyJob(jid, name, delta))
                jid += 1
    return jobs


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
def test_shard_of_is_stable_and_in_range():
    for workers in (1, 2, 5):
        for target in ("west-first", "duato-mesh", "e-cube"):
            s = shard_of(target, workers)
            assert 0 <= s < workers
            assert s == shard_of(target, workers)  # pure function


def test_shard_of_rejects_zero_workers():
    with pytest.raises(ValueError):
        shard_of("west-first", 0)


# ----------------------------------------------------------------------
# burst execution
# ----------------------------------------------------------------------
def test_burst_outcomes_are_ordered_and_shard_affine():
    service = _service(workers=2, verify_sample=0.0)
    jobs = _flap_jobs(service)
    report = service.run_burst(jobs)
    assert report.clean_shutdown
    assert not report.errors
    assert [o.job_id for o in report.outcomes] == [j.job_id for j in jobs]
    by_target = {}
    for o in report.outcomes:
        assert o.shard == shard_of(o.target, 2)
        by_target.setdefault(o.target, set()).add(o.shard)
    assert all(len(shards) == 1 for shards in by_target.values())
    assert all(o.latency >= 0.0 for o in report.outcomes)


def test_sampled_audits_pass_on_honest_sessions():
    service = _service(workers=2, verify_sample=0.5)
    report = service.run_burst(_flap_jobs(service))
    assert report.ok()
    assert report.audited >= len(report.outcomes) // 2
    assert report.audit_failures == []
    assert all(o.audited in (None, True) for o in report.outcomes)
    assert service.metrics.counters.get("serve:audits", 0) == report.audited
    assert service.metrics.counters.get("serve:audit_mismatches", 0) == 0


def test_repeated_states_hit_the_store():
    # flap the same link twice per target: round two revisits known states
    cache = VerificationCache(max_entries=64)
    service = _service(workers=2, cache=cache, verify_sample=0.0)
    report = service.run_burst(_flap_jobs(service, rounds=3))
    assert report.clean_shutdown
    assert report.hit_rate > 0.3
    assert report.cache_stats["hits"] == cache.hits
    assert report.ok(min_hit_rate=0.3)
    assert not report.ok(min_hit_rate=0.99)


def test_unknown_target_is_a_recorded_error_not_a_crash():
    service = _service(workers=2)
    jobs = [
        ReverifyJob(0, "west-first"),
        ReverifyJob(1, "no-such-algorithm", LinkDown(0, 1, 0)),
        ReverifyJob(2, "west-first", LinkDown(0, 1, 0)),
    ]
    report = service.run_burst(jobs)
    assert report.clean_shutdown
    assert len(report.errors) == 1
    assert report.errors[0][0] == 1
    assert report.errors[0][1] == "no-such-algorithm"
    assert [o.job_id for o in report.outcomes] == [0, 2]
    assert not report.ok()  # errors make the burst not-ok


def test_invalid_delta_is_a_recorded_error():
    service = _service(workers=1)
    report = service.run_burst([
        ReverifyJob(0, "west-first", LinkDown(0, 8, 0)),  # not adjacent
        ReverifyJob(1, "west-first", LinkUp(0, 1, 0)),    # benign no-op repair
    ])
    assert report.clean_shutdown
    assert len(report.errors) == 1
    assert report.errors[0][0] == 0
    assert "no link channel" in report.errors[0][2]
    # repairing an already-up link is a no-op, not a failure
    assert [o.job_id for o in report.outcomes] == [1]


def test_more_workers_than_targets_is_fine():
    service = VerificationService(_specs(["west-first"]), workers=4)
    report = service.run_burst([
        ReverifyJob(0, "west-first"),
        ReverifyJob(1, "west-first"),
    ])
    assert report.ok()
    assert len(report.outcomes) == 2
    assert all(o.deadlock_free for o in report.outcomes)


def test_report_carries_latency_observations_and_description():
    service = _service(workers=2, verify_sample=1.0)
    report = service.run_burst(_flap_jobs(service, rounds=1))
    assert "serve_latency_seconds" in report.metrics["observations"]
    obs = report.metrics["observations"]["serve_latency_seconds"]
    assert obs["count"] == len(report.outcomes)
    text = report.describe()
    assert "jobs" in text and "hit rate" in text
    assert ReverifyJob(0, "west-first").describe()  # non-empty summary
