"""Unit tests for the Network multigraph substrate."""

import pytest

from repro.topology import ChannelKind, Network, NetworkError, network_from_edges


def ring2() -> Network:
    net = Network("tiny")
    net.add_nodes(2)
    net.add_channel(0, 1)
    net.add_channel(1, 0)
    return net


class TestConstruction:
    def test_add_nodes_returns_range(self):
        net = Network()
        assert list(net.add_nodes(3)) == [0, 1, 2]
        assert list(net.add_nodes(2)) == [3, 4]
        assert net.num_nodes == 5

    def test_negative_node_count_rejected(self):
        with pytest.raises(NetworkError):
            Network().add_nodes(-1)

    def test_link_self_loop_rejected(self):
        net = Network()
        net.add_nodes(1)
        with pytest.raises(NetworkError, match="self-loop"):
            net.add_channel(0, 0)

    def test_terminal_channel_must_be_self_loop(self):
        net = Network()
        net.add_nodes(2)
        with pytest.raises(NetworkError):
            net.add_channel(0, 1, kind=ChannelKind.INJECTION)

    def test_duplicate_injection_rejected(self):
        net = Network()
        net.add_nodes(1)
        net.add_channel(0, 0, kind=ChannelKind.INJECTION)
        with pytest.raises(NetworkError, match="already has"):
            net.add_channel(0, 0, kind=ChannelKind.INJECTION)

    def test_duplicate_label_rejected(self):
        net = ring2()
        net.add_channel(0, 1, vc=1, label="x")
        with pytest.raises(NetworkError, match="duplicate"):
            net.add_channel(0, 1, vc=2, label="x")

    def test_node_out_of_range(self):
        net = Network()
        net.add_nodes(2)
        with pytest.raises(NetworkError):
            net.add_channel(0, 5)

    def test_frozen_is_immutable(self):
        net = ring2().freeze()
        with pytest.raises(NetworkError, match="frozen"):
            net.add_nodes(1)
        with pytest.raises(NetworkError, match="frozen"):
            net.add_channel(0, 1)

    def test_freeze_idempotent(self):
        net = ring2().freeze()
        assert net.freeze() is net

    def test_freeze_requires_strong_connectivity(self):
        net = Network("oneway")
        net.add_nodes(2)
        net.add_channel(0, 1)
        with pytest.raises(NetworkError, match="strongly"):
            net.freeze()

    def test_freeze_connectivity_check_can_be_skipped(self):
        net = Network("oneway")
        net.add_nodes(2)
        net.add_channel(0, 1)
        net.freeze(require_strongly_connected=False)
        assert net.frozen


class TestQueries:
    def test_terminal_channels_added_on_freeze(self):
        net = ring2().freeze()
        for n in (0, 1):
            assert net.injection_channel(n).is_injection
            assert net.ejection_channel(n).is_ejection

    def test_link_channels_excludes_terminals(self):
        net = ring2().freeze()
        assert len(net.link_channels) == 2
        assert all(c.is_link for c in net.link_channels)
        assert net.num_channels == 6  # 2 link + 2 inj + 2 ej

    def test_out_in_channels(self):
        net = ring2().freeze()
        assert [c.dst for c in net.out_channels(0)] == [1]
        assert [c.src for c in net.in_channels(0)] == [1]

    def test_channels_between_and_vcs(self):
        net = Network()
        net.add_nodes(2)
        net.add_link_channels(0, 1, 3)
        net.add_channel(1, 0)
        net = net.freeze()
        chans = net.channels_between(0, 1)
        assert [c.vc for c in chans] == [0, 1, 2]
        assert net.max_vcs() == 3

    def test_channel_by_label(self):
        net = Network()
        net.add_nodes(2)
        net.add_channel(0, 1, label="fwd")
        net.add_channel(1, 0, label="bwd")
        net = net.freeze()
        assert net.channel_by_label("fwd").dst == 1
        with pytest.raises(NetworkError):
            net.channel_by_label("nope")

    def test_neighbors_out_dedupes_multilinks(self):
        net = Network()
        net.add_nodes(2)
        net.add_link_channels(0, 1, 2)
        net.add_channel(1, 0)
        net = net.freeze()
        assert net.neighbors_out(0) == [1]

    def test_physical_links(self):
        net = Network()
        net.add_nodes(2)
        net.add_link_channels(0, 1, 2)
        net.add_channel(1, 0)
        net = net.freeze()
        assert sorted(net.physical_links()) == [(0, 1), (1, 0)]

    def test_coords_roundtrip(self, mesh33):
        for n in mesh33.nodes:
            assert mesh33.node_at(mesh33.coord(n)) == n

    def test_coord_missing(self):
        net = ring2().freeze()
        with pytest.raises(NetworkError):
            net.coord(0)
        with pytest.raises(NetworkError):
            net.node_at((9, 9))

    def test_shortest_distances_ring(self):
        net = network_from_edges(4, [(i, (i + 1) % 4) for i in range(4)])
        d = net.shortest_distances()
        assert d[0][3] == 3  # unidirectional ring
        assert d[3][0] == 1
        assert d[2][2] == 0

    def test_iter_and_repr(self):
        net = ring2().freeze()
        assert len(list(iter(net))) == net.num_channels
        assert "2 nodes" in repr(net)


def test_network_from_edges_with_vc_counts():
    net = network_from_edges(3, [(0, 1, 2), (1, 2), (2, 0)])
    assert len(net.channels_between(0, 1)) == 2
    assert len(net.channels_between(1, 2)) == 1
