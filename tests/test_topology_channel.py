"""Unit tests for Channel identity and roles."""

from repro.topology import Channel, ChannelKind


def test_equality_and_hash_by_cid():
    a = Channel(cid=3, src=0, dst=1)
    b = Channel(cid=3, src=5, dst=6, vc=2)  # same cid, different fields
    c = Channel(cid=4, src=0, dst=1)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2


def test_equality_against_other_types():
    a = Channel(cid=1, src=0, dst=1)
    assert a != 1
    assert a != "c1"


def test_kind_predicates():
    link = Channel(cid=0, src=0, dst=1, kind=ChannelKind.LINK)
    inj = Channel(cid=1, src=2, dst=2, kind=ChannelKind.INJECTION)
    ej = Channel(cid=2, src=2, dst=2, kind=ChannelKind.EJECTION)
    assert link.is_link and not link.is_injection and not link.is_ejection
    assert inj.is_injection and not inj.is_link
    assert ej.is_ejection and not ej.is_link


def test_endpoints_and_repr():
    c = Channel(cid=7, src=2, dst=5, vc=1, label="cX")
    assert c.endpoints == (2, 5)
    assert "cX" in repr(c)
    unlabeled = Channel(cid=8, src=0, dst=1)
    assert "c8" in repr(unlabeled)


def test_meta_not_part_of_identity():
    a = Channel(cid=0, src=0, dst=1, meta={"dim": 0})
    b = Channel(cid=0, src=0, dst=1, meta={"dim": 5})
    assert a == b
    assert a.meta["dim"] == 0
