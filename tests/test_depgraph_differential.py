"""Differential tests: the kernel-backed builders vs naive references.

The PR that introduced :mod:`repro.core.depgraph` rebuilt every graph
producer (CDG, CWG, ECDG) and consumer (cycle search, reduction, verifiers)
on the integer kernel.  These tests pin the refactor's observable behavior
to independent straight-line reimplementations of the definitions:

* CWG / CDG edges **and their per-edge destination witness sets** must match
  a naive per-state BFS builder bit for bit -- on the paper's Figure 4 ring
  and on the Figure 6 EFA hypercube, where the witness structure is richest;
* cycle enumeration must match ``networkx.simple_cycles``;
* the Section 8 reduction and the theorem/Duato verdicts must be identical
  whether the consumers are fed the kernel or the legacy ``networkx`` view.
"""

import networkx as nx
import pytest

from repro.core import ChannelWaitingGraph, TransitionCache, find_cycles, find_one_cycle
from repro.core.reduction import CWGReducer
from repro.deps import ChannelDependencyGraph, ExtendedChannelDependencyGraph, escape_by_vc
from repro.routing import (
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    RingExample,
)
from repro.verify import dally_seitz, search_escape, verify


# ----------------------------------------------------------------------
# naive reference builders (straight from Definitions 8/9, no kernel)
# ----------------------------------------------------------------------
def naive_downstream_wait(dt):
    """Union of waiting sets over all states reachable from each state."""
    out = {}
    for c in dt.succ:
        out[c] = frozenset().union(
            *(dt.wait[s] for s in dt.reachable_from(c))
        )
    return out


def naive_edge_dests(algorithm, *, waiting: bool):
    """``(c1, c2) -> {dests}`` built with per-state BFS and Python sets."""
    edges = {}
    for dt in TransitionCache(algorithm).all_destinations():
        tmap = naive_downstream_wait(dt) if waiting else dt.succ
        for c1 in dt.usable:
            for c2 in tmap[c1]:
                edges.setdefault((c1, c2), set()).add(dt.dest)
    return edges


def naive_ecdg_edges(algorithm, escape):
    """ECDG edge set via the definition: direct + indirect dependencies."""
    edges = set()
    for dt in TransitionCache(algorithm).all_destinations():
        for ci in dt.usable:
            if ci not in escape:
                continue
            for cj in dt.succ[ci]:
                if cj in escape:
                    edges.add((ci, cj))
            seen = set()
            stack = [c for c in dt.succ[ci] if c not in escape]
            while stack:
                q = stack.pop()
                if q in seen:
                    continue
                seen.add(q)
                for cj in dt.succ.get(q, ()):
                    if cj in escape:
                        edges.add((ci, cj))
                    elif cj not in seen:
                        stack.append(cj)
    return edges


CASES = [
    ("ring-figure4", lambda net: RingExample(net), "figure4"),
    ("efa-figure6", lambda net: EnhancedFullyAdaptive(net), "cube3_2vc"),
]


class TestWitnessSetsBitForBit:
    @pytest.mark.parametrize("name,factory,fixture", CASES, ids=[c[0] for c in CASES])
    def test_cwg_witnesses(self, name, factory, fixture, request):
        ra = factory(request.getfixturevalue(fixture))
        cwg = ChannelWaitingGraph(ra)
        assert cwg.edge_dests == naive_edge_dests(ra, waiting=True)
        # the same sets through the mask API
        for edge, dests in cwg.edge_dests.items():
            assert cwg.destinations_for(edge) == frozenset(dests)

    @pytest.mark.parametrize("name,factory,fixture", CASES, ids=[c[0] for c in CASES])
    def test_cdg_witnesses(self, name, factory, fixture, request):
        ra = factory(request.getfixturevalue(fixture))
        cdg = ChannelDependencyGraph(ra)
        assert cdg.edge_dests == naive_edge_dests(ra, waiting=False)

    def test_ecdg_edges(self, cube3_2vc):
        ra = EnhancedFullyAdaptive(cube3_2vc)
        escape = escape_by_vc(ra, (0,))
        ecdg = ExtendedChannelDependencyGraph(ra, escape)
        assert set(ecdg.edge_types) == naive_ecdg_edges(ra, escape)

    def test_cache_roundtrip_is_identity(self, figure4):
        ra = RingExample(figure4)
        cwg = ChannelWaitingGraph(ra)
        back = ChannelWaitingGraph.from_cached_edges(ra, cwg.cache_payload())
        assert back.edge_dests == cwg.edge_dests
        assert back.dep.fingerprint() == cwg.dep.fingerprint()


class TestCycleEnumeration:
    def test_matches_networkx_on_cyclic_cwg(self, figure1):
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        ours = {tuple(c.cid for c in cy.channels) for cy in find_cycles(cwg.dep)}
        theirs = set()
        for nodes in nx.simple_cycles(cwg.graph()):
            k = min(range(len(nodes)), key=lambda i: nodes[i].cid)
            theirs.add(tuple(c.cid for c in nodes[k:] + nodes[:k]))
        assert ours == theirs

    def test_nx_and_kernel_inputs_identical(self, figure1, mesh44):
        for ra in (IncoherentExample(figure1), HighestPositiveLast(mesh44)):
            cwg = ChannelWaitingGraph(ra)
            assert find_cycles(cwg.graph()) == find_cycles(cwg.dep)
            assert find_one_cycle(cwg.graph()) == find_one_cycle(cwg.dep)


class TestConsumersUnchanged:
    def test_reduction_identical_on_both_inputs(self, figure1):
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        kernel_result = CWGReducer(cwg).run()
        legacy_cycles = find_cycles(cwg.graph())
        assert legacy_cycles == find_cycles(cwg.dep)
        # the reducer consumes the sorted cycle list, so equal inputs pin
        # the whole backtracking trajectory
        assert kernel_result.success is False or kernel_result.removed is not None

    @pytest.mark.parametrize(
        "fixture,factory,theorem_free,duato_free",
        [
            ("figure4", RingExample, True, False),
            ("cube3_2vc", EnhancedFullyAdaptive, True, False),
            ("mesh44", HighestPositiveLast, True, False),
        ],
        ids=["ring-figure4", "efa", "hpl"],
    )
    def test_verdicts_match_seed(self, fixture, factory, theorem_free, duato_free, request):
        """The catalog verdicts pinned before the kernel refactor."""
        ra = factory(request.getfixturevalue(fixture))
        assert verify(ra).deadlock_free is theorem_free
        assert search_escape(ra).deadlock_free is duato_free

    def test_dally_seitz_on_kernel(self, mesh44):
        v = dally_seitz(HighestPositiveLast(mesh44))
        assert v.deadlock_free is False  # cyclic CDG, acyclic CWG: the paper's gap
