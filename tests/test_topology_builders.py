"""Tests for the topology generators (mesh, torus, hypercube, examples)."""

import pytest

from repro.topology import (
    FIGURE1_LABELS,
    build_figure1_network,
    build_figure4_ring,
    build_hypercube,
    build_mesh,
    build_mesh3d,
    build_ring,
    build_sparse_pillar_3d,
    build_torus,
    default_pillars,
    hamming_distance,
    differing_dimensions,
)


class TestMesh:
    def test_channel_count_2d(self, mesh44):
        # 4x4 mesh: 2*4*3 = 24 bidirectional physical links, 48 channels
        assert len(mesh44.link_channels) == 48
        assert mesh44.num_nodes == 16

    def test_channel_count_3d(self, mesh332):
        # links: per dim: (d-1) * prod(others); x: 2*3*2=12, y: 2*3*2=12, z: 1*9=9 => 33*2
        assert len(mesh332.link_channels) == 66

    def test_vcs(self):
        m = build_mesh((3, 3), num_vcs=2)
        assert m.max_vcs() == 2
        assert len(m.channels_between(0, 1)) == 2

    def test_metadata(self, mesh33):
        c = mesh33.channels_between(0, 1)[0]
        assert c.meta["dim"] == 0 and c.meta["sign"] == 1
        c = mesh33.channels_between(4, 1)[0]
        assert c.meta["dim"] == 1 and c.meta["sign"] == -1

    def test_no_wraparound(self, mesh33):
        assert not mesh33.channels_between(2, 0)
        assert not mesh33.channels_between(6, 0)

    def test_border_nodes_have_fewer_channels(self, mesh33):
        assert len(mesh33.out_channels(0)) == 2  # corner
        assert len(mesh33.out_channels(4)) == 4  # center

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            build_mesh(())
        with pytest.raises(ValueError):
            build_mesh((0, 3))
        with pytest.raises(ValueError):
            build_mesh((3, 3), num_vcs=0)

    def test_length_one_dimension(self):
        m = build_mesh((3, 1))
        assert m.num_nodes == 3
        assert len(m.link_channels) == 4


class TestTorus:
    def test_wrap_channels_marked(self):
        t = build_torus((4,))
        wraps = [c for c in t.link_channels if c.meta.get("wrap")]
        # positive wrap at 3->0 and negative wrap at 0->3
        assert {(c.src, c.dst) for c in wraps} == {(3, 0), (0, 3)}

    def test_radix2_single_channel_pair(self):
        t = build_torus((2, 2))
        assert len(t.channels_between(0, 1)) == 1  # not doubled

    def test_radix1_contributes_nothing(self):
        t = build_torus((4, 1))
        assert t.num_nodes == 4
        assert all(c.meta["dim"] == 0 for c in t.link_channels)

    def test_4x4_channel_count(self):
        t = build_torus((4, 4))
        # every node has 4 out-channels (one per direction per dim)
        assert len(t.link_channels) == 16 * 4

    def test_unidirectional_ring(self):
        r = build_ring(5, bidirectional=False)
        assert all(c.dst == (c.src + 1) % 5 for c in r.link_channels)
        assert r.meta["unidirectional"]

    def test_bidirectional_ring_is_torus(self):
        r = build_ring(5)
        assert r.meta["topology"] == "torus"

    def test_invalid(self):
        with pytest.raises(ValueError):
            build_torus((0,))
        with pytest.raises(ValueError):
            build_ring(1)


class TestHypercube:
    def test_structure(self, cube3):
        assert cube3.num_nodes == 8
        assert len(cube3.link_channels) == 8 * 3
        for src in cube3.nodes:
            for c in cube3.out_channels(src):
                assert hamming_distance(c.src, c.dst) == 1

    def test_sign_metadata(self, cube3):
        c = cube3.channels_between(0, 1)[0]
        assert c.meta["sign"] == 1  # flips 0 -> 1
        c = cube3.channels_between(1, 0)[0]
        assert c.meta["sign"] == -1

    def test_coords_are_bits(self, cube3):
        assert cube3.coord(5) == (1, 0, 1)

    def test_differing_dimensions(self):
        assert differing_dimensions(0b101, 0b011) == [1, 2]
        assert differing_dimensions(7, 7) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            build_hypercube(0)


class TestMesh3D:
    def test_dense_structure(self):
        net = build_mesh3d((3, 3, 3), num_vcs=2)
        assert net.num_nodes == 27
        # per dim: 2*(3-1)*9 = 36 directed links, x2 VCs
        assert len(net.link_channels) == 3 * 36 * 2
        assert net.meta["topology"] == "mesh3d"
        assert net.max_vcs() == 2

    def test_node_numbering_is_mixed_radix(self):
        net = build_mesh3d((3, 3, 3))
        assert net.coord(0) == (0, 0, 0)
        assert net.coord(1 + 3 * 2 + 9 * 1) == (1, 2, 1)  # dim 0 fastest

    def test_channel_metadata(self):
        net = build_mesh3d((3, 3, 3), num_vcs=1)
        up = net.channels_between(0, 9)[0]  # +z from (0,0,0)
        assert up.meta["dim"] == 2 and up.meta["sign"] == 1
        down = net.channels_between(9, 0)[0]
        assert down.meta["sign"] == -1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            build_mesh3d((3, 3))
        with pytest.raises(ValueError):
            build_mesh3d((3, 0, 3))
        with pytest.raises(ValueError):
            build_mesh3d((3, 3, 3), num_vcs=0)


class TestSparsePillar3D:
    def test_z_links_only_at_pillars(self):
        net = build_sparse_pillar_3d((3, 3, 3), pillars=[(0, 0), (1, 0), (2, 0)],
                                     num_vcs=2)
        z_cols = {(net.coord(c.src)[0], net.coord(c.src)[1])
                  for c in net.link_channels if c.meta["dim"] == 2}
        assert z_cols == {(0, 0), (1, 0), (2, 0)}
        # xy planes stay fully connected: same in-plane channels as dense
        dense = build_mesh3d((3, 3, 3), num_vcs=2)
        plane = [c for c in net.link_channels if c.meta["dim"] != 2]
        assert len(plane) == len([c for c in dense.link_channels
                                  if c.meta["dim"] != 2])
        assert net.meta["pillars"] == ((0, 0), (1, 0), (2, 0))
        assert net.meta["topology"] == "sparse-pillar"

    def test_pillars_are_sorted_and_deduplicated(self):
        net = build_sparse_pillar_3d((3, 3, 3), pillars=[(2, 2), (0, 0), (2, 2)])
        assert net.meta["pillars"] == ((0, 0), (2, 2))

    def test_default_pillars_checkerboard(self):
        kept = default_pillars((3, 3, 3))
        assert (0, 0) in kept
        assert all((x + y) % 2 == 0 for x, y in kept)
        net = build_sparse_pillar_3d((3, 3, 3))
        assert net.meta["pillars"] == kept

    def test_sparse_distances_exceed_manhattan(self):
        # with only the (0,0) pillar, (2,2,0)->(2,2,1) must detour through it
        net = build_sparse_pillar_3d((3, 3, 3), pillars=[(0, 0)], num_vcs=1)
        src = net.node_at((2, 2, 0))
        dst = net.node_at((2, 2, 1))
        dist = net.shortest_distances()
        assert dist[src][dst] == 9  # 4 in-plane + 1 up + 4 back, not 1

    def test_invalid_pillars(self):
        with pytest.raises(ValueError, match="at least one"):
            build_sparse_pillar_3d((3, 3, 3), pillars=[])
        with pytest.raises(ValueError, match="outside"):
            build_sparse_pillar_3d((3, 3, 3), pillars=[(3, 0)])


class TestExamples:
    def test_figure1_labels(self, figure1):
        for label in FIGURE1_LABELS:
            c = figure1.channel_by_label(label)
            assert c.is_link

    def test_figure1_structure(self, figure1):
        assert figure1.channel_by_label("cA1").endpoints == (1, 2)
        assert figure1.channel_by_label("cB2").endpoints == (2, 1)
        assert figure1.channel_by_label("cH0").endpoints == (0, 1)
        assert figure1.channel_by_label("cL3").endpoints == (3, 2)
        assert len(figure1.link_channels) == 8

    def test_figure4_structure(self, figure4):
        assert figure4.num_nodes == 10
        assert len(figure4.channels_between(8, 9)) == 5  # 4 VCs + cA
        assert len(figure4.channels_between(0, 1)) == 4
        cA = figure4.channel_by_label("cA")
        assert cA.endpoints == (8, 9) and cA.vc == 4
        wrap = figure4.channels_between(9, 0)
        assert all(c.meta["wrap"] for c in wrap)

    def test_figure4_validates_extra_link(self):
        with pytest.raises(ValueError):
            build_figure4_ring(extra_link=(3, 7))
        with pytest.raises(ValueError):
            build_figure4_ring(2)
