"""Property-based tests for the mixed-radix grid coordinate machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import all_coords, node_coord, node_id, offset_coord

dims_strategy = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4)


@given(dims_strategy, st.data())
def test_roundtrip(dims, data):
    total = 1
    for d in dims:
        total *= d
    nid = data.draw(st.integers(min_value=0, max_value=total - 1))
    assert node_id(node_coord(nid, dims), dims) == nid


@given(dims_strategy)
def test_all_coords_in_id_order(dims):
    coords = list(all_coords(dims))
    assert [node_id(c, dims) for c in coords] == list(range(len(coords)))
    assert len(set(coords)) == len(coords)


def test_dimension_zero_is_fastest_varying():
    # matches the hypercube convention: bit i of the id = coordinate i
    assert node_id((1, 0, 0), (2, 2, 2)) == 1
    assert node_id((0, 1, 0), (2, 2, 2)) == 2
    assert node_id((0, 0, 1), (2, 2, 2)) == 4


def test_node_id_validates():
    with pytest.raises(ValueError):
        node_id((3,), (3,))
    with pytest.raises(ValueError):
        node_id((0, 0), (3,))


def test_node_coord_validates():
    with pytest.raises(ValueError):
        node_coord(9, (3, 3))


@given(dims_strategy, st.data())
def test_offset_wrap_and_mesh(dims, data):
    total = 1
    for d in dims:
        total *= d
    nid = data.draw(st.integers(min_value=0, max_value=total - 1))
    dim = data.draw(st.integers(min_value=0, max_value=len(dims) - 1))
    step = data.draw(st.sampled_from([-1, 1]))
    coord = node_coord(nid, dims)
    wrapped = offset_coord(coord, dim, step, dims, wrap=True)
    assert wrapped is not None
    assert wrapped[dim] == (coord[dim] + step) % dims[dim]
    clipped = offset_coord(coord, dim, step, dims, wrap=False)
    if 0 <= coord[dim] + step < dims[dim]:
        assert clipped == wrapped or dims[dim] == 1
    else:
        assert clipped is None
