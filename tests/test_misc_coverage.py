"""Coverage for the remaining public surface: relation helpers, config
knobs, stats warmup, and cross-cutting invariants."""

import networkx as nx
import pytest

from repro.core import ChannelWaitingGraph
from repro.deps import ChannelDependencyGraph, escape_by_vc
from repro.routing import (
    CATALOG,
    DimensionOrderMesh,
    HighestPositiveLast,
    RestrictedWaiting,
    RoutingError,
    WaitPolicy,
    as_cnd,
    make,
)
from repro.sim import BernoulliTraffic, ScriptedTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh


class TestRelationHelpers:
    def test_describe_and_repr(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        assert "e-cube-mesh" in ra.describe()
        assert "wait=specific" in ra.describe()
        assert "DimensionOrderMesh" in repr(ra)

    def test_as_cnd_identity(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        assert as_cnd(ra) is ra

    def test_restricted_waiting_wrapper(self, mesh33):
        inner = HighestPositiveLast(mesh33)
        wrapped = RestrictedWaiting(inner, wait_policy=WaitPolicy.ANY)
        inj = mesh33.injection_channel(0)
        assert wrapped.route(inj, 0, 8) == inner.route(inj, 0, 8)
        assert wrapped.wait_policy is WaitPolicy.ANY
        assert wrapped.form == inner.form

    def test_unfrozen_network_rejected(self):
        from repro.topology import Network

        net = Network()
        net.add_nodes(2)
        net.add_channel(0, 1)
        net.add_channel(1, 0)
        with pytest.raises(RoutingError, match="frozen"):
            DimensionOrderMesh(net)

    def test_check_route_set_validates(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        good = mesh33.out_channels(0)
        assert ra.check_route_set(good, 0) == frozenset(good)
        with pytest.raises(RoutingError):
            ra.check_route_set(mesh33.out_channels(4), 0)
        with pytest.raises(RoutingError):
            ra.check_route_set([mesh33.injection_channel(0)], 0)

    def test_route_from_source(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        inj = mesh33.injection_channel(0)
        assert ra.route_from_source(0, 8) == ra.route(inj, 0, 8)


class TestSimConfigKnobs:
    def test_wait_policy_override(self, mesh33):
        ra = HighestPositiveLast(mesh33)  # SPECIFIC natively
        sim = WormholeSimulator(
            ra, ScriptedTraffic([]), SimConfig(wait_policy_override=WaitPolicy.ANY)
        )
        assert sim.wait_policy is WaitPolicy.ANY

    def test_ejection_rate(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        lat = {}
        for rate in (1, 4):
            sim = WormholeSimulator(
                ra, ScriptedTraffic([(0, 0, 1, 12)]),
                SimConfig(ejection_rate=rate, buffer_depth=8),
            )
            sim.run(2)
            assert sim.drain()
            lat[rate] = sim.messages[0].latency
        assert lat[4] <= lat[1]

    def test_prefer_minimal_off_uses_cid_order(self, mesh33):
        ra = HighestPositiveLast(mesh33)
        sim = WormholeSimulator(
            ra, ScriptedTraffic([(0, 8, 0, 4)]),
            SimConfig(prefer_minimal=False),
        )
        sim.run(2)
        assert sim.drain()  # still delivers, just via cid preference

    def test_deadlock_check_disabled(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.2, length=4, stop_at=100),
            SimConfig(deadlock_check_interval=0),
        )
        sim.run(200)
        assert sim.deadlock is None


class TestStatsWarmup:
    def test_warmup_excludes_early_messages(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(
            ra, ScriptedTraffic([(0, 0, 8, 4), (50, 0, 8, 4)]), SimConfig()
        )
        sim.run(60)
        sim.drain()
        all_msgs = sim.stats.summary(cycles=sim.cycle, num_nodes=9, warmup=0)
        late_only = sim.stats.summary(cycles=sim.cycle, num_nodes=9, warmup=10)
        assert all_msgs.messages_delivered == 2
        assert late_only.messages_delivered == 1


class TestCrossCuttingInvariants:
    @pytest.mark.parametrize(
        "name", ["e-cube-mesh", "negative-first", "highest-positive-last"]
    )
    def test_cwg_within_cdg_closure(self, name, mesh33):
        """Section 5: every waiting dependency is a usage dependency."""
        ra = make(name, mesh33)
        closure = nx.transitive_closure(ChannelDependencyGraph(ra).graph())
        for (a, b) in ChannelWaitingGraph(ra).edges:
            assert closure.has_edge(a, b)

    def test_escape_by_vc(self, mesh33_2vc):
        from repro.routing import DuatoFullyAdaptiveMesh

        ra = DuatoFullyAdaptiveMesh(mesh33_2vc)
        esc = escape_by_vc(ra, (1,))
        assert esc and all(c.vc == 1 for c in esc)
        both = escape_by_vc(ra, (0, 1))
        assert len(both) == len(mesh33_2vc.link_channels)
