"""The paper's theorems, end to end (the headline results)."""

import pytest

from repro.routing import (
    DimensionOrderMesh,
    DuatoFullyAdaptiveMesh,
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    RelaxedEFA,
    RingExample,
    UnrestrictedMinimal,
)
from repro.topology import build_hypercube, build_mesh
from repro.verify import theorem1, theorem2, theorem3, verify


class TestTheorem1:
    def test_sufficiency_on_acyclic_cwg(self, mesh33):
        v = theorem1(DimensionOrderMesh(mesh33))
        assert v and not v.necessary_and_sufficient

    def test_inconclusive_on_cyclic_cwg(self, figure1):
        v = theorem1(IncoherentExample(figure1))
        assert not v and "cycle" in v.reason


class TestTheorem4_HPL:
    @pytest.mark.parametrize("dims", [(3, 3), (4, 4), (3, 3, 2)])
    def test_deadlock_free(self, dims):
        v = verify(HighestPositiveLast(build_mesh(dims)))
        assert v.deadlock_free and v.necessary_and_sufficient

    def test_wait_any_variant_deadlock_free(self, mesh33):
        v = verify(HighestPositiveLast(mesh33, wait_any=True))
        assert v.deadlock_free


class TestTheorem5_EFA:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_deadlock_free(self, n):
        v = verify(EnhancedFullyAdaptive(build_hypercube(n, num_vcs=2)))
        assert v.deadlock_free

    def test_wait_any_variant(self, cube3_2vc):
        v = verify(EnhancedFullyAdaptive(cube3_2vc, wait_any=True))
        assert v.deadlock_free


class TestTheorem6_Relaxations:
    def test_every_single_relaxation_deadlocks(self, cube3_2vc):
        """Theorem 6: no restriction of EFA can be relaxed."""
        n = 3
        for mu in range(n):
            for j in range(mu + 1, n):
                v = verify(RelaxedEFA(cube3_2vc, pair=(mu, j)))
                assert not v.deadlock_free, f"pair ({mu},{j}) should deadlock"
                assert "True Cycle" in v.reason

    def test_witness_configuration_is_definition12(self, cube3_2vc):
        v = verify(RelaxedEFA(cube3_2vc, pair=(0, 1)))
        cfg = v.evidence["deadlock_configuration"]
        n = len(cfg)
        assert n >= 2
        for i in range(n):
            # message i waits on a channel held by message i+1
            assert cfg.waits_on[i] in cfg.held[(i + 1) % n]
        assert "holds" in cfg.describe()

    def test_full_relaxation_deadlocks(self, cube3_2vc):
        assert not verify(RelaxedEFA(cube3_2vc))


class TestIncoherentExample:
    def test_wait_any_deadlock_free_by_theorem3(self, figure1):
        v = verify(IncoherentExample(figure1))
        assert v.deadlock_free and v.condition == "Theorem 3"
        red = v.evidence["reduction"]
        assert len(red.true_cycles) == 5 and len(red.false_cycles) == 3

    def test_wait_specific_deadlocks_by_theorem2(self, figure1):
        v = verify(IncoherentExample(figure1, wait_any=False))
        assert not v.deadlock_free and v.condition == "Theorem 2"


class TestRingExample:
    def test_paper_algorithm_deadlock_free(self, figure4):
        v = verify(RingExample(figure4))
        assert v.deadlock_free
        assert "False Resource" in v.reason

    def test_noflip_strawman_deadlocks(self, figure4):
        v = verify(RingExample(figure4, flip_class=False))
        assert not v.deadlock_free


class TestNegativeFixtures:
    def test_unrestricted_wait_any(self, mesh33):
        v = verify(UnrestrictedMinimal(mesh33))
        assert not v.deadlock_free and v.condition == "Theorem 3"

    def test_spanning_message_deadlock_not_certified(self):
        """Regression for the fuzz-found Theorem 3 soundness hole.

        The shipped reproducer (``corpus/real-29bbf8ee95a6.json``) deadlocks
        under wait-on-any with two messages each spanning two channels of
        the cycle; every single-message CWG cycle is breakable, so the
        Section 8 edge reduction certifies a CWG' whose wait-connectivity
        test only protects immediate wait edges.  The theorem checker must
        never claim freedom here -- the deadlock survives because both
        messages already *acquired* the channels whose edges were removed.
        """
        import json
        from pathlib import Path

        from repro.fuzz.corpus import CorpusEntry

        path = Path(__file__).resolve().parents[1] / "corpus" / "real-29bbf8ee95a6.json"
        entry = CorpusEntry.from_json(json.loads(path.read_text()))
        v = verify(entry.table.build())
        # the any-wait blocked-configuration search settles it authoritatively
        assert not v.deadlock_free and v.necessary_and_sufficient

    def test_unrestricted_wait_specific(self, mesh33):
        v = verify(UnrestrictedMinimal(mesh33, wait_any=False))
        assert not v.deadlock_free and v.condition == "Theorem 2"


class TestEnumeratedVariant:
    def test_enumerated_agrees_on_figure1(self, figure1):
        ra = IncoherentExample(figure1, wait_any=False)
        a = theorem2(ra)
        b = theorem2(ra, enumerate_cycles=True)
        assert a.deadlock_free == b.deadlock_free == False
        assert b.evidence["cycles"] == 8

    def test_enumerated_positive(self, mesh33):
        v = theorem2(DimensionOrderMesh(mesh33), enumerate_cycles=True)
        assert v.deadlock_free


class TestVerdict:
    def test_summary_format(self, mesh33):
        v = verify(DimensionOrderMesh(mesh33))
        s = v.summary()
        assert "DEADLOCK-FREE" in s and "Theorem 2" in s
        assert str(v) == s
        assert bool(v)
