"""The NumPy kernels must be byte-identical to the pure-Python reference.

Three layers of evidence, each parametrized over both backends:

* the golden-digest matrix (a representative subset -- the full 18-case
  matrix runs in ``test_sim_determinism.py`` under the ambient backend and
  in CI's ``perf-smoke`` job under each forced backend);
* Hypothesis: random small simulations, run once per backend with the
  backend forced through ``SimConfig.backend``, must agree flit-for-flit
  (same ``SimStats.digest``);
* the checker's batched edge-collection: CWG/CDG kernels and the
  mask-vs-frozenset adapter views must agree exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _kernel
from repro.core.cwg import ChannelWaitingGraph
from repro.core.depgraph import bits
from repro.deps.cdg import ChannelDependencyGraph
from repro.routing import CATALOG, make
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_hypercube, build_mesh
from tests import golden_matrix

BACKENDS = ("pure", "numpy")

#: golden cases covering every behavior axis the kernels touch: adaptive vs
#: deterministic routing, specific waiting, faults, non-default selection,
#: buffer depth 2, ejection rate 2, and all three topologies
PARITY_CASES = (
    "duato-mesh-u17",
    "duato-mesh-depth2",
    "duato-mesh-eject2",
    "duato-mesh-lowvc",
    "duato-torus-u7",
    "ecube-mesh-u42",
    "efa-cube-u17",
    "hpl-specific-u11",
    "hpl-fault-reroute",
    "west-first-t9",
)


def _force(monkeypatch, backend: str) -> None:
    if backend == "numpy" and not _kernel.HAVE_NUMPY:
        pytest.skip("numpy not installed")
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    monkeypatch.setenv("REPRO_BACKEND", backend)
    # force the engine's size-based auto-selection too: tiny golden
    # networks would otherwise stay pure under both parametrizations
    monkeypatch.setenv("REPRO_SIM_NUMPY_MIN_CHANNELS", "0")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", PARITY_CASES)
def test_golden_digest_under_backend(case, backend, monkeypatch):
    _force(monkeypatch, backend)
    recorded = golden_matrix.load_fixture()
    assert golden_matrix.run_case(case) == recorded[case]


# ----------------------------------------------------------------------
# Hypothesis: random small sims agree under both backends
# ----------------------------------------------------------------------
_SIM_AXES = st.tuples(
    st.sampled_from(["duato-mesh", "e-cube-mesh", "west-first", "duato-hypercube"]),
    st.integers(min_value=0, max_value=2**16),   # seed
    st.integers(min_value=5, max_value=35),      # rate (percent)
    st.sampled_from(["uniform", "transpose", "bit-reverse"]),
    st.integers(min_value=2, max_value=4),       # buffer depth
)


def _digest(algorithm: str, seed: int, rate: float, pattern: str,
            depth: int, backend: str) -> str:
    entry = CATALOG[algorithm]
    if entry.family == "mesh":
        net = build_mesh((4, 4), num_vcs=entry.min_vcs)
    else:
        net = build_hypercube(3, num_vcs=entry.min_vcs)
    ra = make(algorithm, net)
    traffic = BernoulliTraffic(net, rate=rate, pattern=pattern, length=5, stop_at=120)
    config = SimConfig(
        seed=seed, buffer_depth=depth, deadlock_check_interval=16, backend=backend,
    )
    sim = WormholeSimulator(ra, traffic, config)
    sim.run(150)
    sim.drain(3000)
    return sim.stats.digest()


@pytest.mark.skipif(not _kernel.HAVE_NUMPY, reason="numpy not installed")
@settings(max_examples=20, deadline=None)
@given(_SIM_AXES)
def test_random_sim_digests_agree_across_backends(axes):
    algorithm, seed, rate_pct, pattern, depth = axes
    if pattern == "transpose" and CATALOG[algorithm].family != "mesh":
        pattern = "uniform"
    rate = rate_pct / 100.0
    pure = _digest(algorithm, seed, rate, pattern, depth, "pure")
    vec = _digest(algorithm, seed, rate, pattern, depth, "numpy")
    assert pure == vec


# ----------------------------------------------------------------------
# checker: batched edge collection and adapter views
# ----------------------------------------------------------------------
_CHECKER_ALGOS = ("duato-mesh", "highest-positive-last", "enhanced-fully-adaptive")


def _build_graphs(algorithm: str):
    entry = CATALOG[algorithm]
    if entry.family == "mesh":
        net = build_mesh((4, 4), num_vcs=entry.min_vcs)
    else:
        net = build_hypercube(3, num_vcs=entry.min_vcs)
    ra = make(algorithm, net)
    cwg = ChannelWaitingGraph(ra)
    cdg = ChannelDependencyGraph(ra, transitions=cwg.transitions)
    return cwg, cdg


@pytest.mark.skipif(not _kernel.HAVE_NUMPY, reason="numpy not installed")
@pytest.mark.parametrize("algorithm", _CHECKER_ALGOS)
def test_edge_collection_agrees_across_backends(algorithm, monkeypatch):
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    monkeypatch.setenv("REPRO_BACKEND", "pure")
    cwg_p, cdg_p = _build_graphs(algorithm)
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    cwg_n, cdg_n = _build_graphs(algorithm)
    assert list(cwg_p.dep.iter_edges()) == list(cwg_n.dep.iter_edges())
    assert list(cdg_p.dep.iter_edges()) == list(cdg_n.dep.iter_edges())
    assert cwg_p.dep.fingerprint() == cwg_n.dep.fingerprint()


@pytest.mark.parametrize("backend", BACKENDS)
def test_mask_views_match_frozenset_adapters(backend, monkeypatch):
    _force(monkeypatch, backend)
    cwg, _ = _build_graphs("duato-mesh")
    tc = cwg.transitions
    net = tc.algorithm.network
    for dest in (0, 5, 12):
        dt = tc[dest]
        dw_masks = dt.downstream_wait_masks
        up_masks = dt.upstream_masks
        for cid in dt.usable_cids:
            assert {c.cid for c in dt.downstream_wait[net.channel(cid)]} \
                == set(bits(dw_masks[cid]))
            assert {c.cid for c in dt.upstream[net.channel(cid)]} \
                == set(bits(up_masks[cid]))
