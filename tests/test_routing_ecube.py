"""Dimension-order routing: the nonadaptive baseline."""

import pytest

from repro.routing import (
    DimensionOrderHypercube,
    DimensionOrderMesh,
    RoutingError,
    count_paths,
    is_coherent,
    is_connected,
    is_minimal,
)
from repro.topology import build_hypercube, build_mesh
from repro.verify import is_nonadaptive


@pytest.fixture(scope="module")
def ecm(mesh33):
    return DimensionOrderMesh(mesh33)


class TestMesh:
    def test_single_path_everywhere(self, ecm, mesh33):
        for s in mesh33.nodes:
            for d in mesh33.nodes:
                if s != d:
                    assert count_paths(ecm, s, d) == 1

    def test_dimension_order(self, ecm, mesh33):
        # 0=(0,0) -> 8=(2,2): first hop corrects dimension 0 (east)
        out = ecm.route_from_source(0, 8)
        (c,) = out
        assert c.meta["dim"] == 0 and c.meta["sign"] == 1

    def test_y_only(self, ecm, mesh33):
        out = ecm.route_from_source(1, 7)  # (1,0) -> (1,2)
        (c,) = out
        assert c.meta["dim"] == 1 and c.meta["sign"] == 1

    def test_delivered_empty(self, ecm):
        assert ecm.route_from_source(3, 3) == frozenset()

    def test_nonadaptive(self, ecm):
        assert is_nonadaptive(ecm)

    def test_connected_minimal_coherent(self, ecm):
        assert is_connected(ecm)
        assert is_minimal(ecm)
        assert is_coherent(ecm)

    def test_all_vcs_variant(self):
        m = build_mesh((3, 3), num_vcs=2)
        ra = DimensionOrderMesh(m, vc=None)
        assert len(ra.route_from_source(0, 2)) == 2  # both VCs of the link

    def test_requires_mesh(self, torus44_3vc):
        with pytest.raises(RoutingError):
            DimensionOrderMesh(torus44_3vc)


class TestHypercube:
    def test_lowest_bit_first(self, cube3):
        ra = DimensionOrderHypercube(cube3)
        (c,) = ra.route_from_source(0b000, 0b110)
        assert c.dst == 0b010
        (c,) = ra.route_from_source(0b010, 0b110)
        assert c.dst == 0b110

    def test_matches_mesh_variant(self, cube3):
        # a hypercube is a (2,2,2) mesh: both e-cubes must agree
        ra_h = DimensionOrderHypercube(cube3)
        ra_m = DimensionOrderMesh(cube3)
        for s in cube3.nodes:
            for d in cube3.nodes:
                if s != d:
                    assert ra_h.route_nd(s, d) == ra_m.route_nd(s, d)

    def test_single_path_count(self, cube3):
        ra = DimensionOrderHypercube(cube3)
        assert all(
            count_paths(ra, s, d) == 1
            for s in cube3.nodes for d in cube3.nodes if s != d
        )

    def test_requires_hypercube(self, mesh33):
        with pytest.raises(RoutingError):
            DimensionOrderHypercube(mesh33)
