"""The fuzz case generators: determinism, validity, and family coverage."""

from __future__ import annotations

import pytest

from repro.fuzz.generators import (
    DEFAULT_FAMILIES,
    FAMILIES,
    CaseSpec,
    build_case,
    case_stream,
    delete_channels,
    faulty_variant,
    stable_bits,
)
from repro.routing.relation import RoutingAlgorithm, WaitPolicy
from repro.topology import build_mesh, build_torus
from repro.topology.network import NetworkError

from tests.generative import SESSION_SEED

MASTER = stable_bits(SESSION_SEED, "fuzz-generator-tests")


def test_case_stream_is_deterministic_and_round_robin():
    stream = case_stream(MASTER)
    a = [next(stream) for _ in range(14)]
    stream = case_stream(MASTER)
    b = [next(stream) for _ in range(14)]
    assert a == b
    assert [spec.family for spec in a[: len(DEFAULT_FAMILIES)]] == list(DEFAULT_FAMILIES)


def test_case_stream_start_offset_resumes_mid_stream():
    stream = case_stream(MASTER)
    full = [next(stream) for _ in range(10)]
    resumed = case_stream(MASTER, start=4)
    assert [next(resumed) for _ in range(6)] == full[4:]


def test_case_stream_rejects_unknown_family():
    with pytest.raises(ValueError, match="unknown fuzz families"):
        next(case_stream(MASTER, families=("no-such-family",)))


def test_spec_json_round_trip():
    spec = CaseSpec("irregular", 123456789)
    assert CaseSpec.from_json(spec.to_json()) == spec
    assert spec.key() == "irregular:123456789"


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_every_family_builds_valid_cases(family):
    """Each family yields frozen, strongly connected, routable algorithms."""
    for i in range(3):
        seed = stable_bits(MASTER, family, i)
        alg = build_case(CaseSpec(family, seed))
        assert isinstance(alg, RoutingAlgorithm)
        net = alg.network
        assert net.frozen
        # rebuilding from the same spec gives table-identical relations
        again = build_case(CaseSpec(family, seed))
        assert again.network.name == net.name
        for node in net.nodes:
            for dest in net.nodes:
                if node == dest:
                    continue
                c_in = net.injection_channel(node)
                assert {c.cid for c in alg.route(c_in, node, dest)} == \
                       {c.cid for c in again.route(c_in, node, dest)}
                waits = alg.waiting_channels(c_in, node, dest)
                assert waits <= alg.route(c_in, node, dest)
                if alg.wait_policy is WaitPolicy.SPECIFIC and alg.route(c_in, node, dest):
                    assert len(waits) == 1


def test_faulty_variant_preserves_strong_connectivity():
    for i in range(8):
        seed = stable_bits(MASTER, "faulty", i)
        net = faulty_variant(build_torus((4,), num_vcs=1), seed, max_deletions=2)
        assert net.frozen  # freeze() re-checks Definition 1
        assert len(net.link_channels) >= 2  # a 4-ring can lose at most 2 safely


def test_faulty_variant_actually_deletes_on_redundant_topologies():
    base = build_mesh((3, 3), num_vcs=2)
    deleted = [
        len(base.link_channels)
        - len(faulty_variant(base, stable_bits(MASTER, "del", i)).link_channels)
        for i in range(5)
    ]
    assert any(d > 0 for d in deleted)
    assert all(d <= 2 for d in deleted)


def test_delete_channels_rejects_disconnection():
    from repro.fuzz.generators import build_random_network

    ring = build_random_network(3, (), vc_seed=0)  # unidirectional 3-ring
    hop = {c.cid for c in ring.link_channels if c.src == 0}  # all VCs of 0->1
    with pytest.raises(NetworkError):
        delete_channels(ring, hop)
