"""The delta-debugging shrinker: machinery with cheap synthetic predicates,
plus one real end-to-end shrink of a planted-bug discrepancy."""

from __future__ import annotations

import pytest

from repro.fuzz.generators import CaseSpec, build_case, stable_bits
from repro.fuzz.oracles import REAL_STACK
from repro.fuzz.planted import planted_stack
from repro.fuzz.shrink import discrepancy_predicate, shrink
from repro.fuzz.table import TableCase

from tests.generative import SESSION_SEED

MASTER = stable_bits(SESSION_SEED, "fuzz-shrink-tests")


def _big_case() -> TableCase:
    return TableCase.materialize(
        build_case(CaseSpec("faulty-mesh", stable_bits(MASTER, "case")))
    )


def test_shrink_requires_firing_predicate():
    with pytest.raises(ValueError, match="initial case"):
        shrink(_big_case(), lambda case: False)


def test_shrink_to_structural_floor():
    """With a purely structural predicate the shrinker should reach its
    exact floor: the smallest strongly connected case is a 2-cycle."""

    def connected(case: TableCase) -> bool:
        try:
            case.build()
        except Exception:
            return False
        return True

    result = shrink(_big_case(), connected)
    assert result.minimal
    assert result.case.num_nodes == 2
    assert len(result.case.channels) == 2
    assert connected(result.case)


def test_shrink_respects_budget():
    calls = 0

    def counting(case: TableCase) -> bool:
        nonlocal calls
        calls += 1
        try:
            case.build()
        except Exception:
            return False
        return True

    result = shrink(_big_case(), counting, max_evaluations=10)
    assert not result.minimal
    assert calls <= 10 and result.evaluations <= 10


def test_predicate_needs_keys():
    with pytest.raises(ValueError, match="at least one"):
        discrepancy_predicate([])


def test_predicate_rejects_unknown_checker():
    with pytest.raises(ValueError, match="no checker"):
        discrepancy_predicate(["free-vs-deadlock:nope<>sim"], REAL_STACK)


#: a pinned arbitrary-family case the cwg-immediate planted stack catches
CAUGHT_SEED = 3221492823
CAUGHT_KEY = "free-vs-deadlock:theorem<>theorem-enum"


def test_real_shrink_of_planted_discrepancy_reaches_small_reproducer():
    """End-to-end: materialize the caught case, shrink while the planted
    discrepancy persists, land at <= 8 channels (the acceptance floor)."""
    stack = planted_stack("cwg-immediate")
    case = TableCase.materialize(build_case(CaseSpec("arbitrary", CAUGHT_SEED)))
    predicate = discrepancy_predicate([CAUGHT_KEY], stack)
    assert predicate(case)
    result = shrink(case, predicate)
    assert result.minimal
    assert len(result.case.channels) <= 8
    assert predicate(result.case)
    # 1-minimality: no single channel can be removed without losing the bug
    for idx in range(len(result.case.channels)):
        assert not predicate(result.case.remove_channel(idx))
