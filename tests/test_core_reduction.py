"""The Section 8 CWG -> CWG' reduction algorithm."""

import pytest

from repro.core import (
    ChannelWaitingGraph,
    CWGReducer,
    CycleClass,
    CycleClassifier,
    find_cycles,
)
from repro.routing import IncoherentExample, NodeDestRouting, UnrestrictedMinimal, WaitPolicy
from repro.topology import build_ring


@pytest.fixture(scope="module")
def reduced(figure1):
    ra = IncoherentExample(figure1)
    cwg = ChannelWaitingGraph(ra)
    reducer = CWGReducer(cwg)
    return cwg, reducer, reducer.run()


class TestWorkedExample:
    """The paper's Section 8 trace on the incoherent example."""

    def test_success(self, reduced):
        _, _, res = reduced
        assert res.success

    def test_five_true_cycles_resolved_with_five_removals(self, reduced):
        _, _, res = reduced
        assert len(res.true_cycles) == 5
        assert len(res.false_cycles) == 3
        assert len(res.removed) == 5

    def test_no_backtracking_needed(self, reduced):
        _, _, res = reduced
        assert all(s.action == "remove" for s in res.steps)

    def test_cwg_prime_has_only_false_cycles(self, reduced):
        cwg, reducer, res = reduced
        g = cwg.graph(removed=res.removed)
        classifier = CycleClassifier(cwg)
        remaining = find_cycles(g)
        assert remaining  # the False Resource Cycle survives (paper Fig. 3)
        for cy in remaining:
            assert classifier.classify(cy).kind is CycleClass.FALSE_RESOURCE

    def test_wait_connectivity_preserved(self, reduced):
        _, reducer, res = reduced
        waits = reducer.surviving_waits(res.removed)
        assert waits is not None
        assert all(ws for ws in waits.values())

    def test_steps_render(self, reduced):
        _, _, res = reduced
        for s in res.steps:
            assert "remove" in str(s)


class TestFailure:
    def test_unidirectional_ring_unreducible(self):
        """Minimal routing on a 1-VC unidirectional ring deadlocks under any
        waiting discipline: every CWG' retains a True Cycle, so the Section
        8 search must fail."""
        net = build_ring(4, bidirectional=False)

        class RingMinimal(NodeDestRouting):
            name = "ring-minimal"
            wait_policy = WaitPolicy.ANY

            def route_nd(self, node, dest):
                if node == dest:
                    return frozenset()
                return frozenset(self.network.out_channels(node))

        ra = RingMinimal(net)
        res = CWGReducer(ChannelWaitingGraph(ra)).run()
        assert not res.success
        assert "no wait-connected CWG'" in res.reason

    def test_acyclic_cwg_short_circuits(self, mesh33):
        from repro.routing import DimensionOrderMesh

        cwg = ChannelWaitingGraph(DimensionOrderMesh(mesh33))
        res = CWGReducer(cwg).run()
        assert res.success and not res.removed
        assert "CWG' = CWG" in res.reason


class TestSurvivingWaits:
    def test_injection_states_always_survive(self, reduced, figure1):
        cwg, reducer, res = reduced
        waits = reducer.surviving_waits(res.removed)
        inj = figure1.injection_channel(3)
        assert waits[(inj.cid, 0)]  # source state at n3 toward n0

    def test_removing_all_leading_edges_breaks(self, figure1):
        ra = IncoherentExample(figure1)
        cwg = ChannelWaitingGraph(ra)
        reducer = CWGReducer(cwg)
        by = figure1.channel_by_label
        # state (cA1 at n2, dest 0) waits on {cL2, cB2}: removing both
        # leading edges starves it
        removed = frozenset({(by("cA1"), by("cL2")), (by("cA1"), by("cB2"))})
        assert reducer.surviving_waits(removed) is None
        assert not reducer.is_wait_connected(removed)
