"""Structural property checkers (Definitions 5-7 and Duato's hypotheses)."""

from repro.routing import (
    DimensionOrderMesh,
    DuatoFullyAdaptiveMesh,
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    NegativeFirst,
    UnrestrictedMinimal,
    is_coherent,
    is_connected,
    is_fully_adaptive,
    is_minimal,
    is_prefix_closed,
    is_suffix_closed,
    never_revisits_node,
    provides_minimal_path,
)


def test_connected_reports_counterexample(figure1):
    # disable the only leftward exit from n3 by a broken wrapper
    class Broken(IncoherentExample):
        def route_nd(self, node, dest):
            if node == 3 and dest != 3:
                return frozenset()
            return super().route_nd(node, dest)

    rep = is_connected(Broken(figure1), max_hops=6)
    assert not rep.holds and "3 ->" in rep.counterexample


def test_minimality_flags_nonminimal(mesh33):
    rep = is_minimal(HighestPositiveLast(mesh33), max_hops=6)
    assert not rep.holds
    assert is_minimal(DimensionOrderMesh(mesh33)).holds


def test_provides_minimal_path(mesh33, figure1):
    assert provides_minimal_path(HighestPositiveLast(mesh33))
    assert provides_minimal_path(IncoherentExample(figure1))


def test_suffix_closure_of_nd_relations(mesh33, figure1):
    # any R(n, d) relation is suffix-closed by construction
    for ra in (DimensionOrderMesh(mesh33), NegativeFirst(mesh33), IncoherentExample(figure1)):
        assert is_suffix_closed(ra, max_hops=6).holds


def test_prefix_closure_distinguishes(mesh33, cube3_2vc, figure1):
    assert is_prefix_closed(DimensionOrderMesh(mesh33)).holds
    assert not is_prefix_closed(EnhancedFullyAdaptive(cube3_2vc)).holds
    assert not is_prefix_closed(IncoherentExample(figure1), max_hops=6).holds


def test_never_revisits_node(mesh33, figure1):
    assert never_revisits_node(DimensionOrderMesh(mesh33)).holds
    assert not never_revisits_node(IncoherentExample(figure1), max_hops=6).holds


def test_coherence_summary(mesh33_2vc, cube3_2vc):
    assert is_coherent(DuatoFullyAdaptiveMesh(mesh33_2vc)).holds
    rep = is_coherent(EnhancedFullyAdaptive(cube3_2vc))
    assert not rep.holds and "prefix" in rep.counterexample


def test_fully_adaptive_detects_partial(mesh33):
    rep = is_fully_adaptive(NegativeFirst(mesh33))
    assert not rep.holds and "prohibited" in rep.counterexample
    assert is_fully_adaptive(UnrestrictedMinimal(mesh33)).holds


def test_property_report_bool():
    from repro.routing import PropertyReport

    assert bool(PropertyReport(True))
    assert not bool(PropertyReport(False, "bad"))
