"""The prior-generation verifiers: Dally--Seitz and Duato's condition."""

import pytest

from repro.routing import (
    DallySeitzTorus,
    DimensionOrderHypercube,
    DimensionOrderMesh,
    DuatoFullyAdaptiveHypercube,
    DuatoFullyAdaptiveMesh,
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    NegativeFirst,
    UnrestrictedMinimal,
)
from repro.deps import escape_by_vc
from repro.topology import build_hypercube, build_mesh
from repro.verify import (
    applicability,
    dally_seitz,
    duato_condition,
    is_nonadaptive,
    search_escape,
)


class TestDallySeitz:
    def test_ecube_certified_iff(self, mesh33):
        v = dally_seitz(DimensionOrderMesh(mesh33))
        assert v.deadlock_free and v.necessary_and_sufficient

    def test_torus_dateline_certified(self, torus5_2vc):
        assert dally_seitz(DallySeitzTorus(torus5_2vc)).deadlock_free

    def test_adaptive_acyclic_sufficient_only(self, mesh33):
        v = dally_seitz(NegativeFirst(mesh33))
        assert v.deadlock_free and not v.necessary_and_sufficient

    def test_hpl_rejected_despite_safety(self, mesh33):
        """The headline gap: Dally-Seitz cannot certify HPL."""
        v = dally_seitz(HighestPositiveLast(mesh33))
        assert not v.deadlock_free and "cannot certify" in v.reason

    def test_is_nonadaptive(self, mesh33, cube3_2vc):
        assert is_nonadaptive(DimensionOrderMesh(mesh33))
        assert not is_nonadaptive(EnhancedFullyAdaptive(cube3_2vc))


class TestDuatoApplicability:
    def test_applicable_to_duato_algorithms(self, mesh33_2vc):
        ok, why = applicability(DuatoFullyAdaptiveMesh(mesh33_2vc))
        assert ok, why

    def test_rejects_cnd_form(self, mesh33):
        ok, why = applicability(HighestPositiveLast(mesh33))
        assert not ok and "form" in why

    def test_rejects_incoherent(self, cube3_2vc):
        ok, why = applicability(EnhancedFullyAdaptive(cube3_2vc))
        assert not ok and "coherent" in why


class TestDuatoCondition:
    def test_duato_mesh_certified(self, mesh33_2vc):
        ra = DuatoFullyAdaptiveMesh(mesh33_2vc)
        v = duato_condition(ra, escape_by_vc(ra, (0,)))
        assert v.deadlock_free and v.necessary_and_sufficient

    def test_bad_escape_not_fatal(self, mesh33_2vc):
        """A cyclic ECDG for one candidate R1 proves nothing (another R1
        might exist): the verdict must be sufficient-only."""
        ra = DuatoFullyAdaptiveMesh(mesh33_2vc)
        v = duato_condition(ra, frozenset(ra.network.link_channels))
        if not v.deadlock_free:
            assert not v.necessary_and_sufficient

    def test_search_escape_finds_vc0(self, mesh33_2vc, cube3_2vc):
        for ra in (DuatoFullyAdaptiveMesh(mesh33_2vc), DuatoFullyAdaptiveHypercube(cube3_2vc)):
            v = search_escape(ra)
            assert v.deadlock_free
            assert "vc classes (0,)" in v.reason

    def test_search_escape_certifies_ecube(self, mesh33):
        assert search_escape(DimensionOrderMesh(mesh33)).deadlock_free

    def test_search_escape_fails_on_unrestricted(self, mesh33):
        v = search_escape(UnrestrictedMinimal(mesh33))
        assert not v.deadlock_free and not v.necessary_and_sufficient

    def test_not_applicable_reported(self, cube3_2vc, figure1):
        v = search_escape(EnhancedFullyAdaptive(cube3_2vc))
        assert not v.deadlock_free and "not applicable" in v.reason
        v = search_escape(IncoherentExample(figure1))
        assert "not applicable" in v.reason


class TestAgreement:
    def test_all_conditions_agree_on_duato_mesh(self, mesh33_2vc):
        """Where Duato's hypotheses hold, his condition and the paper's
        must agree (both are necessary and sufficient)."""
        from repro.verify import verify

        ra = DuatoFullyAdaptiveMesh(mesh33_2vc)
        assert search_escape(ra).deadlock_free == verify(ra).deadlock_free == True

    def test_agreement_on_ecube(self, mesh33):
        from repro.verify import verify

        ra = DimensionOrderMesh(mesh33)
        assert dally_seitz(ra).deadlock_free
        assert search_escape(ra).deadlock_free
        assert verify(ra).deadlock_free
