"""The 3D scenarios end to end: relation invariants, both-ways verification,
and escape-VC behavior under fault injection.

The registry's three 3D scenarios pin the empirical boundary this PR maps:
a dimension-ordered escape subfunction on VC 0 keeps the dense 3D mesh and
the *collinear* pillar wall deadlock-free (certified independently by the
exact CWG theorem AND by Duato's escape-subfunction condition), while two
non-collinear pillars close a True Cycle through the escape layer itself.
"""

from __future__ import annotations

import pytest

from repro import scenario
from repro.pipeline import JobSpec, run_job
from repro.routing import make
from repro.routing.adaptive3d import MinimalAdaptive3D
from repro.routing.relation import WaitPolicy
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh3d
from repro.verify import verify


# ----------------------------------------------------------------------
# the relation itself
# ----------------------------------------------------------------------
def test_adaptive3d_requires_two_vcs():
    with pytest.raises(ValueError, match="escape VC"):
        MinimalAdaptive3D(build_mesh3d((2, 2, 2), num_vcs=1))


def test_adaptive3d_offers_all_minimal_plus_escape():
    net = build_mesh3d((3, 3, 3), num_vcs=2)
    ra = MinimalAdaptive3D(net)
    assert ra.wait_policy is WaitPolicy.SPECIFIC
    dist = net.shortest_distances()
    src, dst = net.node_at((0, 0, 0)), net.node_at((2, 2, 2))
    routes = ra.route_nd(src, dst)
    # adaptive class: every minimal hop on vc >= 1
    minimal = {c for c in net.out_channels(src)
               if c.vc >= 1 and dist[c.dst][dst] == dist[src][dst] - 1}
    assert minimal <= routes
    # escape class: exactly one dimension-ordered minimal hop on vc 0
    escapes = [c for c in routes if c.vc == 0]
    assert len(escapes) == 1
    assert escapes[0].meta["dim"] == 0  # lowest differing dimension first
    # SPECIFIC wait commits to the escape channel alone
    waits = ra.waiting_channels(net.injection_channel(src), src, dst)
    assert waits == frozenset(escapes)


# ----------------------------------------------------------------------
# both-ways verification of the registered verdicts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,expect_free", [
    ("adaptive-mesh3d", True),
    ("pillar-wall-3d", True),
    ("pillar-diag-3d", False),
])
def test_exact_theorem_and_duato_agree(name, expect_free):
    entry = scenario.get(name)
    job = run_job(JobSpec(name, entry.topology_for(),
                          conditions=("theorem", "duato")))
    assert job.ok, job.error
    by_key = {r.key: r for r in job.results}
    assert by_key["theorem"].deadlock_free is expect_free
    assert by_key["duato"].deadlock_free is expect_free
    assert entry.deadlock_free is expect_free  # registry verdict is honest


def test_diag_pillar_witness_is_a_true_cycle():
    verdict = verify(scenario.get("pillar-diag-3d").instantiate())
    assert not verdict.deadlock_free
    assert "True Cycle" in verdict.reason or "cycle" in verdict.reason.lower()


# ----------------------------------------------------------------------
# fault injection: escape VC down, adaptive layer keeps draining
# ----------------------------------------------------------------------
def _pillar_sim(seed: int) -> WormholeSimulator:
    entry = scenario.get("pillar-wall-3d")
    net = entry.topology_for().build()
    from repro.routing.selection import make_selection

    return WormholeSimulator(
        make("pillar-wall-3d", net),
        BernoulliTraffic(net, rate=0.15, length=5, stop_at=500),
        SimConfig(seed=seed, deadlock_check_interval=32,
                  selection=make_selection(entry.selection)),
    )


def _escape_z_channel(net, node: int):
    for c in net.out_channels(node):
        if c.meta.get("dim") == 2 and c.meta.get("sign") == 1 and c.vc == 0:
            return c
    raise LookupError(f"no +z escape channel at node {node}")


def test_escape_vc_fault_drains_via_adaptive_layer():
    """Killing the vc0 (escape) z-link of a pillar must not wedge the run:
    uncommitted traffic keeps flowing on the adaptive vc1 copy of the same
    physical link, and after repair everything drains with no flit lost."""
    sim = _pillar_sim(seed=31)
    pillar_node = sim.network.node_at((1, 0, 0))
    escape = _escape_z_channel(sim.network, pillar_node)

    sim.run(150)
    for _ in range(200):  # the channel may be mid-flit; retry per cycle
        try:
            sim.fail_channel(escape)
            break
        except ValueError:
            sim.step()
    else:
        pytest.fail("escape channel never became free to fail")

    sim.run(250)
    assert sim.deadlock is None  # adaptive vc1 kept the column alive
    delivered_during_fault = len(sim.stats.delivered)
    assert delivered_during_fault > 0

    sim.repair_channel(escape)
    sim.run(200)
    assert sim.deadlock is None
    assert sim.drain(), "network failed to drain after repair"
    offered = sum(m.length for m in sim.messages.values())
    consumed = sum(m.flits_consumed for m in sim.messages.values())
    assert offered == consumed, "flits lost across fail/repair"
    assert len(sim.stats.delivered) > delivered_during_fault
