"""The scenario layer: spec codecs, the registry, and driver resolution."""

from __future__ import annotations

import json

import pytest

from repro import scenario
from repro.routing import CATALOG
from repro.scenario import ScenarioSpec, TopologySpec, family_names


# ----------------------------------------------------------------------
# TopologySpec codecs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("text", [
    "mesh:4x4",
    "mesh:4x4:v2",
    "hypercube:3",
    "torus:4x4:v3",
    "figure1",
    "figure4",
    "mesh3d:3x3x3:v2",
    "sparse-pillar:3x3x3:v2:pillars=0.0+1.0+2.0",
])
def test_string_codec_round_trips(text):
    spec = TopologySpec.parse(text)
    assert spec.describe() == text
    assert TopologySpec.parse(spec.describe()) == spec


def test_string_codec_is_order_independent():
    a = TopologySpec.parse("sparse-pillar:pillars=0.0+2.2:3x3x3:v2")
    b = TopologySpec.parse("sparse-pillar:3x3x3:v2:pillars=0.0+2.2")
    assert a == b
    assert a.describe() == "sparse-pillar:3x3x3:v2:pillars=0.0+2.2"
    assert a.param_map["pillars"] == ((0, 0), (2, 2))


def test_json_codec_round_trips():
    spec = TopologySpec.parse("sparse-pillar:3x3x3:v2:pillars=0.0+1.0")
    doc = json.loads(json.dumps(spec.to_json()))  # must survive real JSON
    assert TopologySpec.from_json(doc) == spec
    plain = TopologySpec.parse("mesh:4x4")
    assert TopologySpec.from_json(plain.to_json()) == plain


@pytest.mark.parametrize("bad", ["", ":v2", "mesh:wat", "mesh:k=v", "mesh:4x4:"])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        TopologySpec.parse(bad)


def test_unknown_param_key_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown topology parameter"):
        TopologySpec(family="mesh", params=(("typo", 1),))


def test_with_dims_and_vcs_none_are_noops():
    spec = TopologySpec.parse("mesh:4x4:v2")
    assert spec.with_dims(None) is spec
    assert spec.with_vcs(None) is spec
    assert spec.with_dims(5).dims == (5,)  # int => hypercube-style 1-tuple
    assert spec.with_vcs(3).vcs == 3


# ----------------------------------------------------------------------
# builders and the registry
# ----------------------------------------------------------------------
def test_family_names_cover_catalog_families():
    assert set(family_names()) >= {"mesh", "torus", "hypercube", "figure1",
                                   "figure4", "mesh3d", "sparse-pillar"}
    assert {e.family for e in CATALOG.values()} <= set(family_names())


def test_build_dispatches_per_family():
    mesh = TopologySpec.parse("mesh:3x3:v2").build()
    assert mesh.meta["topology"] == "mesh" and mesh.max_vcs() == 2
    cube = TopologySpec.parse("hypercube:3").build()
    assert cube.num_nodes == 8
    m3 = TopologySpec.parse("mesh3d:3x3x3:v2").build()
    assert m3.meta["topology"] == "mesh3d" and m3.num_nodes == 27
    sp = TopologySpec.parse("sparse-pillar:3x3x3:v2:pillars=0.0+1.0").build()
    assert sp.meta["pillars"] == ((0, 0), (1, 0))


def test_build_unknown_family_raises():
    with pytest.raises(Exception, match="unknown topology"):
        TopologySpec.parse("nowhere:2x2").build()


def test_registry_lookup_and_population():
    assert scenario.get("duato-mesh").name == "duato-mesh"
    assert sorted(scenario.names()) == sorted(CATALOG)
    with pytest.raises(KeyError):
        scenario.get("no-such-scenario")
    for_mesh3d = scenario.for_family("mesh3d")
    assert [s.name for s in for_mesh3d] == ["adaptive-mesh3d"]


# ----------------------------------------------------------------------
# ScenarioSpec resolution
# ----------------------------------------------------------------------
def test_topology_for_family_dims_and_overrides():
    entry = scenario.get("duato-mesh")
    # family_dims resizes resizable families; vcs resolves to min_vcs
    resolved = entry.topology_for({"mesh": (8, 8)})
    assert resolved.dims == (8, 8) and resolved.vcs == entry.min_vcs
    # explicit dims wins over the family map
    assert entry.topology_for({"mesh": (8, 8)}, dims=(5, 5)).dims == (5, 5)
    # fixed-shape families ignore a family map that does not name them
    pillar = scenario.get("pillar-wall-3d")
    kept = pillar.topology_for({"mesh": (8, 8)})
    assert kept.dims == (3, 3, 3) and kept.vcs == 2
    assert kept.param_map["pillars"] == ((0, 0), (1, 0), (2, 0))


def test_scenarios_carry_selection_policy():
    assert scenario.get("duato-mesh").selection == "first-free"
    for name in ("adaptive-mesh3d", "pillar-wall-3d", "pillar-diag-3d"):
        assert scenario.get(name).selection == "credit"


def test_scenario_to_json_is_jsonable():
    doc = json.loads(json.dumps(scenario.get("pillar-wall-3d").to_json()))
    assert doc["name"] == "pillar-wall-3d"
    assert doc["topology"]["family"] == "sparse-pillar"
    assert doc["selection"] == "credit"
    assert doc["deadlock_free"] is True


def test_instantiate_builds_relation_on_resolved_network():
    entry = scenario.get("adaptive-mesh3d")
    ra = entry.instantiate()
    assert ra.network.num_nodes == 27
    assert ra.network.max_vcs() == 2


def test_scenario_spec_equality_ignores_factory():
    a = scenario.get("e-cube-mesh")
    b = ScenarioSpec(
        name=a.name, factory=lambda net: None, topology=a.topology,
        min_vcs=a.min_vcs, adaptivity=a.adaptivity,
        deadlock_free=a.deadlock_free, certified_by=a.certified_by,
        notes=a.notes, selection=a.selection,
    )
    assert a == b  # factory is compare=False: specs are value objects
