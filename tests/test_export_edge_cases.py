"""Edge cases for the export renderers, Verdict formatting, and path metrics."""

from __future__ import annotations

import csv
import io
import json

from repro.export import batch_table, batch_to_csv, batch_to_json, verdict_block
from repro.fuzz.generators import RandomMinimalRouting
from repro.metrics.paths import (
    max_edge_disjoint_minimal_paths,
    minimal_path_matrix,
    physical_path_coverage,
)
from repro.pipeline.engine import BatchReport, ConditionResult, JobResult, JobSpec
from repro.topology.network import Network
from repro.verify.report import Verdict


# ----------------------------------------------------------------------
# batch report renderers
# ----------------------------------------------------------------------
def _report(jobs) -> BatchReport:
    return BatchReport(jobs=jobs, seconds=0.5, workers=1)


def _job(reason: str) -> JobResult:
    spec = JobSpec(algorithm="e-cube-mesh", topology="mesh:3x3:v2")
    return JobResult(
        spec=spec, network="mesh(3,3)", fingerprint="f" * 12, seconds=0.1,
        results=[ConditionResult(
            key="theorem", condition="Theorem 3", deadlock_free=True,
            necessary_and_sufficient=True, reason=reason, seconds=0.1,
            cached=False,
        )],
    )


def test_empty_report_renders_everywhere():
    """Zero jobs must not crash any renderer (the CLI hits this with an
    empty --algorithms selection)."""
    report = _report([])
    table = batch_table(report)
    assert "0 jobs" in table
    doc = json.loads(batch_to_json(report))
    assert doc["jobs"] == []
    rows = list(csv.reader(io.StringIO(batch_to_csv(report))))
    assert len(rows) == 1  # header only


def test_non_ascii_reasons_round_trip_json_and_csv():
    reason = "cycle c₀→c₁ is a True Cycle — naïve résumé"
    report = _report([_job(reason)])
    doc = json.loads(batch_to_json(report))
    assert doc["jobs"][0]["conditions"][0]["reason"] == reason
    rows = list(csv.reader(io.StringIO(batch_to_csv(report))))
    assert rows[1][-1] == reason
    assert reason in batch_table(report) or "Theorem 3" in batch_table(report)


def test_errored_job_renders_single_row():
    spec = JobSpec(algorithm="x", topology="mesh")
    bad = JobResult(spec=spec, network="", error="boom: ümläut", seconds=0.2)
    report = _report([bad])
    rows = list(csv.reader(io.StringIO(batch_to_csv(report))))
    assert rows[1][3] == "ERROR" and "ümläut" in rows[1][-1]
    assert "ERROR" in batch_table(report)
    assert json.loads(batch_to_json(report))["jobs"][0]["error"].startswith("boom")


# ----------------------------------------------------------------------
# Verdict formatting
# ----------------------------------------------------------------------
def test_verdict_summary_variants():
    safe = Verdict(algorithm="a", condition="Theorem 2", deadlock_free=True,
                   reason="no True Cycles")
    assert "DEADLOCK-FREE" in safe.summary()
    assert "(iff)" in safe.summary()
    assert "no True Cycles" in safe.summary()
    assert bool(safe)

    partial = Verdict(algorithm="a", condition="Dally-Seitz", deadlock_free=False,
                      necessary_and_sufficient=False)
    assert "NOT deadlock-free" in partial.summary()
    assert "sufficient-only" in partial.summary()
    assert str(partial) == partial.summary()
    assert not partial


def test_verdict_block_without_evidence_is_summary_only():
    v = Verdict(algorithm="a", condition="c", deadlock_free=True)
    assert verdict_block(v) == v.summary()


# ----------------------------------------------------------------------
# metrics.paths on disconnected networks
# ----------------------------------------------------------------------
def _disconnected_routed():
    """Two 2-cycles with a one-way bridge: node 3 cannot reach node 0."""
    net = Network("two-islands")
    net.add_nodes(4)
    net.add_channel(0, 1)
    net.add_channel(1, 0)
    net.add_channel(2, 3)
    net.add_channel(3, 2)
    net.add_channel(1, 2)  # bridge, no way back
    net.freeze(require_strongly_connected=False)
    return RandomMinimalRouting(net, seed=7)


def test_minimal_path_matrix_marks_unreachable_pairs_zero():
    alg = _disconnected_routed()
    matrix = minimal_path_matrix(alg)
    assert matrix[(2, 0)] == 0 and matrix[(3, 1)] == 0
    assert matrix[(0, 1)] >= 1 and matrix[(0, 3)] >= 1


def test_physical_path_coverage_skips_unreachable_pairs():
    cov = physical_path_coverage(_disconnected_routed())
    assert 0.0 < cov <= 1.0


def test_physical_path_coverage_vacuous_on_singleton():
    net = Network("lonely")
    net.add_nodes(1)
    net.freeze(require_strongly_connected=False)
    assert physical_path_coverage(RandomMinimalRouting(net, seed=1)) == 1.0


def test_edge_disjoint_paths_zero_when_unreachable():
    assert max_edge_disjoint_minimal_paths(_disconnected_routed(), 3, 0) == 0
    assert max_edge_disjoint_minimal_paths(_disconnected_routed(), 0, 1) >= 1
