"""The existence decision (Mendlovic--Matias, arXiv:2503.04583).

Four angles, mirroring the layered design of :mod:`repro.verify.existence`:

* **differential** -- the tiered decision procedure agrees with brute-force
  schedule enumeration on every small random digraph, and both certificates
  machine-verify;
* **metamorphic** -- necessity (a theorem-certified deadlock-free relation
  can only live on a YES network) and arc-monotonicity (adding arcs
  preserves YES);
* **constructive** -- every synthesized witness relation is certified by
  the theorem checker, nd-minimal witnesses additionally by Duato's
  condition;
* **certificates** -- forced-precedence obstructions verify from raw
  reachability and are minimal under single-step removal; schedules
  round-trip through the cid-stable triple encoding.
"""

from __future__ import annotations

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.topology import (
    build_figure1_network,
    build_figure4_ring,
    build_hypercube,
    build_mesh,
    build_torus,
)
from repro.topology.network import Network, network_from_edges
from repro.verify import (
    brute_force_existence,
    decide_existence,
    search_escape,
    synthesize_witness,
    verify,
)
from repro.verify.existence import (
    Obstruction,
    schedule_from_triples,
    schedule_triples,
    verify_schedule,
)
from tests.generative import RandomMinimalRouting, derive_seed, routed_networks


def uniring(n: int) -> Network:
    """Unidirectional n-ring: the canonical non-orderable network."""
    return network_from_edges(
        n, [(i, (i + 1) % n) for i in range(n)], name=f"uniring{n}"
    )


@st.composite
def small_digraphs(draw) -> Network:
    """Strongly connected digraphs with at most 6 link channels.

    A unidirectional ring guarantees strong connectivity; extra arcs (which
    may parallel existing ones, taking the next virtual channel) push the
    instance toward orderability, so the strategy covers both verdicts.
    """
    n = draw(st.integers(min_value=2, max_value=4))
    arcs = [(i, (i + 1) % n) for i in range(n)]
    arcs += draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=6 - n,
    ))
    net = Network(f"digraph{n}")
    net.add_nodes(n)
    vcs: dict[tuple[int, int], int] = {}
    for u, v in arcs:
        vc = vcs.get((u, v), 0)
        vcs[(u, v)] = vc + 1
        net.add_channel(u, v, vc=vc)
    return net.freeze()


# ----------------------------------------------------------------------
# differential: the tiered decision vs brute-force enumeration
# ----------------------------------------------------------------------
@given(net=small_digraphs())
def test_decision_matches_brute_force(net):
    verdict = decide_existence(net)
    assert verdict.authoritative, verdict.reason
    expected, _ = brute_force_existence(net)
    assert verdict.exists is expected
    assert verdict.verify(net)


@given(net=small_digraphs())
def test_brute_force_witness_schedule_verifies(net):
    exists, schedule = brute_force_existence(net)
    if exists:
        assert schedule is not None and verify_schedule(net, schedule)
    else:
        assert schedule is None


# ----------------------------------------------------------------------
# metamorphic: necessity and arc-monotonicity
# ----------------------------------------------------------------------
@given(pair=routed_networks())
def test_certified_relation_implies_existence(pair):
    """Necessity: a theorem-certified deadlock-free relation cannot live on
    a network where no deadlock-free relation exists."""
    net, algorithm = pair
    report = verify(algorithm)
    assume(report.deadlock_free and report.necessary_and_sufficient)
    assert decide_existence(net).exists is not False


@given(net=small_digraphs(), data=st.data())
def test_adding_arcs_preserves_yes(net, data):
    verdict = decide_existence(net)
    assume(verdict.exists is True)
    u = data.draw(st.integers(0, net.num_nodes - 1))
    v = data.draw(st.integers(0, net.num_nodes - 1))
    assume(u != v)
    grown = Network(net.name + "+arc")
    grown.add_nodes(net.num_nodes)
    top_vc = 0
    for c in net.link_channels:
        grown.add_channel(c.src, c.dst, vc=c.vc)
        if (c.src, c.dst) == (u, v):
            top_vc = max(top_vc, c.vc + 1)
    grown.add_channel(u, v, vc=top_vc)
    assert decide_existence(grown.freeze()).exists is True


def test_no_network_relations_never_certified():
    """The authoritative-NO oracle semantics: on a non-orderable network
    *every* sampled relation fails certification."""
    net = uniring(3)
    assert decide_existence(net).exists is False
    from repro.routing.relation import WaitPolicy

    for seed in range(4):
        for policy in (WaitPolicy.ANY, WaitPolicy.SPECIFIC):
            algorithm = RandomMinimalRouting(
                net, derive_seed("no-net", seed, policy.value), policy
            )
            assert not verify(algorithm).deadlock_free


# ----------------------------------------------------------------------
# constructive: witness synthesis and certification
# ----------------------------------------------------------------------
@given(net=small_digraphs())
def test_witness_certified_by_theorem_and_duato(net):
    verdict = decide_existence(net)
    assume(verdict.exists is True)
    assert verdict.schedule is not None
    witness = synthesize_witness(net, verdict.schedule)
    assert verify(witness.algorithm).deadlock_free
    if witness.kind == "nd-minimal":
        assert search_escape(witness.algorithm).deadlock_free


def test_witness_tiers_on_reference_topologies():
    for build, kind in [
        (lambda: build_mesh((3, 3)), "nd-minimal"),
        (lambda: build_hypercube(3), "nd-minimal"),
        (lambda: build_figure1_network(), "nd-minimal"),
    ]:
        net = build()
        verdict = decide_existence(net)
        assert verdict.exists is True
        witness = synthesize_witness(net, verdict.schedule)
        assert witness.kind == kind
        assert verify(witness.algorithm).deadlock_free


def test_reference_topologies_all_orderable():
    for net in (
        build_mesh((3, 3)),
        build_mesh((4, 4), num_vcs=2),
        build_hypercube(3),
        build_torus((4, 4), num_vcs=2),
        build_figure1_network(),
        build_figure4_ring(),
    ):
        verdict = decide_existence(net)
        assert verdict.exists is True, net.name
        assert verdict.verify(net)


# ----------------------------------------------------------------------
# certificates: obstructions and schedules
# ----------------------------------------------------------------------
@given(n=st.integers(min_value=3, max_value=6))
def test_uniring_obstruction_verifies_and_is_minimal(n):
    verdict = decide_existence(uniring(n))
    assert verdict.exists is False and verdict.authoritative
    obstruction = verdict.obstruction
    if obstruction is None or obstruction.kind != "forced-cycle":
        return  # an exhausted-search NO certifies by re-search instead
    net = uniring(n)
    assert obstruction.verify(net)
    for i in range(len(obstruction.steps)):
        dropped = Obstruction(
            steps=obstruction.steps[:i] + obstruction.steps[i + 1:],
            kind="forced-cycle",
        )
        assert not dropped.verify(net)


@given(net=small_digraphs())
def test_forced_cycle_obstructions_minimal(net):
    verdict = decide_existence(net)
    assume(verdict.exists is False)
    obstruction = verdict.obstruction
    assume(obstruction is not None and obstruction.kind == "forced-cycle")
    assert obstruction.verify(net)
    for i in range(len(obstruction.steps)):
        dropped = Obstruction(
            steps=obstruction.steps[:i] + obstruction.steps[i + 1:],
            kind="forced-cycle",
        )
        assert not dropped.verify(net)


@given(net=small_digraphs())
def test_schedule_triples_roundtrip(net):
    verdict = decide_existence(net)
    assume(verdict.schedule is not None)
    triples = schedule_triples(net, verdict.schedule)
    assert schedule_from_triples(net, triples) == tuple(verdict.schedule)
    missing = ((net.num_nodes + 1, 0, 0),) + triples
    assert schedule_from_triples(net, missing) is None


@given(net=small_digraphs())
def test_verdict_json_roundtrip_is_canonical(net):
    import json

    verdict = decide_existence(net)
    doc = verdict.to_json()
    assert json.loads(json.dumps(doc)) == doc
    assert verdict.digest() == decide_existence(net).digest()


# ----------------------------------------------------------------------
# the fuzz oracle
# ----------------------------------------------------------------------
def test_check_existence_certifies_witness_on_yes():
    from repro.fuzz.oracles import check_existence
    from repro.routing import make

    result = check_existence(make("e-cube", build_hypercube(3)))
    assert result.claims_deadlock is False
    assert result.deadlock_free is None
    assert result.divergence is None
    assert "witness certified" in result.detail


def test_check_existence_claims_deadlock_on_no_network():
    from repro.fuzz.oracles import check_existence
    from repro.routing.relation import WaitPolicy

    net = uniring(3)
    algorithm = RandomMinimalRouting(net, derive_seed("oracle-no"), WaitPolicy.ANY)
    result = check_existence(algorithm)
    assert result.claims_deadlock is True
    assert result.deadlock_free is False
    assert result.authoritative


def test_real_stack_quiet_on_no_network():
    """On a non-orderable network the existence NO and every checker's
    deadlock verdict agree -- no discrepancy fires."""
    from repro.fuzz.oracles import REAL_STACK, run_stack
    from repro.routing.relation import WaitPolicy

    net = uniring(3)
    algorithm = RandomMinimalRouting(net, derive_seed("stack-no"), WaitPolicy.ANY)
    report = run_stack(algorithm, REAL_STACK)
    assert report.clean, report.discrepancy_keys()


# ----------------------------------------------------------------------
# incremental re-decision
# ----------------------------------------------------------------------
def test_incremental_flap_matches_cold_on_mesh():
    from repro.incremental import ExistenceSession, default_link_flap

    net = build_mesh((3, 3))
    session = ExistenceSession(net)
    for delta in default_link_flap(net):
        decision = session.apply(delta)
        cold = session.full_decide()
        assert decision.digest == cold.digest
        assert decision.verdict.verify(session.network)
        assert decision.refresh.get("scc_frontier_violations", 0) == 0
    assert session.stats["reused"] >= 1  # the restore replays the schedule


def test_incremental_no_side_fast_path():
    from repro.incremental import ExistenceSession
    from repro.incremental.deltas import LinkDown, LinkUp

    session = ExistenceSession(network_from_edges(
        4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="uniring4"
    ))
    assert session.decide().verdict.exists is False
    up = session.apply(LinkUp(0, 1, 1))       # may flip: full re-decide
    assert up.reused is False
    down = session.apply(LinkDown(0, 1, 1))   # obstruction survives: reuse
    assert down.verdict.exists is False
    assert down.reused is True
    assert down.digest == session.full_decide().digest
    assert down.verdict.verify(session.network)


def test_incremental_rejects_non_link_deltas():
    import pytest

    from repro.incremental import ExistenceSession
    from repro.incremental.deltas import VcAdd

    session = ExistenceSession(build_mesh((3, 3)))
    with pytest.raises(ValueError, match="network-level"):
        session.apply(VcAdd(1))
