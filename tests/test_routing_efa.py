"""Enhanced Fully Adaptive (Section 9.3) and its Theorem-6 relaxations."""

import pytest

from repro.routing import (
    EnhancedFullyAdaptive,
    RelaxedEFA,
    RoutingError,
    WaitPolicy,
    is_fully_adaptive,
    is_minimal,
    is_prefix_closed,
    is_suffix_closed,
)
from repro.topology import build_hypercube


@pytest.fixture(scope="module")
def efa(cube3_2vc):
    return EnhancedFullyAdaptive(cube3_2vc)


class TestFirstClassRule:
    def test_negative_mu_opens_first_class(self, efa):
        # node 0b011 -> dest 0b100: needs dims {0-,1-,2+}; mu=0 negative
        assert efa.first_class_dims(0b011, 0b100) == [0, 1, 2]

    def test_positive_mu_restricts_to_mu(self, efa):
        # node 0b000 -> dest 0b110: needs {1+,2+}; mu=1 positive
        assert efa.first_class_dims(0b000, 0b110) == [1]

    def test_route_channels(self, efa, cube3_2vc):
        out = efa.route_nd(0b000, 0b110)
        vc0 = {c for c in out if c.vc == 0}
        vc1 = {c for c in out if c.vc == 1}
        assert {c.dst for c in vc1} == {0b010, 0b100}  # second VC: any needed dim
        assert {c.dst for c in vc0} == {0b010}          # first VC: mu only

    def test_waiting_channel_is_c1_mu(self, efa, cube3_2vc):
        inj = cube3_2vc.injection_channel(0)
        waits = efa.waiting_channels(inj, 0b000, 0b110)
        (w,) = waits
        assert w.vc == 0 and w.dst == 0b010

    def test_delivered(self, efa):
        assert efa.route_nd(5, 5) == frozenset()


class TestStructure:
    def test_fully_adaptive_minimal(self, efa):
        assert is_fully_adaptive(efa)
        assert is_minimal(efa)

    def test_incoherent_not_prefix_closed(self, efa):
        assert is_suffix_closed(efa)  # R(n,d) form
        assert not is_prefix_closed(efa)

    def test_wait_policies(self, cube3_2vc):
        assert EnhancedFullyAdaptive(cube3_2vc).wait_policy is WaitPolicy.SPECIFIC
        wa = EnhancedFullyAdaptive(cube3_2vc, wait_any=True)
        assert wa.wait_policy is WaitPolicy.ANY
        inj = cube3_2vc.injection_channel(0)
        assert wa.waiting_channels(inj, 0, 6) == wa.route_nd(0, 6)

    def test_needs_two_vcs(self, cube3):
        with pytest.raises(RoutingError):
            EnhancedFullyAdaptive(cube3)

    def test_needs_hypercube(self, mesh33_2vc):
        with pytest.raises(RoutingError):
            EnhancedFullyAdaptive(mesh33_2vc)


class TestRelaxed:
    def test_single_pair_relaxation(self, cube3_2vc):
        rel = RelaxedEFA(cube3_2vc, pair=(1, 2))
        # mu=1 positive, needs dim 2 as well: first class now allows {1, 2}
        assert rel.first_class_dims(0b000, 0b110) == [1, 2]
        # a different mu is unaffected
        assert rel.first_class_dims(0b000, 0b101) == [0]

    def test_full_relaxation(self, cube3_2vc):
        rel = RelaxedEFA(cube3_2vc)
        assert rel.first_class_dims(0b000, 0b111) == [0, 1, 2]

    def test_negative_mu_unchanged(self, cube3_2vc):
        rel = RelaxedEFA(cube3_2vc, pair=(0, 1))
        assert rel.first_class_dims(0b001, 0b110) == [0, 1, 2]

    def test_invalid_pair(self, cube3_2vc):
        with pytest.raises(RoutingError):
            RelaxedEFA(cube3_2vc, pair=(2, 1))
        with pytest.raises(RoutingError):
            RelaxedEFA(cube3_2vc, pair=(0, 3))

    def test_still_fully_adaptive(self, cube3_2vc):
        # relaxation only *adds* permissions
        rel = RelaxedEFA(cube3_2vc, pair=(0, 1))
        efa = EnhancedFullyAdaptive(cube3_2vc)
        for s in cube3_2vc.nodes:
            for d in cube3_2vc.nodes:
                if s != d:
                    assert efa.route_nd(s, d) <= rel.route_nd(s, d)
