"""The wormhole simulator: invariants and behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import DimensionOrderMesh, EnhancedFullyAdaptive, HighestPositiveLast
from repro.sim import BernoulliTraffic, ScriptedTraffic, SimConfig, WormholeSimulator
from repro.topology import build_hypercube, build_mesh


def make_sim(net, ra, traffic, **cfg):
    return WormholeSimulator(ra, traffic, SimConfig(**cfg))


class TestSingleMessage:
    def test_delivery_and_latency(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(mesh33, ra, ScriptedTraffic([(0, 0, 8, 5)]))
        sim.run(2)
        assert sim.drain()
        (m,) = sim.messages.values()
        assert m.delivered and m.flits_consumed == 5
        # distance 4, 5 flits: latency >= hops + flits - 1
        assert m.latency >= 4 + 5 - 1

    def test_single_flit_message(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(mesh33, ra, ScriptedTraffic([(0, 0, 1, 1)]))
        sim.run(2)
        assert sim.drain()
        (m,) = sim.messages.values()
        assert m.delivered

    def test_long_message_spans_path(self, mesh33):
        """A message longer than the total buffering holds every channel of
        its path simultaneously at some point."""
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(mesh33, ra, ScriptedTraffic([(0, 0, 8, 64)]), buffer_depth=2)
        max_held = 0
        for _ in range(200):
            sim.step()
            for m in sim.messages.values():
                max_held = max(max_held, len(m.held))
        assert max_held == 4  # all 4 hops of the path

    def test_rejects_bad_messages(self, mesh33):
        sim = make_sim(mesh33, DimensionOrderMesh(mesh33), ScriptedTraffic([]))
        with pytest.raises(ValueError):
            sim.inject_message(0, 0, 5)
        with pytest.raises(ValueError):
            sim.inject_message(0, 1, 0)


class TestInvariants:
    def run_and_check(self, sim, cycles):
        """Step the simulator checking structural invariants as we go."""
        for _ in range(cycles):
            sim.step()
            # single ownership: each channel's buffer holds only its owner's flits
            for c, buf in sim.buffers.items():
                owner = sim.owner[c]
                if buf:
                    assert owner is not None
                    assert all(f[0] == owner for f in buf)
                assert len(buf) <= sim.config.buffer_depth
            # held channels form a connected chain ending at the header
            for m in sim.in_flight:
                for a, b in zip(m.held, m.held[1:]):
                    assert a.dst == b.src

    def test_invariants_under_load(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(
            mesh33, ra,
            BernoulliTraffic(mesh33, rate=0.3, length=6, stop_at=300), seed=3,
        )
        self.run_and_check(sim, 400)
        assert sim.drain()

    def test_flit_conservation(self, mesh33):
        ra = HighestPositiveLast(mesh33)
        sim = make_sim(
            mesh33, ra,
            BernoulliTraffic(mesh33, rate=0.25, length=5, stop_at=500), seed=11,
        )
        sim.run(500)
        assert sim.drain()
        offered = sum(m.length for m in sim.messages.values())
        consumed = sum(m.flits_consumed for m in sim.messages.values())
        assert offered == consumed == sim.stats.consumed_flits

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           rate=st.floats(min_value=0.05, max_value=0.35))
    def test_always_drains_property(self, seed, rate):
        """Property: a proved-deadlock-free algorithm always drains."""
        net = build_mesh((3, 3))
        ra = DimensionOrderMesh(net)
        sim = make_sim(net, ra, BernoulliTraffic(net, rate=rate, length=4, stop_at=200), seed=seed)
        sim.run(200)
        assert sim.drain()
        assert sim.deadlock is None

    def test_determinism(self, mesh33):
        def run():
            ra = DimensionOrderMesh(mesh33)
            sim = make_sim(mesh33, ra, BernoulliTraffic(mesh33, rate=0.3, length=6, stop_at=300), seed=5)
            sim.run(400)
            return [(m.mid, m.finished) for m in sim.messages.values()]

        assert run() == run()


class TestFlowControl:
    def test_one_flit_per_link_per_cycle(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        # two messages sharing the physical link 0->1 on different... e-cube
        # with 1 VC serializes them entirely; check hop counting stays sane
        sim = make_sim(mesh33, ra, ScriptedTraffic([(0, 0, 2, 4), (0, 0, 2, 4)]))
        before = sim.stats.flit_hops
        sim.step()
        sim.step()
        # at most #physical-links flits move per cycle
        links = len(sim._links)
        assert sim.stats.flit_hops - before <= 2 * links

    def test_injection_serialized_per_node(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(mesh33, ra, ScriptedTraffic([(0, 0, 8, 4), (0, 0, 2, 4)]))
        sim.step()
        m0, m1 = sim.messages[0], sim.messages[1]
        assert m0.held and not m1.held  # the second waits its turn

    def test_backpressure_limits_buffer(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(mesh33, ra, ScriptedTraffic([(0, 0, 2, 40)]), buffer_depth=3)
        sim.run(100)
        for buf in sim.buffers.values():
            assert len(buf) <= 3


class TestStats:
    def test_summary_fields(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(mesh33, ra, BernoulliTraffic(mesh33, rate=0.2, length=4, stop_at=300), seed=2)
        sim.run(300)
        sim.drain()
        s = sim.stats.summary(cycles=sim.cycle, num_nodes=9, warmup=50)
        assert s.messages_delivered > 0
        assert s.avg_latency > 0
        assert s.p95_latency >= s.avg_latency * 0.5
        assert s.throughput_flits_per_node_cycle > 0
        assert "msgs=" in s.row()

    def test_empty_summary_is_nan(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = make_sim(mesh33, ra, ScriptedTraffic([]))
        sim.run(10)
        s = sim.stats.summary(cycles=10, num_nodes=9)
        assert s.messages_delivered == 0
        assert s.avg_latency != s.avg_latency  # NaN
