"""The incremental-vs-full fuzz oracle and its planted negative control.

``check_incremental`` runs every fuzz case through a small delta battery
(fault pair + table-edit pair) inside an :class:`IncrementalSession` and
compares each step's digest against a cold full rebuild; a mismatch is an
``incremental-divergence`` discrepancy.  The ``incremental-stale-scc``
planted variant proves the oracle can actually catch an unsound engine.
"""

from __future__ import annotations

import pytest

from repro.fuzz import (
    REAL_STACK,
    check_incremental,
    focus,
    load_corpus,
    planted_stack,
    replay_entry,
    run_stack,
)
from repro.routing import make
from repro.topology import build_mesh

CORPUS_ENTRY = "corpus/planted-incremental-stale-scc-2e46d11b91bc.json"


def _algorithm():
    return make("west-first", build_mesh((3, 3)))


def test_check_incremental_is_clean_on_a_real_session():
    result = check_incremental(_algorithm())
    assert result.checker == "incremental"
    assert result.condition == "incremental-equivalence"
    assert result.divergence is None
    # the oracle is metamorphic: it never claims freedom or deadlock
    assert not result.claims_free and not result.claims_deadlock
    assert "matched full rebuilds" in result.detail


def test_check_incremental_stale_scc_diverges():
    result = check_incremental(_algorithm(), stale_scc=True)
    assert result.divergence is not None
    assert "!= full-rebuild digest" in result.divergence


def test_real_stack_includes_incremental_and_stays_clean():
    report = run_stack(_algorithm(), REAL_STACK)
    by_name = {r.checker: r for r in report.results}
    assert "incremental" in by_name
    assert by_name["incremental"].divergence is None
    assert not report.discrepancies


def test_focused_incremental_stack():
    sub = focus(REAL_STACK, ["incremental"])
    report = run_stack(_algorithm(), sub)
    assert [r.checker for r in report.results] == ["incremental"]
    assert not report.discrepancies


def test_planted_stale_scc_stack_raises_divergence_discrepancy():
    report = run_stack(_algorithm(), planted_stack("incremental-stale-scc"))
    kinds = {d.kind for d in report.discrepancies}
    assert "incremental-divergence" in kinds
    div = next(d for d in report.discrepancies
               if d.kind == "incremental-divergence")
    assert div.free_checker == "incremental"
    assert "digest" in div.detail


def test_divergence_survives_json_round_trip():
    result = check_incremental(_algorithm(), stale_scc=True)
    assert result.to_json()["divergence"] == result.divergence


def test_committed_corpus_entry_replays_deterministically():
    entries = dict(load_corpus("corpus"))
    path = next((p for p in entries if p.name in CORPUS_ENTRY), None)
    if path is None:
        pytest.skip("stale-scc corpus entry not present")
    replay = replay_entry(entries[path], path)
    assert replay.reproduced, replay.error
    assert replay.deterministic
