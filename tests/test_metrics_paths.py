"""Path-diversity metrics."""

from math import isclose

from repro.metrics import (
    max_edge_disjoint_minimal_paths,
    minimal_path_matrix,
    physical_path_coverage,
)
from repro.routing import (
    DimensionOrderMesh,
    NegativeFirst,
    UnrestrictedMinimal,
)
from repro.topology import build_hypercube, build_mesh


def test_minimal_path_matrix_ecube(mesh33):
    mat = minimal_path_matrix(DimensionOrderMesh(mesh33))
    assert all(v == 1 for v in mat.values())
    assert len(mat) == 9 * 8


def test_minimal_path_matrix_unrestricted(mesh33):
    mat = minimal_path_matrix(UnrestrictedMinimal(mesh33))
    assert mat[(0, 8)] == 6  # C(4,2) lattice paths on a 2x2 displacement
    assert mat[(0, 1)] == 1


def test_physical_coverage_bounds(mesh33):
    full = physical_path_coverage(UnrestrictedMinimal(mesh33))
    partial = physical_path_coverage(NegativeFirst(mesh33))
    single = physical_path_coverage(DimensionOrderMesh(mesh33))
    assert isclose(full, 1.0)
    assert single < partial < full


def test_edge_disjoint_paths():
    h = build_hypercube(3)
    ra = UnrestrictedMinimal(h)
    # antipodal pair at distance 3: the 6 minimal paths include 3 pairwise
    # edge-disjoint ones (classic hypercube fact)
    assert max_edge_disjoint_minimal_paths(ra, 0, 7) == 3
    # adjacent pair: single path
    assert max_edge_disjoint_minimal_paths(ra, 0, 1) == 1


def test_edge_disjoint_respects_restrictions(mesh33):
    ecube = DimensionOrderMesh(mesh33)
    assert max_edge_disjoint_minimal_paths(ecube, 0, 8) == 1
    free = UnrestrictedMinimal(mesh33)
    assert max_edge_disjoint_minimal_paths(free, 0, 8) == 2
