"""The metamorphic oracle stack: claims, implication checks, focusing."""

from __future__ import annotations

import pytest

from repro.fuzz.generators import CaseSpec, build_case, case_stream, stable_bits
from repro.fuzz.oracles import (
    Checker,
    CheckerResult,
    OracleStack,
    REAL_STACK,
    focus,
    run_stack,
)
from repro.routing import make
from repro.topology import build_mesh

from tests.generative import SESSION_SEED

MASTER = stable_bits(SESSION_SEED, "fuzz-oracle-tests")


def _fake(name: str, *, free: bool = False, dead: bool = False,
          crash: bool = False) -> Checker:
    def run(_alg) -> CheckerResult:
        if crash:
            raise RuntimeError("checker exploded")
        return CheckerResult(
            checker=name, condition="fake", deadlock_free=free,
            authoritative=True, claims_free=free, claims_deadlock=dead,
        )
    return Checker(name, run)


def _dummy_algorithm():
    return make("e-cube-mesh", build_mesh((2, 2), num_vcs=2))


def test_free_vs_deadlock_cross_product():
    stack = OracleStack("fake", (
        _fake("a", free=True), _fake("b", free=True),
        _fake("c", dead=True), _fake("d"),
    ))
    report = run_stack(_dummy_algorithm(), stack)
    assert report.discrepancy_keys() == {
        "free-vs-deadlock:a<>c",
        "free-vs-deadlock:b<>c",
    }
    assert not report.clean


def test_no_claims_means_clean():
    stack = OracleStack("fake", (_fake("a"), _fake("b", dead=True)))
    report = run_stack(_dummy_algorithm(), stack)
    assert report.clean  # deadlock proof alone violates nothing


def test_checker_crash_is_captured_not_raised():
    stack = OracleStack("fake", (_fake("a", free=True), _fake("boom", crash=True)))
    report = run_stack(_dummy_algorithm(), stack)
    assert report.clean
    errored = report.result("boom")
    assert errored is not None and "checker exploded" in errored.error
    assert not errored.claims_free and not errored.claims_deadlock


def test_focus_keeps_only_named_checkers():
    sub = focus(REAL_STACK, {"theorem", "sim"})
    assert {c.name for c in sub.checkers} == {"theorem", "sim"}
    assert sub.name == REAL_STACK.name
    with pytest.raises(ValueError, match="no checker"):
        focus(REAL_STACK, {"theorem", "nonexistent"})


def test_real_stack_certifies_known_safe_algorithm():
    report = run_stack(_dummy_algorithm(), REAL_STACK)
    assert report.clean
    theorem = report.result("theorem")
    assert theorem.claims_free and theorem.authoritative
    sim = report.result("sim")
    assert not sim.claims_deadlock


def test_dally_seitz_never_claims_deadlock_on_figure4():
    """The paper's Figure 4 shape: cyclic CDG (no certificate) yet
    deadlock-free -- the theorem certifies because every CWG cycle is a
    False Resource Cycle.  A naive equality oracle would flag this as a
    discrepancy; the implication rules must not."""
    from repro.routing.ring_example import RingExample
    from repro.topology.examples import build_figure4_ring

    alg = RingExample(build_figure4_ring(5, extra_link=(3, 4)))
    report = run_stack(alg, REAL_STACK)
    ds = report.result("dally-seitz")
    assert ds.deadlock_free is False and not ds.claims_deadlock
    assert report.result("theorem").claims_free
    assert report.clean


@pytest.mark.slow
def test_real_stack_clean_on_generated_stream():
    """The production checkers never contradict each other on random cases."""
    stream = case_stream(MASTER)
    for _ in range(30):
        spec = next(stream)
        report = run_stack(build_case(spec), REAL_STACK)
        assert report.clean, (
            f"{spec.key()}: {sorted(report.discrepancy_keys())}"
        )


def test_theorem_enum_only_runs_for_specific_waiting():
    wf = make("west-first", build_mesh((2, 2)))  # waits on ANY
    report = run_stack(wf, REAL_STACK)
    assert report.result("theorem-enum") is None

    spec = CaseSpec("arbitrary", _find_specific_seed())
    report = run_stack(build_case(spec), REAL_STACK)
    assert report.result("theorem-enum") is not None


def _find_specific_seed() -> int:
    from repro.routing.relation import WaitPolicy

    for i in range(64):
        seed = stable_bits(MASTER, "specific", i)
        if build_case(CaseSpec("arbitrary", seed)).wait_policy is WaitPolicy.SPECIFIC:
            return seed
    raise AssertionError("no SPECIFIC-policy arbitrary case in 64 tries")
