"""The batch verification pipeline: engine, cache, exports, CLI.

The contract under test: a batch run is nothing but ``verify()`` et al.
applied per job -- parallel execution, caching, and report rendering must
never change a verdict; failures degrade to per-job error records; and the
content-addressed cache is exactly as stale-proof as the fingerprints.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.export import batch_table, batch_to_csv, batch_to_json
from repro.pipeline import (
    BatchVerifier,
    JobSpec,
    VerificationCache,
    cached_cwg,
    cached_cycles,
    cached_reduction,
    catalog_specs,
    run_job,
)
from repro.routing import CATALOG, make
from repro.topology.network import Network
from repro.verify import verify
from tests.generative import RandomMinimalRouting, build_random_network

FAST = ("theorem", "dally-seitz")  # duato on torus-44 dominates runtime; skip it here


@pytest.fixture(scope="module")
def specs():
    return catalog_specs(mesh_dims=(3, 3), torus_dims=(4, 4), hypercube_dim=3,
                         conditions=FAST)


@pytest.fixture(scope="module")
def serial_report(specs):
    return BatchVerifier().run(specs)


# ----------------------------------------------------------------------
# verdict equality: batch == direct, parallel == serial
# ----------------------------------------------------------------------
def test_batch_covers_catalog(specs, serial_report):
    assert [s.algorithm for s in specs] == sorted(CATALOG)
    assert len(serial_report.jobs) == len(specs)
    assert serial_report.errors == []
    for j in serial_report.jobs:
        assert [r.key for r in j.results] == list(FAST)
        assert j.fingerprint


def test_serial_batch_matches_direct_verify(serial_report):
    for j in serial_report.jobs:
        direct = verify(j.spec.build())
        r = j.result_for("theorem")
        assert r.deadlock_free == direct.deadlock_free, j.spec.describe()
        assert r.necessary_and_sufficient == direct.necessary_and_sufficient
        assert r.condition == direct.condition
        if r.evidence.get("triage") != "scc-condensation":
            # triage reproduces the checker's early-path verdicts verbatim;
            # only forced-cycle refutations carry their own witness cycle
            assert r.reason == direct.reason


def test_parallel_matches_serial(specs, serial_report, tmp_path):
    parallel = BatchVerifier(workers=2, cache_dir=tmp_path / "cache").run(specs)
    assert len(parallel.jobs) == len(serial_report.jobs)
    for a, b in zip(serial_report.jobs, parallel.jobs):
        assert a.spec == b.spec
        assert b.ok, b.error
        assert a.fingerprint == b.fingerprint
        for ra, rb in zip(a.results, b.results):
            assert (ra.key, ra.deadlock_free, ra.necessary_and_sufficient) == \
                   (rb.key, rb.deadlock_free, rb.necessary_and_sufficient)


def test_catalog_verdicts_match_certified_flags(serial_report):
    verdicts = serial_report.verdicts("theorem")
    for name, free in verdicts.items():
        assert free == CATALOG[name].deadlock_free, name


# ----------------------------------------------------------------------
# caching: warm hits, fingerprint invalidation, disk layer
# ----------------------------------------------------------------------
def test_warm_rerun_hits_verdict_cache():
    cache = VerificationCache()
    spec = JobSpec("duato-mesh", "mesh:3x3:v2", conditions=("theorem",))
    cold = run_job(spec, cache)
    warm = run_job(spec, cache)
    assert cold.ok and warm.ok
    assert not cold.results[0].cached
    assert warm.results[0].cached
    assert warm.results[0].deadlock_free == cold.results[0].deadlock_free
    assert warm.results[0].reason == cold.results[0].reason
    assert cache.hits >= 1 and cache.stores >= 1


def test_mutating_network_changes_fingerprint():
    net = Network("pair")
    net.add_nodes(2)
    net.add_link_channels(0, 1, 1)
    net.add_link_channels(1, 0, 1)
    before = net.fingerprint()
    net.add_link_channels(0, 1, 1)  # one more VC: a different network
    assert net.fingerprint() != before


def test_fingerprint_ignores_names_but_not_tables(mesh33):
    a = RandomMinimalRouting(mesh33, seed=5)
    b = RandomMinimalRouting(mesh33, seed=5)
    b.name = "renamed-copy"
    assert a.fingerprint() == b.fingerprint()
    ecube = make("e-cube-mesh", mesh33)
    assert ecube.fingerprint() != a.fingerprint()


def test_disk_cache_persists_and_tolerates_corruption(tmp_path):
    d = tmp_path / "cache"
    first = VerificationCache(d)
    first.put("fp123", "verdict:theorem", {"x": 1})

    second = VerificationCache(d)  # fresh process stand-in: empty memory
    assert second.get("fp123", "verdict:theorem") == {"x": 1}
    assert second.hits == 1

    files = list(d.glob("*.json"))
    assert len(files) == 1
    files[0].write_text("{ not json")
    third = VerificationCache(d)
    assert third.get("fp123", "verdict:theorem") is None
    assert third.misses == 1


def test_cached_cwg_and_cycles_roundtrip():
    from repro.topology import build_mesh

    ra = make("unrestricted-minimal", build_mesh((2, 2)))
    fp = ra.fingerprint()
    cache = VerificationCache()
    built = cached_cwg(ra, cache, fingerprint=fp)
    restored = cached_cwg(ra, cache, fingerprint=fp)
    assert cache.hits == 1
    assert sorted((a.cid, b.cid) for a, b in built.edges) == \
           sorted((a.cid, b.cid) for a, b in restored.edges)
    assert built.edge_dests == restored.edge_dests

    cold = cached_cycles(built, cache, fingerprint=fp)
    warm = cached_cycles(restored, cache, fingerprint=fp)
    assert [cy.channels for cy in cold] == [cy.channels for cy in warm]
    assert len(cold) > 0


def test_cached_reduction_roundtrip():
    net = build_random_network(3, (), vc_seed=1)
    ra = RandomMinimalRouting(net, seed=2)
    cwg = cached_cwg(ra, None)
    cache = VerificationCache()
    cold = cached_reduction(cwg, cache, fingerprint="fpX")
    warm = cached_reduction(cwg, cache, fingerprint="fpX")
    assert warm.success == cold.success
    assert warm.removed == cold.removed
    assert warm.reason == cold.reason


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 2])
def test_bad_job_degrades_to_error_record(workers):
    specs = [
        JobSpec("e-cube-mesh", "mesh:3x3", ("dally-seitz",)),
        JobSpec("no-such-algorithm", "mesh:3x3", ("dally-seitz",)),
        JobSpec("e-cube-mesh", "nowhere", ("dally-seitz",)),
    ]
    report = BatchVerifier(workers=workers).run(specs)
    assert len(report.jobs) == 3
    assert report.jobs[0].ok
    assert not report.jobs[1].ok and "KeyError" in report.jobs[1].error
    assert not report.jobs[2].ok and "unknown topology" in report.jobs[2].error
    assert report.errors == [report.jobs[1], report.jobs[2]]


def test_unknown_condition_is_an_error_not_a_crash():
    out = run_job(JobSpec("e-cube-mesh", "mesh:3x3", ("bogus",)))
    assert not out.ok
    assert "unknown condition" in out.error


# ----------------------------------------------------------------------
# report rendering and the CLI
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_report():
    specs = [
        JobSpec("e-cube-mesh", "mesh:3x3", FAST),
        JobSpec("no-such-algorithm", "mesh:3x3", FAST),
    ]
    return BatchVerifier(cache=VerificationCache()).run(specs)


def test_batch_json_export(small_report):
    doc = json.loads(batch_to_json(small_report))
    assert doc["workers"] == 1
    assert len(doc["jobs"]) == 2
    ok, bad = doc["jobs"]
    assert [c["key"] for c in ok["conditions"]] == list(FAST)
    assert all(c["deadlock_free"] for c in ok["conditions"])
    assert bad["error"] and bad["conditions"] == []
    assert doc["cache"]["stores"] >= 1


def test_batch_csv_export(small_report):
    rows = batch_to_csv(small_report).splitlines()
    assert rows[0].startswith("algorithm,topology,network,condition")
    # header + 2 condition rows for the good job + 1 ERROR row
    assert len(rows) == 4
    assert any(",ERROR," in r for r in rows)


def test_batch_table_export(small_report):
    text = batch_table(small_report)
    assert "e-cube-mesh" in text
    assert "ERROR" in text
    assert "2 jobs (1 errors)" in text
    assert "cache:" in text


def test_cli_verify_batch(capsys, tmp_path):
    rc = main([
        "verify-batch", "--algorithms", "e-cube-mesh,west-first",
        "--mesh-dims", "3,3", "--conditions", "theorem",
        "--cache-dir", str(tmp_path / "cli-cache"), "--format", "csv",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "e-cube-mesh" in out and "west-first" in out
    assert (tmp_path / "cli-cache").is_dir()


def test_cli_verify_batch_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        main(["verify-batch", "--algorithms", "definitely-not-real"])
