"""Degree of adaptiveness: closed forms, DP, and brute-force agreement."""

from math import factorial, isclose

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    average_degree,
    duato_path_count,
    duato_ratio,
    ecube_ratio,
    efa_path_count,
    efa_ratio,
    empirical_degree,
    figure5_series,
    total_virtual_paths,
)
from repro.routing import (
    DimensionOrderHypercube,
    DuatoFullyAdaptiveHypercube,
    EnhancedFullyAdaptive,
)
from repro.topology import build_hypercube


class TestClosedForms:
    def test_ecube_half_at_distance_two(self):
        # "nonadaptive routing can use half the paths when the distance
        #  between the source and destination is two hops"
        assert ecube_ratio(2) == 0.5

    def test_duato_recurrence(self):
        for k in range(1, 8):
            assert duato_path_count(k) == factorial(k + 1)
            assert isclose(duato_ratio(k), (k + 1) / 2**k)

    def test_all_ratios_one_at_distance_one(self):
        assert ecube_ratio(1) == duato_ratio(1) == efa_ratio(1) == 1.0

    def test_total_virtual_paths(self):
        assert total_virtual_paths(2, 2) == 8
        assert total_virtual_paths(3, 1) == 6


class TestEFACounting:
    def test_all_negative_is_fully_free(self):
        # mu always negative: the first class is unrestricted -> all k!*2^k
        for k in range(1, 7):
            assert efa_path_count(tuple("-" * k)) == total_virtual_paths(k, 2)

    def test_known_distance_two_values(self):
        assert efa_path_count(("-", "-")) == 8
        assert efa_path_count(("-", "+")) == 8
        assert efa_path_count(("+", "-")) == 6
        assert efa_path_count(("+", "+")) == 6
        assert isclose(efa_ratio(2), 28 / 32)

    @given(st.lists(st.sampled_from("+-"), min_size=1, max_size=7))
    def test_bounds_property(self, signs):
        signs = tuple(signs)
        k = len(signs)
        count = efa_path_count(signs)
        # at least Duato's count (EFA is a relaxation), at most everything
        assert duato_path_count(k) <= count <= total_virtual_paths(k, 2)

    @given(st.lists(st.sampled_from("+-"), min_size=1, max_size=6),
           st.integers(min_value=0, max_value=5))
    def test_flipping_to_negative_never_hurts(self, signs, pos):
        # a negative hop only ever *adds* first-class freedom
        signs = tuple(signs)
        pos = pos % len(signs)
        relaxed = signs[:pos] + ("-",) + signs[pos + 1:]
        assert efa_path_count(relaxed) >= efa_path_count(signs)


class TestFigure5:
    @pytest.fixture(scope="class")
    def series(self):
        return figure5_series(12)

    def test_shape_monotone_decreasing(self, series):
        for key in ("e-cube", "duato", "enhanced"):
            vals = series[key]
            assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_ordering_enhanced_above_duato_above_ecube(self, series):
        for i, n in enumerate(series["dimension"]):
            if n == 1:
                continue
            assert series["enhanced"][i] > series["duato"][i] > series["e-cube"][i]

    def test_starts_at_one(self, series):
        assert series["e-cube"][0] == series["duato"][0] == series["enhanced"][0] == 1.0

    def test_paper_scale_at_dimension_12(self, series):
        # shape check: e-cube collapses, Enhanced retains over half
        assert series["e-cube"][-1] < 0.05
        assert series["enhanced"][-1] > 0.5
        assert 0.1 < series["duato"][-1] < 0.3


class TestBruteForceAgreement:
    @pytest.mark.parametrize("n", [2, 3])
    def test_efa(self, n):
        net = build_hypercube(n, num_vcs=2)
        emp = empirical_degree(EnhancedFullyAdaptive(net), vcs=2)
        assert isclose(emp, average_degree(n, efa_ratio), rel_tol=1e-12)

    @pytest.mark.parametrize("n", [2, 3])
    def test_duato(self, n):
        net = build_hypercube(n, num_vcs=2)
        emp = empirical_degree(DuatoFullyAdaptiveHypercube(net), vcs=2)
        assert isclose(emp, average_degree(n, duato_ratio), rel_tol=1e-12)

    @pytest.mark.parametrize("n", [2, 3])
    def test_ecube(self, n):
        net = build_hypercube(n, num_vcs=1)
        emp = empirical_degree(DimensionOrderHypercube(net), vcs=1)
        assert isclose(emp, average_degree(n, ecube_ratio), rel_tol=1e-12)
