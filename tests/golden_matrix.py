"""The golden (algorithm x traffic x seed) matrix pinning simulator behavior.

The fast-path engine rewrite is only legal because it is *behavior
preserving*: :meth:`repro.sim.SimStats.digest` must stay byte-identical to
the original per-object engine on every matrix point below.  The digests in
``tests/fixtures/sim_golden_digests.json`` were recorded with the
pre-rewrite engine; ``test_sim_determinism.py`` asserts the current engine
reproduces them exactly.

The matrix deliberately crosses the simulator's behavioral axes:

* wait policies -- SPECIFIC (HPL default) and ANY (e-cube, Duato, EFA);
* adaptivity -- nonadaptive, partially and fully adaptive, nonminimal;
* topologies -- mesh, hypercube, torus;
* traffic -- uniform, transpose, bit-reverse, hotspot patterns;
* configs -- buffer depths, ejection rates, ``prefer_minimal`` off,
  non-default selection functions (the allocator's slow path);
* faults -- mid-run ``fail_channel`` / ``repair_channel`` around which
  adaptive algorithms must reroute deterministically.

Regenerate (only when a change is *intended* to alter behavior) with::

    PYTHONPATH=src:tests python -m golden_matrix --write

The module also pins the **delta verdict matrix**: for every catalog
algorithm, the session-default link-down and table-edit scenarios of
:mod:`repro.incremental` with their frozen verdicts and verdict digests
(``tests/fixtures/delta_verdict_matrix.json``).  The incremental engine
must keep answering reconfiguration questions *identically* -- same
deltas derived, same verdicts, same digests.  Regenerate (same caveat)
with::

    PYTHONPATH=src:tests python -m golden_matrix --write-deltas

And the **existence matrix**: for every scenario-registry topology, the
pinned answer to "does *any* deadlock-free routing relation exist here?"
(:func:`repro.verify.decide_existence`) with its decision method, witness
tier, and semantic digest (``tests/fixtures/existence_matrix.json``) --
plus the **existence delta matrix**
(``tests/fixtures/existence_delta_matrix.json``), which flaps the
session-default link channel through
:class:`repro.incremental.ExistenceSession` and pins each step's verdict,
fast-path reuse flag, and incremental-vs-cold semantic-digest agreement.
Regenerate (same caveat) with ``--write-existence`` /
``--write-existence-deltas``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.routing import make
from repro.routing.selection import CreditSelection, lowest_vc_first
from repro.scenario import TopologySpec
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator

FIXTURE = Path(__file__).resolve().parent / "fixtures" / "sim_golden_digests.json"

#: selection-policy factories: stateful policies get a fresh instance per
#: case so repeated runs of the same case stay bit-identical
SELECTIONS = {
    "lowest_vc_first": lambda: lowest_vc_first,
    "credit": CreditSelection,
}

#: case id -> spec; every field is plain data (topologies are scenario-layer
#: spec strings) so the matrix itself can be diffed when cases are added.
CASES: dict[str, dict] = {}


def _case(cid: str, **spec) -> None:
    assert cid not in CASES
    spec.setdefault("pattern", "uniform")
    spec.setdefault("rate", 0.3)
    spec.setdefault("length", 6)
    spec.setdefault("cycles", 600)
    spec.setdefault("stop_at", 400)
    spec.setdefault("config", {})
    spec.setdefault("faults", [])
    CASES[cid] = spec


# -- wait-on-ANY algorithms across topologies and seeds -----------------
for seed in (17, 42):
    _case(f"duato-mesh-u{seed}", algorithm="duato-mesh",
          topology="mesh:3x3:v2", seed=seed)
    _case(f"ecube-mesh-u{seed}", algorithm="e-cube-mesh",
          topology="mesh:3x3:v2", seed=seed)
    _case(f"efa-cube-u{seed}", algorithm="enhanced-fully-adaptive",
          topology="hypercube:3:v2", seed=seed)
_case("west-first-t9", algorithm="west-first", topology="mesh:3x3",
      pattern="transpose", seed=9)
_case("duato-cube-br5", algorithm="duato-hypercube", topology="hypercube:3:v2",
      pattern="bit-reverse", seed=5)
_case("duato-torus-u7", algorithm="duato-torus", topology="torus:4x4:v3",
      seed=7, cycles=400, stop_at=250, rate=0.2)
_case("ecube-cube-hot3", algorithm="e-cube", topology="hypercube:3",
      pattern="hotspot", seed=3, rate=0.25)

# -- wait-on-SPECIFIC: HPL commits to designated waiting channels -------
_case("hpl-specific-u11", algorithm="highest-positive-last", topology="mesh:3x3",
      seed=11, rate=0.25)
_case("hpl-specific-t4", algorithm="highest-positive-last", topology="mesh:4x4",
      pattern="transpose", seed=4, rate=0.2)

# -- config axes: depths, ejection rate, raw cid order, slow selection --
_case("duato-mesh-depth2", algorithm="duato-mesh", topology="mesh:3x3:v2",
      seed=6, config={"buffer_depth": 2})
_case("duato-mesh-eject2", algorithm="duato-mesh", topology="mesh:3x3:v2",
      seed=6, config={"ejection_rate": 2})
_case("efa-raw-order", algorithm="enhanced-fully-adaptive",
      topology="hypercube:3:v2", seed=8, config={"prefer_minimal": False})
_case("duato-mesh-lowvc", algorithm="duato-mesh", topology="mesh:3x3:v2",
      seed=8, config={"selection": "lowest_vc_first"})

# -- faults: adaptive rerouting around a channel killed mid-sweep -------
# (cycle, "fail"|"repair", src node, dim, sign[, vc]) applied before that
# cycle; without a vc the first matching out-channel is taken
_case("hpl-fault-reroute", algorithm="highest-positive-last", topology="mesh:3x3",
      seed=13, rate=0.2, algo_kwargs={"wait_any": True},
      faults=[(120, "fail", 6, 1, -1), (360, "repair", 6, 1, -1)])
_case("duato-fault-reroute", algorithm="duato-mesh", topology="mesh:3x3:v2",
      seed=19, rate=0.2,
      faults=[(100, "fail", 4, 0, 1), (300, "repair", 4, 0, 1)])

# -- the 3D scenarios: credit-based adaptive selection, escape fallback --
_case("mesh3d-credit-u21", algorithm="adaptive-mesh3d",
      topology="mesh3d:3x3x3:v2", seed=21, rate=0.2,
      config={"selection": "credit"})
_case("pillar-wall-credit-u23", algorithm="pillar-wall-3d",
      topology="sparse-pillar:3x3x3:v2:pillars=0.0+1.0+2.0",
      seed=23, rate=0.2, config={"selection": "credit"})
# drop (then restore) the escape VC of the pillar z-link at node (1,0,0):
# adaptive vc1 keeps the column draining while vc0 is down
_case("pillar-fault-escape", algorithm="pillar-wall-3d",
      topology="sparse-pillar:3x3x3:v2:pillars=0.0+1.0+2.0",
      seed=29, rate=0.15, config={"selection": "credit"},
      faults=[(150, "fail", 1, 2, 1, 0), (400, "repair", 1, 2, 1, 0)])


# ----------------------------------------------------------------------
def _find_channel(net, node: int, dim: int, sign: int, vc: int | None = None):
    for c in net.out_channels(node):
        if (c.meta.get("dim") == dim and c.meta.get("sign") == sign
                and (vc is None or c.vc == vc)):
            return c
    raise LookupError(f"no channel at node {node} dim {dim} sign {sign} vc {vc}")


def build_case(cid: str) -> WormholeSimulator:
    """Instantiate the simulator for one matrix point (not yet stepped)."""
    spec = CASES[cid]
    net = TopologySpec.parse(spec["topology"]).build()
    ra = make(spec["algorithm"], net, **spec.get("algo_kwargs", {}))
    cfg_kwargs = dict(spec["config"])
    if "selection" in cfg_kwargs:
        cfg_kwargs["selection"] = SELECTIONS[cfg_kwargs["selection"]]()
    config = SimConfig(seed=spec["seed"], deadlock_check_interval=32, **cfg_kwargs)
    traffic = BernoulliTraffic(
        net, rate=spec["rate"], pattern=spec["pattern"],
        length=spec["length"], stop_at=spec["stop_at"],
    )
    return WormholeSimulator(ra, traffic, config)


def run_case(cid: str) -> str:
    """Run one matrix point to completion and return its stats digest."""
    spec = CASES[cid]
    sim = build_case(cid)
    events = sorted(spec["faults"])
    for cycle in range(spec["cycles"]):
        while events and events[0][0] <= cycle:
            _, action, node, dim, sign, *rest = events[0]
            ch = _find_channel(sim.network, node, dim, sign,
                               rest[0] if rest else None)
            if action == "fail":
                try:
                    sim.fail_channel(ch)
                except ValueError:
                    break  # occupied right now: retry next cycle
            else:
                sim.repair_channel(ch)
            events.pop(0)
        sim.step()
    sim.drain(max_cycles=5000)
    return sim.stats.digest()


# ----------------------------------------------------------------------
# the delta verdict matrix (incremental re-verification scenarios)
# ----------------------------------------------------------------------
DELTA_FIXTURE = Path(__file__).resolve().parent / "fixtures" / "delta_verdict_matrix.json"


def delta_algorithms() -> list[str]:
    """Every catalog algorithm is a delta-matrix row."""
    from repro.routing import CATALOG

    return sorted(CATALOG)


def run_delta_case(name: str) -> dict:
    """One algorithm's pinned reconfiguration scenarios.

    Builds the catalog session, then applies the session-default fault
    pair (link down + repair) and table-edit pair (edit + revert).  Both
    the derived delta *coordinates* and the resulting verdicts/digests are
    part of the pin: a change to the defaults or to any verdict shows up
    as a fixture diff, never silently.
    """
    from repro.incremental import (
        IncrementalSession,
        default_fault_pair,
        default_table_edit,
        format_delta,
    )
    from repro.pipeline import catalog_spec

    session = IncrementalSession(spec=catalog_spec(name), triage=True)
    out: dict = {"baseline": _delta_obs(session.baseline())}

    def scenario(key: str, deltas) -> None:
        results = [session.reverify(d) for d in deltas]
        out[key] = {
            "deltas": [format_delta(d) for d in deltas],
            "steps": [_delta_obs(r) for r in results],
        }

    down, up = default_fault_pair(session)
    scenario("link-down", [down, up])
    try:
        edit, revert = default_table_edit(session)
    except ValueError as exc:
        out["table-edit"] = {"error": str(exc)}
    else:
        scenario("table-edit", [edit, revert])
    return out


def _delta_obs(result) -> dict:
    return {
        "verdicts": {k: v.deadlock_free for k, v in result.verdicts.items()},
        "digest": result.digest,
    }


def load_delta_fixture() -> dict[str, dict]:
    with open(DELTA_FIXTURE) as f:
        return json.load(f)


def write_delta_fixture() -> dict[str, dict]:
    rows = {name: run_delta_case(name) for name in delta_algorithms()}
    DELTA_FIXTURE.parent.mkdir(exist_ok=True)
    with open(DELTA_FIXTURE, "w") as f:
        json.dump(rows, f, indent=2, sort_keys=True)
        f.write("\n")
    return rows


# ----------------------------------------------------------------------
# the existence matrix (network-level deadlock-free-routing existence)
# ----------------------------------------------------------------------
EXISTENCE_FIXTURE = Path(__file__).resolve().parent / "fixtures" / "existence_matrix.json"
EXISTENCE_DELTA_FIXTURE = (
    Path(__file__).resolve().parent / "fixtures" / "existence_delta_matrix.json"
)


def existence_scenarios() -> list[str]:
    """Every scenario-registry topology is an existence-matrix row."""
    from repro.scenario import names

    return sorted(names())


def run_existence_case(name: str) -> dict:
    """One scenario's pinned existence decision (certificates re-verified).

    The row pins the verdict bits, the decision method, the witness tier,
    and that both the channel-ordering certificate and the synthesized
    witness relation machine-verify -- so a regression in any decision
    tier or in witness synthesis shows up as a fixture diff.
    """
    from repro.incremental.existence import semantic_digest
    from repro.scenario import get
    from repro.verify import decide_existence, synthesize_witness, verify

    net = get(name).instantiate().network
    verdict = decide_existence(net)
    row = {
        "exists": verdict.exists,
        "authoritative": verdict.authoritative,
        "method": verdict.method,
        "link_channels": len(net.link_channels),
        "digest": semantic_digest(verdict),
        "certificate_verified": verdict.verify(net),
    }
    if verdict.exists and verdict.schedule is not None:
        witness = synthesize_witness(net, verdict.schedule)
        row["witness"] = witness.kind
        row["witness_certified"] = bool(verify(witness.algorithm).deadlock_free)
    return row


def run_existence_delta_case(name: str) -> dict:
    """One scenario's pinned link-flap re-decision through ExistenceSession.

    Flaps the session-default link channel (down, then restore) and pins
    each step's verdict, whether the monotone fast path reused the previous
    certificate, that the incremental semantic digest equals a cold
    re-decision's, and that the dirty-SCC refresh reported zero frontier
    violations.
    """
    from repro.incremental import ExistenceSession, default_link_flap, format_delta
    from repro.scenario import get

    net = get(name).instantiate().network
    session = ExistenceSession(net)
    base = session.decide()
    out: dict = {"baseline": {"exists": base.verdict.exists, "digest": base.digest}}
    steps = []
    for delta in default_link_flap(net):
        decision = session.apply(delta)
        cold = session.full_decide()
        steps.append({
            "delta": format_delta(delta),
            "exists": decision.verdict.exists,
            "digest": decision.digest,
            "reused": decision.reused,
            "matches_cold": decision.digest == cold.digest,
            "frontier_violations": decision.refresh.get("scc_frontier_violations", 0),
        })
    out["steps"] = steps
    return out


def load_existence_fixture() -> dict[str, dict]:
    with open(EXISTENCE_FIXTURE) as f:
        return json.load(f)


def write_existence_fixture() -> dict[str, dict]:
    rows = {name: run_existence_case(name) for name in existence_scenarios()}
    EXISTENCE_FIXTURE.parent.mkdir(exist_ok=True)
    with open(EXISTENCE_FIXTURE, "w") as f:
        json.dump(rows, f, indent=2, sort_keys=True)
        f.write("\n")
    return rows


def load_existence_delta_fixture() -> dict[str, dict]:
    with open(EXISTENCE_DELTA_FIXTURE) as f:
        return json.load(f)


def write_existence_delta_fixture() -> dict[str, dict]:
    rows = {name: run_existence_delta_case(name) for name in existence_scenarios()}
    EXISTENCE_DELTA_FIXTURE.parent.mkdir(exist_ok=True)
    with open(EXISTENCE_DELTA_FIXTURE, "w") as f:
        json.dump(rows, f, indent=2, sort_keys=True)
        f.write("\n")
    return rows


def load_fixture() -> dict[str, str]:
    with open(FIXTURE) as f:
        return json.load(f)


def write_fixture() -> dict[str, str]:
    digests = {cid: run_case(cid) for cid in sorted(CASES)}
    FIXTURE.parent.mkdir(exist_ok=True)
    with open(FIXTURE, "w") as f:
        json.dump(digests, f, indent=2, sort_keys=True)
        f.write("\n")
    return digests


if __name__ == "__main__":
    import sys

    if "--write-existence" in sys.argv:
        for name, row in write_existence_fixture().items():
            exists = {True: "yes", False: "NO", None: "?"}[row["exists"]]
            print(f"{name:24} exists={exists:3} via {row['method']} "
                  f"witness={row.get('witness', '-')}")
        print(f"wrote {len(existence_scenarios())} existence rows to {EXISTENCE_FIXTURE}")
    elif "--write-existence-deltas" in sys.argv:
        for name, row in write_existence_delta_fixture().items():
            reused = sum(s["reused"] for s in row["steps"])
            cold_ok = all(s["matches_cold"] for s in row["steps"])
            print(f"{name:24} steps={len(row['steps'])} reused={reused} "
                  f"cold={'ok' if cold_ok else 'MISMATCH'}")
        print(f"wrote {len(existence_scenarios())} existence delta rows to "
              f"{EXISTENCE_DELTA_FIXTURE}")
    elif "--write-deltas" in sys.argv:
        for name, row in write_delta_fixture().items():
            print(f"{name:24} baseline={row['baseline']['digest'][:12]}")
        print(f"wrote {len(delta_algorithms())} delta rows to {DELTA_FIXTURE}")
    elif "--write" in sys.argv:
        for cid, d in write_fixture().items():
            print(f"{cid:24} {d}")
        print(f"wrote {len(CASES)} digests to {FIXTURE}")
    else:
        recorded = load_fixture()
        for cid in sorted(CASES):
            got = run_case(cid)
            status = "ok" if recorded.get(cid) == got else "MISMATCH"
            print(f"{cid:24} {status}")
