"""Shared generators: random small networks and seeded routing relations.

Used by the property-based and differential suites (in the spirit of
arXiv:2503.04583's random-network exercise of deadlock conditions).  The
implementations live in :mod:`repro.fuzz.generators` -- the differential
fuzzing subsystem and the test suite exercise the same generator code --
and this module re-exports them plus the Hypothesis strategies that drive
them.

Every seed a strategy draws is folded together with the **session seed**
(:data:`SESSION_SEED`, from ``REPRO_TEST_SEED``, default 0) through the
keyed hash, so the whole generative surface re-randomizes from one
environment knob while the default run stays byte-reproducible across
machines.  Nothing reads global RNG state: two builds from the same draw
are identical objects table-for-table, and Hypothesis shrinking/replay
work unchanged.
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

# Canonical implementations -- re-exported so existing imports keep working.
from repro.fuzz.generators import (
    ArbitraryRouting,
    RandomMinimalRouting,
    build_random_network,
    faulty_variant,
    stable_bits,
)
from repro.routing.relation import WaitPolicy

__all__ = [
    "ArbitraryRouting",
    "RandomMinimalRouting",
    "SESSION_SEED",
    "build_random_network",
    "derive_seed",
    "faulty_variant",
    "network_specs",
    "random_networks",
    "routed_networks",
    "stable_bits",
]

#: the single seed all generative randomness in the suite derives from
SESSION_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def derive_seed(*parts) -> int:
    """Fold drawn values into the session seed (32 deterministic bits)."""
    return stable_bits(SESSION_SEED, "session", *parts)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def network_specs(draw) -> tuple[int, tuple[tuple[int, int], ...], int]:
    """Draw ``(num_nodes, extra_links, vc_seed)`` for build_random_network."""
    n = draw(st.integers(min_value=2, max_value=4))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=4,
    ))
    vc_seed = derive_seed("vc", draw(st.integers(min_value=0, max_value=2**16)))
    return n, tuple(tuple(e) for e in extra), vc_seed


def random_networks():
    """Strategy producing frozen random networks directly."""
    return network_specs().map(lambda spec: build_random_network(*spec))


@st.composite
def routed_networks(draw, wait_policy: WaitPolicy | None = None):
    """Draw a ``(network, RandomMinimalRouting)`` pair."""
    net = build_random_network(*draw(network_specs()))
    seed = derive_seed("route", draw(st.integers(min_value=0, max_value=2**16)))
    policy = wait_policy or draw(st.sampled_from([WaitPolicy.ANY, WaitPolicy.SPECIFIC]))
    return net, RandomMinimalRouting(net, seed, policy)
