"""Shared generators: random small networks and seeded routing relations.

Used by the property-based and differential suites (in the spirit of
arXiv:2503.04583's random-network exercise of deadlock conditions): tiny
strongly connected digraphs -- 2-4 nodes, 1-3 virtual channels per link --
paired with seeded minimal routing relations whose route and waiting sets
are deterministic functions of ``(seed, node, dest)``.  Everything is
derived from drawn integers through a keyed hash, never from global RNG
state, so Hypothesis shrinking and replay work and two builds from the same
draw are identical objects table-for-table.
"""

from __future__ import annotations

import hashlib

from hypothesis import strategies as st

from repro.routing.relation import NodeDestRouting, WaitPolicy
from repro.topology.network import Network


def stable_bits(seed: int, *parts) -> int:
    """32 deterministic bits keyed on ``seed`` and the given parts."""
    text = "/".join(str(p) for p in (seed, *parts))
    return int.from_bytes(hashlib.blake2b(text.encode(), digest_size=4).digest(), "big")


# ----------------------------------------------------------------------
# networks
# ----------------------------------------------------------------------
def build_random_network(
    num_nodes: int,
    extra_links: tuple[tuple[int, int], ...],
    vc_seed: int,
) -> Network:
    """A strongly connected multigraph: a directed ring plus extra links.

    The ring ``0 -> 1 -> ... -> 0`` guarantees Definition 1's strong
    connectivity for any extra-link set; each physical link carries 1-3
    virtual channels chosen by ``vc_seed``.
    """
    net = Network(f"rand({num_nodes}n,{len(extra_links)}x,{vc_seed})")
    net.add_nodes(num_nodes)
    links = {(i, (i + 1) % num_nodes) for i in range(num_nodes)}
    links |= {(a % num_nodes, b % num_nodes) for a, b in extra_links
              if a % num_nodes != b % num_nodes}
    for a, b in sorted(links):
        net.add_link_channels(a, b, 1 + stable_bits(vc_seed, a, b) % 3)
    return net.freeze()


@st.composite
def network_specs(draw) -> tuple[int, tuple[tuple[int, int], ...], int]:
    """Draw ``(num_nodes, extra_links, vc_seed)`` for build_random_network."""
    n = draw(st.integers(min_value=2, max_value=4))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=4,
    ))
    vc_seed = draw(st.integers(min_value=0, max_value=2**16))
    return n, tuple(tuple(e) for e in extra), vc_seed


def random_networks():
    """Strategy producing frozen random networks directly."""
    return network_specs().map(lambda spec: build_random_network(*spec))


# ----------------------------------------------------------------------
# routing relations
# ----------------------------------------------------------------------
class RandomMinimalRouting(NodeDestRouting):
    """Seeded minimal routing relation on an arbitrary network.

    The route set at ``(node, dest)`` is a seeded nonempty subset of the
    outgoing channels that strictly decrease BFS distance to ``dest`` --
    connected by construction (every node short of the destination always
    offers at least one minimal channel on a strongly connected network).
    Under :attr:`WaitPolicy.SPECIFIC` the waiting channel is a seeded
    single pick from the route set; under :attr:`WaitPolicy.ANY` the whole
    route set.  Nothing guarantees deadlock freedom -- 1-VC rings routinely
    produce True Cycles -- which is the point: verdicts land on both sides.
    """

    name = "random-minimal"

    def __init__(self, network: Network, seed: int,
                 wait_policy: WaitPolicy = WaitPolicy.ANY) -> None:
        super().__init__(network)
        self.seed = seed
        self.wait_policy = wait_policy
        self.name = f"random-minimal#{seed}-{wait_policy.value}"
        self._dist = network.shortest_distances()

    def route_nd(self, node: int, dest: int):
        if node == dest:
            return frozenset()
        d = self._dist[node][dest]
        minimal = sorted(
            (c for c in self.network.out_channels(node)
             if self._dist[c.dst][dest] == d - 1),
            key=lambda c: c.cid,
        )
        keep = [c for c in minimal if stable_bits(self.seed, node, dest, c.cid) & 1]
        return frozenset(keep or minimal)

    def waiting_channels(self, c_in, node: int, dest: int):
        permitted = sorted(self.route_nd(node, dest), key=lambda c: c.cid)
        if not permitted:
            return frozenset()
        if self.wait_policy is WaitPolicy.SPECIFIC:
            pick = stable_bits(self.seed, node, dest, "wait") % len(permitted)
            return frozenset([permitted[pick]])
        return frozenset(permitted)


@st.composite
def routed_networks(draw, wait_policy: WaitPolicy | None = None):
    """Draw a ``(network, RandomMinimalRouting)`` pair."""
    net = build_random_network(*draw(network_specs()))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    policy = wait_policy or draw(st.sampled_from([WaitPolicy.ANY, WaitPolicy.SPECIFIC]))
    return net, RandomMinimalRouting(net, seed, policy)
