"""Corpus persistence/replay, the campaign runner, and the CLI entry points."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.fuzz.corpus import (
    CorpusEntry,
    load_corpus,
    replay_entry,
    resolve_stack,
    save_entry,
)
from repro.fuzz.generators import CaseSpec, build_case, stable_bits
from repro.fuzz.oracles import REAL_STACK
from repro.fuzz.runner import (
    FuzzConfig,
    replay_corpus,
    replay_verdict,
    run_campaign,
)
from repro.fuzz.table import TableCase

from tests.generative import SESSION_SEED

MASTER = stable_bits(SESSION_SEED, "fuzz-corpus-tests")


def _entry(stack: str = "real", keys=("free-vs-deadlock:theorem<>sim",)) -> CorpusEntry:
    table = TableCase.materialize(
        build_case(CaseSpec("irregular", stable_bits(MASTER, "entry")))
    )
    return CorpusEntry(stack=stack, table=table, discrepancy_keys=list(keys),
                       spec=CaseSpec("irregular", 1), note="test entry")


def test_save_load_round_trip(tmp_path):
    entry = _entry()
    path = save_entry(tmp_path, entry)
    assert path.name == entry.filename()
    again = save_entry(tmp_path, entry)  # idempotent: content-addressed
    assert again == path
    loaded = load_corpus(tmp_path)
    assert len(loaded) == 1
    lpath, lentry = loaded[0]
    assert lpath == path
    assert lentry.table == entry.table
    assert lentry.discrepancy_keys == sorted(entry.discrepancy_keys)


def test_load_corpus_missing_dir_is_empty(tmp_path):
    assert load_corpus(tmp_path / "nope") == []


def test_corpus_rejects_unknown_format(tmp_path):
    doc = _entry().payload()
    doc["format"] = 999
    with pytest.raises(ValueError, match="unsupported corpus format"):
        CorpusEntry.from_json(doc)


def test_resolve_stack():
    assert resolve_stack("real") is REAL_STACK
    assert resolve_stack("planted:cwg-immediate").name == "planted:cwg-immediate"
    with pytest.raises(ValueError, match="unknown oracle stack"):
        resolve_stack("imaginary")


def test_replay_verdict_polarity():
    planted = replay_entry(_shipped_planted_entry())
    assert planted.ok and planted.reproduced and planted.deterministic
    ok, why = replay_verdict(planted)
    assert ok, why

    # the same table recorded as a REAL entry: the production stack stays
    # quiet on it, which replay_verdict reads as "historical bug, fixed"
    real_twin = CorpusEntry(stack="real",
                            table=planted.entry.table,
                            discrepancy_keys=list(planted.entry.discrepancy_keys))
    result = replay_entry(real_twin)
    assert not result.reproduced
    ok, why = replay_verdict(result)
    assert ok, why


def _shipped_planted_entry() -> CorpusEntry:
    from pathlib import Path

    corpus = Path(__file__).resolve().parents[1] / "corpus"
    path = corpus / "planted-cwg-immediate-80d9299996c5.json"
    return CorpusEntry.from_json(json.loads(path.read_text()))


def test_shipped_corpus_replays_clean():
    """The committed corpus is CI's teeth check: planted entries must keep
    firing deterministically."""
    from pathlib import Path

    corpus = Path(__file__).resolve().parents[1] / "corpus"
    fast = [p for p, e in load_corpus(corpus)
            if len(e.table.channels) <= 8]
    assert fast, "expected small shipped reproducers"
    report = replay_corpus_paths(corpus, keep=set(fast))
    assert report.ok, [why for _r, why in report.failures]


def replay_corpus_paths(corpus_dir, keep):
    """replay_corpus limited to selected paths (skip the slow big entries)."""
    import time

    from repro.fuzz.runner import ReplayReport

    t0 = time.perf_counter()
    results = [replay_entry(e, p) for p, e in load_corpus(corpus_dir) if p in keep]
    return ReplayReport(results=results, seconds=time.perf_counter() - t0)


@pytest.mark.slow
def test_full_shipped_corpus_replays_clean():
    from pathlib import Path

    report = replay_corpus(Path(__file__).resolve().parents[1] / "corpus")
    assert report.ok, [why for _r, why in report.failures]


def test_small_campaign_is_deterministic_and_clean():
    cfg = FuzzConfig(seed=MASTER, max_cases=10, families=("irregular", "arbitrary"))
    a, b = run_campaign(cfg), run_campaign(cfg)
    assert a.clean and b.clean
    assert [c.spec for c in a.cases] == [c.spec for c in b.cases]
    assert [c.discrepancy_keys for c in a.cases] == [c.discrepancy_keys for c in b.cases]


def test_campaign_requires_a_budget():
    with pytest.raises(ValueError, match="budget"):
        run_campaign(FuzzConfig(max_cases=None, max_seconds=None))


def test_campaign_finds_and_saves_planted_discrepancy(tmp_path):
    """A tiny fixed-seed planted campaign: catch, shrink, save, replay."""
    cfg = FuzzConfig(seed=42, max_cases=None, max_seconds=20,
                     families=("arbitrary",), stack="planted:cwg-immediate",
                     corpus_dir=str(tmp_path / "corpus"))
    report = run_campaign(cfg)
    if not report.discrepancies:  # 20s budget on a very slow machine
        pytest.skip("planted campaign found nothing within the time budget")
    found = report.discrepancies[0]
    assert found.corpus_path is not None
    loaded = load_corpus(tmp_path / "corpus")
    assert loaded
    result = replay_entry(loaded[0][1], loaded[0][0])
    assert result.ok


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_fuzz_small_campaign(capsys):
    rc = main(["fuzz", "--seed", "3", "--cases", "6", "--families", "irregular"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fuzz campaign: seed=3" in out
    assert "discrepancies: none" in out


def test_cli_fuzz_rejects_unknown_family():
    with pytest.raises(SystemExit, match="unknown families"):
        main(["fuzz", "--families", "bogus"])


def test_cli_fuzz_replay_shipped_corpus_entry(tmp_path, capsys):
    entry = _shipped_planted_entry()
    save_entry(tmp_path, entry)
    rc = main(["fuzz", "--replay-corpus", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "reproduced" in out


def test_cli_regen_golden_refuses_without_force(capsys):
    with pytest.raises(SystemExit, match="refusing to regenerate"):
        main(["regen-golden"])


def test_cli_regen_golden_force_writes_alternate_fixture(tmp_path, capsys):
    target = tmp_path / "golden.json"
    rc = main(["regen-golden", "--force", "--only", "hpl-specific-u11",
               "--fixture", str(target)])
    assert rc == 0
    doc = json.loads(target.read_text())
    assert set(doc) == {"hpl-specific-u11"}

    # --check against the fresh fixture passes for the regenerated case
    import tests.golden_matrix as gm

    assert doc["hpl-specific-u11"] == gm.load_fixture()["hpl-specific-u11"]


def test_cli_regen_golden_rejects_unknown_case():
    with pytest.raises(SystemExit, match="unknown golden cases"):
        main(["regen-golden", "--force", "--only", "no-such-case"])
