"""The parallel sweep runner: grids, determinism across worker counts, CLI."""

import json

import pytest

from repro.__main__ import main
from repro.sim import (
    SimPoint,
    SweepRunner,
    clear_build_cache,
    grid_points,
    run_point,
    sweep_table,
    sweep_to_json,
)

POINTS = [
    SimPoint(algorithm="e-cube-mesh", topology="mesh:4x4",
             pattern="uniform", rate=0.15, seed=3, cycles=600),
    SimPoint(algorithm="highest-positive-last", topology="mesh:4x4",
             pattern="transpose", rate=0.2, seed=7, cycles=600),
    SimPoint(algorithm="enhanced-fully-adaptive", topology="hypercube:3:v2",
             pattern="bit-reverse", rate=0.3, seed=5, cycles=600),
]


def test_grid_points_crosses_all_axes():
    pts = grid_points(
        ["e-cube-mesh", "enhanced-fully-adaptive"],
        patterns=("uniform", "transpose"),
        rates=(0.1, 0.2),
        seeds=(1, 2, 3),
        mesh_dims=(4, 4),
        hypercube_dim=3,
    )
    assert len(pts) == 2 * 2 * 2 * 3
    # topology/dims/vcs come from the scenario registry entry
    by_algo = {p.algorithm: p for p in pts}
    assert by_algo["e-cube-mesh"].topology.family == "mesh"
    assert by_algo["e-cube-mesh"].topology.dims == (4, 4)
    assert by_algo["enhanced-fully-adaptive"].topology.family == "hypercube"
    assert by_algo["enhanced-fully-adaptive"].topology.vcs == 2
    # plain data: picklable by construction, hashable for dedup
    assert len(set(pts)) == len(pts)


def test_run_point_reports_stats_and_counters():
    clear_build_cache()  # cold start: the route table must report misses
    r = run_point(POINTS[0])
    assert r.ok and r.digest and r.seconds > 0 and r.cycles_per_sec > 0
    assert r.messages_delivered > 0
    assert r.metrics["counters"]["cycles"] == 600
    assert r.metrics["counters"]["route_table_misses"] > 0
    assert set(r.metrics["timers"]) == {"build", "run", "summarize"}


def test_shared_route_table_is_behaviorally_invisible():
    clear_build_cache()
    cold = run_point(POINTS[0])
    warm = run_point(POINTS[0])  # same axes: reuses the memoized route table
    assert warm.digest == cold.digest
    assert warm.metrics["counters"]["route_table_misses"] == 0
    assert warm.metrics["counters"]["route_table_hits"] > 0


def test_run_point_error_is_result_not_crash():
    bad = SimPoint(algorithm="e-cube-mesh", topology="mesh:4x4",
                   pattern="no-such-pattern", rate=0.1, seed=1, cycles=100)
    r = run_point(bad)
    assert not r.ok and "no-such-pattern" in r.error


def test_serial_and_parallel_sweeps_are_bit_identical():
    serial = SweepRunner(workers=0).run(POINTS)
    parallel = SweepRunner(workers=2).run(POINTS)
    assert [r.point for r in serial.points] == POINTS  # order preserved
    assert serial.digests() == parallel.digests()
    assert all(r.ok for r in parallel.points)
    assert parallel.workers == 2 and serial.workers == 1


def test_sweep_report_renders_table_and_json():
    report = SweepRunner().run(POINTS[:1])
    text = sweep_table(report)
    assert "e-cube-mesh" in text and "cyc/s" in text and "stage timers" in text
    data = json.loads(sweep_to_json(report))
    assert data["points"][0]["digest"] == report.points[0].digest
    assert data["points"][0]["metrics"]["counters"]["cycles"] == 600
    assert data["metrics"]["counters"]["alloc_wakeups"] > 0


def test_cli_sim_sweep_smoke(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    rc = main([
        "sim-sweep", "--algorithms", "e-cube-mesh", "--patterns", "uniform",
        "--rates", "0.1", "--seeds", "3", "--cycles", "300",
        "--mesh-dims", "4,4", "--format", "json", "--output", str(out),
    ])
    assert rc == 0
    assert "wrote json report for 1 points" in capsys.readouterr().out
    data = json.loads(out.read_text())
    assert data["points"][0]["algorithm"] == "e-cube-mesh"
    assert data["points"][0]["error"] is None


def test_cli_sim_sweep_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        main(["sim-sweep", "--algorithms", "definitely-not-real"])
