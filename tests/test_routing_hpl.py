"""Highest Positive Last (Section 9.2): the paper's mesh algorithm.

Covers the routing rules one by one, including the East/North worked
example from the text, and the structural facts Theorem 4 rests on.
"""

import pytest

from repro.core import ChannelWaitingGraph, find_one_cycle
from repro.deps import ChannelDependencyGraph
from repro.routing import (
    HighestPositiveLast,
    RoutingError,
    WaitPolicy,
    is_coherent,
    is_connected,
)
from repro.topology import build_mesh


@pytest.fixture(scope="module")
def hpl(mesh33):
    return HighestPositiveLast(mesh33)


def chan(net, node, dim, sign, vc=0):
    for c in net.out_channels(node):
        if c.meta.get("dim") == dim and c.meta.get("sign") == sign and c.vc == vc:
            return c
    raise AssertionError(f"no channel dim={dim} sign={sign} at {node}")


class TestRules:
    def test_negative_needed_waits_on_highest(self, hpl, mesh33):
        # (2,2)=8 -> (0,0)=0: needs -x and -y; p = dim 1 (y)
        inj = mesh33.injection_channel(8)
        waits = hpl.waiting_channels(inj, 8, 0)
        assert waits == frozenset([chan(mesh33, 8, 1, -1)])

    def test_lower_dim_freedom_below_p(self, hpl, mesh33):
        # 8 -> 0: any dim-0 channel (both signs) plus -y permitted
        inj = mesh33.injection_channel(8)
        out = hpl.route(inj, 8, 0)
        assert chan(mesh33, 8, 0, -1) in out
        assert chan(mesh33, 8, 1, -1) in out
        # misroute +x does not exist at the border node 8=(2,2); at (1,2)=7:
        out7 = hpl.route(mesh33.injection_channel(7), 7, 0)
        assert chan(mesh33, 7, 0, +1) in out7  # nonminimal freedom below p

    def test_positive_only_increasing_dimension_order(self, hpl, mesh33):
        # 0 -> 8: needs +x,+y; must use +x (lowest) first
        inj = mesh33.injection_channel(0)
        out = hpl.route(inj, 0, 8)
        assert chan(mesh33, 0, 0, +1) in out
        assert chan(mesh33, 0, 1, +1) not in out

    def test_positive_only_waiting_channel(self, hpl, mesh33):
        inj = mesh33.injection_channel(0)
        assert hpl.waiting_channels(inj, 0, 8) == frozenset([chan(mesh33, 0, 0, +1)])

    def test_positive_only_may_misroute_higher_negative(self, hpl, mesh33):
        # 0 -> 2: needs +x only; may misroute -y? y is higher than... the
        # lowest positive dim is 0, so -1 (dim 1) misroute is offered where
        # the channel exists: at node 3=(0,1) heading to 5=(2,1):
        inj = mesh33.injection_channel(3)
        out = hpl.route(inj, 3, 5)
        assert chan(mesh33, 3, 0, +1) in out
        assert chan(mesh33, 3, 1, -1) in out  # negative misroute in higher dim

    def test_papers_east_north_example(self, mesh33):
        """The Section 9.2 example: due South of the destination, a message
        needing only North may go South if it came in heading East, but not
        if it came in heading North."""
        hpl = HighestPositiveLast(mesh33)
        # node 4=(1,1), dest 7=(1,2): needs +y only
        east_in = chan(mesh33, 3, 0, +1)   # 3 -> 4 heading east
        north_in = chan(mesh33, 1, 1, +1)  # 1 -> 4 heading north
        south_out = chan(mesh33, 4, 1, -1)
        assert south_out in hpl.route(east_in, 4, 7)
        assert south_out not in hpl.route(north_in, 4, 7)

    def test_pos_to_neg_turn_requires_higher_negative(self, mesh332):
        hpl = HighestPositiveLast(mesh332)
        # 3D mesh: message at (1,1,0), came in +x, dest (0,1,1):
        # needs -x and +z; p = 0 -> 180-degree +x -> -x forbidden (no
        # *higher* negative dimension needed)
        node = mesh332.node_at((1, 1, 0))
        prev = mesh332.node_at((0, 1, 0))
        dest = mesh332.node_at((0, 1, 1))
        x_in = [c for c in mesh332.channels_between(prev, node)][0]
        back = mesh332.channels_between(node, prev)[0]
        assert back not in hpl.route(x_in, node, dest)
        # but with a higher negative needed (dest (0,1,0) after misrouting
        # in z... construct: dest needs -x and -z; p=2: now +x -> -x allowed
        dest2 = mesh332.node_at((0, 0, 0))
        node2 = mesh332.node_at((1, 0, 1))
        prev2 = mesh332.node_at((0, 0, 1))
        x_in2 = mesh332.channels_between(prev2, node2)[0]
        back2 = mesh332.channels_between(node2, prev2)[0]
        assert x_in2.meta["dim"] == 0 and x_in2.meta["sign"] == 1
        assert back2 in hpl.route(x_in2, node2, dest2)

    def test_neg_to_pos_turn_allowed_when_needed(self, hpl, mesh33):
        # came in -x at node 3=(0,1), dest 5=(2,1): needs +x -> allowed
        west_in = chan(mesh33, 4, 0, -1)  # 4 -> 3 heading west
        out = hpl.route(west_in, 3, 5)
        assert chan(mesh33, 3, 0, +1) in out


class TestStructure:
    def test_connected(self, hpl):
        assert is_connected(hpl, max_hops=10)

    def test_incoherent_even_minimal(self, mesh332):
        # Section 9.2: "the routing algorithm is not coherent even for
        # minimal paths".  With >= 3 dimensions a message bound past the
        # negative hop of a high dimension may take its positive hops out of
        # increasing order, but the same partial path is forbidden when the
        # intermediate node is the destination.
        rep = is_coherent(HighestPositiveLast(mesh332, misroute=False), max_hops=7)
        assert not rep.holds

    def test_incoherent_with_misrouting_2d(self, mesh33):
        # In 2D the violation needs the nonminimal moves
        rep = is_coherent(HighestPositiveLast(mesh33), max_hops=6)
        assert not rep.holds

    def test_cyclic_cdg_acyclic_cwg(self, hpl):
        assert find_one_cycle(ChannelDependencyGraph(hpl).graph()) is not None
        assert find_one_cycle(ChannelWaitingGraph(hpl).graph()) is None

    def test_wait_policy_variants(self, mesh33):
        assert HighestPositiveLast(mesh33).wait_policy is WaitPolicy.SPECIFIC
        wa = HighestPositiveLast(mesh33, wait_any=True)
        assert wa.wait_policy is WaitPolicy.ANY
        # wait-any Note variant: waits on every channel toward the destination
        inj = mesh33.injection_channel(8)
        waits = wa.waiting_channels(inj, 8, 0)
        assert len(waits) >= 2

    def test_minimal_variant_no_misroute(self, mesh33):
        ra = HighestPositiveLast(mesh33, misroute=False)
        inj = mesh33.injection_channel(3)
        out = ra.route(inj, 3, 5)  # (0,1)->(2,1): needs +x only
        assert all(c.meta["sign"] * (1 if c.meta["dim"] == 0 else -1) > 0 or True for c in out)
        assert len(out) == 1  # no misroute offered

    def test_requires_mesh(self, torus44_3vc):
        with pytest.raises(RoutingError):
            HighestPositiveLast(torus44_3vc)

    def test_waiting_is_subset_of_route(self, hpl, mesh33):
        for s in mesh33.nodes:
            for d in mesh33.nodes:
                if s == d:
                    continue
                inj = mesh33.injection_channel(s)
                assert hpl.waiting_channels(inj, s, d) <= hpl.route(inj, s, d)
