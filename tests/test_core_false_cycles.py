"""The Section 7.2 True vs. False Resource Cycle classifier."""

import pytest

from repro.core import (
    ChannelWaitingGraph,
    CycleClass,
    CycleClassifier,
    find_cycles,
)
from repro.routing import IncoherentExample, RingExample
from repro.routing.paths import path_nodes


@pytest.fixture(scope="module")
def setup(figure1):
    ra = IncoherentExample(figure1)
    cwg = ChannelWaitingGraph(ra)
    cycles = find_cycles(cwg.graph())
    classifier = CycleClassifier(cwg)
    return figure1, cwg, cycles, classifier


class TestFigure1Census:
    """The paper's Section 6/8 analysis of the incoherent example."""

    def test_eight_simple_cycles(self, setup):
        _, _, cycles, _ = setup
        assert len(cycles) == 8

    def test_five_true_cycles(self, setup):
        _, _, cycles, classifier = setup
        kinds = [classifier.classify(c).kind for c in cycles]
        assert kinds.count(CycleClass.TRUE) == 5
        assert kinds.count(CycleClass.FALSE_RESOURCE) == 3
        assert kinds.count(CycleClass.UNDETERMINED) == 0

    def test_cl2_cb2_cycle_is_false(self, setup):
        """The paper's flagship False Resource Cycle: cL2 <-> cB2 requires
        both messages to occupy cA1 simultaneously."""
        figure1, _, cycles, classifier = setup
        by = figure1.channel_by_label
        target = {by("cL2"), by("cB2")}
        (cy,) = [c for c in cycles if set(c.channels) == target]
        cls = classifier.classify(cy)
        assert cls.kind is CycleClass.FALSE_RESOURCE
        assert "disjoint" in cls.reason

    def test_two_edge_true_cycles(self, setup):
        figure1, _, cycles, classifier = setup
        by = figure1.channel_by_label
        for pair in ({"cA1", "cL2"}, {"cA1", "cB2"}):
            (cy,) = [c for c in cycles if {ch.label for ch in c.channels} == pair]
            cls = classifier.classify(cy)
            assert cls.kind is CycleClass.TRUE
            # witness segments are channel-disjoint
            held = [s.held for s in cls.witness]
            assert not (held[0] & held[1])

    def test_self_loops_are_true(self, setup):
        """A message can occupy cL2, detour over cA1, and wait on cL2 itself
        (the N=1 deadlock of Definition 12)."""
        _, _, cycles, classifier = setup
        selfloops = [c for c in cycles if len(c) == 1]
        assert len(selfloops) == 3
        for cy in selfloops:
            assert classifier.classify(cy).kind is CycleClass.TRUE


class TestWitnessValidity:
    def test_witness_paths_follow_the_relation(self, setup):
        figure1, _, cycles, classifier = setup
        ra = IncoherentExample(figure1)
        for cy in cycles:
            cls = classifier.classify(cy)
            if cls.kind is not CycleClass.TRUE:
                continue
            for seg in cls.witness:
                # replay the segment through the routing relation
                c_prev = seg.path[0]
                for c in seg.path[1:]:
                    assert c in ra.route(c_prev, c_prev.dst, seg.dest)
                    c_prev = c
                # the waited channel is a waiting channel at the final state
                final = seg.path[-1]
                assert seg.waits_on in ra.waiting_channels(final, final.dst, seg.dest)

    def test_segments_for_edge_sorted_shortest_first(self, setup):
        figure1, _, _, classifier = setup
        by = figure1.channel_by_label
        segs = classifier.segments_for_edge(by("cL3"), by("cL1"))
        assert segs
        assert all(len(a.path) <= len(b.path) for a, b in zip(segs, segs[1:]))

    def test_nonexistent_edge_has_no_segments(self, setup):
        figure1, _, _, classifier = setup
        by = figure1.channel_by_label
        assert classifier.segments_for_edge(by("cH0"), by("cL1")) == []


class TestRingClassification:
    def test_ring_cycles_all_false(self, figure4):
        """Figure 4: every CWG cycle needs cA twice -> all False Resource."""
        ra = RingExample(figure4)
        cwg = ChannelWaitingGraph(ra)
        classifier = CycleClassifier(cwg)
        # full enumeration explodes (hundreds of thousands of simple
        # cycles); classify the first 25 Johnson's-algorithm cycles -- the
        # exhaustive no-True-Cycle proof is TrueCycleSearch's job
        from repro.core.cycles import iter_simple_cycles

        checked = 0
        for cy in iter_simple_cycles(cwg.graph(), limit=None):
            cls = classifier.classify(cy)
            assert cls.kind is CycleClass.FALSE_RESOURCE
            checked += 1
            if checked >= 25:
                break
        assert checked == 25
