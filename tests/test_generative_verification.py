"""Generative verification of the verifier itself.

Two families of randomly generated routing algorithms with *known* ground
truth exercise the checkers far beyond the hand-written fixtures:

* **Duato-by-construction**: dimension-order escape on VC class 0 plus an
  arbitrary random subset of minimal moves on VC class 1, waiting on the
  escape channel.  Duato's theorem guarantees deadlock freedom for *every*
  such subset, so the CWG condition must certify all of them.
* **Random-waiting strawmen**: the same relations but waiting on a randomly
  chosen permitted channel instead of the escape.  No ground truth a
  priori -- instead we check *consistency*: whenever the verifier says
  deadlock-free, saturating simulation must never deadlock.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import NodeDestRouting, WaitPolicy
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh
from repro.verify import verify


def _stable_bits(seed: int, node: int, dest: int, idx: int) -> int:
    h = hashlib.blake2b(f"{seed}/{node}/{dest}/{idx}".encode(), digest_size=2)
    return int.from_bytes(h.digest(), "big")


class RandomDuatoStyle(NodeDestRouting):
    """Escape = e-cube on VC 0; adaptive class = random minimal VC-1 subset."""

    name = "random-duato"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network, seed: int) -> None:
        super().__init__(network)
        self.seed = seed
        self._dist = network.shortest_distances()

    def _escape(self, node: int, dest: int):
        here = self.network.coord(node)
        there = self.network.coord(dest)
        for dim, (h, t) in enumerate(zip(here, there)):
            if h != t:
                sign = 1 if t > h else -1
                return [
                    c for c in self.network.out_channels(node)
                    if c.meta["dim"] == dim and c.meta["sign"] == sign and c.vc == 0
                ]
        return []

    def route_nd(self, node: int, dest: int):
        if node == dest:
            return frozenset()
        out = list(self._escape(node, dest))
        d = self._dist[node][dest]
        minimal_vc1 = [
            c for c in self.network.out_channels(node)
            if c.vc == 1 and self._dist[c.dst][dest] == d - 1
        ]
        for i, c in enumerate(minimal_vc1):
            if _stable_bits(self.seed, node, dest, i) & 1:
                out.append(c)
        return frozenset(out)

    def waiting_channels(self, c_in, node, dest):
        if node == dest:
            return frozenset()
        return frozenset(self._escape(node, dest))


class RandomWaiting(RandomDuatoStyle):
    """Same relation, but wait on a pseudo-random permitted channel."""

    name = "random-waiting"

    def waiting_channels(self, c_in, node, dest):
        permitted = sorted(self.route_nd(node, dest), key=lambda c: c.cid)
        if not permitted:
            return frozenset()
        pick = _stable_bits(self.seed, node, dest, 999) % len(permitted)
        return frozenset([permitted[pick]])


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_duato_by_construction_always_certified(seed):
    net = build_mesh((3, 3), num_vcs=2)
    ra = RandomDuatoStyle(net, seed)
    verdict = verify(ra)
    assert verdict.deadlock_free, f"seed {seed}: {verdict.summary()}"


@pytest.mark.slow
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_waiting_verdicts_consistent_with_simulation(seed):
    net = build_mesh((3, 3), num_vcs=2)
    ra = RandomWaiting(net, seed)
    verdict = verify(ra)
    if verdict.deadlock_free:
        for sim_seed in (1, 2):
            sim = WormholeSimulator(
                ra, BernoulliTraffic(net, rate=0.5, length=16, stop_at=3000),
                SimConfig(seed=sim_seed, buffer_depth=2, deadlock_check_interval=32),
            )
            sim.run(3000)
            assert sim.deadlock is None, (
                f"seed {seed}: verifier certified but simulation deadlocked"
            )
    else:
        # a refutation must come with a concrete witness or an explicit
        # incompleteness disclaimer
        assert ("deadlock_configuration" in verdict.evidence
                or not verdict.necessary_and_sufficient)
