"""The paper's example algorithms: Figure-1 incoherent line, Figure-4 ring,
and the unrestricted negative fixture."""

import pytest

from repro.routing import (
    IncoherentExample,
    RingExample,
    RoutingError,
    UnrestrictedMinimal,
    WaitPolicy,
    is_connected,
    is_fully_adaptive,
    is_prefix_closed,
    is_suffix_closed,
    never_revisits_node,
)
from repro.topology import build_figure4_ring, build_mesh


class TestIncoherent:
    @pytest.fixture(scope="class")
    def inc(self, figure1):
        return IncoherentExample(figure1)

    def test_minimal_routes(self, inc, figure1):
        by = figure1.channel_by_label
        assert inc.route_nd(0, 3) == frozenset([by("cH0")])
        assert inc.route_nd(1, 3) == frozenset([by("cH1")])
        assert inc.route_nd(3, 1) == frozenset([by("cL3")])
        assert inc.route_nd(2, 1) == frozenset([by("cL2")])  # dest n1: no cB2

    def test_detour_only_for_dest_n0(self, inc, figure1):
        by = figure1.channel_by_label
        assert inc.route_nd(1, 0) == frozenset([by("cL1"), by("cA1")])
        assert inc.route_nd(2, 0) == frozenset([by("cL2"), by("cB2")])
        assert by("cA1") not in inc.route_nd(1, 2)
        assert by("cA1") not in inc.route_nd(1, 3)

    def test_incoherence_witness(self, inc):
        # "a message from n1 to n0 can be routed through n2 using cA1,
        #  however, a message from n1 to n2 cannot use cA1"
        rep = is_prefix_closed(inc, max_hops=6)
        assert not rep.holds
        # revisits n1 on the detour path, so node-revisit-freedom fails too
        assert not never_revisits_node(inc, max_hops=6).holds

    def test_connected(self, inc):
        assert is_connected(inc, max_hops=6)

    def test_wait_policy_variants(self, figure1):
        assert IncoherentExample(figure1).wait_policy is WaitPolicy.ANY
        assert IncoherentExample(figure1, wait_any=False).wait_policy is WaitPolicy.SPECIFIC

    def test_no_detour_variant(self, figure1):
        plain = IncoherentExample(figure1, detour=False)
        by = figure1.channel_by_label
        assert plain.route_nd(1, 0) == frozenset([by("cL1")])
        # cB2 (dest-n0-only) still breaks prefix-closure, but the detour and
        # the node revisits it enables are gone
        assert never_revisits_node(plain, max_hops=6).holds

    def test_requires_figure1(self, mesh33):
        with pytest.raises(RoutingError):
            IncoherentExample(mesh33)


class TestRingExample:
    @pytest.fixture(scope="class")
    def ring(self, figure4):
        return RingExample(figure4)

    def test_fresh_message_class_and_level(self, ring, figure4):
        inj = figure4.injection_channel(0)
        (c,) = ring.route(inj, 0, 2)  # even dest: class even, level 1 -> vc 0
        assert c.vc == 0
        (c,) = ring.route(inj, 0, 3)  # odd dest -> vc 2
        assert c.vc == 2

    def test_level_toggles_at_wrap(self, ring, figure4):
        wrap = [c for c in figure4.channels_between(9, 0) if c.vc == 0][0]
        (c,) = ring.route(wrap, 0, 2)  # crossed dateline on even level 1
        assert c.vc == 1  # now level 2

    def test_class_sticky_from_input(self, ring, figure4):
        lvl2 = [c for c in figure4.channels_between(1, 2) if c.vc == 1][0]
        (c,) = ring.route(lvl2, 2, 4)
        assert c.vc == 1  # stays even level 2

    def test_cA_offered_at_extra_link(self, ring, figure4):
        inj = figure4.injection_channel(8)
        out = ring.route(inj, 8, 0)
        labels = {c.label for c in out}
        assert "cA" in labels and len(out) == 2

    def test_cA_never_a_waiting_channel(self, ring, figure4):
        inj = figure4.injection_channel(8)
        waits = ring.waiting_channels(inj, 8, 0)
        assert all(c.label != "cA" for c in waits)
        assert waits  # still wait-connected

    def test_post_cA_crossed_class_level2(self, ring, figure4):
        cA = figure4.channel_by_label("cA")
        (c,) = ring.route(cA, 9, 1)  # odd dest -> even class (flipped), level 2
        assert c.vc == 1
        (c,) = ring.route(cA, 9, 2)  # even dest -> odd class, level 2
        assert c.vc == 3

    def test_noflip_keeps_class(self, figure4):
        noflip = RingExample(figure4, flip_class=False)
        cA = figure4.channel_by_label("cA")
        (c,) = noflip.route(cA, 9, 1)  # odd dest keeps odd class, level 2
        assert c.vc == 3

    def test_connected(self, ring):
        assert is_connected(ring)

    def test_requires_figure4(self, mesh33):
        with pytest.raises(RoutingError):
            RingExample(mesh33)


class TestUnrestricted:
    def test_fully_adaptive(self, mesh33):
        ra = UnrestrictedMinimal(mesh33)
        assert is_fully_adaptive(ra)
        assert is_suffix_closed(ra)

    def test_all_minimal_moves(self, mesh33):
        ra = UnrestrictedMinimal(mesh33)
        out = ra.route_nd(0, 8)
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, 1), (1, 1)}

    def test_wait_specific_variant(self, mesh33):
        ra = UnrestrictedMinimal(mesh33, wait_any=False)
        assert ra.wait_policy is WaitPolicy.SPECIFIC
        inj = mesh33.injection_channel(0)
        assert len(ra.waiting_channels(inj, 0, 8)) == 1

    def test_requires_grid(self, figure1):
        with pytest.raises(RoutingError):
            UnrestrictedMinimal(figure1)
