"""Selection functions (Definition 3)."""

import numpy as np
import pytest

from repro.routing import (
    RandomSelection,
    RoundRobinSelection,
    first_free,
    highest_vc_first,
    lowest_vc_first,
    straight_first,
)
from repro.topology import build_mesh


@pytest.fixture(scope="module")
def mesh_chans(mesh33):
    inj = mesh33.injection_channel(4)
    cands = sorted(mesh33.out_channels(4), key=lambda c: c.cid)
    return inj, cands


def test_first_free_picks_lowest(mesh_chans):
    inj, cands = mesh_chans
    assert first_free(inj, cands, lambda c: True) is cands[0]
    assert first_free(inj, cands, lambda c: c is cands[2]) is cands[2]
    assert first_free(inj, cands, lambda c: False) is None


def test_straight_first_prefers_same_direction(mesh33):
    # input heading east into node 4: prefer continuing east
    east_in = [c for c in mesh33.in_channels(4) if c.meta == {"dim": 0, "sign": 1} or
               (c.meta.get("dim") == 0 and c.meta.get("sign") == 1)][0]
    cands = sorted(mesh33.out_channels(4), key=lambda c: c.cid)
    pick = straight_first(east_in, cands, lambda c: True)
    assert pick.meta["dim"] == 0 and pick.meta["sign"] == 1
    # falls back when the straight channel is busy
    pick2 = straight_first(east_in, cands, lambda c: not (c.meta["dim"] == 0 and c.meta["sign"] == 1))
    assert pick2 is not None and not (pick2.meta["dim"] == 0 and pick2.meta["sign"] == 1)


def test_random_selection_reproducible(mesh_chans):
    inj, cands = mesh_chans
    a = RandomSelection(42)
    b = RandomSelection(42)
    seq_a = [a(inj, cands, lambda c: True).cid for _ in range(10)]
    seq_b = [b(inj, cands, lambda c: True).cid for _ in range(10)]
    assert seq_a == seq_b
    assert RandomSelection(0)(inj, cands, lambda c: False) is None


def test_random_selection_only_free(mesh_chans):
    inj, cands = mesh_chans
    sel = RandomSelection(7)
    free = cands[1]
    for _ in range(5):
        assert sel(inj, cands, lambda c: c is free) is free


def test_round_robin_rotates(mesh_chans):
    inj, cands = mesh_chans
    rr = RoundRobinSelection()
    picks = [rr(inj, cands, lambda c: True) for _ in range(len(cands))]
    assert len(set(p.cid for p in picks)) == len(cands)
    assert rr(inj, [], lambda c: True) is None


def test_vc_order_preferences():
    m = build_mesh((2, 2), num_vcs=3)
    inj = m.injection_channel(0)
    cands = m.channels_between(0, 1)
    assert lowest_vc_first(inj, cands, lambda c: True).vc == 0
    assert highest_vc_first(inj, cands, lambda c: True).vc == 2
    assert lowest_vc_first(inj, cands, lambda c: c.vc == 1).vc == 1
    assert lowest_vc_first(inj, cands, lambda c: False) is None
    assert highest_vc_first(inj, cands, lambda c: False) is None
