"""Selection functions (Definition 3)."""

import numpy as np
import pytest

from repro.routing import (
    CreditSelection,
    RandomSelection,
    RoundRobinSelection,
    first_free,
    highest_vc_first,
    lowest_vc_first,
    straight_first,
)
from repro.routing.selection import SELECTIONS, make_selection
from repro.topology import build_mesh


@pytest.fixture(scope="module")
def mesh_chans(mesh33):
    inj = mesh33.injection_channel(4)
    cands = sorted(mesh33.out_channels(4), key=lambda c: c.cid)
    return inj, cands


def test_first_free_picks_lowest(mesh_chans):
    inj, cands = mesh_chans
    assert first_free(inj, cands, lambda c: True) is cands[0]
    assert first_free(inj, cands, lambda c: c is cands[2]) is cands[2]
    assert first_free(inj, cands, lambda c: False) is None


def test_straight_first_prefers_same_direction(mesh33):
    # input heading east into node 4: prefer continuing east
    east_in = [c for c in mesh33.in_channels(4) if c.meta == {"dim": 0, "sign": 1} or
               (c.meta.get("dim") == 0 and c.meta.get("sign") == 1)][0]
    cands = sorted(mesh33.out_channels(4), key=lambda c: c.cid)
    pick = straight_first(east_in, cands, lambda c: True)
    assert pick.meta["dim"] == 0 and pick.meta["sign"] == 1
    # falls back when the straight channel is busy
    pick2 = straight_first(east_in, cands, lambda c: not (c.meta["dim"] == 0 and c.meta["sign"] == 1))
    assert pick2 is not None and not (pick2.meta["dim"] == 0 and pick2.meta["sign"] == 1)


def test_random_selection_reproducible(mesh_chans):
    inj, cands = mesh_chans
    a = RandomSelection(42)
    b = RandomSelection(42)
    seq_a = [a(inj, cands, lambda c: True).cid for _ in range(10)]
    seq_b = [b(inj, cands, lambda c: True).cid for _ in range(10)]
    assert seq_a == seq_b
    assert RandomSelection(0)(inj, cands, lambda c: False) is None


def test_random_selection_only_free(mesh_chans):
    inj, cands = mesh_chans
    sel = RandomSelection(7)
    free = cands[1]
    for _ in range(5):
        assert sel(inj, cands, lambda c: c is free) is free


def test_round_robin_rotates(mesh_chans):
    inj, cands = mesh_chans
    rr = RoundRobinSelection()
    picks = [rr(inj, cands, lambda c: True) for _ in range(len(cands))]
    assert len(set(p.cid for p in picks)) == len(cands)
    assert rr(inj, [], lambda c: True) is None


def test_vc_order_preferences():
    m = build_mesh((2, 2), num_vcs=3)
    inj = m.injection_channel(0)
    cands = m.channels_between(0, 1)
    assert lowest_vc_first(inj, cands, lambda c: True).vc == 0
    assert highest_vc_first(inj, cands, lambda c: True).vc == 2
    assert lowest_vc_first(inj, cands, lambda c: c.vc == 1).vc == 1
    assert lowest_vc_first(inj, cands, lambda c: False) is None
    assert highest_vc_first(inj, cands, lambda c: False) is None


def test_random_selection_refuses_pure_backend(monkeypatch, mesh_chans):
    monkeypatch.setenv("REPRO_BACKEND", "pure")
    with pytest.raises(RuntimeError, match="numpy backend"):
        RandomSelection(3)


# ----------------------------------------------------------------------
# credit-based adaptive selection with escape fallback
# ----------------------------------------------------------------------
@pytest.fixture()
def vc2_chans():
    m = build_mesh((2, 2), num_vcs=2)
    inj = m.injection_channel(0)
    # candidates at node 0: east and north hops, vc0 (escape) and vc1
    cands = sorted(m.out_channels(0), key=lambda c: c.cid)
    return inj, cands


def test_credit_selection_picks_most_credits(vc2_chans):
    inj, cands = vc2_chans
    adaptive = [c for c in cands if c.vc >= 1]
    fat, thin = adaptive[0], adaptive[1]
    sel = CreditSelection(credits=lambda c: 4 if c is fat else 1)
    assert sel(inj, cands, lambda c: True) is fat
    # the same policy respects the free mask
    assert sel(inj, cands, lambda c: c is thin) is thin


def test_credit_selection_escape_fallback(vc2_chans):
    inj, cands = vc2_chans
    sel = CreditSelection(credits=lambda c: 4)
    # all adaptive candidates busy: fall back to the first free escape VC
    pick = sel(inj, cands, lambda c: c.vc == 0)
    assert pick is not None and pick.vc == 0
    # adaptive candidates free but fully backpressured: also escape
    starved = CreditSelection(credits=lambda c: 0)
    pick = starved(inj, cands, lambda c: True)
    assert pick is not None and pick.vc == 0
    # nothing free at all
    assert sel(inj, cands, lambda c: False) is None
    assert sel(inj, [], lambda c: True) is None


def test_credit_selection_round_robin_tie_break(vc2_chans):
    inj, cands = vc2_chans
    sel = CreditSelection(credits=lambda c: 2)  # all ties
    adaptive = [c for c in cands if c.vc >= 1]
    picks = {sel(inj, cands, lambda c: True).cid for _ in range(len(adaptive))}
    assert picks == {c.cid for c in adaptive}  # load spread over both hops


def test_credit_selection_binds_engine_buffers():
    from repro.routing import make
    from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator

    net = build_mesh((3, 3), num_vcs=2)
    sel = CreditSelection()
    sim = WormholeSimulator(
        make("duato-mesh", net),
        BernoulliTraffic(net, rate=0.3, length=4, stop_at=200),
        SimConfig(seed=5, selection=sel, deadlock_check_interval=32),
    )
    assert sel._credits is not None  # bind_engine ran in the constructor
    sim.run(400)
    assert sim.deadlock is None
    assert sim.drain()


def test_make_selection_registry():
    assert make_selection("first-free") is first_free  # keeps the fast path
    a, b = make_selection("credit"), make_selection("credit")
    assert isinstance(a, CreditSelection) and a is not b  # fresh per call
    assert isinstance(make_selection("round-robin"), RoundRobinSelection)
    with pytest.raises(KeyError, match="unknown selection policy"):
        make_selection("no-such-policy")
    assert set(SELECTIONS) >= {"first-free", "straight-first", "lowest-vc-first",
                               "highest-vc-first", "round-robin", "random", "credit"}
