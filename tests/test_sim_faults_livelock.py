"""Fault injection (Definition 3's faulty status) and livelock analysis
(Section 4)."""

import pytest

from repro.routing import DimensionOrderMesh, HighestPositiveLast
from repro.sim import BernoulliTraffic, ScriptedTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh


def chan(net, node, dim, sign):
    for c in net.out_channels(node):
        if c.meta.get("dim") == dim and c.meta.get("sign") == sign:
            return c
    raise AssertionError


class TestFaultInjection:
    def test_only_idle_link_channels_can_fail(self, mesh33):
        sim = WormholeSimulator(DimensionOrderMesh(mesh33), ScriptedTraffic([(0, 0, 2, 40)]), SimConfig())
        with pytest.raises(ValueError):
            sim.fail_channel(mesh33.injection_channel(0))
        sim.run(3)
        busy = next(c for c, o in sim.owner.items() if o is not None)
        with pytest.raises(ValueError, match="occupied"):
            sim.fail_channel(busy)

    def test_ecube_stalls_on_its_only_path(self, mesh33):
        """Nonadaptive routing has no alternative: a fault on the unique
        path leaves the message blocked forever (a stall, not a deadlock)."""
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 0, 2, 4)]), SimConfig(seed=1))
        sim.fail_channel(chan(mesh33, 1, 0, +1))  # the 1->2 east channel
        sim.run(300)
        assert not sim.drain(max_cycles=300)
        assert sim.deadlock is None  # not a cyclic deadlock
        assert len(sim.stalled_messages()) == 1

    def test_hpl_routes_around_fault(self, mesh33):
        """HPL's nonminimal freedom delivers around the same fault -- the
        Section 1 fault-tolerance motivation.  The wait-on-any Note variant
        is the fault-tolerant discipline: a message committed to a single
        designated waiting channel would wait on the dead channel forever."""
        ra = HighestPositiveLast(mesh33, wait_any=True)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 6, 0, 6)]), SimConfig(seed=1))
        # message 6 -> 0 (needs -y...): kill a channel on one minimal path
        sim.fail_channel(chan(mesh33, 6, 1, -1))  # (0,2) -> (0,1) south
        sim.run(5)
        assert sim.drain(max_cycles=500)
        (m,) = sim.messages.values()
        assert m.delivered

    def test_cut_destination_row_stalls_even_adaptive(self, mesh33):
        """Adaptivity only helps while an alternative exists: with every
        southbound channel into row 0 dead, a message bound for (0,0) stalls
        no matter how it wanders (wait-connectivity -- and with it the
        deadlock-freedom guarantee -- silently assumes fault-free waiting
        channels)."""
        ra = HighestPositiveLast(mesh33, wait_any=True)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 3, 0, 4)]), SimConfig(seed=1))
        for node in (3, 4, 5):  # all of row 1's south channels
            sim.fail_channel(chan(mesh33, node, 1, -1))
        sim.run(5)
        assert not sim.drain(max_cycles=800)
        assert not sim.messages[0].delivered
        assert sim.stalled_messages() or sim.blocked_messages()

    def test_repair_restores_delivery(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 0, 2, 4)]), SimConfig(seed=1))
        bad = chan(mesh33, 1, 0, +1)
        sim.fail_channel(bad)
        sim.run(100)
        assert not sim.messages[0].delivered
        sim.repair_channel(bad)
        assert sim.drain(max_cycles=300)

    def test_fault_induced_jam_is_wormhole_physics(self, mesh44):
        """A fault that leaves some routing state with only the dead channel
        in its waiting set stalls a worm *permanently*, and -- because
        wormhole messages hold their whole path -- traffic jams up behind
        it.  The simulator reproduces that failure cascade: some messages
        stall on the fault, many more block behind them, and the runtime
        detector correctly does NOT call it a (cyclic) deadlock."""
        ra = HighestPositiveLast(mesh44, wait_any=True)
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh44, rate=0.15, length=4, stop_at=1500),
            SimConfig(seed=23, deadlock_check_interval=32),
        )
        sim.fail_channel(chan(mesh44, 5, 0, +1))
        sim.fail_channel(chan(mesh44, 10, 1, +1))
        sim.run(1500)
        sim.drain(max_cycles=4000)
        delivered = sum(m.delivered for m in sim.messages.values())
        assert delivered > 0
        assert sim.stalled_messages(), "some worm stalls on the dead channel"
        assert len(sim.blocked_messages()) > len(sim.stalled_messages()), \
            "the jam spreads behind the stalled worms"
        assert sim.deadlock is None, "a fault stall is not a Definition-12 knot"


class TestLivelockAnalysis:
    def test_minimal_algorithms_never_misroute(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        dist = mesh33.shortest_distances()
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.3, length=4, stop_at=800),
            SimConfig(seed=7),
        )
        sim.run(800)
        sim.drain()
        for m in sim.messages.values():
            assert m.hops == dist[m.src][m.dest]

    def test_hpl_misroutes_are_bounded_in_practice(self, mesh33):
        """Section 4: livelock needs unbounded misrouting; HPL's misroutes
        under load stay small multiples of the distance and every message
        arrives."""
        ra = HighestPositiveLast(mesh33)
        dist = mesh33.shortest_distances()
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.35, length=4, stop_at=2000),
            SimConfig(seed=3),
        )
        sim.run(2000)
        assert sim.drain()
        excess = [m.hops - dist[m.src][m.dest] for m in sim.messages.values()]
        assert all(e >= 0 for e in excess)
        assert max(excess) <= 8  # bounded detours, no livelock spiral
        assert all(m.delivered for m in sim.messages.values())
