"""Fault injection (Definition 3's faulty status) and livelock analysis
(Section 4)."""

import pytest

from repro.routing import DimensionOrderMesh, HighestPositiveLast
from repro.sim import BernoulliTraffic, ScriptedTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh


def chan(net, node, dim, sign):
    for c in net.out_channels(node):
        if c.meta.get("dim") == dim and c.meta.get("sign") == sign:
            return c
    raise AssertionError


class TestFaultInjection:
    def test_only_idle_link_channels_can_fail(self, mesh33):
        sim = WormholeSimulator(DimensionOrderMesh(mesh33), ScriptedTraffic([(0, 0, 2, 40)]), SimConfig())
        with pytest.raises(ValueError):
            sim.fail_channel(mesh33.injection_channel(0))
        sim.run(3)
        busy = next(c for c, o in sim.owner.items() if o is not None)
        with pytest.raises(ValueError, match="occupied"):
            sim.fail_channel(busy)

    def test_ecube_stalls_on_its_only_path(self, mesh33):
        """Nonadaptive routing has no alternative: a fault on the unique
        path leaves the message blocked forever (a stall, not a deadlock)."""
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 0, 2, 4)]), SimConfig(seed=1))
        sim.fail_channel(chan(mesh33, 1, 0, +1))  # the 1->2 east channel
        sim.run(300)
        assert not sim.drain(max_cycles=300)
        assert sim.deadlock is None  # not a cyclic deadlock
        assert len(sim.stalled_messages()) == 1

    def test_hpl_routes_around_fault(self, mesh33):
        """HPL's nonminimal freedom delivers around the same fault -- the
        Section 1 fault-tolerance motivation.  The wait-on-any Note variant
        is the fault-tolerant discipline: a message committed to a single
        designated waiting channel would wait on the dead channel forever."""
        ra = HighestPositiveLast(mesh33, wait_any=True)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 6, 0, 6)]), SimConfig(seed=1))
        # message 6 -> 0 (needs -y...): kill a channel on one minimal path
        sim.fail_channel(chan(mesh33, 6, 1, -1))  # (0,2) -> (0,1) south
        sim.run(5)
        assert sim.drain(max_cycles=500)
        (m,) = sim.messages.values()
        assert m.delivered

    def test_cut_destination_row_stalls_even_adaptive(self, mesh33):
        """Adaptivity only helps while an alternative exists: with every
        southbound channel into row 0 dead, a message bound for (0,0) stalls
        no matter how it wanders (wait-connectivity -- and with it the
        deadlock-freedom guarantee -- silently assumes fault-free waiting
        channels)."""
        ra = HighestPositiveLast(mesh33, wait_any=True)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 3, 0, 4)]), SimConfig(seed=1))
        for node in (3, 4, 5):  # all of row 1's south channels
            sim.fail_channel(chan(mesh33, node, 1, -1))
        sim.run(5)
        assert not sim.drain(max_cycles=800)
        assert not sim.messages[0].delivered
        assert sim.stalled_messages() or sim.blocked_messages()

    def test_repair_restores_delivery(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(ra, ScriptedTraffic([(0, 0, 2, 4)]), SimConfig(seed=1))
        bad = chan(mesh33, 1, 0, +1)
        sim.fail_channel(bad)
        sim.run(100)
        assert not sim.messages[0].delivered
        sim.repair_channel(bad)
        assert sim.drain(max_cycles=300)

    def test_fault_induced_jam_is_wormhole_physics(self, mesh44):
        """A fault that leaves some routing state with only the dead channel
        in its waiting set stalls a worm *permanently*, and -- because
        wormhole messages hold their whole path -- traffic jams up behind
        it.  The simulator reproduces that failure cascade: some messages
        stall on the fault, many more block behind them, and the runtime
        detector correctly does NOT call it a (cyclic) deadlock."""
        ra = HighestPositiveLast(mesh44, wait_any=True)
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh44, rate=0.15, length=4, stop_at=1500),
            SimConfig(seed=23, deadlock_check_interval=32),
        )
        sim.fail_channel(chan(mesh44, 5, 0, +1))
        sim.fail_channel(chan(mesh44, 10, 1, +1))
        sim.run(1500)
        sim.drain(max_cycles=4000)
        delivered = sum(m.delivered for m in sim.messages.values())
        assert delivered > 0
        assert sim.stalled_messages(), "some worm stalls on the dead channel"
        assert len(sim.blocked_messages()) > len(sim.stalled_messages()), \
            "the jam spreads behind the stalled worms"
        assert sim.deadlock is None, "a fault stall is not a Definition-12 knot"


class TestFaultFastPath:
    """Fault injection against the event-driven engine's bookkeeping.

    The fast allocator only revisits a blocked message when something it
    waits on changes, so faults exercise its trickiest paths: a repair must
    *wake* waiters (the full-scan engine rediscovered them for free), and
    the faulty mask must stay coherent with the public ``faulty`` set.
    """

    def test_source_blocked_message_wakes_on_repair(self, mesh33):
        """A message blocked *in its source queue* by a fault must be woken
        by the repair, not silently forgotten by the dirty-set allocator."""
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(ra, ScriptedTraffic([(5, 0, 1, 4)]), SimConfig(seed=1))
        bad = chan(mesh33, 0, 0, +1)  # the only e-cube first hop of 0 -> 1
        sim.fail_channel(bad)
        sim.run(50)
        (m,) = sim.messages.values()
        assert m.started is None and m.waiting_for == frozenset({bad})
        assert sim.stalled_messages() == [m]
        sim.repair_channel(bad)
        assert sim.drain(max_cycles=200)
        assert m.delivered

    def test_faulty_channel_is_never_allocated(self, mesh33):
        ra = HighestPositiveLast(mesh33, wait_any=True)
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.3, length=4, stop_at=400),
            SimConfig(seed=11),
        )
        bad = chan(mesh33, 4, 0, +1)  # a center channel uniform traffic wants
        sim.fail_channel(bad)
        for _ in range(400):
            sim.step()
            assert sim.owner[bad] is None
            assert len(sim.buffers[bad]) == 0
        assert sim.faulty == {bad}

    def test_fail_repair_cycles_keep_state_coherent(self, mesh33):
        """Repeated fail/repair of the same channel mid-sweep: the mask, the
        public set, and delivery all stay consistent."""
        ra = HighestPositiveLast(mesh33, wait_any=True)
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.2, length=4, stop_at=600),
            SimConfig(seed=5),
        )
        bad = chan(mesh33, 6, 1, -1)
        for cycle in range(600):
            if cycle % 100 == 50 and sim.owner[bad] is None and bad not in sim.faulty:
                sim.fail_channel(bad)
            elif cycle % 100 == 0:
                sim.repair_channel(bad)
            sim.step()
        sim.repair_channel(bad)
        assert sim.faulty == set()
        assert sim.drain(max_cycles=3000)
        assert all(m.delivered for m in sim.messages.values())

    def test_mid_sweep_fault_runs_are_deterministic(self, mesh33):
        """The same fault schedule produces byte-identical runs, and the
        fault does change the run (the digests prove both)."""

        def run(with_fault: bool) -> str:
            ra = HighestPositiveLast(mesh33, wait_any=True)
            sim = WormholeSimulator(
                ra, BernoulliTraffic(mesh33, rate=0.25, length=4, stop_at=300),
                SimConfig(seed=13),
            )
            bad = chan(mesh33, 4, 0, +1)
            failed = False
            for cycle in range(400):
                # first idle moment at or after cycle 80 (deterministic too)
                if with_fault and not failed and cycle >= 80 and cycle < 250 \
                        and sim.owner[bad] is None:
                    sim.fail_channel(bad)
                    failed = True
                if with_fault and cycle == 250 and failed:
                    sim.repair_channel(bad)
                sim.step()
            sim.drain(max_cycles=2000)
            return sim.stats.digest()

        assert run(True) == run(True)
        assert run(True) != run(False)


class TestLivelockAnalysis:
    def test_minimal_algorithms_never_misroute(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        dist = mesh33.shortest_distances()
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.3, length=4, stop_at=800),
            SimConfig(seed=7),
        )
        sim.run(800)
        sim.drain()
        for m in sim.messages.values():
            assert m.hops == dist[m.src][m.dest]

    def test_hpl_misroutes_are_bounded_in_practice(self, mesh33):
        """Section 4: livelock needs unbounded misrouting; HPL's misroutes
        under load stay small multiples of the distance and every message
        arrives."""
        ra = HighestPositiveLast(mesh33)
        dist = mesh33.shortest_distances()
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.35, length=4, stop_at=2000),
            SimConfig(seed=3),
        )
        sim.run(2000)
        assert sim.drain()
        excess = [m.hops - dist[m.src][m.dest] for m in sim.messages.values()]
        assert all(e >= 0 for e in excess)
        assert max(excess) <= 8  # bounded detours, no livelock spiral
        assert all(m.delivered for m in sim.messages.values())
