"""Duato's extended channel dependency graph."""

import pytest

from repro.deps import (
    DependencyType,
    ExtendedChannelDependencyGraph,
    escape_by_vc,
)
from repro.routing import (
    DimensionOrderMesh,
    DuatoFullyAdaptiveHypercube,
    DuatoFullyAdaptiveMesh,
    UnrestrictedMinimal,
)
from repro.topology import build_hypercube, build_mesh


@pytest.fixture(scope="module")
def duato_ecdg(mesh33_2vc):
    ra = DuatoFullyAdaptiveMesh(mesh33_2vc)
    return ra, ExtendedChannelDependencyGraph(ra, escape_by_vc(ra, (0,)))


class TestDuatoMesh:
    def test_acyclic(self, duato_ecdg):
        _, ecdg = duato_ecdg
        assert ecdg.is_acyclic()

    def test_subfunction_connected(self, duato_ecdg):
        _, ecdg = duato_ecdg
        ok, why = ecdg.subfunction_connected()
        assert ok, why

    def test_has_indirect_dependencies(self, duato_ecdg):
        """Messages detour through adaptive (vc1) channels and re-enter the
        escape layer: those are exactly Duato's indirect dependencies."""
        _, ecdg = duato_ecdg
        kinds = set().union(*ecdg.edge_types.values())
        assert DependencyType.DIRECT in kinds
        assert DependencyType.INDIRECT in kinds

    def test_vertices_are_escape_channels(self, duato_ecdg):
        ra, ecdg = duato_ecdg
        assert ecdg.escape_union() == escape_by_vc(ra, (0,))
        for (a, b) in ecdg.edges:
            assert a.vc == 0 and b.vc == 0


class TestHypercube:
    def test_duato_hypercube_certified(self, cube3_2vc):
        ra = DuatoFullyAdaptiveHypercube(cube3_2vc)
        ecdg = ExtendedChannelDependencyGraph(ra, escape_by_vc(ra, (0,)))
        assert ecdg.is_acyclic()
        assert ecdg.subfunction_connected()[0]


class TestBadEscapes:
    def test_unrestricted_escape_cyclic(self, mesh33):
        """Using *all* channels as the 'escape' layer of unrestricted
        minimal routing: the ECDG is the full cyclic CDG."""
        ra = UnrestrictedMinimal(mesh33)
        ecdg = ExtendedChannelDependencyGraph(ra, frozenset(mesh33.link_channels))
        assert not ecdg.is_acyclic()

    def test_disconnected_subfunction_detected(self, mesh33_2vc):
        """vc1 alone is not supplied by the escape-restricted relation in
        dimension-order fashion for every state, so R1 over an empty escape
        set is disconnected."""
        ra = DuatoFullyAdaptiveMesh(mesh33_2vc)
        ecdg = ExtendedChannelDependencyGraph(ra, frozenset())
        ok, why = ecdg.subfunction_connected()
        assert not ok and "does not connect" in why


class TestPerDestinationEscape:
    def test_cross_dependencies_detected(self, mesh33_2vc):
        """Give odd and even destinations disjoint escape halves: channels
        escape-for-one-destination feeding another's escape layer must show
        up as cross dependencies."""
        ra = DuatoFullyAdaptiveMesh(mesh33_2vc)
        vc0 = escape_by_vc(ra, (0,))
        vc1 = escape_by_vc(ra, (1,))

        def escape(dest: int):
            return vc0 if dest % 2 == 0 else vc1

        ecdg = ExtendedChannelDependencyGraph(ra, escape)
        kinds = set().union(*ecdg.edge_types.values())
        assert DependencyType.DIRECT_CROSS in kinds or DependencyType.INDIRECT_CROSS in kinds

    def test_fixed_escape_has_no_cross(self, duato_ecdg):
        _, ecdg = duato_ecdg
        kinds = set().union(*ecdg.edge_types.values())
        assert DependencyType.DIRECT_CROSS not in kinds
        assert DependencyType.INDIRECT_CROSS not in kinds
