"""The pinned existence matrix over the whole scenario registry.

Companion to ``test_delta_matrix.py``: for every scenario-registry
topology the fixtures freeze (a) the existence decision -- verdict,
method, witness tier, semantic digest, and that both the channel-ordering
certificate and the synthesized witness machine-verify -- and (b) the
session-default link-flap re-decision through
:class:`repro.incremental.ExistenceSession`, including which steps the
monotone fast paths serve from the previous certificate and that every
incremental semantic digest equals a cold re-decision's.  Any drift in
the decision tiers, the witness synthesizer, or the incremental fast
paths shows up here as an explicit fixture diff.
"""

from __future__ import annotations

import pytest

from tests.golden_matrix import (
    existence_scenarios,
    load_existence_delta_fixture,
    load_existence_fixture,
    run_existence_case,
    run_existence_delta_case,
)

RECORDED = load_existence_fixture()
RECORDED_DELTAS = load_existence_delta_fixture()


def test_fixtures_cover_the_registry():
    assert sorted(RECORDED) == existence_scenarios()
    assert sorted(RECORDED_DELTAS) == existence_scenarios()


def test_every_scenario_topology_is_orderable():
    """The registry's pinned big picture: a deadlock-free routing relation
    exists on every scenario topology, decided authoritatively, and each
    witness synthesis certified (all pinned in the fixture rows)."""
    for name, row in RECORDED.items():
        assert row["exists"] is True, name
        assert row["authoritative"] is True, name
        assert row["certificate_verified"] is True, name
        assert row["witness_certified"] is True, name


@pytest.mark.parametrize("name", existence_scenarios())
def test_existence_decision_matches_fixture(name):
    assert name in RECORDED, f"regenerate fixture: missing row for {name}"
    assert run_existence_case(name) == RECORDED[name], f"{name}: decision drifted"


@pytest.mark.parametrize("name", existence_scenarios())
def test_existence_flap_matches_fixture(name):
    assert name in RECORDED_DELTAS, f"regenerate fixture: missing row for {name}"
    got = run_existence_delta_case(name)
    want = RECORDED_DELTAS[name]
    assert got == want, f"{name}: link-flap re-decision drifted"
    for step in got["steps"]:
        assert step["matches_cold"] is True, f"{name}: incremental != cold"
        assert step["frontier_violations"] == 0, f"{name}: frontier violation"
