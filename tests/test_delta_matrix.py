"""The pinned delta verdict matrix over the whole algorithm catalog.

Companion to ``test_verify_matrix.py``: for every catalog algorithm the
fixture freezes the session-default link-down and table-edit scenarios --
which deltas get derived, every per-condition verdict along the way, and
the verdict digests.  Any drift in the incremental engine's answers to
reconfiguration questions shows up here as an explicit fixture diff.
"""

from __future__ import annotations

import pytest

from tests.golden_matrix import delta_algorithms, load_delta_fixture, run_delta_case

RECORDED = load_delta_fixture()


def test_fixture_covers_the_catalog():
    assert sorted(RECORDED) == delta_algorithms()


@pytest.mark.parametrize("name", delta_algorithms())
def test_delta_scenarios_match_fixture(name):
    assert name in RECORDED, f"regenerate fixture: missing row for {name}"
    got = run_delta_case(name)
    want = RECORDED[name]
    assert got["baseline"] == want["baseline"], f"{name}: baseline drifted"
    for scenario in ("link-down", "table-edit"):
        assert got[scenario] == want[scenario], f"{name}: {scenario} drifted"
