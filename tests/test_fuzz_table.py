"""TableCase: materialization fidelity, edits, serialization."""

from __future__ import annotations

import pytest

from repro.fuzz.generators import CaseSpec, build_case, case_stream, stable_bits
from repro.fuzz.table import TableCase
from repro.verify.necsuf import verify

from tests.generative import SESSION_SEED

MASTER = stable_bits(SESSION_SEED, "fuzz-table-tests")


def _some_case(family: str = "irregular", i: int = 0):
    return build_case(CaseSpec(family, stable_bits(MASTER, family, i)))


def test_round_trip_preserves_theorem_verdict():
    """Materialize -> build must be verdict-preserving: that is what makes
    shrinking on tables legal."""
    stream = case_stream(MASTER, families=("irregular", "arbitrary", "faulty-mesh"))
    for _ in range(9):
        alg = build_case(next(stream))
        rebuilt = TableCase.materialize(alg).build()
        v0, v1 = verify(alg), verify(rebuilt)
        assert v0.deadlock_free == v1.deadlock_free
        assert v0.necessary_and_sufficient == v1.necessary_and_sufficient


def test_json_round_trip_is_identity():
    case = TableCase.materialize(_some_case())
    again = TableCase.from_json(case.to_json())
    assert again == case


def test_remove_channel_remaps_indices():
    case = TableCase.materialize(_some_case("arbitrary"))
    idx = len(case.channels) - 2
    smaller = case.remove_channel(idx)
    assert len(smaller.channels) == len(case.channels) - 1
    top = len(smaller.channels)
    for key, chans in smaller.routes.items():
        assert all(0 <= c < top for c in chans)
        waits = smaller.waits[key]
        assert waits and set(waits) <= set(chans)


def test_remove_node_drops_everything_touching_it():
    case = TableCase.materialize(_some_case("irregular", 2))
    node = case.num_nodes - 1
    smaller = case.remove_node(node)
    assert smaller.num_nodes == case.num_nodes - 1
    for src, dst, _vc in smaller.channels:
        assert src < smaller.num_nodes and dst < smaller.num_nodes
    for key in smaller.routes:
        head, _, dest = key.partition("->")
        assert int(dest) < smaller.num_nodes
        if head[0] != "c":
            assert int(head[1:]) < smaller.num_nodes


def test_drop_and_thin_entries():
    case = TableCase.materialize(_some_case("arbitrary", 1))
    key = sorted(case.routes)[0]
    dropped = case.drop_entry(key)
    assert key not in dropped.routes and key not in dropped.waits

    fat = next((k for k in sorted(case.routes) if len(case.routes[k]) > 1), None)
    if fat is not None:
        victim = case.routes[fat][0]
        thinned = case.thin_entry(fat, victim)
        assert victim not in thinned.routes[fat]
        assert thinned.waits[fat] and set(thinned.waits[fat]) <= set(thinned.routes[fat])


def test_build_rejects_disconnected_channel_list():
    from repro.topology.network import NetworkError

    case = TableCase(
        name="bad", num_nodes=3,
        channels=[(0, 1, 0), (1, 2, 0)],  # no path back to 0
        nd=True, wait_policy="any",
        routes={"n0->1": [0]}, waits={},
    )
    with pytest.raises(NetworkError):
        case.build()


def test_table_routing_missing_key_is_empty_set():
    case = TableCase.materialize(_some_case())
    alg = case.drop_entry(sorted(case.routes)[0]).build()
    net = alg.network
    # every query still answers (possibly with the empty set), never raises
    for node in net.nodes:
        for dest in net.nodes:
            if node != dest:
                alg.route(net.injection_channel(node), node, dest)
