"""Regression: simulation runs are reproducible flit-for-flit.

The benchmark tables (EXPERIMENTS.md) and the differential oracle tests both
assume a ``(algorithm, traffic, seed)`` triple pins down the whole run.  The
tests compare :meth:`repro.sim.SimStats.digest` -- an order-sensitive hash of
every delivery and consumption event -- between repeated runs in-process and
across interpreters with different ``PYTHONHASHSEED`` values, which catches
any unordered-set iteration sneaking into the simulator's hot paths.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.routing import make
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _run(seed: int, *, algorithm: str = "duato-mesh", cycles: int = 600) -> str:
    net = build_mesh((3, 3), num_vcs=2)
    ra = make(algorithm, net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=0.3, pattern="uniform", length=6,
                         stop_at=cycles - 200),
        SimConfig(seed=seed, deadlock_check_interval=16),
    )
    sim.run(cycles)
    assert sim.deadlock is None
    sim.drain()
    return sim.stats.digest()


@pytest.mark.parametrize("algorithm", ["e-cube-mesh", "duato-mesh", "west-first"])
def test_same_seed_byte_identical(algorithm):
    a = _run(17, algorithm=algorithm)
    b = _run(17, algorithm=algorithm)
    assert a == b


def test_different_seeds_diverge():
    assert _run(1) != _run(2)


def test_digest_reflects_events():
    net = build_mesh((3, 3))
    ra = make("e-cube-mesh", net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=0.2, pattern="uniform", length=4, stop_at=200),
        SimConfig(seed=3),
    )
    empty = sim.stats.digest()
    sim.run(400)
    sim.drain()
    done = sim.stats.digest()
    assert empty != done
    assert sim.stats.consumed_flits > 0


_SNIPPET = """
from repro.routing import make
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh

net = build_mesh((3, 3), num_vcs=2)
ra = make("duato-mesh", net)
sim = WormholeSimulator(
    ra,
    BernoulliTraffic(net, rate=0.3, pattern="uniform", length=6, stop_at=400),
    SimConfig(seed=9, deadlock_check_interval=16),
)
sim.run(600)
sim.drain()
print(sim.stats.digest())
"""


def test_digest_stable_across_hash_seeds():
    """Fresh interpreters with different PYTHONHASHSEEDs must agree: any
    str/object-keyed set iteration in a hot path would scramble event order."""
    digests = set()
    for hash_seed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", _SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.add(proc.stdout.strip())
    assert len(digests) == 1, f"digests diverged across hash seeds: {digests}"


# ----------------------------------------------------------------------
# the golden matrix: behavior preservation across engine rewrites
# ----------------------------------------------------------------------
from tests import golden_matrix  # noqa: E402

GOLDEN = sorted(golden_matrix.CASES)


@pytest.mark.parametrize("case", GOLDEN)
def test_golden_matrix_digest(case):
    """The digest for every matrix point must match the checked-in fixture.

    The fixture was recorded with the original per-object engine; a mismatch
    means an engine change altered observable behavior -- cycle timing,
    allocation order, delivery order -- not just its implementation.  See
    ``tests/golden_matrix.py`` for the matrix and regeneration instructions.
    """
    recorded = golden_matrix.load_fixture()
    assert case in recorded, f"fixture missing {case}; regenerate with --write"
    assert golden_matrix.run_case(case) == recorded[case]
