"""``python -m repro lint``: exit codes, baselines, case/corpus inputs.

The CLI contract CI relies on: rc 0 = clean (or everything baselined),
rc 1 = findings at/above ``--fail-on``, rc 2 = a target failed to build or
analyze.  SARIF output must be byte-identical across processes and hash
seeds -- that is what makes the uploaded artifact diffable.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.fuzz.table import TableCase
from repro.pipeline import build_topology
from repro.routing import make

REPO = Path(__file__).parent.parent


def run_lint(capsys, *argv: str) -> tuple[int, str]:
    rc = main(["lint", *argv])
    return rc, capsys.readouterr().out


# ----------------------------------------------------------------------
# exit codes
# ----------------------------------------------------------------------
def test_clean_target_exits_zero(capsys):
    rc, out = run_lint(capsys, "--algorithms", "e-cube-mesh")
    assert rc == 0
    assert "e-cube-mesh" in out and "definitely-free" in out


def test_error_finding_exits_one(capsys):
    rc, out = run_lint(capsys, "--algorithms", "relaxed-efa")
    assert rc == 1
    assert "RT201" in out


def test_fail_on_never_reports_but_exits_zero(capsys):
    rc, out = run_lint(capsys, "--algorithms", "relaxed-efa", "--fail-on", "never")
    assert rc == 0
    assert "RT201" in out


def test_fail_on_info_tightens_threshold(capsys):
    # ring-figure4 has only info/warning findings: clean under the default
    # threshold, failing under --fail-on info
    rc, _ = run_lint(capsys, "--algorithms", "ring-figure4")
    assert rc == 0
    rc, _ = run_lint(capsys, "--algorithms", "ring-figure4", "--fail-on", "info")
    assert rc == 1


def test_unknown_algorithm_is_a_usage_error():
    with pytest.raises(SystemExit):
        main(["lint", "--algorithms", "definitely-not-real"])


def test_unknown_rule_token_is_a_usage_error():
    with pytest.raises(SystemExit):
        main(["lint", "--algorithms", "e-cube-mesh", "--disable", "XX999"])


def test_disable_rule_drops_its_findings(capsys):
    rc, out = run_lint(capsys, "--algorithms", "relaxed-efa",
                       "--disable", "RT201")
    assert rc == 0
    assert "RT201" not in out


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------
def test_write_then_apply_baseline(tmp_path, capsys):
    base = tmp_path / "base.json"
    rc, out = run_lint(capsys, "--algorithms", "relaxed-efa",
                       "--write-baseline", str(base))
    assert rc == 0 and "wrote" in out
    doc = json.loads(base.read_text())
    assert doc["format"] == 1 and doc["suppressions"]
    rc, out = run_lint(capsys, "--algorithms", "relaxed-efa",
                       "--baseline", str(base), "--fail-on", "info")
    assert rc == 0
    assert "baseline-suppressed" in out


def test_committed_baseline_keeps_catalog_clean(capsys):
    rc, _ = run_lint(capsys, "--baseline", str(REPO / "lint-baseline.json"),
                     "--fail-on", "info")
    assert rc == 0


def test_corrupt_baseline_is_a_usage_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": 99, "suppressions": {}}')
    with pytest.raises(SystemExit):
        main(["lint", "--algorithms", "e-cube-mesh", "--baseline", str(bad)])


# ----------------------------------------------------------------------
# case files and corpus directories
# ----------------------------------------------------------------------
@pytest.fixture()
def case_file(tmp_path):
    net = build_topology("mesh", (3, 3), 1)
    case = TableCase.materialize(make("e-cube-mesh", net))
    path = tmp_path / "ecube33.json"
    path.write_text(json.dumps(case.to_json()))
    return path


def test_lint_single_case_file(case_file, capsys):
    rc, out = run_lint(capsys, "--case", str(case_file))
    assert rc == 0
    assert "ecube33" in out


def test_lint_corpus_directory(case_file, capsys):
    rc, out = run_lint(capsys, "--corpus", str(case_file.parent))
    assert rc == 0
    assert "1 targets analyzed" in out


def test_broken_case_file_exits_two(tmp_path, capsys):
    bad = tmp_path / "broken.json"
    bad.write_text('{"not": "a case"}')
    rc, out = run_lint(capsys, "--case", str(bad))
    assert rc == 2
    assert "ANALYSIS FAILED" in out


def test_empty_corpus_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["lint", "--corpus", str(tmp_path)])


# ----------------------------------------------------------------------
# output formats
# ----------------------------------------------------------------------
def test_json_format_parses_and_counts(capsys):
    rc, out = run_lint(capsys, "--algorithms", "relaxed-efa", "--format", "json")
    assert rc == 1
    doc = json.loads(out)
    assert doc["summary"]["targets"] == 1
    assert doc["summary"]["errors"] == 1


def test_sarif_format_and_output_file(tmp_path, capsys):
    out_path = tmp_path / "lint.sarif"
    rc, out = run_lint(capsys, "--algorithms", "ring-figure4",
                       "--format", "sarif", "--output", str(out_path))
    assert rc == 0 and "wrote sarif report" in out
    doc = json.loads(out_path.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_sarif_bytes_identical_across_hash_seeds(tmp_path):
    """Two processes with different PYTHONHASHSEEDs must emit the same bytes."""
    outs = []
    for seed in ("0", "31337"):
        path = tmp_path / f"seed{seed}.sarif"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint",
             "--algorithms", "ring-figure4,relaxed-efa,incoherent-example",
             "--format", "sarif", "--output", str(path), "--fail-on", "never"],
            env={"PYTHONPATH": str(REPO / "src"), "PYTHONHASHSEED": seed},
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        outs.append(path.read_bytes())
    assert outs[0] == outs[1]
