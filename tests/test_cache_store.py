"""The persistent verdict store: LRU bounds, hit accounting, corruption.

The re-verification service leans on :class:`VerificationCache` as a
long-lived store, which sharpens two contracts the batch pipeline never
stressed: a bounded store must evict in LRU order (including the on-disk
layer), and a corrupted or truncated persisted entry must behave as a miss
-- recomputed and overwritten -- never as an exception.
"""

from __future__ import annotations

import json

import pytest

from repro.pipeline import (
    VerificationCache,
    cached_verdict,
    verdict_to_payload,
    verdicts_digest,
)
from repro.routing import make
from repro.topology import build_mesh
from repro.verify import verify


def _algorithm():
    return make("west-first", build_mesh((3, 3)))


# ----------------------------------------------------------------------
# LRU bounds and hit accounting
# ----------------------------------------------------------------------
def test_eviction_in_lru_order(tmp_path):
    cache = VerificationCache(tmp_path, max_entries=2)
    cache.put("fp-a", "verdict:x", {"v": "a"})
    cache.put("fp-b", "verdict:x", {"v": "b"})
    cache.put("fp-c", "verdict:x", {"v": "c"})
    assert cache.evictions == 1
    assert cache.get("fp-a", "verdict:x") is None  # oldest gone
    assert cache.get("fp-b", "verdict:x") == {"v": "b"}
    assert cache.get("fp-c", "verdict:x") == {"v": "c"}
    # the evicted key's disk file is gone too, not just its memory slot
    assert not (tmp_path / f"{cache.key('fp-a', 'verdict:x')}.json").exists()


def test_hit_refreshes_lru_position(tmp_path):
    cache = VerificationCache(tmp_path, max_entries=2)
    cache.put("fp-a", "s", {"v": "a"})
    cache.put("fp-b", "s", {"v": "b"})
    assert cache.get("fp-a", "s") == {"v": "a"}  # touch a: b is now LRU
    cache.put("fp-c", "s", {"v": "c"})
    assert cache.get("fp-b", "s") is None
    assert cache.get("fp-a", "s") == {"v": "a"}


def test_unbounded_cache_never_evicts():
    cache = VerificationCache()
    for i in range(50):
        cache.put(f"fp-{i}", "s", {"i": i})
    assert len(cache) == 50
    assert cache.evictions == 0


def test_max_entries_must_be_positive():
    with pytest.raises(ValueError):
        VerificationCache(max_entries=0)


def test_hit_rate_counters(tmp_path):
    cache = VerificationCache(tmp_path)
    assert cache.hit_rate == 0.0
    cache.put("fp", "s", {"v": 1})
    assert cache.get("fp", "s") == {"v": 1}
    assert cache.get("fp-other", "s") is None
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5
    stats = cache.stats()
    assert stats["hit_rate"] == 0.5
    assert stats["entries"] == 1
    assert stats["stores"] == 1


# ----------------------------------------------------------------------
# corruption is a miss, never an exception
# ----------------------------------------------------------------------
def _entry_path(cache: VerificationCache, fp: str, stage: str):
    return cache.directory / f"{cache.key(fp, stage)}.json"


@pytest.mark.parametrize("garbage", [
    b"",                      # empty file
    b'{"verdict": tru',       # truncated mid-token
    b"not json at all",       # not JSON
    b'"just a string"',       # parses, but fails the dict/list type gate
    b"42",                    # ditto
])
def test_corrupted_disk_entry_is_a_miss(tmp_path, garbage):
    writer = VerificationCache(tmp_path)
    writer.put("fp", "verdict:theorem", {"v": 1})
    _entry_path(writer, "fp", "verdict:theorem").write_bytes(garbage)

    reader = VerificationCache(tmp_path)  # fresh memory: must read the file
    assert reader.get("fp", "verdict:theorem") is None
    assert reader.corrupt == 1
    assert reader.misses == 1 and reader.hits == 0
    # the bad file was deleted so the next run doesn't re-parse it
    assert not _entry_path(reader, "fp", "verdict:theorem").exists()


def test_corrupted_verdict_payload_reverifies_and_overwrites(tmp_path):
    """A JSON-parseable but structurally wrong verdict entry: the consumer
    treats it as a miss, re-verifies, and overwrites the bad entry."""
    ra = _algorithm()
    cache = VerificationCache(tmp_path)
    fp = ra.fingerprint()

    fresh = verify(ra)
    calls = []

    def compute():
        calls.append(1)
        return fresh

    # poison the persisted entry with a dict missing every verdict field
    cache.put(fp, "verdict:theorem", {"wrong": "shape"})
    reader = VerificationCache(tmp_path)
    verdict, was_cached = cached_verdict(ra, "theorem", compute, reader, fingerprint=fp)
    assert not was_cached
    assert calls, "corrupt entry must force recomputation"
    assert verdict.deadlock_free == fresh.deadlock_free
    assert reader.corrupt == 1
    # the store now holds the good entry: a second lookup is a real hit
    verdict2, was_cached2 = cached_verdict(ra, "theorem", compute, reader, fingerprint=fp)
    assert was_cached2
    assert verdict2.deadlock_free == fresh.deadlock_free
    assert len(calls) == 1


def test_note_corrupt_rebalances_hit_accounting():
    cache = VerificationCache()
    cache.put("fp", "s", {"v": 1})
    assert cache.get("fp", "s") == {"v": 1}  # counted as a hit...
    cache.note_corrupt("fp", "s")            # ...then found to be garbage
    assert cache.hits == 0 and cache.misses == 1
    assert cache.corrupt == 1
    assert cache.get("fp", "s") is None      # entry is gone everywhere


# ----------------------------------------------------------------------
# verdict digests (the equivalence contract's observable)
# ----------------------------------------------------------------------
def test_verdicts_digest_is_order_sensitive_and_stable():
    ra = _algorithm()
    v = verify(ra)
    d1 = verdicts_digest([v])
    assert d1 == verdicts_digest([v])
    assert d1 != verdicts_digest([v, v])
    assert len(d1) == 40  # blake2b-20 hex


def test_verdict_payload_roundtrip_preserves_digest():
    """Digest equality must survive a cache round trip (slim evidence is
    idempotent), or cache hits would report different digests."""
    from repro.pipeline import payload_to_verdict

    ra = _algorithm()
    v = verify(ra)
    restored = payload_to_verdict(json.loads(json.dumps(verdict_to_payload(v))))
    assert verdicts_digest([restored]) == verdicts_digest([v])
