"""Planted-bug variants: proof the oracle stack has teeth.

Each planted stack swaps one production checker for a deliberately broken
variant; the fuzzer must catch the difference on real generated cases.
The seeds pinned here were found by fixed-seed campaigns
(``python -m repro fuzz --stack planted:cwg-immediate``) and are regression
anchors: they stay valid regardless of the session seed.
"""

from __future__ import annotations

import pytest

from repro.deps import ExtendedChannelDependencyGraph, escape_by_vc
from repro.fuzz.generators import CaseSpec, build_case
from repro.fuzz.oracles import REAL_STACK, run_stack
from repro.fuzz.planted import (
    ImmediateWaitCWG,
    NoIndirectECDG,
    PLANTED_VARIANTS,
    planted_stack,
)
from repro.routing import make
from repro.topology import build_mesh

#: arbitrary-family cases where the immediate-wait CWG wrongly certifies
#: freedom while the enumerated Theorem 2 proves deadlock
CWG_IMMEDIATE_CATCHES = (3221492823, 2254118097, 1076053663)

#: escape-wild case whose immediate-wait CWG is a strict subgraph of the
#: real one; formerly a broken-theorem-vs-simulator catch, now a
#: robustness witness (see test_cwg_immediate_harmless_on_escape_wild)
CWG_IMMEDIATE_SIM_CATCH = 2852189723


def _edge_pairs(graph) -> set[tuple[int, int]]:
    return {(u, v) for u, v, _mask in graph.dep.iter_edges()}


def test_planted_variants_registry():
    assert set(PLANTED_VARIANTS) == {
        "cwg-immediate", "duato-no-indirect", "incremental-stale-scc",
        "existence-ignore-scc",
    }
    with pytest.raises(ValueError, match="unknown planted variant"):
        planted_stack("no-such-variant")


@pytest.mark.parametrize("seed", CWG_IMMEDIATE_CATCHES)
def test_cwg_immediate_caught_on_arbitrary_cases(seed):
    alg = build_case(CaseSpec("arbitrary", seed))
    broken = run_stack(alg, planted_stack("cwg-immediate"))
    assert "free-vs-deadlock:theorem<>theorem-enum" in broken.discrepancy_keys()
    # the production stack agrees with itself on the very same case
    assert run_stack(alg, REAL_STACK).clean


@pytest.mark.slow
def test_cwg_immediate_harmless_on_escape_wild():
    """ANY-policy verdicts no longer trust the (sabotaged) CWG edges.

    This seed used to be the planted bug's theorem-vs-simulator catch: the
    immediate-wait CWG is missing downstream edges (see
    test_immediate_wait_cwg_misses_downstream_edges) and the old Theorem 3
    certified freedom from it while the simulator deadlocked.  Theorem 3
    now decides wait-on-any relations with the blocked-chain and
    configuration searches, which read the transition cache rather than the
    dependency graph, so the broken stack reaches the correct verdict and
    stays clean.  For escape-wild ANY cases (waits == routes) this is
    structural: a real deadlock forces a cycle even in the immediate-wait
    graph, so the sabotage cannot flip a verdict -- a 370k-seed campaign
    confirms no discrepancy fires.  The variant's remaining teeth are the
    SPECIFIC-policy catches above and the shipped corpus controls.
    """
    alg = build_case(CaseSpec("escape-wild", CWG_IMMEDIATE_SIM_CATCH))
    broken = run_stack(alg, planted_stack("cwg-immediate"))
    assert broken.clean
    assert run_stack(alg, REAL_STACK).clean


def test_immediate_wait_cwg_misses_downstream_edges():
    """The broken CWG is a strict subgraph on a relation with downstream
    waiting (the bug is observable in the graph itself)."""
    alg = build_case(CaseSpec("escape-wild", CWG_IMMEDIATE_SIM_CATCH))
    from repro.core import ChannelWaitingGraph

    assert _edge_pairs(ImmediateWaitCWG(alg)) < _edge_pairs(ChannelWaitingGraph(alg))


def test_no_indirect_ecdg_is_observably_weaker():
    """Dropping INDIRECT dependency types must lose edges on an adaptive
    algorithm with escape channels.

    The variant is not generatively catchable through ``search_escape``
    alone -- Duato's coherence gate rejects the nonminimal families that
    exercise indirect dependencies -- so this pins the bug at the graph
    level (the broken ECDG is a strict subgraph of the real one); the
    shipped escape-cycle-planted corpus control pins it at stack level.
    """
    alg = make("duato-mesh", build_mesh((3, 3), num_vcs=2))
    escape = escape_by_vc(alg)
    real = ExtendedChannelDependencyGraph(alg, escape)
    broken = NoIndirectECDG(alg, escape)
    assert _edge_pairs(broken) < _edge_pairs(real)


def test_no_indirect_ecdg_wrongly_acyclic_on_cyclic_real_graph():
    """On the pinned escape-wild case the real ECDG is cyclic (no Duato
    certificate) while the broken one is acyclic -- the exact shape that
    would make a no-indirect Duato claim freedom for a deadlockable net."""
    alg = build_case(CaseSpec("escape-wild", CWG_IMMEDIATE_SIM_CATCH))
    escape = escape_by_vc(alg)
    assert not ExtendedChannelDependencyGraph(alg, escape).dep.summary()["acyclic"]
    assert NoIndirectECDG(alg, escape).dep.summary()["acyclic"]


# ----------------------------------------------------------------------
# the escape-cycle-planted corpus control for duato-no-indirect
# ----------------------------------------------------------------------
def _shipped_no_indirect_entry():
    import json
    from pathlib import Path

    from repro.fuzz.corpus import CorpusEntry

    corpus = Path(__file__).resolve().parents[1] / "corpus"
    path = corpus / "planted-duato-no-indirect-770f88ea621a.json"
    return CorpusEntry.from_json(json.loads(path.read_text()))


def test_no_indirect_caught_by_shipped_corpus_control():
    """The committed escape-cycle-planted table makes the sabotaged Duato
    check claim freedom while the theorem checker constructs a True Cycle
    (and the adversarial simulator deadlocks): the full-stack catch the
    coherence gate denies to the generative families.  The production
    stack must stay quiet on the very same table -- the real ECDG sees the
    indirect escape cycle and certifies nothing."""
    entry = _shipped_no_indirect_entry()
    alg = entry.table.build()
    broken = run_stack(alg, planted_stack("duato-no-indirect"))
    assert frozenset(entry.discrepancy_keys) <= broken.discrepancy_keys()
    assert "free-vs-deadlock:duato<>theorem" in broken.discrepancy_keys()
    assert run_stack(alg, REAL_STACK).clean


def test_no_indirect_corpus_control_cycle_is_indirect_only():
    """The planted escape cycle exists only through INDIRECT dependencies:
    the direct-only graph is acyclic (so the broken builder certifies the
    vc0 escape) while the full ECDG is cyclic, and Duato's applicability
    gates all hold -- this is a legal R(n, d) relation, not a degenerate."""
    from repro.deps import DependencyType
    from repro.verify.duato import applicability, search_escape

    alg = _shipped_no_indirect_entry().table.build()
    ok, why = applicability(alg)
    assert ok, why
    escape = escape_by_vc(alg)
    real = ExtendedChannelDependencyGraph(alg, escape)
    assert not real.dep.is_acyclic()
    assert NoIndirectECDG(alg, escape).dep.is_acyclic()
    indirect_edges = {e for e, kinds in real.edge_types.items()
                      if kinds == {DependencyType.INDIRECT}}
    assert len(indirect_edges) >= 2  # the two chord-made cycle edges
    assert search_escape(alg).deadlock_free is False
    assert search_escape(alg, ecdg_cls=NoIndirectECDG).deadlock_free is True


# ----------------------------------------------------------------------
# the per-edge-scope corpus control for existence-ignore-scc
# ----------------------------------------------------------------------
def _shipped_ignore_scc_entry():
    import json
    from pathlib import Path

    from repro.fuzz.corpus import CorpusEntry

    corpus = Path(__file__).resolve().parents[1] / "corpus"
    path = corpus / "planted-existence-ignore-scc-98d1f93076fa.json"
    return CorpusEntry.from_json(json.loads(path.read_text()))


def test_ignore_scc_caught_by_shipped_corpus_control():
    """On the unidirectional 3-ring the per-edge obstruction scope finds no
    self-loop constraint (the real obstruction is a 3-cycle of forced
    precedences), so the broken decider claims YES with an unverified
    cid-order schedule; the synthesized witness is unroutable for at least
    one pair, the theorem checker rejects it, and the existence oracle's
    self-check fires.  The production stack stays quiet: the real decider
    says NO and every checker agrees the shipped relation deadlocks."""
    entry = _shipped_ignore_scc_entry()
    alg = entry.table.build()
    broken = run_stack(alg, planted_stack("existence-ignore-scc"))
    assert frozenset(entry.discrepancy_keys) <= broken.discrepancy_keys()
    assert "existence-divergence:existence<>existence" in broken.discrepancy_keys()
    assert run_stack(alg, REAL_STACK).clean


def test_ignore_scc_decider_is_observably_broken():
    """The bug at decision level: the real decider proves NO on the
    unidirectional ring (forced-precedence 3-cycle, no self-loop), the
    per-edge scope flips it to an uncertified YES."""
    from repro.fuzz.planted import _decide_ignore_scc
    from repro.verify import decide_existence
    from repro.verify.existence import verify_schedule

    net = _shipped_ignore_scc_entry().table.build().network
    real = decide_existence(net)
    assert real.exists is False and real.authoritative
    broken = _decide_ignore_scc(net)
    assert broken.exists is True and broken.method == "per-edge"
    assert broken.schedule is not None
    assert not verify_schedule(net, broken.schedule)
