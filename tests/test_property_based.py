"""Property-based invariants of the CWG theory on random networks.

Hypothesis generates small strongly connected networks (2-4 nodes, 1-3
virtual channels per link) paired with seeded minimal routing relations
(:mod:`tests.generative`), and checks invariants the theorems themselves
guarantee:

* Theorem 3 "deadlock-free" implies the exhaustive single-wait
  TrueCycleSearch finds no True Cycle (such a cycle survives *every*
  wait-connected CWG', so its existence refutes any Theorem 3 certificate);
* the Section 8 reduction never removes an edge that breaks
  wait-connectivity (replayed step by step against Definition 10);
* Theorem 2's direct witness-segment search and its enumerate-then-classify
  variant agree on every verdict;
* Theorem 1 (sufficiency only) never certifies an algorithm the full
  condition refutes;
* fingerprints are deterministic across rebuilds and change when the
  routing table changes.

All tests run under the derandomized "ci" profile (see conftest.py), so a
failing example is reproducible by re-running the same test.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cwg import ChannelWaitingGraph
from repro.core.cycles import CycleExplosion, find_one_cycle
from repro.core.deadlock_search import TrueCycleSearch
from repro.core.reduction import CWGReducer
from repro.routing.relation import WaitPolicy
from repro.verify import theorem1, theorem2, theorem3, verify
from tests.generative import (
    RandomMinimalRouting,
    build_random_network,
    network_specs,
    routed_networks,
)

seeds = st.integers(min_value=0, max_value=2**16)


@pytest.mark.slow
@settings(max_examples=50)
@given(routed_networks(wait_policy=WaitPolicy.ANY))
def test_theorem3_free_implies_no_single_wait_true_cycle(pair):
    """A single-wait True Cycle deadlocks under ANY-wait semantics and
    survives every wait-connected CWG', so Theorem 3 freedom excludes it."""
    net, ra = pair
    verdict = theorem3(ra, cycle_limit=2_000, max_nodes=100_000)
    if not (verdict.deadlock_free and verdict.necessary_and_sufficient):
        return
    cwg = ChannelWaitingGraph(ra)
    outcome = TrueCycleSearch(cwg, single_wait_only=True, max_nodes=100_000).search()
    if not outcome.exhaustive:
        return  # budget hit: the invariant is vacuous for this example
    assert outcome.true_cycle is None, (
        f"{ra.name} on {net.name}: Theorem 3 certified deadlock freedom but a "
        f"single-wait True Cycle exists: {outcome.true_cycle}"
    )


@settings(max_examples=40)
@given(routed_networks(wait_policy=WaitPolicy.ANY))
def test_reduction_never_breaks_wait_connectivity(pair):
    """Replay of the Section 8 trace: after every 'remove' step the removal
    set must still satisfy Definition 10, and the final set must too."""
    net, ra = pair
    cwg = ChannelWaitingGraph(ra)
    if find_one_cycle(cwg.graph()) is None:
        return  # acyclic: the reduction is trivially CWG' = CWG
    reducer = CWGReducer(cwg, cycle_limit=2_000)
    try:
        result = reducer.run()
    except CycleExplosion:
        return  # tiny networks should not hit this; treat as vacuous if so
    removed: set = set()
    for step in result.steps:
        if step.action == "remove":
            removed.add(step.edge)
            assert reducer.is_wait_connected(frozenset(removed)), (
                f"{ra.name} on {net.name}: reduction removed {step.edge} "
                "and broke wait-connectivity"
            )
        elif step.action == "backtrack" and step.edge is not None:
            removed.discard(step.edge)
    if result.success:
        assert reducer.is_wait_connected(result.removed)


@settings(max_examples=50)
@given(routed_networks(wait_policy=WaitPolicy.SPECIFIC))
def test_theorem2_search_agrees_with_enumeration(pair):
    """The direct witness-segment search and enumerate-then-classify are two
    deciders for the same question; their verdicts must match."""
    net, ra = pair
    direct = theorem2(ra, max_nodes=100_000)
    try:
        enumerated = theorem2(ra, enumerate_cycles=True, cycle_limit=5_000)
    except CycleExplosion:
        return
    if not (direct.necessary_and_sufficient and enumerated.necessary_and_sufficient):
        return  # one side ran out of budget or hit an undetermined cycle
    assert direct.deadlock_free == enumerated.deadlock_free, (
        f"{ra.name} on {net.name}: direct search says "
        f"{direct.deadlock_free} ({direct.reason}) but enumeration says "
        f"{enumerated.deadlock_free} ({enumerated.reason})"
    )


@settings(max_examples=40)
@given(routed_networks())
def test_theorem1_certificates_are_sound(pair):
    """Theorem 1 is sufficiency-only: whenever it certifies, the full
    necessary-and-sufficient condition must certify too."""
    net, ra = pair
    if theorem1(ra).deadlock_free:
        full = verify(ra)
        assert full.deadlock_free, (
            f"{ra.name} on {net.name}: Theorem 1 certified (acyclic CWG) but "
            f"the iff condition refutes: {full.reason}"
        )


@settings(max_examples=30)
@given(network_specs(), seeds)
def test_fingerprints_deterministic_and_table_sensitive(spec, seed):
    """Rebuilding the same (network, relation) gives the same fingerprint;
    fingerprints differ exactly when the routing tables differ."""
    net_a = build_random_network(*spec)
    net_b = build_random_network(*spec)
    ra_a = RandomMinimalRouting(net_a, seed)
    ra_b = RandomMinimalRouting(net_b, seed)
    assert net_a.fingerprint() == net_b.fingerprint()
    assert ra_a.fingerprint() == ra_b.fingerprint()

    other = RandomMinimalRouting(net_a, seed + 1)
    tables_equal = all(
        ra_a.route_nd(n, d) == other.route_nd(n, d)
        and ra_a.waiting_channels(None, n, d) == other.waiting_channels(None, n, d)
        for n in range(net_a.num_nodes)
        for d in range(net_a.num_nodes)
    )
    fingerprints_equal = ra_a.fingerprint() == other.fingerprint()
    assert fingerprints_equal == tables_equal
