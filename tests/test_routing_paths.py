"""Path enumeration under routing relations."""

from math import factorial

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    DimensionOrderMesh,
    UnrestrictedMinimal,
    count_minimal_paths,
    count_paths,
    enumerate_paths,
    has_route,
    path_nodes,
)
from repro.topology import build_hypercube, build_mesh, hamming_distance


def test_trivial_pair_yields_empty_path(mesh33):
    ra = DimensionOrderMesh(mesh33)
    assert list(enumerate_paths(ra, 4, 4)) == [()]


def test_paths_are_contiguous_and_end_at_dest(mesh33):
    ra = UnrestrictedMinimal(mesh33)
    for p in enumerate_paths(ra, 0, 8):
        nodes = path_nodes(p, 0)
        assert nodes[0] == 0 and nodes[-1] == 8


def test_unrestricted_hypercube_counts_are_factorial():
    h = build_hypercube(3)
    ra = UnrestrictedMinimal(h)
    for s in h.nodes:
        for d in h.nodes:
            if s != d:
                k = hamming_distance(s, d)
                assert count_minimal_paths(ra, s, d, k) == factorial(k)


def test_vc_multiplicity_counts():
    h = build_hypercube(2, num_vcs=2)
    ra = UnrestrictedMinimal(h)
    # distance 2, 2 VCs: 2! * 2^2 = 8 virtual paths
    assert count_paths(ra, 0, 3) == 8


def test_limit_truncates(mesh33):
    ra = UnrestrictedMinimal(mesh33)
    got = list(enumerate_paths(ra, 0, 8, limit=2))
    assert len(got) == 2


def test_has_route(mesh33):
    ra = DimensionOrderMesh(mesh33)
    assert has_route(ra, 0, 8)
    assert has_route(ra, 8, 0)


def test_non_simple_requires_bound(mesh33):
    ra = DimensionOrderMesh(mesh33)
    with pytest.raises(ValueError):
        list(enumerate_paths(ra, 0, 8, simple=False))


def test_path_nodes_validates(mesh33):
    a = mesh33.channels_between(0, 1)[0]
    b = mesh33.channels_between(4, 5)[0]
    with pytest.raises(ValueError):
        path_nodes((a, b), 0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8))
def test_ecube_exactly_one_path_property(s, d):
    m = build_mesh((3, 3))
    ra = DimensionOrderMesh(m)
    expected = 0 if s == d else 1
    paths = [p for p in enumerate_paths(ra, s, d) if p != ()]
    assert len(paths) == expected
