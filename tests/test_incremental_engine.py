"""Unit tests for the incremental engine's load-bearing pieces.

The metamorphic battery (``test_incremental_equivalence.py``) checks the
end-to-end contract; this file pins the mechanisms it rests on: the
delta-aware Tarjan refresh and its differential tripwire, the dirty-SCC
frontier, the transition-cache seams, delta (de)serialization, table-edit
validation, and the planted ``stale_scc`` knob actually being unsound.
"""

from __future__ import annotations

import pytest

from repro.core.cwg import ChannelWaitingGraph
from repro.core.depgraph import DepGraph, dirty_components
from repro.core.transitions import TransitionCache
from repro.deps.cdg import ChannelDependencyGraph
from repro.incremental import (
    IncrementalSession,
    LinkDown,
    LinkUp,
    TableEdit,
    VcAdd,
    default_fault_pair,
    default_table_edit,
    delta_from_json,
    delta_to_json,
    format_delta,
    parse_delta,
    parse_table_key,
)
from repro.routing import make
from repro.topology import build_mesh


def _ra(name: str = "west-first", dims=(3, 3)):
    return make(name, build_mesh(dims))


# ----------------------------------------------------------------------
# DepGraph.refresh_scc_from + dirty_components
# ----------------------------------------------------------------------
def _two_cycles_graph(net):
    # two disjoint 2-cycles over channel ids 0..3, everything else isolated
    return DepGraph(net, {(0, 1): 1, (1, 0): 1, (2, 3): 1, (3, 2): 1})


def test_payload_only_delta_transfers_scc_verbatim():
    net = build_mesh((2, 2))
    old = _two_cycles_graph(net)
    old_scc = old.scc()
    new = DepGraph(net, {(0, 1): 3, (1, 0): 7, (2, 3): 1, (3, 2): 1})
    stats = new.refresh_scc_from(old, touched=[0, 1])
    assert stats["scc_transferred"] == 1
    assert stats["scc_frontier_violations"] == 0
    assert new.scc() is old_scc  # the very same decomposition object


def test_structural_delta_recomputes_canonically_within_frontier():
    net = build_mesh((2, 2))
    old = _two_cycles_graph(net)
    new = DepGraph(net, {(0, 1): 1, (2, 3): 1, (3, 2): 1})  # cycle 0<->1 broken
    stats = new.refresh_scc_from(old, touched=[0, 1])
    assert stats["scc_transferred"] == 0
    assert stats["scc_frontier_violations"] == 0
    assert stats["scc_dirty_components"] == 1   # only the broken cycle
    assert stats["scc_dirty_vertices"] == 2
    assert stats["scc_reused_components"] >= 1  # the 2<->3 cycle survived
    # labels are the canonical decomposition, identical to a cold build
    cold = DepGraph(net, {(0, 1): 1, (2, 3): 1, (3, 2): 1})
    assert new.scc() == cold.scc()


def test_frontier_tripwire_fires_on_a_lying_touched_set():
    """Passing ``touched`` from a delta that was not the actual structural
    change makes the frontier unsound -- the differential guard must say so
    (it is the counter the incremental session asserts to be zero)."""
    net = build_mesh((2, 2))
    old = _two_cycles_graph(net)
    new = DepGraph(net, {(0, 1): 1, (2, 3): 1, (3, 2): 1})
    stats = new.refresh_scc_from(old, touched=[2])  # lie: 0<->1 changed
    assert stats["scc_frontier_violations"] > 0


def test_vertex_count_change_marks_everything_dirty():
    old = _two_cycles_graph(build_mesh((2, 2)))
    bigger = build_mesh((3, 3))
    new = DepGraph(bigger, {(0, 1): 1})
    stats = new.refresh_scc_from(old, touched=[0])
    assert stats["scc_dirty_vertices"] == new.num_vertices
    assert stats["scc_reused_components"] == 0


def test_dirty_components_is_the_touched_closure_intersection():
    net = build_mesh((2, 2))
    dep = _two_cycles_graph(net)
    labels, _ = dep.scc()
    assert dirty_components(dep, [0]) == {labels[0]}
    assert labels[2] not in dirty_components(dep, [0, 1])
    # a chain comp_a -> comp_b -> comp_c: touching a and c dirties b too
    chain = DepGraph(net, {(0, 1): 1, (1, 0): 1, (1, 2): 1, (2, 3): 1, (3, 2): 1})
    lab, _ = chain.scc()
    dirty = dirty_components(chain, [0, 3])
    assert {lab[0], lab[2]} <= dirty
    assert lab[1] in dirty or lab[1] == lab[0]  # the bridge vertex is between them
    assert dirty_components(chain, []) == set()


# ----------------------------------------------------------------------
# transition-cache seams and from_depgraph constructors
# ----------------------------------------------------------------------
def test_transition_cache_peek_store_invalidate():
    ra = _ra()
    tc = TransitionCache(ra)
    assert tc.peek(0) is None
    dt = tc[0]
    assert tc.peek(0) is dt
    tc.invalidate(0)
    assert tc.peek(0) is None
    tc.invalidate(0)  # absent: a no-op, not an error
    rebuilt = tc[0]
    assert rebuilt is not dt
    tc.store(0, dt)
    assert tc.peek(0) is dt


@pytest.mark.parametrize("cls", [ChannelWaitingGraph, ChannelDependencyGraph])
def test_from_depgraph_reuses_the_kernel_verbatim(cls):
    ra = _ra()
    built = cls(ra)
    adopted = cls.from_depgraph(ra, built.dep, transitions=built.transitions)
    assert adopted.dep is built.dep
    assert adopted.dep.indptr == built.dep.indptr
    assert adopted.kind == built.kind


# ----------------------------------------------------------------------
# delta (de)serialization
# ----------------------------------------------------------------------
@pytest.mark.parametrize("delta", [
    LinkDown(0, 1, 0),
    LinkUp(3, 2, 1),
    TableEdit("n4->1", routes=(10, 11)),
    TableEdit("n4->1", routes=(10,), waits=(10,)),
    TableEdit("c7->0"),   # a clear
    VcAdd(2),
])
def test_delta_roundtrips(delta):
    assert parse_delta(format_delta(delta)) == delta
    assert delta_from_json(delta_to_json(delta)) == delta


@pytest.mark.parametrize("text", [
    "nonsense", "down:1-2", "down:1>2", "edit:zz->3", "vc:2", "flip:0>1@0",
])
def test_malformed_compact_deltas_are_rejected(text):
    with pytest.raises(ValueError):
        parse_delta(text)


def test_parse_table_key():
    assert parse_table_key("n3->7") == ("n", 3, 7)
    assert parse_table_key("c12->0") == ("c", 12, 0)
    assert parse_table_key("i5->2") == ("i", 5, 2)
    with pytest.raises(ValueError):
        parse_table_key("x1->2")


# ----------------------------------------------------------------------
# table-edit validation (the session refuses nonsense instead of diverging)
# ----------------------------------------------------------------------
def test_table_edit_validation_errors():
    session = IncrementalSession(_ra())  # ND-form relation
    with pytest.raises(ValueError, match="does not match form"):
        session.apply(TableEdit("c3->1", routes=(0,)))
    with pytest.raises(ValueError, match="out of range"):
        session.apply(TableEdit("n4->99", routes=(0,)))
    with pytest.raises(ValueError, match="routes at the destination"):
        session.apply(TableEdit("n4->4", routes=(0,)))
    with pytest.raises(ValueError, match="does not leave node"):
        # channel 0 does not originate at node 4
        out = [c.cid for c in session.base.network.out_channels(0) if c.is_link]
        session.apply(TableEdit("n4->1", routes=(out[0],)))
    with pytest.raises(ValueError, match="subset of the route set"):
        out4 = [c.cid for c in session.base.network.out_channels(4) if c.is_link]
        session.apply(TableEdit("n4->1", routes=(out4[0],), waits=(out4[1],)))


def test_unknown_link_deltas_are_rejected():
    session = IncrementalSession(_ra())
    with pytest.raises(ValueError, match="no link channel"):
        session.apply(LinkDown(0, 8, 0))  # nodes not adjacent in a 3x3 mesh
    with pytest.raises(ValueError, match="no link channel"):
        session.apply(LinkUp(0, 0, 5))
    with pytest.raises(ValueError, match="needs a session built from a JobSpec"):
        session.apply(VcAdd(1))


def test_clearing_an_absent_override_is_a_noop():
    session = IncrementalSession(_ra())
    base = session.baseline()
    cleared = session.reverify(TableEdit("n4->1"))  # nothing to clear
    assert cleared.digest == base.digest


# ----------------------------------------------------------------------
# session-level frontier accounting and the planted knob
# ----------------------------------------------------------------------
def test_session_frontier_counters_stay_clean():
    session = IncrementalSession(_ra())
    session.baseline()
    down, up = default_fault_pair(session)
    edit, revert = default_table_edit(session)
    for delta in (down, up, edit, revert):
        session.reverify(delta)
    counters = session.metrics.counters
    assert counters.get("cwg_scc_frontier_violations", 0) == 0
    assert counters.get("cdg_scc_frontier_violations", 0) == 0
    # the machinery actually reused work at some point in the sweep
    assert counters.get("cwg_scc_reused_components", 0) > 0


def test_default_delta_derivations_are_deterministic():
    a, b = IncrementalSession(_ra()), IncrementalSession(_ra())
    assert default_fault_pair(a) == default_fault_pair(b)
    assert default_table_edit(a) == default_table_edit(b)
    down, up = default_fault_pair(a)
    assert (down.src, down.dst, down.vc) == (up.src, up.dst, up.vc)
    edit, revert = default_table_edit(a)
    assert revert == TableEdit(edit.key)


def test_stale_scc_knob_is_observably_unsound():
    """``stale_scc=True`` (the fuzz campaign's planted variant) skips the
    dirty-destination expansion on link faults; the session must then
    diverge from a full rebuild -- if it did not, the planted bug would be
    undetectable and the campaign's negative control would prove nothing."""
    broken = IncrementalSession(_ra(), stale_scc=True)
    broken.baseline()
    down, _up = default_fault_pair(broken)
    result = broken.reverify(down)
    full = broken.full_check()
    assert result.digest != full.digest

    honest = IncrementalSession(_ra())
    honest.baseline()
    assert honest.reverify(down).digest == honest.full_check().digest
