"""Turn-model algorithms: negative-first, west-first, north-last."""

import pytest

from repro.deps import ChannelDependencyGraph
from repro.routing import (
    NegativeFirst,
    NorthLast,
    RoutingError,
    WestFirst,
    is_coherent,
    is_connected,
    is_minimal,
)
from repro.topology import build_mesh


@pytest.mark.parametrize("cls", [NegativeFirst, WestFirst, NorthLast])
def test_connected_minimal_coherent(cls, mesh33):
    ra = cls(mesh33)
    assert is_connected(ra)
    assert is_minimal(ra)
    assert is_coherent(ra)


@pytest.mark.parametrize("cls", [NegativeFirst, WestFirst, NorthLast])
def test_acyclic_cdg(cls, mesh44):
    assert ChannelDependencyGraph(cls(mesh44)).is_acyclic()


class TestNegativeFirst:
    def test_negative_hops_first(self, mesh33):
        ra = NegativeFirst(mesh33)
        # 5=(2,1) -> 3=(0,1): needs -x only
        out = ra.route_nd(5, 3)
        assert all(c.meta["sign"] == -1 for c in out)
        # 2=(2,0) -> 3=(0,1): needs -x and +y; only -x offered first
        out = ra.route_nd(2, 3)
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, -1)}

    def test_adaptive_among_negatives(self, mesh33):
        ra = NegativeFirst(mesh33)
        out = ra.route_nd(8, 0)  # needs -x and -y
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, -1), (1, -1)}

    def test_adaptive_among_positives(self, mesh33):
        ra = NegativeFirst(mesh33)
        out = ra.route_nd(0, 8)
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, 1), (1, 1)}

    def test_works_in_3d(self, mesh332):
        ra = NegativeFirst(mesh332)
        assert is_connected(ra)


class TestWestFirst:
    def test_west_hops_first(self, mesh33):
        ra = WestFirst(mesh33)
        out = ra.route_nd(5, 0)  # (2,1) -> (0,0): needs -x,-y
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, -1)}

    def test_adaptive_otherwise(self, mesh33):
        ra = WestFirst(mesh33)
        out = ra.route_nd(0, 8)
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, 1), (1, 1)}

    def test_2d_only(self, mesh332):
        with pytest.raises(RoutingError):
            WestFirst(mesh332)


class TestNorthLast:
    def test_north_only_when_nothing_else(self, mesh33):
        ra = NorthLast(mesh33)
        out = ra.route_nd(0, 8)  # needs +x,+y: +y withheld
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, 1)}
        out = ra.route_nd(6, 8)  # (0,2) -> (2,2): needs +x only
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, 1)}
        out = ra.route_nd(2, 8)  # (2,0) -> (2,2): needs +y only
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(1, 1)}

    def test_south_adaptive(self, mesh33):
        ra = NorthLast(mesh33)
        out = ra.route_nd(8, 0)  # needs -x,-y: both allowed
        assert {(c.meta["dim"], c.meta["sign"]) for c in out} == {(0, -1), (1, -1)}

    def test_2d_only(self, mesh332):
        with pytest.raises(RoutingError):
            NorthLast(mesh332)
