"""The integer-indexed dependency-graph kernel (repro.core.depgraph)."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.depgraph import (
    DepGraph,
    bits,
    find_cycle_adj,
    iter_cycles_adj,
    mask_of_ints,
    tarjan_scc,
)


class FakeNetwork:
    """Just enough network for DepGraph: a channel-id space."""

    def __init__(self, num_channels: int) -> None:
        self.num_channels = num_channels

    def channel(self, cid: int) -> int:
        return cid


def dg(n, edges, masks=None):
    edge_masks = {e: 1 for e in edges}
    if masks:
        edge_masks.update(masks)
    return DepGraph(FakeNetwork(n), edge_masks)


def edge_sets(n):
    pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
    return st.sets(pairs, max_size=n * n)


def canon(cycle):
    k = cycle.index(min(cycle))
    return tuple(cycle[k:] + cycle[:k])


class TestBits:
    def test_roundtrip(self):
        assert list(bits(mask_of_ints([0, 3, 64, 200]))) == [0, 3, 64, 200]

    def test_empty(self):
        assert list(bits(0)) == []
        assert mask_of_ints([]) == 0

    @given(st.sets(st.integers(0, 300)))
    def test_property(self, values):
        assert set(bits(mask_of_ints(values))) == values


class TestTarjan:
    def test_labels_reverse_topological(self):
        # 0 -> 1 -> 2, plus a 2-cycle {3, 4} fed by 2
        indptr, indices = [0, 1, 2, 3, 4, 5], [1, 2, 3, 4, 3]
        labels, ncomp = tarjan_scc(5, indptr, indices)
        assert ncomp == 4
        assert labels[3] == labels[4]
        # every inter-component edge points to a smaller label
        assert labels[0] > labels[1] > labels[2] > labels[3]

    @given(st.integers(1, 8).flatmap(lambda n: st.tuples(st.just(n), edge_sets(n))))
    def test_matches_networkx(self, case):
        n, edges = case
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        indptr = [0] * (n + 1)
        indices = []
        for u in range(n):
            indices.extend(sorted(v for (a, v) in edges if a == u))
            indptr[u + 1] = len(indices)
        labels, ncomp = tarjan_scc(n, indptr, indices)
        assert ncomp == nx.number_strongly_connected_components(g)
        ours = {frozenset(v for v in range(n) if labels[v] == c) for c in range(ncomp)}
        assert ours == {frozenset(c) for c in nx.strongly_connected_components(g)}
        for u, v in edges:
            if labels[u] != labels[v]:
                assert labels[u] > labels[v]


class TestStructure:
    def test_csr_and_lookups(self):
        g = dg(4, [], masks={(0, 2): 0b101, (0, 1): 1, (2, 0): 1 << 70})
        assert g.num_edges == 3
        assert g.edge_cids() == [(0, 1), (0, 2), (2, 0)]
        assert list(g.iter_edges()) == [(0, 1, 1), (0, 2, 0b101), (2, 0, 1 << 70)]
        assert g.succ_cids(0) == [1, 2]
        assert g.succ_cids(1) == []
        assert g.has_edge(0, 2) and not g.has_edge(2, 1)
        assert g.mask_of(0, 2) == 0b101
        assert g.mask_of(1, 0) == 0
        assert g.target_cids() == {0, 1, 2}
        assert len(g) == 3

    def test_isolated_vertices_are_free(self):
        g = dg(100, [(3, 4)])
        assert g.num_vertices == 100
        assert g.is_acyclic()

    def test_channel_edges_uses_network(self):
        g = dg(3, [(1, 2)])
        assert g.channel_edges() == [(1, 2)]


class TestCycleStructure:
    def test_acyclic(self):
        g = dg(4, [(0, 1), (1, 2), (0, 2)])
        assert g.is_acyclic()
        assert g.find_cycle_cids() is None
        assert list(g.iter_cycle_cids()) == []

    def test_self_loop_is_a_cycle(self):
        g = dg(3, [(0, 1), (1, 1)])
        assert not g.is_acyclic()
        assert g.find_cycle_cids() == [1]
        assert list(g.iter_cycle_cids()) == [[1]]

    def test_topo_order(self):
        g = dg(5, [(3, 1), (1, 0), (3, 0), (4, 2)])
        topo = g.topo_cids()
        pos = {v: i for i, v in enumerate(topo)}
        for u, v, _ in g.iter_edges():
            assert pos[u] < pos[v]
        assert dg(3, [(0, 1), (1, 0)]).topo_cids() is None

    def test_witness_is_a_real_cycle(self):
        g = dg(6, [(0, 1), (1, 2), (2, 3), (3, 1), (4, 5)])
        cyc = g.find_cycle_cids()
        assert cyc is not None
        for i, u in enumerate(cyc):
            assert g.has_edge(u, cyc[(i + 1) % len(cyc)])

    @given(st.integers(1, 7).flatmap(lambda n: st.tuples(st.just(n), edge_sets(n))))
    def test_enumeration_matches_networkx(self, case):
        n, edges = case
        g = dg(n, edges)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        ours = {canon(c) for c in g.iter_cycle_cids()}
        theirs = {canon(c) for c in nx.simple_cycles(nxg)}
        assert ours == theirs
        assert g.is_acyclic() == (not ours)
        assert (g.find_cycle_cids() is None) == (not ours)

    @given(st.integers(1, 7).flatmap(lambda n: st.tuples(st.just(n), edge_sets(n))))
    def test_adj_variants_agree_with_csr(self, case):
        n, edges = case
        g = dg(n, edges)
        adj = {u: g.succ_cids(u) for u in range(n)}
        assert {canon(c) for c in iter_cycles_adj({u: a for u, a in adj.items() if a})} \
            == {canon(c) for c in g.iter_cycle_cids()}
        assert find_cycle_adj(set(range(n)), adj) == g.find_cycle_cids()


class TestReachability:
    def test_reverse_reachable(self):
        g = dg(6, [(0, 1), (1, 2), (3, 2), (4, 3), (2, 5)])
        assert g.reverse_reachable(2) == {0, 1, 3, 4}
        assert g.reverse_reachable(2, min_cid=1) == {1, 3, 4}
        assert g.reverse_reachable(5, min_cid=3) == set()

    @given(st.integers(1, 7).flatmap(lambda n: st.tuples(st.just(n), edge_sets(n))))
    def test_matches_networkx_ancestors(self, case):
        n, edges = case
        g = dg(n, edges)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        for t in range(n):
            # a is reverse-reachable from t iff a has a nonempty path to t
            # (nx.descendants always excludes the source, so t itself needs
            # the on-a-cycle check via its successors)
            expected = {a for a in range(n) if a != t and t in nx.descendants(nxg, a)}
            if any(s == t or t in nx.descendants(nxg, s) for s in nxg.successors(t)):
                expected.add(t)
            assert g.reverse_reachable(t) == expected


class TestFingerprintAndSummary:
    def test_fingerprint_content_addressed(self):
        a = dg(4, [], masks={(0, 1): 0b11})
        b = dg(4, [], masks={(0, 1): 0b11})
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != dg(4, [], masks={(0, 1): 0b01}).fingerprint()  # payload
        assert a.fingerprint() != dg(4, [], masks={(0, 2): 0b11}).fingerprint()  # edge
        assert a.fingerprint() != dg(5, [], masks={(0, 1): 0b11}).fingerprint()  # vertices

    def test_summary(self):
        g = dg(5, [(0, 1), (1, 0), (2, 2), (3, 4)])
        s = g.summary()
        assert s == {
            "vertices": 5,
            "edges": 4,
            "self_loops": 1,
            "sccs": 4,
            "nontrivial_sccs": 1,
            "largest_scc": 2,
            "acyclic": False,
        }

    def test_repr(self):
        assert "acyclic" in repr(dg(2, [(0, 1)]))
