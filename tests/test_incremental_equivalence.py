"""The metamorphic battery: incremental re-verification == full rebuilds.

The incremental engine's whole contract is a single metamorphic relation:
for ANY sequence of deltas, the session's verdict digest (verdicts plus
witness evidence, canonically serialized) after each step is bit-identical
to what a cold full rebuild of the mutated relation reports.  This file
attacks that relation from two directions:

* **Hypothesis**: random small networks and routing relations (both wait
  policies) under random delta sequences, checked after *every* step --
  the profile machinery (``HYPOTHESIS_PROFILE=ci|dev|nightly``) scales the
  example count, with ``ci`` derandomized for reproducibility;
* **a deterministic grid**: catalog algorithms on mesh / torus / hypercube
  at smoke dims under seeded delta sequences (including ``VcAdd``, which
  only spec-built sessions can express), checked at the end of each
  sequence.

Together the two directions exceed 200 distinct generated delta sequences
per run at default settings (100 Hypothesis examples in each of the two
``@given`` tests + 36 grid sequences), which is the acceptance floor for
this battery.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.incremental import (
    Delta,
    IncrementalSession,
    LinkDown,
    LinkUp,
    TableEdit,
    VcAdd,
    default_table_edit,
)
from repro.pipeline import catalog_specs
from repro.routing.relation import WaitPolicy
from tests.generative import derive_seed, routed_networks

# ----------------------------------------------------------------------
# random delta generation against a live session
# ----------------------------------------------------------------------


def _random_delta(session: IncrementalSession, rng: random.Random,
                  *, allow_vc_add: bool = False) -> Delta | None:
    """Draw one applicable delta for the session's current state."""
    net = session.base.network
    down = {(c.src, c.dst, c.vc) for c in session.overlay.down}
    moves: list[str] = []
    up_links = [c for c in net.link_channels if (c.src, c.dst, c.vc) not in down]
    if up_links and len(down) < 2:
        moves.append("down")
    if down:
        moves.append("up")
    moves.append("edit")
    if session.overlay.edits:
        moves.append("clear")
    if allow_vc_add:
        moves.append("vc")
    kind = rng.choice(moves)
    if kind == "down":
        c = rng.choice(up_links)
        return LinkDown(c.src, c.dst, c.vc)
    if kind == "up":
        return LinkUp(*rng.choice(sorted(down)))
    if kind == "edit":
        try:
            edit, _revert = default_table_edit(session)
        except ValueError:
            return None
        return edit
    if kind == "clear":
        return TableEdit(rng.choice(sorted(session.overlay.edits)))
    return VcAdd(1)


def _assert_step_equivalent(session: IncrementalSession, result) -> None:
    full = session.full_check()
    assert result.digest == full.digest, (
        f"incremental digest {result.digest} != full-rebuild {full.digest} "
        f"after {result.delta!r} on {session.overlay.name}"
    )


# ----------------------------------------------------------------------
# Hypothesis: random relations, random delta sequences, per-step checks
# ----------------------------------------------------------------------
@given(pair=routed_networks(), seed=st.integers(min_value=0, max_value=2**16))
def test_random_delta_sequences_match_full_rebuild(pair, seed):
    _net, ra = pair
    rng = random.Random(derive_seed("inc-seq", seed))
    session = IncrementalSession(ra, triage=bool(seed % 2))
    _assert_step_equivalent(session, session.baseline())
    for _ in range(3):
        delta = _random_delta(session, rng)
        if delta is None:
            continue
        _assert_step_equivalent(session, session.reverify(delta))


@given(pair=routed_networks(wait_policy=WaitPolicy.SPECIFIC),
       seed=st.integers(min_value=0, max_value=2**16))
def test_specific_wait_fault_and_repair_roundtrip(pair, seed):
    """A fault + repair pair must restore the baseline fingerprint *and*
    digest exactly -- repairs revisit known states, which is what makes the
    service's content-addressed cache effective."""
    _net, ra = pair
    rng = random.Random(derive_seed("inc-flap", seed))
    session = IncrementalSession(ra)
    base = session.baseline()
    links = list(ra.network.link_channels)
    c = links[rng.randrange(len(links))]
    session.reverify(LinkDown(c.src, c.dst, c.vc))
    restored = session.reverify(LinkUp(c.src, c.dst, c.vc))
    assert restored.fingerprint == base.fingerprint
    assert restored.digest == base.digest
    _assert_step_equivalent(session, restored)


# ----------------------------------------------------------------------
# deterministic grid: catalog algorithms at smoke dims, seeded sequences
# ----------------------------------------------------------------------
GRID_ALGOS = (
    "west-first", "north-last", "negative-first", "e-cube-mesh",
    "highest-positive-last", "e-cube", "li-hypercube", "dally-seitz-torus",
    "unrestricted-minimal",
)
GRID_SEEDS = tuple(range(4))


def _grid_session(name: str, **kwargs) -> IncrementalSession:
    (spec,) = catalog_specs([name], mesh_dims=(3, 3), torus_dims=(4, 4),
                            hypercube_dim=3)
    return IncrementalSession(spec=spec, **kwargs)


@pytest.mark.parametrize("name", GRID_ALGOS)
def test_grid_sequences_match_full_rebuild(name):
    # One long-lived session per algorithm (the service's usage pattern):
    # each seed extends the delta history, and equivalence is re-checked
    # against a cold rebuild of the *accumulated* state.
    session = _grid_session(name, triage=derive_seed("inc-triage", name) % 2 == 0)
    for seed in GRID_SEEDS:
        rng = random.Random(derive_seed("inc-grid", name, seed))
        result = None
        for _ in range(2):
            delta = _random_delta(session, rng)
            if delta is None:
                continue
            result = session.reverify(delta)
        assert result is not None
        _assert_step_equivalent(session, result)


def test_vc_add_rebuild_matches_full_rebuild():
    session = _grid_session("e-cube-mesh")
    before = session.baseline()
    result = session.reverify(VcAdd(1))
    assert result.fingerprint != before.fingerprint
    assert len({c.vc for c in session.base.network.link_channels}) == 2
    _assert_step_equivalent(session, result)
    # deltas keep applying on the rebuilt network
    c = session.base.network.link_channels[0]
    _assert_step_equivalent(session, session.reverify(LinkDown(c.src, c.dst, c.vc)))
