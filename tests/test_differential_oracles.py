"""Differential oracles: independent deciders cross-checked against the CWG theory.

Two oracles, neither derived from the CWG implementation:

* **Duato's ECDG condition** (`search_escape`) and **Dally--Seitz** are
  sound sufficient conditions.  Whenever either certifies an algorithm --
  random generated relations or the shipped catalog -- the paper's
  necessary-and-sufficient condition must certify it too, and an
  authoritative CWG refutation (a reachable deadlock configuration) must
  never coexist with a Duato certificate.

* **The flit-level simulator** is an empirical oracle: algorithms the
  checker certifies are hammered with adversarial traffic (single-flit
  buffers, high injection, hotspots) and must never trip the runtime
  :class:`~repro.sim.DeadlockDetector`.  A negative control confirms the
  oracle has teeth: the same configuration reliably catches a known-unsafe
  algorithm.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.routing import CATALOG, make
from repro.routing.relation import WaitPolicy
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_hypercube, build_mesh, build_torus
from repro.verify import dally_seitz, search_escape, verify
from tests.generative import routed_networks

BOUNDS = dict(cycle_limit=2_000, max_nodes=100_000)


def _small_network(entry):
    """The small per-topology instances the integration tests standardize on."""
    if entry.family == "mesh":
        return build_mesh((3, 3), num_vcs=entry.min_vcs)
    if entry.family == "torus":
        return build_torus((4, 4), num_vcs=entry.min_vcs)
    if entry.family == "hypercube":
        return build_hypercube(3, num_vcs=entry.min_vcs)
    return None  # figure1/figure4/mesh3d/sparse-pillar are covered elsewhere


# ----------------------------------------------------------------------
# oracle 1: Duato / Dally-Seitz vs the CWG condition
# ----------------------------------------------------------------------
@settings(max_examples=45)
@given(routed_networks())
def test_sufficient_conditions_never_contradict_cwg(pair):
    """A Duato or Dally-Seitz certificate is a proof of deadlock freedom;
    the iff condition must agree with every such proof."""
    net, ra = pair
    full = verify(ra, **BOUNDS)
    if not full.necessary_and_sufficient:
        return  # checker ran out of budget: nothing authoritative to compare
    for oracle in (search_escape, dally_seitz):
        verdict = oracle(ra)
        if verdict.deadlock_free:
            assert full.deadlock_free, (
                f"{ra.name} on {net.name}: {verdict.condition} certified "
                f"({verdict.reason}) but the CWG condition refutes: {full.reason}"
            )


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_catalog_duato_never_contradicts_cwg(name):
    """Catalog-wide cross-check on the standard small instances."""
    entry = CATALOG[name]
    net = _small_network(entry)
    if net is None:
        pytest.skip(f"{name} lives on a figure topology")
    ra = make(name, net)
    duato = search_escape(ra)
    full = verify(ra)
    if duato.deadlock_free:
        assert full.deadlock_free, (
            f"{name}: Duato certifies but the CWG condition refutes: {full.reason}"
        )
    if full.necessary_and_sufficient and not full.deadlock_free:
        assert not duato.deadlock_free, (
            f"{name}: CWG proves a reachable deadlock but Duato certifies"
        )


# ----------------------------------------------------------------------
# oracle 2: the simulator under adversarial traffic
# ----------------------------------------------------------------------
ADVERSARIAL = dict(buffer_depth=1, deadlock_check_interval=16)


def _stress(ra, *, rate, pattern, seed, cycles=800, length=10):
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(ra.network, rate=rate, pattern=pattern,
                         length=length, stop_at=cycles),
        SimConfig(seed=seed, **ADVERSARIAL),
    )
    sim.run(cycles + 400)
    return sim


@pytest.mark.slow
@settings(max_examples=25)
@given(routed_networks(wait_policy=WaitPolicy.ANY))
def test_certified_random_relations_never_deadlock_in_sim(pair):
    """Empirical soundness on generated relations: verify() says free =>
    seeded adversarial runs never trip the deadlock detector."""
    net, ra = pair
    verdict = verify(ra, **BOUNDS)
    if not verdict.deadlock_free:
        return
    sim = _stress(ra, rate=0.7, pattern="uniform", seed=7)
    assert sim.deadlock is None, (
        f"{ra.name} on {net.name}: certified deadlock-free but the simulator "
        f"deadlocked: {sim.deadlock.describe()}"
    )


@pytest.mark.parametrize(
    "name",
    sorted(n for n, e in CATALOG.items()
           if e.deadlock_free and e.family in ("mesh", "torus", "hypercube")),
)
def test_certified_catalog_survives_adversarial_traffic(name):
    """Certified catalog algorithms under hotspot traffic with single-flit
    buffers -- harsher than the throughput-oriented integration runs."""
    entry = CATALOG[name]
    ra = make(name, _small_network(entry))
    sim = _stress(ra, rate=0.5, pattern="hotspot", seed=11)
    assert sim.deadlock is None, (
        f"{name}: certified deadlock-free but deadlocked under hotspot stress:\n"
        f"{sim.deadlock.describe()}"
    )


def test_adversarial_oracle_detects_known_deadlock(mesh33):
    """Negative control: the stress configuration must catch the cataloged
    counterexample algorithm, otherwise the oracle above proves nothing."""
    ra = make("unrestricted-minimal", mesh33)
    assert not verify(ra).deadlock_free
    tripped = any(
        _stress(ra, rate=0.7, pattern="hotspot", seed=s, cycles=2000).deadlock
        is not None
        for s in (3, 5, 7)
    )
    assert tripped, "deadlock detector never fired on unrestricted-minimal"
