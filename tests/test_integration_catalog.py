"""Integration: the whole catalog, theory vs. declared properties vs. simulation.

The catalog declares, for every routing algorithm, whether it is
deadlock-free and which condition certifies it.  This module closes the
loop: instantiate each entry on a suitable network, run the paper's
verifier, and check the verdict matches the declaration; then run the safe
ones under load and confirm none ever deadlocks or drops a flit.
"""

import pytest

from repro.routing import CATALOG, make
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.verify import verify

#: test-sized instances for the resizable families; fixed-shape families
#: (figure1/figure4/mesh3d/sparse-pillar) keep their canonical dims
FAMILY_DIMS = {"mesh": (3, 3), "hypercube": 3, "torus": (4, 4)}


def network_for(entry):
    return entry.topology_for(FAMILY_DIMS).build()


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_catalog_verdict_matches_declaration(name):
    entry = CATALOG[name]
    ra = make(name, network_for(entry))
    verdict = verify(ra)
    assert verdict.deadlock_free == entry.deadlock_free, (
        f"{name}: declared deadlock_free={entry.deadlock_free}, "
        f"verifier says {verdict.summary()}"
    )


@pytest.mark.parametrize(
    "name",
    sorted(n for n, e in CATALOG.items() if e.deadlock_free),
)
def test_safe_catalog_entries_run_clean(name):
    entry = CATALOG[name]
    net = network_for(entry)
    ra = make(name, net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=0.3, length=6, stop_at=1200),
        SimConfig(seed=17, buffer_depth=2, deadlock_check_interval=32),
    )
    sim.run(1200)
    assert sim.deadlock is None, f"{name} deadlocked despite proof"
    assert sim.drain(), f"{name} failed to drain"
    offered = sum(m.length for m in sim.messages.values())
    consumed = sum(m.flits_consumed for m in sim.messages.values())
    assert offered == consumed, f"{name} lost flits"


def test_catalog_entries_well_formed():
    for name, entry in CATALOG.items():
        assert entry.name == name
        assert entry.adaptivity in ("nonadaptive", "partial", "full")
        assert entry.min_vcs >= 1
        assert entry.certified_by


def test_make_unknown_raises(mesh33):
    with pytest.raises(KeyError, match="unknown routing algorithm"):
        make("no-such-algorithm", mesh33)
