"""Per-destination routing-state graphs (the substrate of all graph theory)."""

from repro.core import DestinationTransitions, TransitionCache
from repro.routing import DimensionOrderMesh, IncoherentExample
from repro.topology import build_mesh


class TestFigure1:
    def setup_method(self):
        from repro.topology import build_figure1_network

        self.net = build_figure1_network()
        self.ra = IncoherentExample(self.net)
        self.by = self.net.channel_by_label

    def test_usable_channels_for_dest0(self):
        dt = DestinationTransitions(self.ra, 0)
        labels = {c.label for c in dt.usable}
        # every leftward channel plus the detour channels; no rightward cH*
        assert labels == {"cL1", "cL2", "cL3", "cA1", "cB2"}

    def test_usable_channels_for_dest3(self):
        dt = DestinationTransitions(self.ra, 3)
        assert {c.label for c in dt.usable} == {"cH0", "cH1", "cH2"}

    def test_succ_respects_relation(self):
        dt = DestinationTransitions(self.ra, 0)
        assert dt.succ[self.by("cA1")] == frozenset([self.by("cL2"), self.by("cB2")])
        assert dt.succ[self.by("cL2")] == frozenset([self.by("cL1"), self.by("cA1")])

    def test_delivered_states_have_no_succ(self):
        dt = DestinationTransitions(self.ra, 0)
        assert dt.succ[self.by("cL1")] == frozenset()

    def test_downstream_wait_closure(self):
        dt = DestinationTransitions(self.ra, 0)
        down = dt.downstream_wait
        # from cL3 every waiting channel of the detour loop is downstream
        assert {c.label for c in down[self.by("cL3")]} == {"cL1", "cL2", "cB2", "cA1"}

    def test_upstream_includes_detour_loop(self):
        dt = DestinationTransitions(self.ra, 0)
        up = dt.upstream
        # a message at state cA1 may hold any loop channel or cL3
        assert {c.label for c in up[self.by("cA1")]} >= {"cA1", "cL2", "cB2", "cL3"}

    def test_reachable_from(self):
        dt = DestinationTransitions(self.ra, 0)
        reach = dt.reachable_from(self.by("cL2"))
        assert self.by("cL1") in reach and self.by("cB2") in reach


class TestCache:
    def test_cache_returns_same_object(self, mesh33):
        cache = TransitionCache(DimensionOrderMesh(mesh33))
        assert cache[0] is cache[0]
        assert len(list(cache.all_destinations())) == mesh33.num_nodes

    def test_ecube_single_successor(self, mesh33):
        cache = TransitionCache(DimensionOrderMesh(mesh33))
        dt = cache[8]
        for c, outs in dt.succ.items():
            if c.dst != 8:
                assert len(outs) == 1

    def test_wait_subset_of_succ(self, mesh33):
        cache = TransitionCache(DimensionOrderMesh(mesh33))
        for dt in cache.all_destinations():
            for c in dt.succ:
                assert dt.wait[c] <= dt.succ[c]
