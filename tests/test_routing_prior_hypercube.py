"""Section 9.1 prior hypercube algorithms: MECA, Yang-Tsai, Li-style."""

import pytest

from repro.deps import ChannelDependencyGraph
from repro.metrics import max_edge_disjoint_minimal_paths, minimal_path_matrix
from repro.routing import (
    DimensionOrderHypercube,
    DraperGhoshMECA,
    EnhancedFullyAdaptive,
    LiStyleHypercube,
    RoutingError,
    YangTsai,
    is_connected,
    is_minimal,
)
from repro.topology import build_hypercube
from repro.verify import verify


@pytest.fixture(scope="module")
def algos(cube3_2vc, cube3):
    return {
        "meca": DraperGhoshMECA(cube3_2vc),
        "yang-tsai": YangTsai(cube3_2vc),
        "li": LiStyleHypercube(cube3),
    }


class TestCommon:
    @pytest.mark.parametrize("key", ["meca", "yang-tsai", "li"])
    def test_connected_and_minimal(self, algos, key):
        assert is_connected(algos[key])
        assert is_minimal(algos[key])

    @pytest.mark.parametrize("key", ["meca", "yang-tsai", "li"])
    def test_deadlock_free(self, algos, key):
        assert verify(algos[key]).deadlock_free

    @pytest.mark.parametrize("key", ["meca", "yang-tsai", "li"])
    def test_waiting_is_single_channel(self, algos, key, cube3_2vc):
        ra = algos[key]
        net = ra.network
        for s in net.nodes:
            for d in net.nodes:
                if s != d:
                    inj = net.injection_channel(s)
                    assert len(ra.waiting_channels(inj, s, d)) == 1


class TestMECA:
    def test_first_class_skips_dimensions(self, algos, cube3_2vc):
        out = algos["meca"].route_nd(0b000, 0b101)  # needs dims 0 and 2
        vc0_dims = {c.meta["dim"] for c in out if c.vc == 0}
        assert vc0_dims == {0, 2}  # skipping dim 0 is permitted on class 0

    def test_second_class_is_strict_ecube(self, algos):
        out = algos["meca"].route_nd(0b000, 0b101)
        vc1_dims = {c.meta["dim"] for c in out if c.vc == 1}
        assert vc1_dims == {0}  # lowest needed dimension only

    def test_vc_requirement(self, cube3):
        with pytest.raises(RoutingError):
            DraperGhoshMECA(cube3)


class TestYangTsai:
    def test_positive_phase_first(self, algos):
        # node 010 -> dest 101: needs +0, -1, +2
        out = algos["yang-tsai"].route_nd(0b010, 0b101)
        vc0_dims = {c.meta["dim"] for c in out if c.vc == 0}
        assert vc0_dims == {0, 2}  # positive dims only, adaptively

    def test_negative_phase_when_no_positives(self, algos):
        # node 110 -> dest 000: needs -1, -2
        out = algos["yang-tsai"].route_nd(0b110, 0b000)
        vc0_dims = {c.meta["dim"] for c in out if c.vc == 0}
        assert vc0_dims == {1, 2}

    def test_acyclic_cdg(self, cube3_2vc):
        assert ChannelDependencyGraph(YangTsai(cube3_2vc)).is_acyclic()


class TestLiStyle:
    def test_one_vc_suffices(self, cube3):
        LiStyleHypercube(cube3)  # must not raise

    def test_negative_mu_opens_adaptivity(self, algos):
        out = algos["li"].route_nd(0b011, 0b100)  # mu=0 negative
        assert {c.meta["dim"] for c in out} == {0, 1, 2}

    def test_positive_mu_restricts(self, algos):
        out = algos["li"].route_nd(0b000, 0b111)  # mu=0 positive
        assert {c.meta["dim"] for c in out} == {0}

    def test_multiple_and_edge_disjoint_paths(self, algos):
        mat = minimal_path_matrix(algos["li"])
        assert sum(1 for v in mat.values() if v > 1) >= 18
        assert max_edge_disjoint_minimal_paths(algos["li"], 0b011, 0b100) == 3


class TestAdaptivenessOrdering:
    def test_efa_dominates_all_prior(self, cube3_2vc, cube3):
        """Section 9.3: EFA is more adaptive than every prior algorithm."""
        efa = sum(minimal_path_matrix(EnhancedFullyAdaptive(cube3_2vc)).values())
        for ra in (
            DraperGhoshMECA(cube3_2vc),
            YangTsai(cube3_2vc),
            LiStyleHypercube(cube3),
            DimensionOrderHypercube(cube3),
        ):
            assert sum(minimal_path_matrix(ra).values()) < efa

    def test_all_beat_ecube(self, cube3_2vc, cube3):
        ecube = sum(minimal_path_matrix(DimensionOrderHypercube(cube3)).values())
        for ra in (DraperGhoshMECA(cube3_2vc), YangTsai(cube3_2vc), LiStyleHypercube(cube3)):
            assert sum(minimal_path_matrix(ra).values()) > ecube
