"""The channel waiting graph and wait-connectivity (Definitions 9-10)."""

import pytest

from repro.core import ChannelWaitingGraph, wait_connected
from repro.deps import ChannelDependencyGraph
from repro.routing import (
    DimensionOrderMesh,
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    NodeDestRouting,
)
from repro.topology import build_figure1_network


class TestFigure1CWG:
    @pytest.fixture(scope="class")
    def cwg(self, figure1):
        return ChannelWaitingGraph(IncoherentExample(figure1))

    def e(self, figure1, a, b):
        by = figure1.channel_by_label
        return (by(a), by(b))

    def test_detour_loop_edges_present(self, cwg, figure1):
        # the closure makes {cA1, cL2, cB2} mutually waiting, incl. self-loops
        for a in ("cA1", "cL2", "cB2"):
            for b in ("cA1", "cL2", "cB2", "cL1"):
                assert self.e(figure1, a, b) in cwg

    def test_no_edges_from_sink(self, cwg, figure1):
        by = figure1.channel_by_label
        assert not any(a == by("cL1") for (a, b) in cwg.edges)

    def test_rightward_chain(self, cwg, figure1):
        assert self.e(figure1, "cH0", "cH1") in cwg
        assert self.e(figure1, "cH0", "cH2") in cwg  # downstream closure
        assert self.e(figure1, "cH1", "cH0") not in cwg

    def test_no_cross_traffic_edges(self, cwg, figure1):
        # a rightward message never waits on a detour-loop channel
        assert self.e(figure1, "cH0", "cA1") not in cwg
        assert self.e(figure1, "cH1", "cL2") not in cwg

    def test_edge_destinations(self, cwg, figure1):
        dests = cwg.destinations_for(self.e(figure1, "cA1", "cL2"))
        assert dests == frozenset([0])

    def test_edge_count_matches_paper_analysis(self, cwg):
        # 3x4 closure edges in the detour loop + (cL3 -> 4) + rightward chain
        # (cH0->cH1, cH0->cH2, cH1->cH2): 12 + 4 + 3 = 19
        assert len(cwg) == 19

    def test_cwg_subset_of_cdg_vertices(self, cwg, figure1):
        assert set(cwg.vertices) == set(figure1.link_channels)

    def test_removed_edges_view(self, cwg, figure1):
        edge = self.e(figure1, "cA1", "cL2")
        g = cwg.graph(removed=[edge])
        assert not g.has_edge(*edge)
        assert len(g.edges) == len(cwg) - 1


class TestCWGvsCDG:
    def test_cwg_is_subgraph_of_cdg_for_single_wait(self, mesh33):
        """For e-cube (wait == route == single channel) the CWG closure may
        add long-range edges, but every *immediate* CDG edge whose target is
        waited on appears in the CWG."""
        ra = DimensionOrderMesh(mesh33)
        cwg = ChannelWaitingGraph(ra)
        cdg = ChannelDependencyGraph(ra)
        for (a, b) in cdg.edges:
            assert (a, b) in cwg.edge_dests

    def test_cwg_edges_within_closured_cdg(self, mesh33):
        """Section 5: the CWG is a subgraph of the (transitively closured)
        channel dependency graph -- every waiting dependency is in particular
        a usage dependency."""
        import networkx as nx

        ra = HighestPositiveLast(mesh33)
        cwg = ChannelWaitingGraph(ra)
        cdg_closure = nx.transitive_closure(ChannelDependencyGraph(ra).graph())
        for (a, b) in cwg.edges:
            assert cdg_closure.has_edge(a, b)

    def test_hpl_cwg_targets_fewer_than_cdg_targets(self, mesh44):
        """The CWG ignores dependencies onto channels no message waits on:
        its target set is strictly smaller, and (Theorem 4) it is acyclic
        where the CDG is not."""
        ra = HighestPositiveLast(mesh44)
        cwg_targets = {b for (_, b) in ChannelWaitingGraph(ra).edges}
        cdg_targets = {b for (_, b) in ChannelDependencyGraph(ra).edges}
        assert cwg_targets < cdg_targets


class TestWaitConnected:
    def test_positive(self, mesh33, cube3_2vc):
        ok, why = wait_connected(DimensionOrderMesh(mesh33))
        assert ok, why
        ok, why = wait_connected(EnhancedFullyAdaptive(cube3_2vc))
        assert ok, why

    def test_detects_missing_waiting_channel(self, figure1):
        class NoWait(IncoherentExample):
            def waiting_channels(self, c_in, node, dest):
                if node == 2 and dest == 0:
                    return frozenset()
                return super().waiting_channels(c_in, node, dest)

        ok, why = wait_connected(NoWait(figure1))
        assert not ok and "no waiting channel" in why

    def test_detects_waiting_outside_route(self, figure1):
        class BadWait(IncoherentExample):
            def waiting_channels(self, c_in, node, dest):
                if node == 1 and dest == 0:
                    return frozenset([self.cH[1]])  # not a permitted output
                return super().waiting_channels(c_in, node, dest)

        ok, why = wait_connected(BadWait(figure1))
        assert not ok and "subset" in why
