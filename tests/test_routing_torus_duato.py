"""Dally--Seitz torus routing and Duato's fully adaptive algorithms."""

import pytest

from repro.deps import ChannelDependencyGraph
from repro.routing import (
    DallySeitzTorus,
    DuatoFullyAdaptiveHypercube,
    DuatoFullyAdaptiveMesh,
    DuatoFullyAdaptiveTorus,
    RoutingError,
    is_coherent,
    is_connected,
    is_fully_adaptive,
    is_minimal,
)
from repro.topology import build_hypercube, build_mesh, build_torus
from repro.verify import is_nonadaptive


class TestDallySeitz:
    @pytest.fixture(scope="class")
    def ring(self, torus5_2vc):
        return DallySeitzTorus(torus5_2vc)

    def test_dateline_vc_switch(self, ring, torus5_2vc):
        # 4 -> 1 goes positive through the wrap: pre-dateline uses vc 0
        (c,) = ring.route_nd(4, 1)
        assert c.meta["wrap"] and c.vc == 0
        # after the wrap (at node 0 heading to 1): vc 1
        (c,) = ring.route_nd(0, 1)
        assert c.vc == 1

    def test_shortest_direction(self, ring):
        (c,) = ring.route_nd(0, 2)  # forward distance 2, backward 3
        assert c.meta["sign"] == 1
        (c,) = ring.route_nd(0, 3)  # backward distance 2
        assert c.meta["sign"] == -1

    def test_nonadaptive_connected_minimal(self, ring):
        assert is_nonadaptive(ring)
        assert is_connected(ring)
        assert is_minimal(ring)

    def test_acyclic_cdg(self, ring):
        assert ChannelDependencyGraph(ring).is_acyclic()

    def test_acyclic_cdg_2d(self):
        t = build_torus((4, 4), num_vcs=2)
        assert ChannelDependencyGraph(DallySeitzTorus(t)).is_acyclic()

    def test_needs_two_vcs(self):
        with pytest.raises(RoutingError):
            DallySeitzTorus(build_torus((5,), num_vcs=1))

    def test_requires_torus(self, mesh33):
        with pytest.raises(RoutingError):
            DallySeitzTorus(mesh33)


class TestDuatoMesh:
    @pytest.fixture(scope="class")
    def duato(self, mesh33_2vc):
        return DuatoFullyAdaptiveMesh(mesh33_2vc)

    def test_escape_is_dimension_order(self, duato, mesh33_2vc):
        out = duato.route_nd(0, 8)  # needs +x,+y
        esc = [c for c in out if c.vc == 0]
        assert len(esc) == 1 and esc[0].meta["dim"] == 0
        adaptive = [c for c in out if c.vc == 1]
        assert {c.meta["dim"] for c in adaptive} == {0, 1}

    def test_waits_on_escape(self, duato, mesh33_2vc):
        inj = mesh33_2vc.injection_channel(0)
        waits = duato.waiting_channels(inj, 0, 8)
        assert all(c.vc == 0 for c in waits) and len(waits) == 1

    def test_properties(self, duato):
        assert is_connected(duato)
        assert is_minimal(duato)
        assert is_fully_adaptive(duato)
        assert is_coherent(duato)

    def test_needs_two_vcs(self, mesh33):
        with pytest.raises(RoutingError):
            DuatoFullyAdaptiveMesh(mesh33)


class TestDuatoHypercube:
    def test_route_structure(self, cube3_2vc):
        duato = DuatoFullyAdaptiveHypercube(cube3_2vc)
        out = duato.route_nd(0b000, 0b110)
        esc = [c for c in out if c.vc == 0]
        assert len(esc) == 1 and esc[0].dst == 0b010  # lowest differing dim
        assert is_fully_adaptive(duato)

    def test_requires_hypercube(self, mesh33_2vc):
        with pytest.raises(RoutingError):
            DuatoFullyAdaptiveHypercube(mesh33_2vc)


class TestDuatoTorus:
    @pytest.fixture(scope="class")
    def duato(self, torus44_3vc):
        return DuatoFullyAdaptiveTorus(torus44_3vc)

    def test_connected_minimal(self, duato):
        assert is_connected(duato)
        assert is_minimal(duato)

    def test_escape_plus_adaptive(self, duato, torus44_3vc):
        out = duato.route_nd(0, 5)  # (0,0) -> (1,1)
        assert any(c.vc in (0, 1) for c in out)  # dateline escape
        assert {c.meta["dim"] for c in out if c.vc == 2} == {0, 1}

    def test_equidistant_offers_both_directions(self, duato):
        out = duato.route_nd(0, 2)  # distance 2 both ways in a radix-4 ring
        signs = {c.meta["sign"] for c in out if c.vc == 2}
        assert signs == {1, -1}

    def test_waits_on_escape_only(self, duato, torus44_3vc):
        inj = torus44_3vc.injection_channel(0)
        waits = duato.waiting_channels(inj, 0, 5)
        assert all(c.vc in (0, 1) for c in waits)

    def test_needs_three_vcs(self):
        from repro.topology import build_torus
        with pytest.raises(RoutingError):
            DuatoFullyAdaptiveTorus(build_torus((4, 4), num_vcs=2))
