"""Cycle enumeration and canonicalization."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Cycle, CycleExplosion, find_cycles, find_one_cycle, has_cycle
from repro.topology import Channel


def chans(n):
    return [Channel(cid=i, src=0, dst=1) for i in range(n)]


class TestCycle:
    def test_canonical_rotation(self):
        a, b, c = chans(3)
        assert Cycle.from_nodes([b, c, a]) == Cycle.from_nodes([a, b, c])
        assert Cycle.from_nodes([c, a, b]) == Cycle.from_nodes([a, b, c])

    def test_edges_wrap(self):
        a, b = chans(2)
        cy = Cycle.from_nodes([a, b])
        assert cy.edges == ((a, b), (b, a))

    def test_self_loop(self):
        (a,) = chans(1)
        cy = Cycle.from_nodes([a])
        assert cy.edges == ((a, a),)
        assert len(cy) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cycle.from_nodes([])

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=7))
    def test_rotation_invariance_property(self, n, k):
        cs = chans(n)
        rotated = cs[k % n:] + cs[:k % n]
        assert Cycle.from_nodes(rotated) == Cycle.from_nodes(cs)


class TestEnumeration:
    def graph(self, edges, n=6):
        cs = chans(n)
        g = nx.DiGraph()
        g.add_nodes_from(cs)
        for i, j in edges:
            g.add_edge(cs[i], cs[j])
        return g, cs

    def test_finds_all_simple_cycles(self):
        g, cs = self.graph([(0, 1), (1, 0), (1, 2), (2, 1), (2, 2)])
        cycles = find_cycles(g)
        assert len(cycles) == 3
        assert cycles[0] == Cycle.from_nodes([cs[2]])  # shortest first

    def test_acyclic(self):
        g, _ = self.graph([(0, 1), (1, 2), (0, 2)])
        assert find_cycles(g) == []
        assert not has_cycle(g)
        assert find_one_cycle(g) is None

    def test_has_cycle_and_witness(self):
        g, cs = self.graph([(0, 1), (1, 2), (2, 0)])
        assert has_cycle(g)
        w = find_one_cycle(g)
        assert w is not None and len(w) == 3

    def test_explosion_limit(self):
        # complete digraph on 8 vertices has thousands of simple cycles
        cs = chans(8)
        g = nx.DiGraph()
        for a in cs:
            for b in cs:
                if a != b:
                    g.add_edge(a, b)
        with pytest.raises(CycleExplosion):
            find_cycles(g, limit=100)
        assert len(find_cycles(g, limit=None)) > 100

    def test_limit_is_exact(self):
        # regression: limit=N used to yield N+1 cycles before raising
        g, _ = self.graph([(0, 0), (1, 1), (2, 2)])  # exactly 3 simple cycles
        assert len(find_cycles(g, limit=3)) == 3  # at the limit: no explosion
        from repro.core.cycles import iter_simple_cycles

        yielded = []
        with pytest.raises(CycleExplosion):
            for cy in iter_simple_cycles(g, limit=2):
                yielded.append(cy)
        assert len(yielded) == 2  # never more than the limit

    def test_limit_zero(self):
        # limit=0 is "prove acyclic or raise": yields nothing either way
        from repro.core.cycles import iter_simple_cycles

        acyclic, _ = self.graph([(0, 1), (1, 2)])
        assert find_cycles(acyclic, limit=0) == []
        assert list(iter_simple_cycles(acyclic, limit=0)) == []
        cyclic, _ = self.graph([(0, 1), (1, 0)])
        with pytest.raises(CycleExplosion):
            find_cycles(cyclic, limit=0)
        it = iter_simple_cycles(cyclic, limit=0)
        with pytest.raises(CycleExplosion):
            next(it)

    def test_limit_none_is_unbounded(self):
        # complete digraph on 5 vertices: sum_{k=2..5} C(5,k)(k-1)! = 84
        cs = chans(5)
        g = nx.DiGraph()
        for a in cs:
            for b in cs:
                if a != b:
                    g.add_edge(a, b)
        assert len(find_cycles(g, limit=None)) == 84
        with pytest.raises(CycleExplosion):
            find_cycles(g, limit=83)
        assert len(find_cycles(g, limit=84)) == 84
