"""Traffic generators and the runtime deadlock detector."""

import numpy as np
import pytest

from repro.routing import DimensionOrderMesh, RingExample, UnrestrictedMinimal
from repro.sim import (
    BernoulliTraffic,
    CombinedTraffic,
    ScriptedTraffic,
    SimConfig,
    WormholeSimulator,
    bit_complement_pattern,
    bit_reverse_pattern,
    hotspot_pattern,
    tornado_pattern,
    transpose_pattern,
    uniform_pattern,
)
from repro.topology import build_figure4_ring, build_hypercube, build_mesh


class TestPatterns:
    def test_uniform_never_self(self, mesh33):
        pick = uniform_pattern(mesh33)
        rng = np.random.default_rng(0)
        for _ in range(200):
            src = int(rng.integers(9))
            d = pick(src, rng)
            assert 0 <= d < 9 and d != src

    def test_bit_complement(self, cube3):
        pick = bit_complement_pattern(cube3)
        rng = np.random.default_rng(0)
        assert pick(0b000, rng) == 0b111
        assert pick(0b101, rng) == 0b010

    def test_bit_complement_needs_power_of_two(self, mesh33):
        with pytest.raises(ValueError):
            bit_complement_pattern(mesh33)

    def test_bit_reverse(self, cube3):
        pick = bit_reverse_pattern(cube3)
        rng = np.random.default_rng(0)
        assert pick(0b100, rng) == 0b001
        assert pick(0b010, rng) == 0b010

    def test_transpose(self, mesh33):
        pick = transpose_pattern(mesh33)
        rng = np.random.default_rng(0)
        src = mesh33.node_at((2, 0))
        assert pick(src, rng) == mesh33.node_at((0, 2))

    def test_transpose_needs_square(self, mesh332):
        with pytest.raises(ValueError):
            transpose_pattern(mesh332)

    def test_tornado(self, torus44_3vc):
        pick = tornado_pattern(torus44_3vc)
        rng = np.random.default_rng(0)
        d = pick(torus44_3vc.node_at((0, 0)), rng)
        assert torus44_3vc.coord(d) == (1, 1)

    def test_hotspot_bias(self, mesh33):
        pick = hotspot_pattern(mesh33, hotspots=[8], fraction=0.5)
        rng = np.random.default_rng(1)
        hits = sum(pick(0, rng) == 8 for _ in range(500))
        assert hits > 150  # ~50% plus uniform share


class TestSources:
    def test_bernoulli_rate(self, mesh33):
        t = BernoulliTraffic(mesh33, rate=0.5, length=5)
        rng = np.random.default_rng(0)
        msgs = [m for c in range(2000) for m in t.messages_for_cycle(c, rng)]
        # expected: 2000 cycles * 9 nodes * 0.1 = 1800 messages
        assert 1500 < len(msgs) < 2100
        assert all(0 <= s < 9 and 0 <= d < 9 and s != d for s, d, _ in msgs)

    def test_bernoulli_stop_at(self, mesh33):
        t = BernoulliTraffic(mesh33, rate=1.0, length=1, stop_at=5)
        rng = np.random.default_rng(0)
        assert t.messages_for_cycle(5, rng) == []
        assert t.messages_for_cycle(4, rng)

    def test_variable_lengths(self, mesh33):
        t = BernoulliTraffic(mesh33, rate=0.9, length=(2, 6))
        rng = np.random.default_rng(0)
        lengths = {l for c in range(200) for (_, _, l) in t.messages_for_cycle(c, rng)}
        assert lengths <= set(range(2, 7)) and len(lengths) >= 3

    def test_scripted(self):
        t = ScriptedTraffic([(3, 0, 1, 4), (3, 1, 2, 4), (7, 2, 0, 4)])
        rng = np.random.default_rng(0)
        assert len(t.messages_for_cycle(3, rng)) == 2
        assert t.messages_for_cycle(5, rng) == []
        assert t.messages_for_cycle(7, rng) == [(2, 0, 4)]

    def test_combined(self, mesh33):
        t = CombinedTraffic(
            ScriptedTraffic([(0, 0, 1, 2)]),
            ScriptedTraffic([(0, 3, 4, 2)]),
        )
        rng = np.random.default_rng(0)
        assert len(t.messages_for_cycle(0, rng)) == 2


class TestDeadlockDetector:
    def test_no_false_positive_on_safe_algorithm(self, mesh33):
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.6, length=12, stop_at=3000),
            SimConfig(seed=13, buffer_depth=2, deadlock_check_interval=16),
        )
        sim.run(3000)
        assert sim.deadlock is None
        assert sim.drain()

    def test_detects_unrestricted_deadlock(self, mesh33):
        ra = UnrestrictedMinimal(mesh33)
        hit = False
        for seed in range(4):
            sim = WormholeSimulator(
                ra, BernoulliTraffic(mesh33, rate=0.6, length=24),
                SimConfig(seed=seed, buffer_depth=2),
            )
            sim.run(8000)
            if sim.deadlock is not None:
                hit = True
                rep = sim.deadlock
                assert len(rep) >= 2 or rep.message_ids
                assert "deadlock detected" in rep.describe()
                # every reported message's waiting channels are held by
                # other reported members
                ids = set(rep.message_ids)
                for mid in rep.message_ids:
                    m = sim.messages[mid]
                    assert all(sim.owner[w] in ids for w in m.waiting_for)
                break
        assert hit

    def test_detector_slack_avoids_short_message_false_alarm(self, mesh33):
        """Short messages can always drain forward: blockage is transient."""
        ra = DimensionOrderMesh(mesh33)
        sim = WormholeSimulator(
            ra, BernoulliTraffic(mesh33, rate=0.8, length=2, stop_at=2000),
            SimConfig(seed=1, buffer_depth=4, deadlock_check_interval=8),
        )
        sim.run(2000)
        assert sim.deadlock is None

    def test_ring_theory_sim_agreement(self, figure4):
        """The Figure-4 pair: paper's algorithm never deadlocks, the no-flip
        strawman does."""
        good = RingExample(figure4)
        bad = RingExample(figure4, flip_class=False)
        bad_hit = False
        for seed in range(3):
            s1 = WormholeSimulator(
                good, BernoulliTraffic(figure4, rate=0.5, length=20),
                SimConfig(seed=seed, buffer_depth=2),
            )
            s1.run(6000)
            assert s1.deadlock is None
            s2 = WormholeSimulator(
                bad, BernoulliTraffic(figure4, rate=0.5, length=20),
                SimConfig(seed=seed, buffer_depth=2),
            )
            s2.run(6000)
            bad_hit = bad_hit or s2.deadlock is not None
        assert bad_hit
