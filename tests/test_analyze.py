"""The static analyzer: diagnostics, rules, triage screens, renderers.

Three contracts are pinned here:

* **soundness** -- every triage decision agrees with the catalog's certified
  deadlock-freedom flags (the same agreement the fuzz oracle enforces
  against the theorem checker on random relations);
* **stability** -- the full catalog produces exactly the frozen
  expected-diagnostics matrix (``tests/fixtures/lint_catalog_expected.json``),
  so a rule regression shows up as a diff of that fixture, not as silence;
* **determinism** -- reports render byte-identically across repeated runs
  and across hash seeds, which is what makes the committed baseline and the
  CI SARIF artifact trustworthy.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import (
    DEFINITELY_DEADLOCKING,
    DEFINITELY_FREE,
    NEEDS_FULL_CHECK,
    AnalysisReport,
    Diagnostic,
    Location,
    RuleConfig,
    Severity,
    all_rules,
    analyze,
    apply_baseline,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
    sarif_payload,
    triage,
    triage_verdict,
    write_baseline,
)
from repro.analyze.screens import (
    forced_cycle_screen,
    ordering_certificate_screen,
    sink_elimination_screen,
)
from repro.core.cwg import ChannelWaitingGraph
from repro.deps.cdg import ChannelDependencyGraph
from repro.pipeline import build_topology
from repro.routing import CATALOG, make

FIXTURE = Path(__file__).parent / "fixtures" / "lint_catalog_expected.json"


def catalog_algorithm(name: str):
    entry = CATALOG[name]
    net = build_topology(entry.topology_for())
    return make(name, net)


@pytest.fixture(scope="module")
def catalog_reports():
    return {name: analyze(catalog_algorithm(name), target=name)
            for name in sorted(CATALOG)}


@pytest.fixture(scope="module")
def expected_matrix():
    return json.loads(FIXTURE.read_text())


# ----------------------------------------------------------------------
# the frozen expected-diagnostics matrix
# ----------------------------------------------------------------------
def test_matrix_covers_catalog(expected_matrix):
    assert sorted(expected_matrix) == sorted(CATALOG)


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_catalog_diagnostics_match_fixture(name, catalog_reports, expected_matrix):
    report = catalog_reports[name]
    assert report.error == "", report.error
    counts: dict[str, int] = {}
    for d in report.diagnostics:
        counts[d.rule] = counts.get(d.rule, 0) + 1
    exp = expected_matrix[name]
    assert counts == exp["rules"]
    assert report.triage is not None
    assert report.triage.verdict == exp["triage"]
    assert report.triage.decided_by == exp["decided_by"]


def test_each_screen_decides_some_catalog_entry(expected_matrix):
    deciders = {e["decided_by"] for e in expected_matrix.values() if e["decided_by"]}
    assert {"ordering-certificate", "sink-elimination", "scc-condensation"} <= deciders


# ----------------------------------------------------------------------
# triage soundness against the certified catalog flags
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(CATALOG))
def test_triage_agrees_with_certified_flags(name, catalog_reports):
    tri = catalog_reports[name].triage
    assert tri is not None
    if tri.verdict == DEFINITELY_FREE:
        assert CATALOG[name].deadlock_free, name
    elif tri.verdict == DEFINITELY_DEADLOCKING:
        assert not CATALOG[name].deadlock_free, name
    else:
        assert tri.verdict == NEEDS_FULL_CHECK


def test_triage_verdict_requires_decision():
    ra = catalog_algorithm("ring-figure4")
    tri = triage(ra)
    assert not tri.decided
    with pytest.raises(ValueError):
        triage_verdict(ra, tri)


def test_triage_verdict_carries_forced_cycle_witness():
    ra = catalog_algorithm("relaxed-efa")
    tri = triage(ra)
    assert tri.decided_by == "scc-condensation"
    v = triage_verdict(ra, tri)
    assert not v.deadlock_free and v.necessary_and_sufficient
    assert v.evidence["triage"] == "scc-condensation"
    cycle = v.evidence["cycle"]
    assert len(cycle) == len(set(cycle)) >= 2
    assert len(v.evidence["cycle_dests"]) == len(cycle)


# ----------------------------------------------------------------------
# screen unit tests on the paper's worked examples
# ----------------------------------------------------------------------
def test_ordering_inference_on_ecube_mesh():
    cdg = ChannelDependencyGraph(catalog_algorithm("e-cube-mesh"))
    s = ordering_certificate_screen(cdg)
    assert s.outcome == "free"
    assert s.witness["numbering_size"] > 0


def test_ordering_inference_fails_on_figure4_ring_with_witness_edges():
    cdg = ChannelDependencyGraph(catalog_algorithm("ring-figure4"))
    s = ordering_certificate_screen(cdg)
    assert s.outcome == "undecided"
    edges = s.witness["violating_edges"]
    assert edges, "the Figure 4 ring's CDG is cyclic"
    labels, _ = cdg.dep.scc()
    assert all(labels[u] == labels[v] for u, v in edges)


def test_sink_elimination_proves_efa_acyclic():
    # Fig. 6: EFA's CWG is acyclic even though its CDG is not -- the peel
    # must eliminate every channel while the ordering certificate fails.
    ra = catalog_algorithm("enhanced-fully-adaptive")
    assert ordering_certificate_screen(ChannelDependencyGraph(ra)).outcome == "undecided"
    s = sink_elimination_screen(ChannelWaitingGraph(ra))
    assert s.outcome == "free"
    assert s.witness["rounds"] >= 1


def test_sink_elimination_residue_on_figure4_ring():
    cwg = ChannelWaitingGraph(catalog_algorithm("ring-figure4"))
    s = sink_elimination_screen(cwg)
    assert s.outcome == "undecided"
    residue = s.witness["residue"]
    assert residue == sorted(residue)
    # every residue channel keeps an out-edge into the residue (cycle-bound)
    rset = set(residue)
    assert all(any(v in rset for v in cwg.dep.succ_cids(u)) for u in residue)
    # ...but no forced cycle exists: the ring is free (Section 7.2)
    assert forced_cycle_screen(cwg).outcome == "undecided"


# ----------------------------------------------------------------------
# diagnostics: ordering, fingerprints, config
# ----------------------------------------------------------------------
def test_location_sorts_unordered_kinds_but_preserves_pairs():
    assert Location("channel", channels=(5, 2)).channels == (2, 5)
    assert Location("pair", nodes=(3, 0)).nodes == (3, 0)
    assert Location("cycle", channels=(7, 2, 4)).channels == (7, 2, 4)


def test_diagnostic_order_is_severity_then_rule():
    mk = lambda rule, sev: Diagnostic(rule, sev, "m", target="t")  # noqa: E731
    ds = [mk("RH101", Severity.INFO), mk("RR001", Severity.ERROR),
          mk("RH103", Severity.WARNING)]
    from repro.analyze import sort_diagnostics
    assert [d.rule for d in sort_diagnostics(ds)] == ["RR001", "RH103", "RH101"]


def test_fingerprint_ignores_message_but_not_location():
    a = Diagnostic("RH101", Severity.INFO, "one wording",
                   Location("channel", channels=(3,)), target="t")
    b = Diagnostic("RH101", Severity.INFO, "another wording",
                   Location("channel", channels=(3,)), target="t")
    c = Diagnostic("RH101", Severity.INFO, "one wording",
                   Location("channel", channels=(4,)), target="t")
    assert a.fingerprint() == b.fingerprint() != c.fingerprint()


def test_rule_config_disable_select_and_severity():
    from repro.analyze import REGISTRY
    rh101, rt201 = REGISTRY["RH101"], REGISTRY["RT201"]
    cfg = RuleConfig.from_tokens(disable=["RH101"], select=[])
    assert not cfg.enabled(rh101) and cfg.enabled(rt201)
    cfg = RuleConfig.from_tokens(disable=[], select=["RT201", "RR001"])
    assert cfg.enabled(rt201) and not cfg.enabled(rh101)
    with pytest.raises(ValueError):
        RuleConfig.from_tokens(disable=["NOPE99"], select=[])


def test_rule_registry_is_complete_and_well_formed():
    rules = all_rules()
    ids = [r.id for r in rules]
    assert ids == sorted(ids) and len(ids) == len(set(ids))
    assert {"RR001", "RR002", "RR003", "RH101", "RH102", "RH103", "RH104",
            "RT201"} == set(ids)
    for r in rules:
        assert r.clause and r.summary


# ----------------------------------------------------------------------
# baseline roundtrip
# ----------------------------------------------------------------------
def test_baseline_roundtrip_suppresses_everything(tmp_path, catalog_reports):
    report = AnalysisReport()
    for name in ("ring-figure4", "relaxed-efa"):
        report.add(catalog_reports[name])
    report.finalize()
    before = len(report.diagnostics)
    assert before > 0
    path = tmp_path / "baseline.json"
    assert write_baseline(report, path) == before
    apply_baseline(report, load_baseline(path))
    assert report.diagnostics == []
    assert sum(report.suppressed.values()) == before


def test_committed_baseline_matches_catalog(catalog_reports):
    report = AnalysisReport()
    for t in catalog_reports.values():
        report.add(t)
    report.finalize()
    suppressions = load_baseline(Path(__file__).parent.parent / "lint-baseline.json")
    apply_baseline(report, suppressions)
    leftover = [(d.target, d.rule) for d in report.diagnostics]
    assert leftover == [], "catalog findings outside the committed baseline"


# ----------------------------------------------------------------------
# renderers: SARIF validity and byte determinism
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_report(catalog_reports):
    report = AnalysisReport()
    for name in ("e-cube-mesh", "ring-figure4", "relaxed-efa"):
        report.add(catalog_reports[name])
    return report.finalize()


def test_sarif_is_schema_valid(small_report):
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (Path(__file__).parent / "fixtures" / "sarif-2.1.0-trimmed.schema.json")
        .read_text()
    )
    doc = sarif_payload(small_report)
    jsonschema.validate(doc, schema)
    run = doc["runs"][0]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    for res in run["results"]:
        assert res["ruleId"] == rule_ids[res["ruleIndex"]]
        assert res["partialFingerprints"]["reproDiagnostic/v1"]


def test_renderers_are_byte_deterministic():
    def build():
        report = AnalysisReport()
        for name in ("ring-figure4", "relaxed-efa", "dally-seitz-torus"):
            report.add(analyze(catalog_algorithm(name), target=name))
        return report.finalize()

    a, b = build(), build()
    assert render_text(a) == render_text(b)
    assert render_json(a) == render_json(b)
    assert render_sarif(a) == render_sarif(b)


def test_text_render_shows_triage_and_summary(small_report):
    text = render_text(small_report)
    assert "e-cube-mesh" in text
    assert "definitely-deadlocking" in text
    assert "3 targets analyzed" in text


def test_analysis_crash_degrades_to_error_report():
    class Exploding:
        name = "boom"

        class network:  # noqa: N801 - minimal stand-in
            name = "nowhere"

        class wait_policy:
            value = "any"

    report = analyze(Exploding(), target="boom")  # type: ignore[arg-type]
    assert report.error
    assert report.diagnostics == []
