"""The command-line interface and the DOT/text export helpers."""

import pytest

from repro.__main__ import main
from repro.core import ChannelWaitingGraph, find_cycles
from repro.export import edge_listing, to_dot, verdict_block
from repro.routing import IncoherentExample, UnrestrictedMinimal
from repro.topology import build_mesh
from repro.verify import verify


class TestExport:
    def test_dot_structure(self, figure1):
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        dot = to_dot(cwg, title="CWG")
        assert dot.startswith("digraph channels {") and dot.endswith("}")
        assert '"cA1" -> "cL2"' in dot
        assert 'label="CWG"' in dot

    def test_dot_highlight_and_removed(self, figure1):
        ra = IncoherentExample(figure1)
        cwg = ChannelWaitingGraph(ra)
        cy = find_cycles(cwg.graph())[0]
        dot = to_dot(cwg, highlight=cy.edges, removed=[cwg.edges[0]])
        assert "color=red" in dot
        assert "style=dashed" in dot

    def test_edge_listing_marks_removed(self, figure1):
        cwg = ChannelWaitingGraph(IncoherentExample(figure1))
        text = edge_listing(cwg, removed=[cwg.edges[0]])
        assert " - " in text and " -> " in text

    def test_verdict_block_with_witness(self, mesh33):
        v = verify(UnrestrictedMinimal(mesh33))
        block = verdict_block(v)
        assert "NOT deadlock-free" in block
        assert "deadlock configuration" in block

    def test_verdict_block_with_reduction(self, figure1):
        v = verify(IncoherentExample(figure1))
        block = verdict_block(v)
        assert "CWG' = CWG minus" in block


class TestCLI:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "highest-positive-last" in out and "certified by" in out

    def test_verify_safe_exits_zero(self, capsys):
        rc = main(["verify", "--algorithm", "e-cube-mesh", "--dims", "3,3"])
        assert rc == 0
        assert "DEADLOCK-FREE" in capsys.readouterr().out

    def test_verify_unsafe_exits_one(self, capsys):
        rc = main(["verify", "--algorithm", "unrestricted-minimal", "--dims", "3,3"])
        assert rc == 1
        assert "deadlock configuration" in capsys.readouterr().out

    def test_verify_all_conditions(self, capsys):
        rc = main(["verify", "--algorithm", "highest-positive-last",
                   "--dims", "3,3", "--all-conditions"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Dally-Seitz" in out and "Duato" in out and "Theorem 2" in out

    def test_default_topology_from_catalog(self, capsys):
        rc = main(["verify", "--algorithm", "incoherent-example"])
        assert rc == 0

    def test_dot_command(self, capsys):
        rc = main(["dot", "--algorithm", "incoherent-example", "--graph", "cwg"])
        assert rc == 0
        assert "digraph channels" in capsys.readouterr().out

    def test_dot_cdg(self, capsys):
        rc = main(["dot", "--algorithm", "e-cube-mesh", "--dims", "3,3", "--graph", "cdg"])
        assert rc == 0

    def test_simulate(self, capsys):
        rc = main(["simulate", "--algorithm", "e-cube-mesh", "--dims", "3,3",
                   "--rate", "0.15", "--cycles", "600"])
        assert rc == 0
        assert "thpt=" in capsys.readouterr().out

    def test_simulate_deadlock_exits_two(self, capsys):
        rc = main(["simulate", "--algorithm", "unrestricted-minimal",
                   "--dims", "4,4", "--rate", "0.6", "--length", "24",
                   "--cycles", "8000", "--seed", "0"])
        out = capsys.readouterr().out
        if rc == 2:
            assert "deadlock detected" in out
        else:
            assert rc == 0  # this seed survived; theory still refutes it

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--algorithm", "nope"])
