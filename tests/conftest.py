"""Shared fixtures: the networks and routing algorithms used across tests.

Also registers the Hypothesis profiles and pins the session seed.  All
generative randomness in the suite -- the Hypothesis strategies in
``generative.py`` and every seeded fuzz helper -- derives from the single
session seed (``REPRO_TEST_SEED``, default 0), so one environment knob
re-randomizes the whole generative surface while the default run stays
byte-reproducible across machines.

Profiles (select with ``HYPOTHESIS_PROFILE``; default ``ci``):

* ``ci``       derandomized, no deadlines -- fixed example sequence, zero
               flakes in containers with noisy clocks;
* ``dev``      fresh randomness, small example counts -- quick local runs
               that still explore;
* ``nightly``  fresh randomness, 10x examples -- the deep sweep, meant for
               scheduled jobs together with ``-m slow`` tests.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    deadline=None,
    max_examples=1000,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

from repro.topology import (
    build_figure1_network,
    build_figure4_ring,
    build_hypercube,
    build_mesh,
    build_torus,
)


@pytest.fixture(scope="session")
def session_seed() -> int:
    """The suite-wide seed (``REPRO_TEST_SEED``) all generative RNGs derive from."""
    from tests.generative import SESSION_SEED

    return SESSION_SEED


@pytest.fixture(scope="session")
def mesh33():
    return build_mesh((3, 3))


@pytest.fixture(scope="session")
def mesh44():
    return build_mesh((4, 4))


@pytest.fixture(scope="session")
def mesh33_2vc():
    return build_mesh((3, 3), num_vcs=2)


@pytest.fixture(scope="session")
def mesh332():
    return build_mesh((3, 3, 2))


@pytest.fixture(scope="session")
def cube3():
    return build_hypercube(3, num_vcs=1)


@pytest.fixture(scope="session")
def cube3_2vc():
    return build_hypercube(3, num_vcs=2)


@pytest.fixture(scope="session")
def cube4_2vc():
    return build_hypercube(4, num_vcs=2)


@pytest.fixture(scope="session")
def torus44_3vc():
    return build_torus((4, 4), num_vcs=3)


@pytest.fixture(scope="session")
def torus5_2vc():
    return build_torus((5,), num_vcs=2)


@pytest.fixture(scope="session")
def figure1():
    return build_figure1_network()


@pytest.fixture(scope="session")
def figure4():
    return build_figure4_ring()
