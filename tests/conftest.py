"""Shared fixtures: the networks and routing algorithms used across tests.

Also registers the "ci" Hypothesis profile: derandomized (fixed example
sequence, no flakes across runs/machines) with deadlines disabled (CI
containers have noisy clocks).  Override with HYPOTHESIS_PROFILE=default
to fuzz with fresh randomness locally.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

from repro.topology import (
    build_figure1_network,
    build_figure4_ring,
    build_hypercube,
    build_mesh,
    build_torus,
)


@pytest.fixture(scope="session")
def mesh33():
    return build_mesh((3, 3))


@pytest.fixture(scope="session")
def mesh44():
    return build_mesh((4, 4))


@pytest.fixture(scope="session")
def mesh33_2vc():
    return build_mesh((3, 3), num_vcs=2)


@pytest.fixture(scope="session")
def mesh332():
    return build_mesh((3, 3, 2))


@pytest.fixture(scope="session")
def cube3():
    return build_hypercube(3, num_vcs=1)


@pytest.fixture(scope="session")
def cube3_2vc():
    return build_hypercube(3, num_vcs=2)


@pytest.fixture(scope="session")
def cube4_2vc():
    return build_hypercube(4, num_vcs=2)


@pytest.fixture(scope="session")
def torus44_3vc():
    return build_torus((4, 4), num_vcs=3)


@pytest.fixture(scope="session")
def torus5_2vc():
    return build_torus((5,), num_vcs=2)


@pytest.fixture(scope="session")
def figure1():
    return build_figure1_network()


@pytest.fixture(scope="session")
def figure4():
    return build_figure4_ring()
