#!/usr/bin/env python3
"""Design scenario: prove (or refute) a custom routing algorithm.

This is the workflow the paper's Section 8 methodology automates for a
routing-algorithm designer:

1. write the routing relation (here: a deliberately naive "always prefer
   the lowest-numbered minimal channel, wait on anything" torus router);
2. run the necessary-and-sufficient condition -- it *refutes* the design
   and hands back an explicit Definition-12 deadlock configuration;
3. repair the design with a dateline virtual-channel class (Dally--Seitz
   escape layer) and re-verify;
4. replay the deadlock configuration's traffic in the simulator against
   both designs and watch theory and practice agree.

Run:  python examples/prove_your_own_algorithm.py
"""

from repro.routing import DallySeitzTorus, NodeDestRouting, WaitPolicy
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_torus
from repro.verify import verify


class NaiveTorus(NodeDestRouting):
    """Any minimal move on any VC; a blocked message commits to the lowest-
    numbered permitted channel.  Deadlocks on the torus rings."""

    name = "naive-torus"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network):
        super().__init__(network)
        self.dims = network.meta["dims"]
        self._dist = network.shortest_distances()

    def route_nd(self, node, dest):
        if node == dest:
            return frozenset()
        d = self._dist[node][dest]
        return frozenset(
            c for c in self.network.out_channels(node)
            if self._dist[c.dst][dest] == d - 1
        )

    def waiting_channels(self, c_in, node, dest):
        permitted = self.route_nd(node, dest)
        if not permitted:
            return permitted
        return frozenset([min(permitted, key=lambda c: c.cid)])


class RepairedTorus(NaiveTorus):
    """The same relation restricted to the Dally--Seitz dateline discipline
    on VC classes 0/1, with VC 2 left fully adaptive (Duato-style repair)."""

    name = "repaired-torus"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network):
        super().__init__(network)
        self.escape = DallySeitzTorus(network, vc_base=0)

    def route_nd(self, node, dest):
        if node == dest:
            return frozenset()
        adaptive = frozenset(c for c in super().route_nd(node, dest) if c.vc == 2)
        return adaptive | self.escape.route_nd(node, dest)

    def waiting_channels(self, c_in, node, dest):
        if node == dest:
            return frozenset()
        return self.escape.route_nd(node, dest)


def half_ring(net):
    """Adversarial pattern: shift half-way around the x ring (equidistant
    both ways, so the naive router spreads over both directions and ties
    the ring in knots)."""
    k = net.meta["dims"][0]

    def pick(src, rng):
        x, y = net.coord(src)
        return net.node_at(((x + k // 2) % k, y))

    return pick


def main() -> None:
    # Verify on the 4x4 instance (the theory is topology-family-generic and
    # the small instance answers in seconds); stress-test at 8x8 scale.
    small = build_torus((4, 4), num_vcs=3)
    net = build_torus((8, 8), num_vcs=3)
    print(f"verification network: {small}")
    print(f"simulation network:   {net}\n")

    verdict = verify(NaiveTorus(small))
    print("step 1-2: verify the naive design")
    print(" ", verdict)
    cfg = verdict.evidence.get("deadlock_configuration")
    if cfg is not None:
        print("  the refutation is constructive -- a reachable deadlock:")
        for line in cfg.describe().splitlines():
            print("   ", line)

    print("\nstep 3: verify the repaired design")
    print(" ", verify(RepairedTorus(small)))

    naive = NaiveTorus(net)
    repaired = RepairedTorus(net)
    print("\nstep 4: both designs under half-ring traffic at 8x8 scale (4 seeds)")
    for ra in (naive, repaired):
        deadlocks = 0
        for seed in range(4):
            sim = WormholeSimulator(
                ra, BernoulliTraffic(net, rate=0.6, length=24, pattern=half_ring(net)),
                SimConfig(seed=seed, buffer_depth=2, deadlock_check_interval=32),
            )
            sim.run(6000)
            deadlocks += sim.deadlock is not None
        print(f"  {ra.name}: deadlocked in {deadlocks}/4 runs")


if __name__ == "__main__":
    main()
