#!/usr/bin/env python3
"""Quickstart: verify a routing algorithm and watch it run.

Builds a 4x4 mesh, checks three generations of deadlock-freedom theory on
two algorithms (dimension-order e-cube and the paper's Highest Positive
Last), then runs both in the flit-level simulator.

Run:  python examples/quickstart.py
"""

from repro.routing import DimensionOrderMesh, HighestPositiveLast
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_mesh
from repro.verify import dally_seitz, search_escape, verify


def main() -> None:
    net = build_mesh((4, 4))
    print(f"network: {net}")

    for ra in (DimensionOrderMesh(net), HighestPositiveLast(net)):
        print(f"\n--- {ra.describe()} ---")
        # 1987: acyclic channel dependency graph
        print(" ", dally_seitz(ra))
        # 1994 (Duato): escape subfunction with acyclic extended CDG
        print(" ", search_escape(ra))
        # the paper's condition: channel waiting graph (Theorems 2/3)
        print(" ", verify(ra))

    # Only the CWG condition certifies HPL; now watch it actually run.
    print("\n--- simulation: HPL, uniform traffic, 0.2 flits/node/cycle ---")
    ra = HighestPositiveLast(net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=0.2, length=8, stop_at=3000),
        SimConfig(seed=42),
    )
    sim.run(3000)
    assert sim.deadlock is None
    sim.drain()
    summary = sim.stats.summary(cycles=sim.cycle, num_nodes=net.num_nodes, warmup=500)
    print(f"  delivered {summary.messages_delivered} messages")
    print(f"  average latency {summary.avg_latency:.1f} cycles "
          f"(p95 {summary.p95_latency:.1f})")
    print(f"  throughput {summary.throughput_flits_per_node_cycle:.4f} flits/node/cycle")
    print("  no deadlock, as proved.")


if __name__ == "__main__":
    main()
