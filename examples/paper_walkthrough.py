#!/usr/bin/env python3
"""Walk through every worked example in the paper, end to end.

Reproduces, in order:

* Sections 5-6 -- Duato's incoherent four-node example: the CWG, its True
  and False Resource Cycles, deadlock under specific-waiting, deadlock
  freedom under any-waiting;
* Section 8 -- the formal CWG -> CWG' reduction trace;
* Section 7.1 / Figure 4 -- the ten-node ring whose only cycles are False
  Resource Cycles through the shared channel cA;
* Section 9.2 / Theorem 4 -- Highest Positive Last: cyclic CDG, acyclic CWG;
* Section 9.3 / Theorems 5-6 -- Enhanced Fully Adaptive and the deadlock
  produced by relaxing any one of its restrictions.

Run:  python examples/paper_walkthrough.py
"""

from repro.core import (
    ChannelWaitingGraph,
    CWGReducer,
    CycleClassifier,
    find_cycles,
    find_one_cycle,
)
from repro.deps import ChannelDependencyGraph
from repro.routing import (
    EnhancedFullyAdaptive,
    HighestPositiveLast,
    IncoherentExample,
    RelaxedEFA,
    RingExample,
)
from repro.topology import (
    build_figure1_network,
    build_figure4_ring,
    build_hypercube,
    build_mesh,
)
from repro.verify import verify


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def incoherent_example() -> None:
    section("Sections 5-6: Duato's incoherent example (Figures 1-3)")
    net = build_figure1_network()
    ra = IncoherentExample(net)
    cwg = ChannelWaitingGraph(ra)
    cycles = find_cycles(cwg.graph())
    classifier = CycleClassifier(cwg)
    print(f"CWG: {len(cwg)} edges over {len(cwg.vertices)} channels; "
          f"{len(cycles)} simple cycles:")
    for cy in cycles:
        cls = classifier.classify(cy)
        chain = " -> ".join(c.label for c in cy.channels)
        print(f"  [{cls.kind.value:14s}] {chain}")
    print("\nwait-specific:", verify(IncoherentExample(net, wait_any=False)))
    print("wait-any:     ", verify(ra))


def section8_reduction() -> None:
    section("Section 8: the formal CWG -> CWG' reduction")
    net = build_figure1_network()
    res = CWGReducer(ChannelWaitingGraph(IncoherentExample(net))).run()
    for i, step in enumerate(res.steps, 1):
        print(f"  step {i}: {step}")
    removed = ", ".join(sorted(f"{a.label}->{b.label}" for a, b in res.removed))
    print(f"  => CWG' = CWG minus {{{removed}}}; "
          f"{len(res.false_cycles)} False Resource Cycles remain harmless")


def ring_example() -> None:
    section("Section 7.1 / Figure 4: the ring with a shared extra channel")
    net = build_figure4_ring()
    good = RingExample(net)
    print("paper's algorithm: ", verify(good))
    bad = RingExample(net, flip_class=False)
    v = verify(bad)
    print("no-class-flip foil:", v)
    cfg = v.evidence.get("deadlock_configuration")
    if cfg:
        ca = [i for i in range(len(cfg)) if any(c.label == "cA" for c in cfg.held[i])]
        print(f"  (its True Cycle needs cA only once: message m{ca[0] + 1})")


def hpl_theorem4() -> None:
    section("Section 9.2 / Theorem 4: Highest Positive Last")
    for dims in ((4, 4), (3, 3, 3)):
        net = build_mesh(dims)
        ra = HighestPositiveLast(net)
        cdg_cyclic = not ChannelDependencyGraph(ra).is_acyclic()
        cwg_acyclic = find_one_cycle(ChannelWaitingGraph(ra).graph()) is None
        print(f"mesh{dims}: CDG cyclic={cdg_cyclic}, CWG acyclic={cwg_acyclic}, "
              f"{verify(ra)}")


def efa_theorems() -> None:
    section("Section 9.3 / Theorems 5-6: Enhanced Fully Adaptive")
    net = build_hypercube(3, num_vcs=2)
    print(verify(EnhancedFullyAdaptive(net)))
    print("\nTheorem 6 -- relax any one restriction and deadlock returns:")
    for mu in range(3):
        for j in range(mu + 1, 3):
            v = verify(RelaxedEFA(net, pair=(mu, j)))
            cy = v.evidence.get("cycle")
            chain = " -> ".join(c.label for c in cy.channels) if cy else "?"
            print(f"  relax ({mu},{j}): True Cycle {chain}")


def main() -> None:
    incoherent_example()
    section8_reduction()
    ring_example()
    hpl_theorem4()
    efa_theorems()


if __name__ == "__main__":
    main()
