#!/usr/bin/env python3
"""Anatomy of a wormhole deadlock: from True Cycle to stuck flits.

Takes unrestricted minimal adaptive routing on a 4x4 mesh -- the canonical
"no restrictions" design Dally & Seitz showed must deadlock -- and:

1. extracts the True-Cycle witness and Definition-12 configuration the
   verifier constructs (Theorem 3's necessity direction);
2. runs saturating random traffic until the runtime detector reports a
   knot (reliably within a few thousand cycles);
3. dissects the report: which messages hold which channels, who waits on
   whom, and why no waiting channel can ever free.

A closing contrast: the Theorem-6 relaxation of EFA is *also* proved
deadlock-prone, but its knot needs auxiliary blocker messages on the second
VC class (exactly what the paper's necessity proof constructs by hand), so
random traffic almost never assembles it -- a concrete illustration of why
"it never deadlocked in simulation" is not a proof, and a necessary *and*
sufficient condition is worth having.

Run:  python examples/deadlock_anatomy.py
"""

from repro.routing import RelaxedEFA, UnrestrictedMinimal
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_hypercube, build_mesh
from repro.verify import verify


def main() -> None:
    net = build_mesh((4, 4))
    ra = UnrestrictedMinimal(net)

    print("step 1: the verifier constructs the refutation")
    verdict = verify(ra)
    print(" ", verdict.summary()[:100])
    cfg = verdict.evidence["deadlock_configuration"]
    print(f"  witness configuration (Definition 12, {len(cfg)} messages):")
    for line in cfg.describe().splitlines():
        print("   ", line)

    print("\nstep 2: saturating random traffic until the knot forms")
    deadlock = sim = None
    for seed in range(8):
        sim = WormholeSimulator(
            ra,
            BernoulliTraffic(net, rate=0.6, length=24),
            SimConfig(seed=seed, buffer_depth=2, deadlock_check_interval=32),
        )
        sim.run(10_000)
        if sim.deadlock is not None:
            deadlock = sim.deadlock
            print(f"  seed {seed}: deadlock at cycle {deadlock.cycle}")
            break
        print(f"  seed {seed}: survived 10k cycles, retrying")
    assert deadlock is not None and sim is not None

    print("\nstep 3: dissect the knot")
    for line in deadlock.describe().splitlines():
        print(" ", line)
    ids = set(deadlock.message_ids)
    holders = {
        w.label or f"c{w.cid}": sim.owner[w]
        for mid in deadlock.message_ids
        for w in sim.messages[mid].waiting_for
    }
    print("\n  every waited channel is held inside the set:")
    for label, owner in sorted(holders.items()):
        print(f"    {label} held by m{owner}  (member: {owner in ids})")
    print(f"\n  {len(deadlock)} messages mutually wait on channels held inside "
          "the set; no waiting channel can ever free -- exactly the "
          "configuration the True Cycle predicted.")

    print("\ncontrast: relaxed EFA (Theorem 6) is also proved deadlock-prone...")
    h = build_hypercube(4, num_vcs=2)
    rel = RelaxedEFA(h)
    print(" ", verify(rel).summary()[:90])
    hits = 0
    for seed in range(4):
        s2 = WormholeSimulator(
            rel, BernoulliTraffic(h, rate=0.7, length=32),
            SimConfig(seed=seed, buffer_depth=2, deadlock_check_interval=32),
        )
        s2.run(8_000)
        hits += s2.deadlock is not None
    print(f"  ...yet random traffic assembled its knot in only {hits}/4 runs: "
          "the configuration needs the necessity proof's auxiliary blockers.")
    print("  'Never deadlocked in simulation' is not deadlock freedom -- "
          "hence the need for a necessary and sufficient condition.")


if __name__ == "__main__":
    main()
