#!/usr/bin/env python3
"""Figure 5 as a study: how much adaptivity does each restriction cost?

Regenerates the paper's Figure 5 (degree of adaptiveness of e-cube, Duato's
fully adaptive, and Enhanced Fully Adaptive on hypercubes of dimension 1 to
12) as an ASCII chart, cross-checks the exact counting against brute-force
enumeration on the 3-cube, and then runs the three algorithms head-to-head
in the simulator to show the theoretical ordering carries over to measured
latency under adversarial traffic.

Run:  python examples/adaptiveness_study.py
"""

from repro.metrics import (
    average_degree,
    duato_ratio,
    ecube_ratio,
    efa_ratio,
    empirical_degree,
    figure5_series,
)
from repro.routing import (
    DimensionOrderHypercube,
    DuatoFullyAdaptiveHypercube,
    EnhancedFullyAdaptive,
)
from repro.sim import BernoulliTraffic, SimConfig, WormholeSimulator
from repro.topology import build_hypercube


def ascii_chart(series: dict, width: int = 50) -> None:
    marks = {"enhanced": "E", "duato": "D", "e-cube": "c"}
    print("degree of adaptiveness (1.0 at the right edge)")
    for i, n in enumerate(series["dimension"]):
        row = [" "] * (width + 1)
        for key, mark in marks.items():
            row[round(series[key][i] * width)] = mark
        print(f"  dim {n:2d} |{''.join(row)}|")
    print(f"         0{' ' * (width - 8)}1.0   (E=Enhanced, D=Duato, c=e-cube)")


def main() -> None:
    series = figure5_series(12)
    ascii_chart(series)

    print("\nexact values:")
    print("  dim   e-cube    Duato  Enhanced")
    for i, n in enumerate(series["dimension"]):
        print(f"  {n:3d}   {series['e-cube'][i]:.4f}   {series['duato'][i]:.4f}    "
              f"{series['enhanced'][i]:.4f}")

    print("\nbrute-force cross-check on the 3-cube:")
    h2 = build_hypercube(3, num_vcs=2)
    h1 = build_hypercube(3, num_vcs=1)
    checks = [
        ("e-cube", empirical_degree(DimensionOrderHypercube(h1), vcs=1),
         average_degree(3, ecube_ratio)),
        ("Duato", empirical_degree(DuatoFullyAdaptiveHypercube(h2), vcs=2),
         average_degree(3, duato_ratio)),
        ("Enhanced", empirical_degree(EnhancedFullyAdaptive(h2), vcs=2),
         average_degree(3, efa_ratio)),
    ]
    for name, emp, exact in checks:
        flag = "OK" if abs(emp - exact) < 1e-12 else "MISMATCH"
        print(f"  {name:9s} enumerated={emp:.6f}  exact={exact:.6f}  [{flag}]")

    print("\nsimulation: 5-cube, bit-reverse traffic, load 0.55:")
    net = build_hypercube(5, num_vcs=2)
    for name, cls in (
        ("e-cube", DimensionOrderHypercube),
        ("Duato", DuatoFullyAdaptiveHypercube),
        ("Enhanced", EnhancedFullyAdaptive),
    ):
        sim = WormholeSimulator(
            cls(net),
            BernoulliTraffic(net, rate=0.55, pattern="bit-reverse",
                             length=8, stop_at=2500),
            SimConfig(seed=9),
        )
        sim.run(2500)
        s = sim.stats.summary(cycles=2500, num_nodes=32, warmup=400)
        print(f"  {name:9s} avg latency {s.avg_latency:7.1f}  "
              f"throughput {s.throughput_flits_per_node_cycle:.4f}")


if __name__ == "__main__":
    main()
