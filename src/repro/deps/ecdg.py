"""Duato's extended channel dependency graph (the titled ICPP'94 theory).

Duato's condition works on a *routing subfunction* ``R1``: a subset ``C1``
of the channels (the "escape" channels) such that ``R1(n, d) = R(n, d) &
C1`` still connects every source to every destination.  The **extended**
channel dependency graph of ``R1`` contains, between escape channels:

* **direct** dependencies -- ``c_j in R1`` immediately after ``c_i``;
* **indirect** dependencies -- ``c_i ... c_j`` where the intermediate
  channels are supplied by the full relation ``R`` but lie outside ``C1``
  (the message re-enters the escape layer after an adaptive excursion);
* **cross** dependencies (direct and indirect) -- when ``C1`` differs per
  destination, a dependency from a channel that is escape *for some other
  destination* onto a channel escape for the message's own destination.

Duato's theorem: a coherent ``R`` (of form ``R(n, d)``, providing a minimal
path per pair) is deadlock-free **iff** some connected ``R1`` exists whose
extended dependency graph, including cross dependencies, is acyclic.

``escape`` may be a single channel set (the common case -- cross
dependencies then coincide with ordinary ones) or a mapping from destination
to channel set (the per-pair generality of the ICPP'94 paper, restricted to
destination-indexed subsets, which is what an ``R(n, d)`` relation can
express).
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable

import networkx as nx

from ..core.depgraph import DepGraph, bits
from ..core.transitions import TransitionCache
from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel

EscapeSpec = frozenset[Channel] | Callable[[int], frozenset[Channel]]


class DependencyType(enum.Enum):
    DIRECT = "direct"
    INDIRECT = "indirect"
    DIRECT_CROSS = "direct-cross"
    INDIRECT_CROSS = "indirect-cross"


#: bit position of each dependency type in the kernel's per-edge mask
_TYPE_BIT = {t: i for i, t in enumerate(DependencyType)}
_TYPE_OF_BIT = tuple(DependencyType)


class ExtendedChannelDependencyGraph:
    """The ECDG of a routing subfunction, with per-edge dependency types."""

    kind = "ECDG"

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        escape: EscapeSpec,
        *,
        transitions: TransitionCache | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        if callable(escape):
            self._escape_fn = escape
        else:
            fixed = frozenset(escape)
            self._escape_fn = lambda dest: fixed
        #: the integer-indexed kernel (per-edge mask = dependency-type bits)
        self.dep: DepGraph = self._build()
        self._edge_types: dict[tuple[Channel, Channel], set[DependencyType]] | None = None

    # ------------------------------------------------------------------
    def escape_for(self, dest: int) -> frozenset[Channel]:
        return self._escape_fn(dest)

    def escape_union(self) -> frozenset[Channel]:
        out: set[Channel] = set()
        for dest in self.algorithm.network.nodes:
            out |= self.escape_for(dest)
        return frozenset(out)

    def _build(self) -> DepGraph:
        union = self.escape_union()
        edges: dict[tuple[int, int], int] = {}
        direct = 1 << _TYPE_BIT[DependencyType.DIRECT]
        direct_x = 1 << _TYPE_BIT[DependencyType.DIRECT_CROSS]
        indirect = 1 << _TYPE_BIT[DependencyType.INDIRECT]
        indirect_x = 1 << _TYPE_BIT[DependencyType.INDIRECT_CROSS]
        for dt in self.transitions.all_destinations():
            c1_here = self.escape_for(dt.dest)
            for ci in dt.usable:
                if ci not in union:
                    continue
                ci_is_own = ci in c1_here
                a = ci.cid
                # Direct: an R1-supplied channel immediately after ci.
                for cj in dt.succ[ci]:
                    if cj in c1_here:
                        k = (a, cj.cid)
                        edges[k] = edges.get(k, 0) | (direct if ci_is_own else direct_x)
                # Indirect: through >= 1 non-escape channels, then R1-supplied.
                seen: set[Channel] = set()
                stack = [c for c in dt.succ[ci] if c not in c1_here]
                while stack:
                    q = stack.pop()
                    if q in seen:
                        continue
                    seen.add(q)
                    for cj in dt.succ.get(q, ()):
                        if cj in c1_here:
                            k = (a, cj.cid)
                            edges[k] = edges.get(k, 0) | (indirect if ci_is_own else indirect_x)
                        elif cj not in seen:
                            stack.append(cj)
        return DepGraph(self.algorithm.network, edges)

    # ------------------------------------------------------------------
    @property
    def edge_types(self) -> dict[tuple[Channel, Channel], set[DependencyType]]:
        """edge -> dependency types realizing it (adapter view)."""
        if self._edge_types is None:
            channel = self.algorithm.network.channel
            self._edge_types = {
                (channel(u), channel(v)): {_TYPE_OF_BIT[i] for i in bits(m)}
                for u, v, m in self.dep.iter_edges()
            }
        return self._edge_types

    @property
    def edges(self) -> list[tuple[Channel, Channel]]:
        return self.dep.channel_edges()

    def graph(self, *, removed: Iterable[tuple[Channel, Channel]] = ()) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.escape_union())
        skip = set(removed)
        for e in self.edges:
            if e not in skip:
                g.add_edge(*e)
        return g

    def is_acyclic(self) -> bool:
        return self.dep.is_acyclic()

    def subfunction_connected(self) -> tuple[bool, str]:
        """Is ``R1`` connected: every pair routable using escape channels only?

        Checked per destination by BFS from every injection channel through
        escape-channel states (``R1(c, n, d) = R(c, n, d) & C1(d)``).
        """
        net = self.algorithm.network
        for dt in self.transitions.all_destinations():
            c1_here = self.escape_for(dt.dest)
            sources = _r1_sources(dt, c1_here)
            missing = [n for n in net.nodes if n != dt.dest and n not in sources]
            if missing:
                return False, (
                    f"R1 does not connect source(s) {missing[:4]} to destination {dt.dest}"
                )
        return True, ""

    def __len__(self) -> int:
        return self.dep.num_edges

    def __repr__(self) -> str:
        return (
            f"<{self.kind} of {self.algorithm.name}: "
            f"{len(self.escape_union())} escape channels, {self.dep.num_edges} dependencies>"
        )


def _r1_sources(dt, c1_here: frozenset[Channel]) -> set[int]:
    """Nodes from which ``dt.dest`` is reachable using only escape channels.

    A source ``n`` qualifies iff from state ``inj(n)`` some path of
    escape-only channel states ends at the destination.
    """
    sources: set[int] = set()
    for inj in dt.starts:
        stack = [inj]
        seen = {inj}
        found = False
        while stack and not found:
            c = stack.pop()
            for nxt in dt.succ.get(c, ()):
                if nxt not in c1_here:
                    continue
                if nxt.dst == dt.dest:
                    found = True
                    break
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        if found:
            sources.add(inj.src)
    return sources


def escape_by_vc(algorithm: RoutingAlgorithm, vc_classes: Iterable[int] = (0,)) -> frozenset[Channel]:
    """The standard escape set: all link channels in the given VC classes."""
    classes = set(vc_classes)
    return frozenset(c for c in algorithm.network.link_channels if c.vc in classes)
