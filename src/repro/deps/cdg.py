"""The channel dependency graph (Dally & Seitz 1987).

Vertices are virtual channels; there is an arc from ``c1`` to ``c2`` when a
message is permitted to use ``c2`` *immediately after* ``c1``.  An acyclic
CDG is necessary and sufficient for deadlock freedom of nonadaptive routing
and sufficient (but too strong) for adaptive routing -- the baseline every
other condition in this repository is measured against.

Only dependencies that some message can actually exercise are included: the
input channel must be reachable from an injection channel for the relevant
destination (otherwise the "dependency" involves a state no message is ever
in).  Per-edge destination witnesses are recorded, mirroring
:class:`repro.core.cwg.ChannelWaitingGraph`.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from ..core.transitions import TransitionCache
from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel


class ChannelDependencyGraph:
    """The CDG of a routing algorithm, with per-edge destination witnesses."""

    kind = "CDG"

    def __init__(self, algorithm: RoutingAlgorithm, *, transitions: TransitionCache | None = None) -> None:
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        self.edge_dests: dict[tuple[Channel, Channel], set[int]] = {}
        self._build()

    def _build(self) -> None:
        for dt in self.transitions.all_destinations():
            for c1 in dt.usable:
                for c2 in dt.succ[c1]:
                    self.edge_dests.setdefault((c1, c2), set()).add(dt.dest)

    # ------------------------------------------------------------------
    # content-addressed cache hooks (repro.pipeline)
    # ------------------------------------------------------------------
    def cache_payload(self) -> list[list]:
        """JSON-safe edge list ``[[src_cid, dst_cid, [dests...]], ...]``."""
        return [
            [a.cid, b.cid, sorted(dests)]
            for (a, b), dests in sorted(
                self.edge_dests.items(), key=lambda kv: (kv[0][0].cid, kv[0][1].cid)
            )
        ]

    @classmethod
    def from_cached_edges(
        cls,
        algorithm: RoutingAlgorithm,
        payload: list[list],
        *,
        transitions: TransitionCache | None = None,
    ) -> "ChannelDependencyGraph":
        """Rebuild from :meth:`cache_payload` output for an identical
        ``(network, relation)`` pair (the pipeline fingerprints both)."""
        self = cls.__new__(cls)
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        net = algorithm.network
        self.edge_dests = {
            (net.channel(a), net.channel(b)): set(dests) for a, b, dests in payload
        }
        return self

    @property
    def vertices(self) -> list[Channel]:
        return self.algorithm.network.link_channels

    @property
    def edges(self) -> list[tuple[Channel, Channel]]:
        return list(self.edge_dests)

    def graph(self, *, removed: Iterable[tuple[Channel, Channel]] = ()) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.vertices)
        skip = set(removed)
        for e in self.edge_dests:
            if e not in skip:
                g.add_edge(*e)
        return g

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph())

    def numbering(self) -> dict[Channel, int] | None:
        """A strictly increasing channel numbering if the CDG is acyclic.

        Dally & Seitz prove deadlock freedom by exhibiting such a numbering;
        returns ``None`` when the CDG is cyclic.
        """
        g = self.graph()
        if not nx.is_directed_acyclic_graph(g):
            return None
        return {c: i for i, c in enumerate(nx.topological_sort(g))}

    def destinations_for(self, edge: tuple[Channel, Channel]) -> frozenset[int]:
        return frozenset(self.edge_dests.get(edge, ()))

    def __len__(self) -> int:
        return len(self.edge_dests)

    def __repr__(self) -> str:
        return (
            f"<{self.kind} of {self.algorithm.name}: "
            f"{len(self.vertices)} channels, {len(self.edge_dests)} edges>"
        )
