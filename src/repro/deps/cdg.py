"""The channel dependency graph (Dally & Seitz 1987).

Vertices are virtual channels; there is an arc from ``c1`` to ``c2`` when a
message is permitted to use ``c2`` *immediately after* ``c1``.  An acyclic
CDG is necessary and sufficient for deadlock freedom of nonadaptive routing
and sufficient (but too strong) for adaptive routing -- the baseline every
other condition in this repository is measured against.

Only dependencies that some message can actually exercise are included: the
input channel must be reachable from an injection channel for the relevant
destination (otherwise the "dependency" involves a state no message is ever
in).  Per-edge destination witnesses are recorded, mirroring
:class:`repro.core.cwg.ChannelWaitingGraph` -- both builders run the same
transition walk
(:meth:`~repro.core.transitions.TransitionCache.collect_edge_dests`, the
CDG over ``dt.succ``, the CWG over ``dt.downstream_wait``) and emit a
:class:`~repro.core.depgraph.DepGraph` the verifiers execute on.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from ..core.depgraph import DepGraph, bits
from ..core.transitions import TransitionCache
from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel


class ChannelDependencyGraph:
    """The CDG of a routing algorithm, with per-edge destination witnesses."""

    kind = "CDG"

    def __init__(self, algorithm: RoutingAlgorithm, *, transitions: TransitionCache | None = None) -> None:
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        #: the integer-indexed kernel all checkers execute on
        self.dep: DepGraph = DepGraph(
            algorithm.network,
            self.transitions.collect_edge_dests(lambda dt: dt.succ_masks),
        )
        self._edge_dests: dict[tuple[Channel, Channel], set[int]] | None = None

    # ------------------------------------------------------------------
    # Channel-level adapter views
    # ------------------------------------------------------------------
    @property
    def edge_dests(self) -> dict[tuple[Channel, Channel], set[int]]:
        """edge -> destinations whose traffic realizes it (adapter view)."""
        if self._edge_dests is None:
            channel = self.algorithm.network.channel
            self._edge_dests = {
                (channel(u), channel(v)): set(bits(m))
                for u, v, m in self.dep.iter_edges()
            }
        return self._edge_dests

    # ------------------------------------------------------------------
    # content-addressed cache hooks (repro.pipeline)
    # ------------------------------------------------------------------
    def cache_payload(self) -> list[list]:
        """JSON-safe edge list ``[[src_cid, dst_cid, [dests...]], ...]``."""
        return [[u, v, list(bits(m))] for u, v, m in self.dep.iter_edges()]

    @classmethod
    def from_cached_edges(
        cls,
        algorithm: RoutingAlgorithm,
        payload: list[list],
        *,
        transitions: TransitionCache | None = None,
    ) -> "ChannelDependencyGraph":
        """Rebuild from :meth:`cache_payload` output for an identical
        ``(network, relation)`` pair (the pipeline fingerprints both)."""
        self = cls.__new__(cls)
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        masks: dict[tuple[int, int], int] = {}
        for a, b, dests in payload:
            m = 0
            for d in dests:
                m |= 1 << d
            masks[(a, b)] = m
        self.dep = DepGraph(algorithm.network, masks)
        self._edge_dests = None
        return self

    @classmethod
    def from_depgraph(
        cls,
        algorithm: RoutingAlgorithm,
        dep: DepGraph,
        *,
        transitions: TransitionCache | None = None,
    ) -> "ChannelDependencyGraph":
        """Wrap an already-assembled kernel (the incremental engine's seam);
        ``dep`` must be the CDG kernel of exactly this ``algorithm``."""
        self = cls.__new__(cls)
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        self.dep = dep
        self._edge_dests = None
        return self

    @property
    def vertices(self) -> list[Channel]:
        return self.algorithm.network.link_channels

    @property
    def edges(self) -> list[tuple[Channel, Channel]]:
        return self.dep.channel_edges()

    def graph(self, *, removed: Iterable[tuple[Channel, Channel]] = ()) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.vertices)
        skip = set(removed)
        for e in self.edges:
            if e not in skip:
                g.add_edge(*e)
        return g

    def is_acyclic(self) -> bool:
        return self.dep.is_acyclic()

    def numbering(self) -> dict[Channel, int] | None:
        """A strictly increasing channel numbering if the CDG is acyclic.

        Dally & Seitz prove deadlock freedom by exhibiting such a numbering;
        returns ``None`` when the CDG is cyclic.  The order is read off the
        kernel's SCC labels (a topological order when every component is a
        singleton), restricted to the CDG's vertex set.
        """
        topo = self.dep.topo_cids()
        if topo is None:
            return None
        verts = {c.cid: c for c in self.vertices}
        order = [cid for cid in topo if cid in verts]
        return {verts[cid]: i for i, cid in enumerate(order)}

    def destinations_for(self, edge: tuple[Channel, Channel]) -> frozenset[int]:
        a, b = edge
        return frozenset(bits(self.dep.mask_of(a.cid, b.cid)))

    def __len__(self) -> int:
        return self.dep.num_edges

    def __repr__(self) -> str:
        return (
            f"<{self.kind} of {self.algorithm.name}: "
            f"{len(self.vertices)} channels, {len(self.dep)} edges>"
        )
