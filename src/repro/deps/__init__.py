"""Channel-dependency substrates: the classic CDG and Duato's extended CDG.

These implement the *prior* theory the paper builds on and compares against:
Dally & Seitz's channel dependency graph (acyclic <=> deadlock-free for
nonadaptive routing) and Duato's routing-subfunction / extended-dependency
machinery (the titled ICPP'94 necessary-and-sufficient condition).
"""

from .cdg import ChannelDependencyGraph
from .ecdg import (
    DependencyType,
    EscapeSpec,
    ExtendedChannelDependencyGraph,
    escape_by_vc,
)

__all__ = [
    "ChannelDependencyGraph",
    "DependencyType",
    "EscapeSpec",
    "ExtendedChannelDependencyGraph",
    "escape_by_vc",
]
