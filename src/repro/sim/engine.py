"""The flit-level wormhole network simulator.

Implements the system model of Section 3 directly:

1. nodes generate messages of arbitrary length at any rate (traffic
   sources + unbounded source queues);
2. messages arriving at their destination are consumed (an ejection port
   per node with configurable rate);
3. once a channel queue accepts a header flit it accepts all flits of that
   message before any other (per-channel ownership);
4. a channel queue holds flits of at most one message, and the channel is
   released only after the tail flit has traversed it;
5. nodes arbitrate among messages requesting the same output channel
   without starvation (round-robin virtual-channel arbitration per physical
   link, FIFO source queues, and oldest-first allocation order).

Each simulated cycle has three phases:

* **allocation** -- every message whose header sits at the front of its
  leading channel queue (or at the source) consults the routing relation
  ``R(c_in, node, dest)``, and a free permitted channel is allocated via the
  selection function; blocked messages record their waiting channels, with
  wait-on-SPECIFIC messages committing to the designated waiting set until
  one of those channels is acquired (Section 6 case (1));
* **transmission** -- each physical link forwards at most one flit per
  cycle, round-robin over its virtual channels, subject to downstream
  buffer space;
* **ejection** -- destinations consume up to ``ejection_rate`` flits.

The engine is deterministic given the config seed: all iteration orders are
fixed, and stochastic choices draw from one owned RNG.

Fast path
---------
The observable semantics above are produced from flat, integer-indexed
state (the structure-of-arrays layout cycle-accurate NoC simulators use)
rather than per-flit objects and channel-keyed dictionaries:

* channel ownership, buffer queues, and held-position links are lists
  indexed by dense channel id; a flit is one packed int
  (``mid << 2 | is_head << 1 | is_tail``);
* routing decisions come from a :class:`~repro.routing.relation.RouteTable`
  that caches ``R(c_in, node, dest)`` pre-sorted by the allocator's
  priority key, so the relation is consulted once per ``(input channel,
  destination)`` pair instead of once per blocked message per cycle;
* allocation is event-driven: a dirty set tracks exactly the messages
  whose decision could have changed (a header reached a queue front, a
  channel they wait on freed, they reached the front of a source queue),
  so quiescent cycles do no allocation work at all;
* transmission visits only physical links with at least one owned virtual
  channel.

``SimStats.digest()`` is byte-identical to the original per-object engine
-- the golden matrix in ``tests/fixtures/sim_golden_digests.json`` pins
this.  The channel-keyed ``owner`` / ``buffers`` mappings remain available
as read-only views for tests and analysis code.

NumPy kernel backend
--------------------
On top of the SoA layout, the allocation and transmission phases exist in a
second, vectorized form (opt-in via ``SimConfig.backend="numpy"``,
``REPRO_BACKEND=numpy``, or ``REPRO_SIM_NUMPY_MIN_CHANNELS=<n>`` as an
auto-selection floor):

* **transmission** precomputes, in one batch of array operations over
  persistent int32 mirrors of the owner/buffer-length/prev lists, each
  physical link's round-robin first *eligible* virtual channel, then
  applies moves sequentially in ascending link order.  Each move can
  change the eligibility of exactly one virtual channel elsewhere -- its
  upstream channel (gained room, or released) and the receiving channel's
  downstream holder (gained a flit) -- so exactly those links, when they
  lie ahead of the visit position, are flagged for a scalar rescan; links
  behind it are skipped just as the reference's single ascending pass
  never revisits them.  The result is flit-for-flit identical to the
  reference loop;
* **allocation** batches the first-free candidate scan over the whole
  dirty set against the pre-phase state; since allocation only ever
  *removes* free channels, a prescanned choice that is still free at apply
  time is provably the channel the sequential reference would pick, and a
  taken one triggers a scalar rescan of that message's pool.

The backend defaults to the pure loops because measurement favors them at
every size and load tested (see EXPERIMENTS.md): flags -- and with them
scalar rescans -- scale with the number of flit moves, because moves
cascade along held chains within a cycle, so the batch precompute mostly
covers the links that end up *not* moving a flit.  The vectorized kernels
are kept as a verified alternative implementation: the pure loops remain
the reference and carry the whole suite under ``REPRO_NO_NUMPY=1``, while
``tests/test_backend_parity.py`` and CI's ``perf-smoke`` job pin digest
equality between the two backends.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from collections import deque
from collections.abc import Iterator, Mapping

import numpy as np

from .. import _kernel
from ..routing.relation import RouteEntry, RouteTable, RoutingAlgorithm, WaitPolicy
from ..routing.selection import first_free
from ..topology.channel import Channel
from .config import SimConfig
from .deadlock import DeadlockDetector, DeadlockReport
from .message import Message
from .stats import SimStats
from .traffic import TrafficSource

#: flit record as exposed by the ``buffers`` view: (message id, is_head, is_tail)
Flit = tuple[int, bool, bool]

#: packed-flit flag bits (internal layout: ``mid << 2 | HEAD | TAIL``)
_HEAD = 2
_TAIL = 1

#: dirty-set size from which the allocator's batched prescan pays off
_ALLOC_BATCH_MIN = 16


class _OwnerView(Mapping):
    """Read-only ``Channel -> mid | None`` view over the dense owner array."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "WormholeSimulator") -> None:
        self._sim = sim

    def __getitem__(self, channel: Channel) -> int | None:
        mid = int(self._sim._owner[channel.cid])
        return None if mid < 0 else mid

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._sim._link_channels)

    def __len__(self) -> int:
        return len(self._sim._link_channels)


class _BuffersView(Mapping):
    """Read-only ``Channel -> tuple[Flit, ...]`` view decoding packed flits."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "WormholeSimulator") -> None:
        self._sim = sim

    def __getitem__(self, channel: Channel) -> tuple[Flit, ...]:
        return tuple(
            (f >> 2, bool(f & _HEAD), bool(f & _TAIL))
            for f in self._sim._buf[channel.cid]
        )

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._sim._link_channels)

    def __len__(self) -> int:
        return len(self._sim._link_channels)


class WormholeSimulator:
    """Cycle-based wormhole simulator for one network + routing algorithm."""

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        traffic: TrafficSource,
        config: SimConfig | None = None,
        *,
        route_table: RouteTable | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.network = algorithm.network
        self.traffic = traffic
        self.config = config or SimConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.wait_policy = self.config.wait_policy_override or algorithm.wait_policy

        self.cycle = 0
        self.messages: dict[int, Message] = {}
        #: undelivered message ids, ascending (allocation order = oldest first)
        self._active: list[int] = []
        self._next_mid = 0
        #: channels marked faulty (Definition 3's fault-tolerant status set);
        #: faulty channels are never allocated
        self.faulty: set[Channel] = set()
        #: per-node FIFO source queues of message ids
        self.source_queues: list[deque[int]] = [deque() for _ in self.network.nodes]
        self.stats = SimStats()
        self.detector = DeadlockDetector(self)
        self.deadlock: DeadlockReport | None = None
        self._dist = self.network.shortest_distances() if self.config.prefer_minimal else None

        # -- flat per-channel state (indexed by dense cid) ----------------
        net = self.network
        num_ch = net.num_channels
        self._chan: list[Channel] = list(net.channels)
        self._link_channels: list[Channel] = net.link_channels
        #: owning message id per channel, -1 = free
        self._owner: list[int] = [-1] * num_ch
        #: per-channel flit queue of packed ints
        self._buf: list[deque[int]] = [deque() for _ in range(num_ch)]
        #: cid of the held channel immediately tail-ward in the owner's path,
        #: -1 when the channel's flits come from the source queue
        self._prev: list[int] = [-1] * num_ch
        self._faulty_mask = bytearray(num_ch)
        self._inj_cid: list[int] = [net.injection_channel(n).cid for n in net.nodes]

        #: physical links and their VCs, in deterministic order
        self._links: list[tuple[tuple[int, int], list[Channel]]] = self._group_links()
        self._link_vcs: list[list[int]] = [[c.cid for c in vcs] for _, vcs in self._links]
        self._rr: list[int] = [0] * len(self._links)
        self._link_of: list[int] = [-1] * num_ch
        for li, cids in enumerate(self._link_vcs):
            for cid in cids:
                self._link_of[cid] = li
        #: owned-VC count per physical link; idle links are skipped entirely
        self._link_owned: list[int] = [0] * len(self._links)

        # -- event-driven allocation state --------------------------------
        #: messages whose routing decision could have changed since their
        #: last allocation visit
        self._dirty: set[int] = set()
        #: per-channel blocked waiters as (mid, registration version)
        self._waiters: list[list[tuple[int, int]]] = [[] for _ in range(num_ch)]
        #: per-message registration version; bumping invalidates stale entries
        self._wait_ver: list[int] = []
        #: header-arrived, undelivered message ids, ascending
        self._arrived: list[int] = []
        self._specific = self.wait_policy is WaitPolicy.SPECIFIC
        self._fast_sel = self.config.selection is first_free
        # Stateful selection policies may source live engine state (e.g.
        # CreditSelection reads per-channel buffer occupancy as credits);
        # any selection exposing bind_engine gets this simulator injected.
        bind = getattr(self.config.selection, "bind_engine", None)
        if bind is not None:
            bind(self)
        if route_table is not None:
            # A shared, pre-built table (sweeps reuse one across all points
            # with the same network/algorithm axes).  Entries are a pure
            # function of (algorithm, dist ordering), so sharing cannot
            # change behavior -- but only if the table really was built for
            # this algorithm under this config's candidate ordering.
            if route_table.algorithm is not algorithm:
                raise ValueError("route_table was built for a different algorithm")
            if (route_table.dist is not None) != (self._dist is not None):
                raise ValueError(
                    "route_table candidate ordering does not match prefer_minimal")
            self._route_table = route_table
        else:
            self._route_table = RouteTable(algorithm, dist=self._dist)
        # counter baselines, so perf_counters() reports this run's traffic
        # even on a shared table that arrives warm
        self._rt_hits0 = self._route_table.hits
        self._rt_misses0 = self._route_table.misses

        # -- kernel backend ------------------------------------------------
        forced = self.config.backend or _kernel.forced_backend()
        if forced is not None:
            self.backend = _kernel.backend(forced)
        else:
            # the reference loops win at every size and load measured (see
            # the module docstring), so auto means pure; the env floor lets
            # a deployment opt whole size classes into the numpy kernels
            min_ch = os.environ.get("REPRO_SIM_NUMPY_MIN_CHANNELS")
            self.backend = (
                "numpy"
                if min_ch is not None and _kernel.HAVE_NUMPY
                and num_ch >= int(min_ch)
                else "pure"
            )
        self._np = self.backend == "numpy"
        if self._np:
            #: inverse of ``_prev`` over held chains (unique: a held channel
            #: feeds at most one downstream channel of the same message)
            self._next_of: list[int] = [-1] * num_ch
            #: per-message length / flits-injected mirrors (grown on demand);
            #: the only dense per-message state the eligibility batch gathers
            self._mlen = np.zeros(256, np.int32)
            self._minj = np.zeros(256, np.int32)
            #: persistent int32 mirrors of the list state, updated in place
            #: at every mutation site -- O(moves) scalar writes per cycle
            #: instead of O(channels) list->array conversions per phase
            self._owner_a = np.full(num_ch, -1, np.int32)
            self._prev_a = np.full(num_ch, -1, np.int32)
            self._buflen = np.zeros(num_ch, np.int32)
            #: per-pool candidate-cid arrays for the batched allocator
            self._pool_arrs: dict[tuple[int, ...], np.ndarray] = {}
            # padded (link, vc-slot) matrix; rotation indices stay inside
            # each row's real VC count, so padding is never read
            nlinks = len(self._link_vcs)
            kmax = max((len(v) for v in self._link_vcs), default=1)
            self._vc_mat = np.zeros((nlinks, kmax), np.int32)
            for li, vcs in enumerate(self._link_vcs):
                self._vc_mat[li, :len(vcs)] = vcs
            self._nvcs = np.asarray(
                [len(v) for v in self._link_vcs], np.int32)[:, None]
            self._row_idx = np.arange(nlinks)[:, None]
            self._k_arange = np.arange(kmax, dtype=np.int32)[None, :]
            self._rr_a = np.zeros(nlinks, np.int32)

        # -- observability -------------------------------------------------
        #: messages visited by the allocator (event-driven wakeups)
        self.alloc_wakeups = 0
        #: cycles whose allocation phase had nothing to do
        self.alloc_idle_cycles = 0

        # channel-keyed read-only views (test/analysis API)
        self.owner = _OwnerView(self)
        self.buffers = _BuffersView(self)

    # ------------------------------------------------------------------
    def _group_links(self) -> list[tuple[tuple[int, int], list[Channel]]]:
        groups: dict[tuple[int, int], list[Channel]] = {}
        for c in self.network.link_channels:
            groups.setdefault(c.endpoints, []).append(c)
        return sorted(groups.items())

    # ------------------------------------------------------------------
    # message lifecycle
    # ------------------------------------------------------------------
    def inject_message(self, src: int, dest: int, length: int, *, created: int | None = None) -> Message:
        """Hand a new message to ``src``'s source queue."""
        if src == dest:
            raise ValueError("source == destination")
        if length < 1:
            raise ValueError("message length must be >= 1 flit")
        m = Message(
            mid=self._next_mid, src=src, dest=dest, length=length,
            created=self.cycle if created is None else created,
        )
        self._next_mid += 1
        self.messages[m.mid] = m
        self._active.append(m.mid)
        self._wait_ver.append(0)
        if self._np:
            if m.mid >= len(self._mlen):
                grow = np.zeros(len(self._mlen), np.int32)
                self._mlen = np.concatenate([self._mlen, grow])
                self._minj = np.concatenate([self._minj, grow])
            self._mlen[m.mid] = length
        q = self.source_queues[src]
        q.append(m.mid)
        if len(q) == 1:  # at the queue front: may route next allocation
            self._dirty.add(m.mid)
        self.stats.offered_flits += length
        return m

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------
    def _on_free(self, cid: int) -> None:
        """A channel freed: wake every validly registered waiter."""
        waiters = self._waiters[cid]
        if waiters:
            ver = self._wait_ver
            dirty = self._dirty
            for mid, v in waiters:
                if ver[mid] == v:
                    dirty.add(mid)
            waiters.clear()

    def _phase_allocate(self) -> None:
        dirty = self._dirty
        if not dirty:
            self.alloc_idle_cycles += 1
            return
        # Oldest message first: prevents starvation (Assumption 5).  Only
        # messages whose decision could have changed are visited; everyone
        # else would reproduce last cycle's outcome verbatim.
        mids = sorted(dirty)
        dirty.clear()
        messages = self.messages
        owner = self._owner
        faulty = self._faulty_mask
        bufs = self._buf
        queues = self.source_queues
        table = self._route_table
        chan = self._chan
        specific = self._specific
        fast_sel = self._fast_sel
        cycle = self.cycle
        wakeups = 0
        for mid in mids:
            m = messages[mid]
            if m.header_arrived:
                continue
            held = m.held
            if held:
                lead = held[-1]
                buf = bufs[lead.cid]
                if not buf or not (buf[0] & _HEAD):
                    continue  # header not at the queue front
                c_in_cid = lead.cid
                node = lead.dst
            else:
                # still in the source queue; only the front message may inject
                q = queues[m.src]
                if not q or q[0] != mid:
                    continue
                c_in_cid = self._inj_cid[m.src]
                node = m.src
            wakeups += 1
            dest = m.dest
            if node == dest:
                m.header_arrived = True
                m.waiting_for = None
                insort(self._arrived, mid)
                continue
            entry = table.entry(c_in_cid, dest)
            committed = specific and m.waiting_for is not None
            # committed: may acquire only a designated waiting channel
            cand_cids = entry.wait_cids if committed else entry.cand_cids
            if fast_sel:
                choice = -1
                for cid in cand_cids:
                    if owner[cid] < 0 and not faulty[cid]:
                        choice = cid
                        break
            else:
                cands = entry.wait_channels if committed else entry.cand_channels
                free = lambda c: owner[c.cid] < 0 and not faulty[c.cid]  # noqa: E731
                picked = self.config.selection(chan[c_in_cid], cands, free)
                choice = -1 if picked is None else picked.cid
            if choice >= 0:
                owner[choice] = mid
                self._prev[choice] = c_in_cid if held else -1
                held.append(chan[choice])
                self._link_owned[self._link_of[choice]] += 1
                m.hops += 1
                m.waiting_for = None
                m.last_progress = cycle
                if m.started is None:
                    m.started = cycle
                self._wait_ver[mid] += 1  # invalidate stale registrations
            else:
                if m.waiting_for is None or not specific:
                    m.waiting_for = entry.wait_set
                # register on the pool the next decision will draw from
                pool = entry.wait_cids if specific else entry.cand_cids
                ver = self._wait_ver[mid] + 1
                self._wait_ver[mid] = ver
                waiters = self._waiters
                for cid in pool:
                    waiters[cid].append((mid, ver))
        self.alloc_wakeups += wakeups

    def _phase_transmit(self) -> None:
        depth = self.config.buffer_depth
        owner = self._owner
        bufs = self._buf
        prev = self._prev
        messages = self.messages
        link_vcs = self._link_vcs
        link_owned = self._link_owned
        rr = self._rr
        queues = self.source_queues
        dirty = self._dirty
        cycle = self.cycle
        hops = 0
        for li in range(len(link_vcs)):
            if not link_owned[li]:
                continue
            vcs = link_vcs[li]
            n = len(vcs)
            start = rr[li]
            for k in range(n):
                j = start + k
                cid = vcs[j - n if j >= n else j]
                mid = owner[cid]
                if mid < 0:
                    continue
                buf = bufs[cid]
                if len(buf) >= depth:
                    continue
                m = messages[mid]
                p = prev[cid]
                if p < 0:
                    # flit comes from the source queue
                    fi = m.flits_injected
                    if fi >= m.length:
                        continue
                    flit = (mid << 2) \
                        | (_HEAD if fi == 0 else 0) \
                        | (_TAIL if fi == m.length - 1 else 0)
                    buf.append(flit)
                    m.flits_injected = fi + 1
                    if flit & _TAIL:
                        q = queues[m.src]
                        if q and q[0] == mid:
                            q.popleft()
                            if q:  # next message reaches the queue front
                                dirty.add(q[0])
                else:
                    pbuf = bufs[p]
                    if not pbuf:
                        continue
                    flit = pbuf.popleft()
                    buf.append(flit)
                    if flit & _TAIL:  # tail left prev: release it
                        owner[p] = -1
                        prev[cid] = prev[p]
                        m.held.pop(0)
                        link_owned[self._link_of[p]] -= 1
                        self._on_free(p)
                if flit & _HEAD:  # header at a new queue front: must route
                    dirty.add(mid)
                rr[li] = (start + k + 1) % n
                hops += 1
                m.last_progress = cycle
                break  # one flit per physical link per cycle
        self.stats.flit_hops += hops

    # ------------------------------------------------------------------
    # vectorized phase kernels (numpy backend; byte-identical to the
    # reference loops above -- see the module docstring for the argument)
    # ------------------------------------------------------------------
    def _pool_arr(self, pool: tuple[int, ...]) -> np.ndarray:
        a = self._pool_arrs.get(pool)
        if a is None:
            a = self._pool_arrs[pool] = np.asarray(pool, np.int64)
        return a

    def _phase_allocate_np(self) -> None:
        dirty = self._dirty
        if not dirty:
            self.alloc_idle_cycles += 1
            return
        mids = sorted(dirty)
        dirty.clear()
        messages = self.messages
        owner = self._owner
        faulty = self._faulty_mask
        bufs = self._buf
        queues = self.source_queues
        table = self._route_table
        chan = self._chan
        specific = self._specific
        fast_sel = self._fast_sel
        cycle = self.cycle
        wakeups = 0
        # pass 1: the reference loop's filtering, collecting live requests
        reqs: list[tuple[int, Message, int, bool, RouteEntry, tuple[int, ...]]] = []
        for mid in mids:
            m = messages[mid]
            if m.header_arrived:
                continue
            held = m.held
            if held:
                lead = held[-1]
                buf = bufs[lead.cid]
                if not buf or not (buf[0] & _HEAD):
                    continue  # header not at the queue front
                c_in_cid = lead.cid
                node = lead.dst
            else:
                q = queues[m.src]
                if not q or q[0] != mid:
                    continue
                c_in_cid = self._inj_cid[m.src]
                node = m.src
            wakeups += 1
            dest = m.dest
            if node == dest:
                m.header_arrived = True
                m.waiting_for = None
                insort(self._arrived, mid)
                continue
            entry = table.entry(c_in_cid, dest)
            committed = specific and m.waiting_for is not None
            pool = entry.wait_cids if committed else entry.cand_cids
            reqs.append((mid, m, c_in_cid, bool(held), entry, pool))
        self.alloc_wakeups += wakeups
        if not reqs:
            return
        # batched first-free prescan against the pre-apply state: the free
        # set only shrinks during this phase, so a prescanned choice that
        # is still free at apply time is exactly the sequential pick
        prescan: list[int] | None = None
        if fast_sel and len(reqs) >= _ALLOC_BATCH_MIN:
            arrs = [self._pool_arr(r[5]) for r in reqs]
            cat = np.concatenate(arrs)
            offs = np.zeros(len(arrs) + 1, np.int64)
            np.cumsum([a.size for a in arrs], out=offs[1:])
            fa = np.frombuffer(faulty, np.uint8)
            free = (self._owner_a[cat] < 0) & (fa[cat] == 0)
            fidx = np.flatnonzero(free)
            if fidx.size:
                pos = np.searchsorted(fidx, offs[:-1])
                safe = np.minimum(pos, fidx.size - 1)
                hit = (pos < fidx.size) & (fidx[safe] < offs[1:])
                prescan = np.where(hit, cat[fidx[safe]], -1).tolist()
            else:
                prescan = [-1] * len(reqs)
        for i, (mid, m, c_in_cid, held_link, entry, pool) in enumerate(reqs):
            if fast_sel:
                choice = -1 if prescan is None else prescan[i]
                if prescan is None or (choice >= 0 and owner[choice] >= 0):
                    # no prescan, or the choice was taken earlier this
                    # phase: scan the pool against the live state
                    choice = -1
                    for cid in pool:
                        if owner[cid] < 0 and not faulty[cid]:
                            choice = cid
                            break
            else:
                committed = specific and m.waiting_for is not None
                cands = entry.wait_channels if committed else entry.cand_channels
                free_fn = lambda c: owner[c.cid] < 0 and not faulty[c.cid]  # noqa: E731
                picked = self.config.selection(chan[c_in_cid], cands, free_fn)
                choice = -1 if picked is None else picked.cid
            if choice >= 0:
                owner[choice] = mid
                self._owner_a[choice] = mid
                pc = c_in_cid if held_link else -1
                self._prev[choice] = pc
                self._prev_a[choice] = pc
                if held_link:
                    self._next_of[c_in_cid] = choice
                m.held.append(chan[choice])
                self._link_owned[self._link_of[choice]] += 1
                m.hops += 1
                m.waiting_for = None
                m.last_progress = cycle
                if m.started is None:
                    m.started = cycle
                self._wait_ver[mid] += 1
            else:
                if m.waiting_for is None or not specific:
                    m.waiting_for = entry.wait_set
                pool_reg = entry.wait_cids if specific else entry.cand_cids
                ver = self._wait_ver[mid] + 1
                self._wait_ver[mid] = ver
                waiters = self._waiters
                for cid in pool_reg:
                    waiters[cid].append((mid, ver))

    def _scan_link_np(self, li: int) -> tuple[int, int] | None:
        """Scalar RR rescan of one flagged link against the live state.

        Identical to the reference transmit loop's per-link scan; used for
        links whose eligibility may have changed since the batch precompute.
        """
        vcs = self._link_vcs[li]
        n = len(vcs)
        start = self._rr[li]
        owner = self._owner
        bufs = self._buf
        prev = self._prev
        depth = self.config.buffer_depth
        messages = self.messages
        for k in range(n):
            j = start + k
            cid = vcs[j - n if j >= n else j]
            mid = owner[cid]
            if mid < 0:
                continue
            if len(bufs[cid]) >= depth:
                continue
            p = prev[cid]
            if p < 0:
                m = messages[mid]
                if m.flits_injected >= m.length:
                    continue
            elif not bufs[p]:
                continue
            return cid, k
        return None

    def _phase_transmit_np(self) -> None:
        depth = self.config.buffer_depth
        owner = self._owner
        bufs = self._buf
        prev = self._prev
        owner_a = self._owner_a
        prev_a = self._prev_a
        buflen_a = self._buflen
        # eligibility of every VC from the phase-entry state, in bulk
        owned = owner_a >= 0
        ocl = np.where(owned, owner_a, 0)
        has_prev = prev_a >= 0
        pcl = np.where(has_prev, prev_a, 0)
        feed = np.where(has_prev, buflen_a[pcl] > 0,
                        self._minj[ocl] < self._mlen[ocl])
        elig = owned & (buflen_a < depth) & feed
        # each link's first eligible VC in round-robin order
        rr = self._rr
        rr_a = self._rr_a
        pos = (rr_a[:, None] + self._k_arange) % self._nvcs
        cand = self._vc_mat[self._row_idx, pos]
        em = elig[cand]
        karr = em.argmax(axis=1)
        sel = em.any(axis=1)
        sel_b = sel.tobytes()
        elig_idx = np.flatnonzero(sel)
        elig_links = elig_idx.tolist()
        k_e = karr[elig_idx].tolist()
        choice_e = cand[elig_idx, karr[elig_idx]].tolist()

        messages = self.messages
        link_vcs = self._link_vcs
        link_owned = self._link_owned
        link_of = self._link_of
        next_of = self._next_of
        queues = self.source_queues
        dirty = self._dirty
        minj = self._minj
        cycle = self.cycle
        hops = 0
        # Visit links in ascending order, exactly like the reference loop --
        # but only the links that can possibly move a flit: those eligible
        # at phase entry, plus those flagged when an earlier move changed
        # their state.  Flags land only on links *ahead* of the current
        # position (the reference pass never revisits a link it already
        # passed), so the merged visit order is strictly ascending and
        # unvisited links are exactly the links the reference loop would
        # scan and skip.
        flagged = bytearray(len(link_vcs))
        flag_heap: list[int] = []
        ei = 0
        n_e = len(elig_links)
        while True:
            if ei < n_e and (not flag_heap or elig_links[ei] < flag_heap[0]):
                li = elig_links[ei]
                cid = choice_e[ei]
                k = k_e[ei]
                ei += 1
            elif flag_heap:
                li = heapq.heappop(flag_heap)
                cid = -1
            else:
                break
            if not link_owned[li]:
                continue
            if flagged[li] or cid < 0:
                found = self._scan_link_np(li)
                if found is None:
                    continue
                cid, k = found
            # apply one flit move (mirrors the reference loop body)
            mid = owner[cid]
            m = messages[mid]
            buf = bufs[cid]
            p = prev[cid]
            if p < 0:
                fi = m.flits_injected
                flit = (mid << 2) \
                    | (_HEAD if fi == 0 else 0) \
                    | (_TAIL if fi == m.length - 1 else 0)
                buf.append(flit)
                buflen_a[cid] += 1
                m.flits_injected = fi + 1
                minj[mid] = fi + 1
                if flit & _TAIL:
                    q = queues[m.src]
                    if q and q[0] == mid:
                        q.popleft()
                        if q:  # next message reaches the queue front
                            dirty.add(q[0])
            else:
                flit = bufs[p].popleft()
                buf.append(flit)
                buflen_a[p] -= 1
                buflen_a[cid] += 1
                lp = link_of[p]
                if lp > li and not flagged[lp]:
                    flagged[lp] = 1  # p gained room / may have drained
                    if not sel_b[lp]:
                        heapq.heappush(flag_heap, lp)
                if flit & _TAIL:  # tail left prev: release it
                    owner[p] = -1
                    owner_a[p] = -1
                    pp = prev[p]
                    prev[cid] = pp
                    prev_a[cid] = pp
                    next_of[p] = -1
                    if pp >= 0:
                        next_of[pp] = cid
                    m.held.pop(0)
                    link_owned[lp] -= 1
                    self._on_free(p)
            nxt = next_of[cid]
            if nxt >= 0:
                ln = link_of[nxt]
                if ln > li and not flagged[ln]:
                    flagged[ln] = 1  # cid's consumer gained a flit
                    if not sel_b[ln]:
                        heapq.heappush(flag_heap, ln)
            if flit & _HEAD:  # header at a new queue front: must route
                dirty.add(mid)
            nrr = (rr[li] + k + 1) % len(link_vcs[li])
            rr[li] = nrr
            rr_a[li] = nrr
            hops += 1
            m.last_progress = cycle
        self.stats.flit_hops += hops

    def _phase_eject(self) -> None:
        arrived = self._arrived
        if not arrived:
            return
        rate = self.config.ejection_rate
        messages = self.messages
        bufs = self._buf
        stats = self.stats
        consumed_at = stats._consumed_at
        cycle = self.cycle
        buflen_a = self._buflen if self._np else None
        done = False
        for mid in arrived:
            m = messages[mid]
            held = m.held
            if not held:
                continue
            lead_cid = held[-1].cid
            buf = bufs[lead_cid]
            for _ in range(rate):
                if not buf:
                    break
                flit = buf.popleft()
                if buflen_a is not None:
                    buflen_a[lead_cid] -= 1
                m.flits_consumed += 1
                stats.consumed_flits += 1
                consumed_at.append(cycle)
                if flit & _TAIL:  # tail consumed: message delivered
                    self._owner[lead_cid] = -1
                    if buflen_a is not None:
                        self._owner_a[lead_cid] = -1
                    self._link_owned[self._link_of[lead_cid]] -= 1
                    held.pop()
                    assert not held, "tail consumed while channels still held"
                    m.finished = cycle
                    stats.note_delivered(m)
                    self._on_free(lead_cid)
                    done = True
                    break
        if done:
            self._active = [mid for mid in self._active if messages[mid].finished is None]
            self._arrived = [mid for mid in arrived if messages[mid].finished is None]

    def _phase_traffic(self) -> None:
        for src, dest, length in self.traffic.messages_for_cycle(self.cycle, self.rng):
            self.inject_message(src, dest, length)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one cycle."""
        self._phase_traffic()
        if self._np:
            self._phase_allocate_np()
            self._phase_transmit_np()
        else:
            self._phase_allocate()
            self._phase_transmit()
        self._phase_eject()
        interval = self.config.deadlock_check_interval
        if interval and self.cycle % interval == interval - 1 and self.deadlock is None:
            report = self.detector.check()
            if report is not None:
                self.deadlock = report
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Run for ``cycles`` cycles (stops early on detected deadlock)."""
        for _ in range(cycles):
            self.step()
            if self.deadlock is not None and self.config.stop_on_deadlock:
                break

    def drain(self, max_cycles: int = 1_000_000) -> bool:
        """Run with no new traffic until all messages deliver.

        Returns True if the network drained, False on deadlock/timeout.
        """
        quiet = _SilentTraffic()
        saved, self.traffic = self.traffic, quiet
        try:
            for _ in range(max_cycles):
                if not self._active:
                    return True
                self.step()
                if self.deadlock is not None and self.config.stop_on_deadlock:
                    return False
            return False
        finally:
            self.traffic = saved

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail_channel(self, channel: Channel) -> None:
        """Mark an *idle* link channel faulty (Definition 3's third status).

        Faulty channels are never allocated; adaptive algorithms route
        around them while nonadaptive ones stall -- the Section 1
        fault-tolerance motivation for nonminimal routing.  Failing a
        channel that currently carries a message is not modelled (wormhole
        fault recovery mid-message is out of the paper's scope), so it
        raises.
        """
        if not channel.is_link:
            raise ValueError(f"{channel!r} is not a link channel")
        if self._owner[channel.cid] >= 0:
            raise ValueError(f"{channel!r} is occupied; only idle channels can fail")
        self.faulty.add(channel)
        self._faulty_mask[channel.cid] = 1

    def repair_channel(self, channel: Channel) -> None:
        """Clear a channel's faulty status."""
        if channel in self.faulty:
            self.faulty.discard(channel)
            self._faulty_mask[channel.cid] = 0
            self._on_free(channel.cid)  # waiters may acquire it now

    def stalled_messages(self) -> list[Message]:
        """Blocked messages whose every waiting channel is faulty.

        These can never proceed -- not a Definition-12 deadlock (no cycle),
        but a delivery failure the fault model surfaces explicitly.
        """
        return [
            m for m in self.blocked_messages()
            if m.waiting_for and all(w in self.faulty for w in m.waiting_for)
        ]

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> list[Message]:
        return [self.messages[mid] for mid in self._active]

    def blocked_messages(self) -> list[Message]:
        """Messages currently blocked on a waiting set."""
        return [m for m in self.in_flight if m.waiting_for is not None]

    def perf_counters(self) -> dict[str, int]:
        """Fast-path observability counters (route-table cache, wakeups)."""
        rt = self._route_table.stats()
        return {
            "cycles": self.cycle,
            "alloc_wakeups": self.alloc_wakeups,
            "alloc_idle_cycles": self.alloc_idle_cycles,
            "route_table_hits": rt["hits"] - self._rt_hits0,
            "route_table_misses": rt["misses"] - self._rt_misses0,
            "route_table_entries": rt["entries"],
            "flit_hops": self.stats.flit_hops,
        }


class _SilentTraffic:
    """No-op traffic source used by :meth:`WormholeSimulator.drain`."""

    def messages_for_cycle(self, cycle: int, rng) -> list[tuple[int, int, int]]:
        return []
