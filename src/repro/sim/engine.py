"""The flit-level wormhole network simulator.

Implements the system model of Section 3 directly:

1. nodes generate messages of arbitrary length at any rate (traffic
   sources + unbounded source queues);
2. messages arriving at their destination are consumed (an ejection port
   per node with configurable rate);
3. once a channel queue accepts a header flit it accepts all flits of that
   message before any other (per-channel ownership);
4. a channel queue holds flits of at most one message, and the channel is
   released only after the tail flit has traversed it;
5. nodes arbitrate among messages requesting the same output channel
   without starvation (round-robin virtual-channel arbitration per physical
   link, FIFO source queues, and oldest-first allocation order).

Each simulated cycle has three phases:

* **allocation** -- every message whose header sits at the front of its
  leading channel queue (or at the source) consults the routing relation
  ``R(c_in, node, dest)``, and a free permitted channel is allocated via the
  selection function; blocked messages record their waiting channels, with
  wait-on-SPECIFIC messages committing to the designated waiting set until
  one of those channels is acquired (Section 6 case (1));
* **transmission** -- each physical link forwards at most one flit per
  cycle, round-robin over its virtual channels, subject to downstream
  buffer space;
* **ejection** -- destinations consume up to ``ejection_rate`` flits.

The engine is deterministic given the config seed: all iteration orders are
fixed, and stochastic choices draw from one owned RNG.

Fast path
---------
The observable semantics above are produced from flat, integer-indexed
state (the structure-of-arrays layout cycle-accurate NoC simulators use)
rather than per-flit objects and channel-keyed dictionaries:

* channel ownership, buffer queues, and held-position links are lists
  indexed by dense channel id; a flit is one packed int
  (``mid << 2 | is_head << 1 | is_tail``);
* routing decisions come from a :class:`~repro.routing.relation.RouteTable`
  that caches ``R(c_in, node, dest)`` pre-sorted by the allocator's
  priority key, so the relation is consulted once per ``(input channel,
  destination)`` pair instead of once per blocked message per cycle;
* allocation is event-driven: a dirty set tracks exactly the messages
  whose decision could have changed (a header reached a queue front, a
  channel they wait on freed, they reached the front of a source queue),
  so quiescent cycles do no allocation work at all;
* transmission visits only physical links with at least one owned virtual
  channel.

``SimStats.digest()`` is byte-identical to the original per-object engine
-- the golden matrix in ``tests/fixtures/sim_golden_digests.json`` pins
this.  The channel-keyed ``owner`` / ``buffers`` mappings remain available
as read-only views for tests and analysis code.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from collections.abc import Iterator, Mapping

import numpy as np

from ..routing.relation import RouteTable, RoutingAlgorithm, WaitPolicy
from ..routing.selection import first_free
from ..topology.channel import Channel
from .config import SimConfig
from .deadlock import DeadlockDetector, DeadlockReport
from .message import Message
from .stats import SimStats
from .traffic import TrafficSource

#: flit record as exposed by the ``buffers`` view: (message id, is_head, is_tail)
Flit = tuple[int, bool, bool]

#: packed-flit flag bits (internal layout: ``mid << 2 | HEAD | TAIL``)
_HEAD = 2
_TAIL = 1


class _OwnerView(Mapping):
    """Read-only ``Channel -> mid | None`` view over the dense owner array."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "WormholeSimulator") -> None:
        self._sim = sim

    def __getitem__(self, channel: Channel) -> int | None:
        mid = self._sim._owner[channel.cid]
        return None if mid < 0 else mid

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._sim._link_channels)

    def __len__(self) -> int:
        return len(self._sim._link_channels)


class _BuffersView(Mapping):
    """Read-only ``Channel -> tuple[Flit, ...]`` view decoding packed flits."""

    __slots__ = ("_sim",)

    def __init__(self, sim: "WormholeSimulator") -> None:
        self._sim = sim

    def __getitem__(self, channel: Channel) -> tuple[Flit, ...]:
        return tuple(
            (f >> 2, bool(f & _HEAD), bool(f & _TAIL))
            for f in self._sim._buf[channel.cid]
        )

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._sim._link_channels)

    def __len__(self) -> int:
        return len(self._sim._link_channels)


class WormholeSimulator:
    """Cycle-based wormhole simulator for one network + routing algorithm."""

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        traffic: TrafficSource,
        config: SimConfig | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.network = algorithm.network
        self.traffic = traffic
        self.config = config or SimConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.wait_policy = self.config.wait_policy_override or algorithm.wait_policy

        self.cycle = 0
        self.messages: dict[int, Message] = {}
        #: undelivered message ids, ascending (allocation order = oldest first)
        self._active: list[int] = []
        self._next_mid = 0
        #: channels marked faulty (Definition 3's fault-tolerant status set);
        #: faulty channels are never allocated
        self.faulty: set[Channel] = set()
        #: per-node FIFO source queues of message ids
        self.source_queues: list[deque[int]] = [deque() for _ in self.network.nodes]
        self.stats = SimStats()
        self.detector = DeadlockDetector(self)
        self.deadlock: DeadlockReport | None = None
        self._dist = self.network.shortest_distances() if self.config.prefer_minimal else None

        # -- flat per-channel state (indexed by dense cid) ----------------
        net = self.network
        num_ch = net.num_channels
        self._chan: list[Channel] = list(net.channels)
        self._link_channels: list[Channel] = net.link_channels
        #: owning message id per channel, -1 = free
        self._owner: list[int] = [-1] * num_ch
        #: per-channel flit queue of packed ints
        self._buf: list[deque[int]] = [deque() for _ in range(num_ch)]
        #: cid of the held channel immediately tail-ward in the owner's path,
        #: -1 when the channel's flits come from the source queue
        self._prev: list[int] = [-1] * num_ch
        self._faulty_mask = bytearray(num_ch)
        self._inj_cid: list[int] = [net.injection_channel(n).cid for n in net.nodes]

        #: physical links and their VCs, in deterministic order
        self._links: list[tuple[tuple[int, int], list[Channel]]] = self._group_links()
        self._link_vcs: list[list[int]] = [[c.cid for c in vcs] for _, vcs in self._links]
        self._rr: list[int] = [0] * len(self._links)
        self._link_of: list[int] = [-1] * num_ch
        for li, cids in enumerate(self._link_vcs):
            for cid in cids:
                self._link_of[cid] = li
        #: owned-VC count per physical link; idle links are skipped entirely
        self._link_owned: list[int] = [0] * len(self._links)

        # -- event-driven allocation state --------------------------------
        #: messages whose routing decision could have changed since their
        #: last allocation visit
        self._dirty: set[int] = set()
        #: per-channel blocked waiters as (mid, registration version)
        self._waiters: list[list[tuple[int, int]]] = [[] for _ in range(num_ch)]
        #: per-message registration version; bumping invalidates stale entries
        self._wait_ver: list[int] = []
        #: header-arrived, undelivered message ids, ascending
        self._arrived: list[int] = []
        self._specific = self.wait_policy is WaitPolicy.SPECIFIC
        self._fast_sel = self.config.selection is first_free
        self._route_table = RouteTable(algorithm, dist=self._dist)

        # -- observability -------------------------------------------------
        #: messages visited by the allocator (event-driven wakeups)
        self.alloc_wakeups = 0
        #: cycles whose allocation phase had nothing to do
        self.alloc_idle_cycles = 0

        # channel-keyed read-only views (test/analysis API)
        self.owner = _OwnerView(self)
        self.buffers = _BuffersView(self)

    # ------------------------------------------------------------------
    def _group_links(self) -> list[tuple[tuple[int, int], list[Channel]]]:
        groups: dict[tuple[int, int], list[Channel]] = {}
        for c in self.network.link_channels:
            groups.setdefault(c.endpoints, []).append(c)
        return sorted(groups.items())

    # ------------------------------------------------------------------
    # message lifecycle
    # ------------------------------------------------------------------
    def inject_message(self, src: int, dest: int, length: int, *, created: int | None = None) -> Message:
        """Hand a new message to ``src``'s source queue."""
        if src == dest:
            raise ValueError("source == destination")
        if length < 1:
            raise ValueError("message length must be >= 1 flit")
        m = Message(
            mid=self._next_mid, src=src, dest=dest, length=length,
            created=self.cycle if created is None else created,
        )
        self._next_mid += 1
        self.messages[m.mid] = m
        self._active.append(m.mid)
        self._wait_ver.append(0)
        q = self.source_queues[src]
        q.append(m.mid)
        if len(q) == 1:  # at the queue front: may route next allocation
            self._dirty.add(m.mid)
        self.stats.offered_flits += length
        return m

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------
    def _on_free(self, cid: int) -> None:
        """A channel freed: wake every validly registered waiter."""
        waiters = self._waiters[cid]
        if waiters:
            ver = self._wait_ver
            dirty = self._dirty
            for mid, v in waiters:
                if ver[mid] == v:
                    dirty.add(mid)
            waiters.clear()

    def _phase_allocate(self) -> None:
        dirty = self._dirty
        if not dirty:
            self.alloc_idle_cycles += 1
            return
        # Oldest message first: prevents starvation (Assumption 5).  Only
        # messages whose decision could have changed are visited; everyone
        # else would reproduce last cycle's outcome verbatim.
        mids = sorted(dirty)
        dirty.clear()
        messages = self.messages
        owner = self._owner
        faulty = self._faulty_mask
        bufs = self._buf
        queues = self.source_queues
        table = self._route_table
        chan = self._chan
        specific = self._specific
        fast_sel = self._fast_sel
        cycle = self.cycle
        wakeups = 0
        for mid in mids:
            m = messages[mid]
            if m.header_arrived:
                continue
            held = m.held
            if held:
                lead = held[-1]
                buf = bufs[lead.cid]
                if not buf or not (buf[0] & _HEAD):
                    continue  # header not at the queue front
                c_in_cid = lead.cid
                node = lead.dst
            else:
                # still in the source queue; only the front message may inject
                q = queues[m.src]
                if not q or q[0] != mid:
                    continue
                c_in_cid = self._inj_cid[m.src]
                node = m.src
            wakeups += 1
            dest = m.dest
            if node == dest:
                m.header_arrived = True
                m.waiting_for = None
                insort(self._arrived, mid)
                continue
            entry = table.entry(c_in_cid, dest)
            committed = specific and m.waiting_for is not None
            # committed: may acquire only a designated waiting channel
            cand_cids = entry.wait_cids if committed else entry.cand_cids
            if fast_sel:
                choice = -1
                for cid in cand_cids:
                    if owner[cid] < 0 and not faulty[cid]:
                        choice = cid
                        break
            else:
                cands = entry.wait_channels if committed else entry.cand_channels
                free = lambda c: owner[c.cid] < 0 and not faulty[c.cid]  # noqa: E731
                picked = self.config.selection(chan[c_in_cid], cands, free)
                choice = -1 if picked is None else picked.cid
            if choice >= 0:
                owner[choice] = mid
                self._prev[choice] = c_in_cid if held else -1
                held.append(chan[choice])
                self._link_owned[self._link_of[choice]] += 1
                m.hops += 1
                m.waiting_for = None
                m.last_progress = cycle
                if m.started is None:
                    m.started = cycle
                self._wait_ver[mid] += 1  # invalidate stale registrations
            else:
                if m.waiting_for is None or not specific:
                    m.waiting_for = entry.wait_set
                # register on the pool the next decision will draw from
                pool = entry.wait_cids if specific else entry.cand_cids
                ver = self._wait_ver[mid] + 1
                self._wait_ver[mid] = ver
                waiters = self._waiters
                for cid in pool:
                    waiters[cid].append((mid, ver))
        self.alloc_wakeups += wakeups

    def _phase_transmit(self) -> None:
        depth = self.config.buffer_depth
        owner = self._owner
        bufs = self._buf
        prev = self._prev
        messages = self.messages
        link_vcs = self._link_vcs
        link_owned = self._link_owned
        rr = self._rr
        queues = self.source_queues
        dirty = self._dirty
        cycle = self.cycle
        hops = 0
        for li in range(len(link_vcs)):
            if not link_owned[li]:
                continue
            vcs = link_vcs[li]
            n = len(vcs)
            start = rr[li]
            for k in range(n):
                j = start + k
                cid = vcs[j - n if j >= n else j]
                mid = owner[cid]
                if mid < 0:
                    continue
                buf = bufs[cid]
                if len(buf) >= depth:
                    continue
                m = messages[mid]
                p = prev[cid]
                if p < 0:
                    # flit comes from the source queue
                    fi = m.flits_injected
                    if fi >= m.length:
                        continue
                    flit = (mid << 2) \
                        | (_HEAD if fi == 0 else 0) \
                        | (_TAIL if fi == m.length - 1 else 0)
                    buf.append(flit)
                    m.flits_injected = fi + 1
                    if flit & _TAIL:
                        q = queues[m.src]
                        if q and q[0] == mid:
                            q.popleft()
                            if q:  # next message reaches the queue front
                                dirty.add(q[0])
                else:
                    pbuf = bufs[p]
                    if not pbuf:
                        continue
                    flit = pbuf.popleft()
                    buf.append(flit)
                    if flit & _TAIL:  # tail left prev: release it
                        owner[p] = -1
                        prev[cid] = prev[p]
                        m.held.pop(0)
                        link_owned[self._link_of[p]] -= 1
                        self._on_free(p)
                if flit & _HEAD:  # header at a new queue front: must route
                    dirty.add(mid)
                rr[li] = (start + k + 1) % n
                hops += 1
                m.last_progress = cycle
                break  # one flit per physical link per cycle
        self.stats.flit_hops += hops

    def _phase_eject(self) -> None:
        arrived = self._arrived
        if not arrived:
            return
        rate = self.config.ejection_rate
        messages = self.messages
        bufs = self._buf
        stats = self.stats
        consumed_at = stats._consumed_at
        cycle = self.cycle
        done = False
        for mid in arrived:
            m = messages[mid]
            held = m.held
            if not held:
                continue
            lead_cid = held[-1].cid
            buf = bufs[lead_cid]
            for _ in range(rate):
                if not buf:
                    break
                flit = buf.popleft()
                m.flits_consumed += 1
                stats.consumed_flits += 1
                consumed_at.append(cycle)
                if flit & _TAIL:  # tail consumed: message delivered
                    self._owner[lead_cid] = -1
                    self._link_owned[self._link_of[lead_cid]] -= 1
                    held.pop()
                    assert not held, "tail consumed while channels still held"
                    m.finished = cycle
                    stats.note_delivered(m)
                    self._on_free(lead_cid)
                    done = True
                    break
        if done:
            self._active = [mid for mid in self._active if messages[mid].finished is None]
            self._arrived = [mid for mid in arrived if messages[mid].finished is None]

    def _phase_traffic(self) -> None:
        for src, dest, length in self.traffic.messages_for_cycle(self.cycle, self.rng):
            self.inject_message(src, dest, length)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one cycle."""
        self._phase_traffic()
        self._phase_allocate()
        self._phase_transmit()
        self._phase_eject()
        interval = self.config.deadlock_check_interval
        if interval and self.cycle % interval == interval - 1 and self.deadlock is None:
            report = self.detector.check()
            if report is not None:
                self.deadlock = report
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Run for ``cycles`` cycles (stops early on detected deadlock)."""
        for _ in range(cycles):
            self.step()
            if self.deadlock is not None and self.config.stop_on_deadlock:
                break

    def drain(self, max_cycles: int = 1_000_000) -> bool:
        """Run with no new traffic until all messages deliver.

        Returns True if the network drained, False on deadlock/timeout.
        """
        quiet = _SilentTraffic()
        saved, self.traffic = self.traffic, quiet
        try:
            for _ in range(max_cycles):
                if not self._active:
                    return True
                self.step()
                if self.deadlock is not None and self.config.stop_on_deadlock:
                    return False
            return False
        finally:
            self.traffic = saved

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail_channel(self, channel: Channel) -> None:
        """Mark an *idle* link channel faulty (Definition 3's third status).

        Faulty channels are never allocated; adaptive algorithms route
        around them while nonadaptive ones stall -- the Section 1
        fault-tolerance motivation for nonminimal routing.  Failing a
        channel that currently carries a message is not modelled (wormhole
        fault recovery mid-message is out of the paper's scope), so it
        raises.
        """
        if not channel.is_link:
            raise ValueError(f"{channel!r} is not a link channel")
        if self._owner[channel.cid] >= 0:
            raise ValueError(f"{channel!r} is occupied; only idle channels can fail")
        self.faulty.add(channel)
        self._faulty_mask[channel.cid] = 1

    def repair_channel(self, channel: Channel) -> None:
        """Clear a channel's faulty status."""
        if channel in self.faulty:
            self.faulty.discard(channel)
            self._faulty_mask[channel.cid] = 0
            self._on_free(channel.cid)  # waiters may acquire it now

    def stalled_messages(self) -> list[Message]:
        """Blocked messages whose every waiting channel is faulty.

        These can never proceed -- not a Definition-12 deadlock (no cycle),
        but a delivery failure the fault model surfaces explicitly.
        """
        return [
            m for m in self.blocked_messages()
            if m.waiting_for and all(w in self.faulty for w in m.waiting_for)
        ]

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> list[Message]:
        return [self.messages[mid] for mid in self._active]

    def blocked_messages(self) -> list[Message]:
        """Messages currently blocked on a waiting set."""
        return [m for m in self.in_flight if m.waiting_for is not None]

    def perf_counters(self) -> dict[str, int]:
        """Fast-path observability counters (route-table cache, wakeups)."""
        rt = self._route_table.stats()
        return {
            "cycles": self.cycle,
            "alloc_wakeups": self.alloc_wakeups,
            "alloc_idle_cycles": self.alloc_idle_cycles,
            "route_table_hits": rt["hits"],
            "route_table_misses": rt["misses"],
            "route_table_entries": rt["entries"],
            "flit_hops": self.stats.flit_hops,
        }


class _SilentTraffic:
    """No-op traffic source used by :meth:`WormholeSimulator.drain`."""

    def messages_for_cycle(self, cycle: int, rng) -> list[tuple[int, int, int]]:
        return []
