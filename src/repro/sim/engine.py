"""The flit-level wormhole network simulator.

Implements the system model of Section 3 directly:

1. nodes generate messages of arbitrary length at any rate (traffic
   sources + unbounded source queues);
2. messages arriving at their destination are consumed (an ejection port
   per node with configurable rate);
3. once a channel queue accepts a header flit it accepts all flits of that
   message before any other (per-channel ownership);
4. a channel queue holds flits of at most one message, and the channel is
   released only after the tail flit has traversed it;
5. nodes arbitrate among messages requesting the same output channel
   without starvation (round-robin virtual-channel arbitration per physical
   link, FIFO source queues, and oldest-first allocation order).

Each simulated cycle has three phases:

* **allocation** -- every message whose header sits at the front of its
  leading channel queue (or at the source) consults the routing relation
  ``R(c_in, node, dest)``, and a free permitted channel is allocated via the
  selection function; blocked messages record their waiting channels, with
  wait-on-SPECIFIC messages committing to the designated waiting set until
  one of those channels is acquired (Section 6 case (1));
* **transmission** -- each physical link forwards at most one flit per
  cycle, round-robin over its virtual channels, subject to downstream
  buffer space;
* **ejection** -- destinations consume up to ``ejection_rate`` flits.

The engine is deterministic given the config seed: all iteration orders are
fixed, and stochastic choices draw from one owned RNG.
"""

from __future__ import annotations

from collections import deque


import numpy as np

from ..routing.relation import RoutingAlgorithm, WaitPolicy
from ..topology.channel import Channel
from .config import SimConfig
from .deadlock import DeadlockDetector, DeadlockReport
from .message import Message
from .stats import SimStats
from .traffic import TrafficSource

#: flit record: (message id, is_head, is_tail)
Flit = tuple[int, bool, bool]


class WormholeSimulator:
    """Cycle-based wormhole simulator for one network + routing algorithm."""

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        traffic: TrafficSource,
        config: SimConfig | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.network = algorithm.network
        self.traffic = traffic
        self.config = config or SimConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.wait_policy = self.config.wait_policy_override or algorithm.wait_policy

        self.cycle = 0
        self.messages: dict[int, Message] = {}
        #: undelivered message ids, ascending (allocation order = oldest first)
        self._active: list[int] = []
        self._next_mid = 0
        #: per-channel flit queue (flits that have traversed the channel)
        self.buffers: dict[Channel, deque[Flit]] = {
            c: deque() for c in self.network.link_channels
        }
        #: channel ownership (Assumption 3/4)
        self.owner: dict[Channel, int | None] = {c: None for c in self.network.link_channels}
        #: channels marked faulty (Definition 3's fault-tolerant status set);
        #: faulty channels are never allocated
        self.faulty: set[Channel] = set()
        #: per-node FIFO source queues of message ids
        self.source_queues: list[deque[int]] = [deque() for _ in self.network.nodes]
        #: physical links and their VCs, in deterministic order
        self._links: list[tuple[tuple[int, int], list[Channel]]] = self._group_links()
        self._rr: dict[tuple[int, int], int] = {link: 0 for link, _ in self._links}
        self.stats = SimStats()
        self.detector = DeadlockDetector(self)
        self.deadlock: DeadlockReport | None = None
        self._dist = self.network.shortest_distances() if self.config.prefer_minimal else None

    # ------------------------------------------------------------------
    def _group_links(self) -> list[tuple[tuple[int, int], list[Channel]]]:
        groups: dict[tuple[int, int], list[Channel]] = {}
        for c in self.network.link_channels:
            groups.setdefault(c.endpoints, []).append(c)
        return sorted(groups.items())

    # ------------------------------------------------------------------
    # message lifecycle
    # ------------------------------------------------------------------
    def inject_message(self, src: int, dest: int, length: int, *, created: int | None = None) -> Message:
        """Hand a new message to ``src``'s source queue."""
        if src == dest:
            raise ValueError("source == destination")
        if length < 1:
            raise ValueError("message length must be >= 1 flit")
        m = Message(
            mid=self._next_mid, src=src, dest=dest, length=length,
            created=self.cycle if created is None else created,
        )
        self._next_mid += 1
        self.messages[m.mid] = m
        self._active.append(m.mid)
        self.source_queues[src].append(m.mid)
        self.stats.offered_flits += length
        return m

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------
    def _routing_state(self, m: Message) -> tuple[Channel, int] | None:
        """(input channel, node) if the header currently needs an output.

        Returns None when the message has no routing decision pending: not
        yet at the front of its source queue, header not at a queue front,
        or already arrived.
        """
        if m.header_arrived:
            return None
        lead = m.leading_channel
        if lead is None:
            # still in the source queue; only the front message may inject
            q = self.source_queues[m.src]
            if not q or q[0] != m.mid:
                return None
            return (self.network.injection_channel(m.src), m.src)
        buf = self.buffers[lead]
        if not buf or not buf[0][1]:  # header not at the front
            return None
        return (lead, lead.dst)

    def _phase_allocate(self) -> None:
        # Oldest message first: prevents starvation (Assumption 5).
        for mid in self._active:
            m = self.messages[mid]
            state = self._routing_state(m)
            if state is None:
                continue
            c_in, node = state
            if node == m.dest:
                m.header_arrived = True
                m.waiting_for = None
                continue
            permitted = self.algorithm.route(c_in, node, m.dest)
            if m.waiting_for is not None and self.wait_policy is WaitPolicy.SPECIFIC:
                # committed: may acquire only a designated waiting channel
                pool = m.waiting_for
            else:
                pool = permitted
            if self._dist is not None:
                dist = self._dist
                prev = c_in.src if c_in.is_link else -1
                # progress first, then avoid immediate U-turns, then stable
                candidates = sorted(
                    pool,
                    key=lambda c: (dist[c.dst][m.dest], c.dst == prev, c.vc, c.cid),
                )
            else:
                candidates = sorted(pool, key=lambda c: c.cid)
            free = lambda c: self.owner[c] is None and c not in self.faulty
            choice = self.config.selection(c_in, candidates, free)
            if choice is not None:
                self.owner[choice] = m.mid
                m.held.append(choice)
                m.hops += 1
                m.waiting_for = None
                m.last_progress = self.cycle
                if m.started is None:
                    m.started = self.cycle
            else:
                if m.waiting_for is None or self.wait_policy is not WaitPolicy.SPECIFIC:
                    m.waiting_for = self.algorithm.waiting_channels(c_in, node, m.dest)

    def _phase_transmit(self) -> None:
        depth = self.config.buffer_depth
        for link, vcs in self._links:
            n = len(vcs)
            start = self._rr[link]
            for k in range(n):
                c = vcs[(start + k) % n]
                mid = self.owner[c]
                if mid is None:
                    continue
                m = self.messages[mid]
                buf = self.buffers[c]
                if len(buf) >= depth:
                    continue
                idx = m.held.index(c)
                if idx == 0:
                    # flit comes from the source queue
                    if m.flits_injected >= m.length:
                        continue
                    is_head = m.flits_injected == 0
                    is_tail = m.flits_injected == m.length - 1
                    buf.append((mid, is_head, is_tail))
                    m.flits_injected += 1
                    if is_tail:
                        q = self.source_queues[m.src]
                        if q and q[0] == mid:
                            q.popleft()
                else:
                    prev = m.held[idx - 1]
                    pbuf = self.buffers[prev]
                    if not pbuf:
                        continue
                    flit = pbuf.popleft()
                    buf.append(flit)
                    if flit[2]:  # tail left prev: release it
                        self.owner[prev] = None
                        m.held.pop(idx - 1)
                self._rr[link] = (start + k + 1) % n
                self.stats.flit_hops += 1
                m.last_progress = self.cycle
                break  # one flit per physical link per cycle

    def _phase_eject(self) -> None:
        done = False
        for mid in self._active:
            m = self.messages[mid]
            if not m.header_arrived:
                continue
            lead = m.leading_channel
            if lead is None:
                continue
            buf = self.buffers[lead]
            for _ in range(self.config.ejection_rate):
                if not buf:
                    break
                flit = buf.popleft()
                m.flits_consumed += 1
                self.stats.note_consumed(self.cycle)
                if flit[2]:  # tail consumed: message delivered
                    self.owner[lead] = None
                    m.held.remove(lead)
                    assert not m.held, "tail consumed while channels still held"
                    m.finished = self.cycle
                    self.stats.note_delivered(m)
                    done = True
                    break
        if done:
            self._active = [mid for mid in self._active if not self.messages[mid].delivered]

    def _phase_traffic(self) -> None:
        for src, dest, length in self.traffic.messages_for_cycle(self.cycle, self.rng):
            self.inject_message(src, dest, length)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one cycle."""
        self._phase_traffic()
        self._phase_allocate()
        self._phase_transmit()
        self._phase_eject()
        interval = self.config.deadlock_check_interval
        if interval and self.cycle % interval == interval - 1 and self.deadlock is None:
            report = self.detector.check()
            if report is not None:
                self.deadlock = report
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Run for ``cycles`` cycles (stops early on detected deadlock)."""
        for _ in range(cycles):
            self.step()
            if self.deadlock is not None and self.config.stop_on_deadlock:
                break

    def drain(self, max_cycles: int = 1_000_000) -> bool:
        """Run with no new traffic until all messages deliver.

        Returns True if the network drained, False on deadlock/timeout.
        """
        quiet = _SilentTraffic()
        saved, self.traffic = self.traffic, quiet
        try:
            for _ in range(max_cycles):
                if not self._active:
                    return True
                self.step()
                if self.deadlock is not None and self.config.stop_on_deadlock:
                    return False
            return False
        finally:
            self.traffic = saved

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail_channel(self, channel: Channel) -> None:
        """Mark an *idle* link channel faulty (Definition 3's third status).

        Faulty channels are never allocated; adaptive algorithms route
        around them while nonadaptive ones stall -- the Section 1
        fault-tolerance motivation for nonminimal routing.  Failing a
        channel that currently carries a message is not modelled (wormhole
        fault recovery mid-message is out of the paper's scope), so it
        raises.
        """
        if not channel.is_link:
            raise ValueError(f"{channel!r} is not a link channel")
        if self.owner[channel] is not None:
            raise ValueError(f"{channel!r} is occupied; only idle channels can fail")
        self.faulty.add(channel)

    def repair_channel(self, channel: Channel) -> None:
        """Clear a channel's faulty status."""
        self.faulty.discard(channel)

    def stalled_messages(self) -> list[Message]:
        """Blocked messages whose every waiting channel is faulty.

        These can never proceed -- not a Definition-12 deadlock (no cycle),
        but a delivery failure the fault model surfaces explicitly.
        """
        return [
            m for m in self.blocked_messages()
            if m.waiting_for and all(w in self.faulty for w in m.waiting_for)
        ]

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> list[Message]:
        return [self.messages[mid] for mid in self._active]

    def blocked_messages(self) -> list[Message]:
        """Messages currently blocked on a waiting set."""
        return [m for m in self.in_flight if m.waiting_for is not None]


class _SilentTraffic:
    """No-op traffic source used by :meth:`WormholeSimulator.drain`."""

    def messages_for_cycle(self, cycle: int, rng) -> list[tuple[int, int, int]]:
        return []
