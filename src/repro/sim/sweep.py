"""Parallel simulation sweeps: (algorithm, traffic, load, seed) grids.

The paper's Figures 5-6 evidence comes from sweeping the simulator over a
grid of operating points.  One point is one independent deterministic run,
so a sweep is embarrassingly parallel: this module fans grid points across
a ``concurrent.futures`` process pool exactly the way the verification
pipeline fans :class:`~repro.pipeline.engine.JobSpec` jobs -- plain
picklable point descriptions in, ordered results out, a worker failure
degrading to in-process execution rather than a lost point.

Every point carries per-stage timers and the engine's fast-path counters
(cycles/sec, route-table hits/misses, allocation wakeups) through
:class:`~repro.pipeline.observability.StageMetrics`, and the per-point
``SimStats.digest()`` rides along so two sweeps -- serial or parallel, any
worker count -- can be compared for bit-identical behavior.

Grid points that differ only in their traffic axes (pattern, load, seed)
share one network, routing algorithm, and lazily-filled
:class:`~repro.routing.relation.RouteTable` through a per-process build
memo: route-table entries are a pure function of (algorithm, candidate
ordering), so a warm table changes nothing behaviorally while eliminating
the repeated ``route()`` calls that otherwise dominate point startup.
:class:`SweepRunner` prewarms the memo in the parent before starting its
pool, so on fork-based platforms every worker inherits the shared
read-mostly structures as copy-on-write pages.

A point's topology axis is a :class:`~repro.scenario.TopologySpec` (the
string codec is accepted and parsed), and :func:`grid_points` resolves
algorithms through the scenario registry -- topology, dims, VCs, and the
output-selection policy all come from each scenario's registered spec.

CLI: ``python -m repro sim-sweep`` (see ``--help``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from .. import scenario
from ..pipeline.observability import StageMetrics
from ..routing.catalog import make
from ..routing.relation import RouteTable
from ..routing.selection import make_selection
from ..scenario import TopologySpec
from ..topology.network import Network
from .config import SimConfig
from .engine import WormholeSimulator
from .traffic import BernoulliTraffic

#: per-process memo of the expensive immutable build products, keyed by a
#: grid point's network/algorithm axes
_BuildKey = tuple[str, TopologySpec]
_BUILD_CACHE: dict[_BuildKey, tuple[Network, Any, RouteTable]] = {}


def clear_build_cache() -> None:
    """Drop the per-process build memo (tests use this for cold-start runs)."""
    _BUILD_CACHE.clear()


def _shared_parts(point: SimPoint) -> tuple[Network, Any, RouteTable]:
    key = (point.algorithm, point.topology)
    parts = _BUILD_CACHE.get(key)
    if parts is None:
        net = point.topology.build()
        ra = make(point.algorithm, net)
        table = RouteTable(ra, dist=net.shortest_distances())
        parts = _BUILD_CACHE[key] = (net, ra, table)
    return parts


@dataclass(frozen=True)
class SimPoint:
    """One grid point -- plain picklable data, never live objects.

    ``topology`` is a full :class:`~repro.scenario.TopologySpec`; the
    stable string codec (``"mesh:4x4"``, ``"hypercube:3:v2"``) is accepted
    and parsed, so hand-written points stay one-liners.
    """

    algorithm: str
    topology: TopologySpec
    selection: str = "first-free"
    pattern: str = "uniform"
    rate: float = 0.2
    seed: int = 1
    length: int = 8
    cycles: int = 2500
    warmup: int = 400
    buffer_depth: int = 4
    deadlock_check_interval: int = 128

    def __post_init__(self) -> None:
        if isinstance(self.topology, str):
            object.__setattr__(self, "topology", TopologySpec.parse(self.topology))

    def build(self) -> WormholeSimulator:
        net, ra, table = _shared_parts(self)
        traffic = BernoulliTraffic(
            net, rate=self.rate, pattern=self.pattern,
            length=self.length, stop_at=self.cycles,
        )
        config = SimConfig(
            seed=self.seed,
            buffer_depth=self.buffer_depth,
            deadlock_check_interval=self.deadlock_check_interval,
            selection=make_selection(self.selection),
        )
        return WormholeSimulator(ra, traffic, config, route_table=table)

    def describe(self) -> str:
        return (
            f"{self.algorithm}@{self.topology.describe()} "
            f"{self.pattern} rate={self.rate} seed={self.seed}"
        )


@dataclass
class PointResult:
    """Outcome of one grid point."""

    point: SimPoint
    digest: str = ""
    seconds: float = 0.0
    cycles_per_sec: float = 0.0
    messages_delivered: int = 0
    avg_latency: float = 0.0
    throughput: float = 0.0
    deadlock_cycle: int | None = None
    error: str | None = None
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """A whole sweep: ordered point results plus aggregate observability."""

    points: list[PointResult]
    seconds: float
    workers: int
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def errors(self) -> list[PointResult]:
        return [p for p in self.points if not p.ok]

    def digests(self) -> dict[str, str]:
        """point description -> stats digest (the sweep's behavioral identity)."""
        return {p.point.describe(): p.digest for p in self.points}


# ----------------------------------------------------------------------
def grid_points(
    algorithms: list[str],
    *,
    patterns: tuple[str, ...] = ("uniform",),
    rates: tuple[float, ...] = (0.1, 0.2, 0.3),
    seeds: tuple[int, ...] = (1,),
    cycles: int = 2500,
    length: int = 8,
    mesh_dims: tuple[int, ...] = (8, 8),
    torus_dims: tuple[int, ...] = (8, 8),
    hypercube_dim: int = 5,
) -> list[SimPoint]:
    """Cross registered scenarios with traffic patterns, loads, and seeds.

    Topology, dims, VC count, and the output-selection policy come from each
    algorithm's :class:`~repro.scenario.ScenarioSpec`; ``mesh_dims`` and
    friends resize the resizable families while fixed-size families
    (figure1/figure4) and the 3D scenarios keep their canonical dims.
    """
    family_dims: dict[str, tuple[int, ...] | int] = {
        "mesh": mesh_dims,
        "torus": torus_dims,
        "hypercube": hypercube_dim,
    }
    points = []
    for name in algorithms:
        spec = scenario.get(name)
        topo = spec.topology_for(family_dims)
        for pattern in patterns:
            for rate in rates:
                for seed in seeds:
                    points.append(SimPoint(
                        algorithm=name,
                        topology=topo,
                        selection=spec.selection,
                        pattern=pattern,
                        rate=rate,
                        seed=seed,
                        cycles=cycles,
                        length=length,
                    ))
    return points


# ----------------------------------------------------------------------
def run_point(point: SimPoint) -> PointResult:
    """Run one grid point in-process; exceptions become an error result."""
    metrics = StageMetrics()
    out = PointResult(point=point)
    t0 = time.perf_counter()
    try:
        with metrics.timer("build"):
            sim = point.build()
        with metrics.timer("run"):
            sim.run(point.cycles)
        if sim.deadlock is not None:
            out.deadlock_cycle = sim.deadlock.cycle
            metrics.count("deadlocks")
        with metrics.timer("summarize"):
            s = sim.stats.summary(
                cycles=sim.cycle,
                num_nodes=sim.network.num_nodes,
                warmup=point.warmup,
            )
            out.digest = sim.stats.digest()
        out.messages_delivered = s.messages_delivered
        out.avg_latency = s.avg_latency
        out.throughput = s.throughput_flits_per_node_cycle
        for name, value in sim.perf_counters().items():
            metrics.count(name, value)
    except Exception as exc:  # graceful degradation: report, don't propagate
        out.error = f"{type(exc).__name__}: {exc}"
    out.seconds = time.perf_counter() - t0
    run_time = metrics.timers.get("run", 0.0)
    if run_time > 0 and out.error is None:
        out.cycles_per_sec = sim.cycle / run_time
    out.metrics = metrics.snapshot()
    return out


class SweepRunner:
    """Runs grid points serially or on a core-saturating process pool.

    ``workers=None`` (the default) sizes the pool to the machine: one
    worker per available CPU core.  0 or 1 selects the deterministic
    in-process mode; ``n > 1`` a ``ProcessPoolExecutor``.  Pool failures
    degrade to in-process execution of the affected points, so a sweep
    always yields one result per point, in point order -- and because each
    point is an independent deterministic simulation, serial and parallel
    sweeps produce identical digests (the tests pin this).
    """

    def __init__(self, *, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = int(workers)

    def run(self, points: list[SimPoint]) -> SweepReport:
        t0 = time.perf_counter()
        if self.workers > 1:
            results = self._run_pool(points)
        else:
            results = [run_point(p) for p in points]
        merged = StageMetrics()
        for r in results:
            merged.merge(r.metrics)
        return SweepReport(
            points=results,
            seconds=time.perf_counter() - t0,
            workers=max(self.workers, 1),
            metrics=merged.snapshot(),
        )

    def _run_pool(self, points: list[SimPoint]) -> list[PointResult]:
        # Prewarm the build memo before the pool exists: fork-started
        # workers then inherit every distinct network/algorithm/route-table
        # triple as shared copy-on-write pages instead of rebuilding them.
        for p in points:
            try:
                _shared_parts(p)
            except Exception:
                pass  # the point itself will report the build error
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(run_point, p) for p in points]
                results = []
                for point, fut in zip(points, futures):
                    try:
                        results.append(fut.result())
                    except Exception:  # worker death/transport failure: retry here
                        results.append(run_point(point))
                return results
        except OSError:
            # pool could not start at all: deterministic serial fallback
            return [run_point(p) for p in points]


# ----------------------------------------------------------------------
# rendering (shared by the CLI and tests)
# ----------------------------------------------------------------------
def sweep_table(report: SweepReport) -> str:
    """Fixed-width table: one row per point plus the observability footer."""
    header = (
        f"{'algorithm':<24} {'pattern':<14} {'rate':>5} {'seed':>4} "
        f"{'msgs':>6} {'latency':>8} {'thpt':>7} {'cyc/s':>9}  {'digest':<12} status"
    )
    lines = [header, "-" * len(header)]
    for r in report.points:
        p = r.point
        if not r.ok:
            status = f"ERROR {r.error}"
        elif r.deadlock_cycle is not None:
            status = f"deadlock@{r.deadlock_cycle}"
        else:
            status = "ok"
        lines.append(
            f"{p.algorithm:<24} {p.pattern:<14} {p.rate:>5.2f} {p.seed:>4} "
            f"{r.messages_delivered:>6} {r.avg_latency:>8.1f} {r.throughput:>7.4f} "
            f"{r.cycles_per_sec:>9.0f}  {r.digest[:12]:<12} {status}"
        )
    lines.append("")
    lines.append(
        f"{len(report.points)} points in {report.seconds:.2f}s "
        f"({report.workers} worker{'s' if report.workers != 1 else ''})"
    )
    merged = StageMetrics()
    merged.merge(report.metrics)
    if merged.timers or merged.counters:
        lines.append(merged.describe())
    return "\n".join(lines)


def sweep_to_json(report: SweepReport) -> str:
    """JSON rendering with every per-point field and the merged metrics."""
    import json
    import math

    def num(x: float) -> float | None:
        return None if isinstance(x, float) and math.isnan(x) else x

    return json.dumps({
        "seconds": round(report.seconds, 6),
        "workers": report.workers,
        "metrics": report.metrics,
        "points": [
            {
                "algorithm": r.point.algorithm,
                "topology": r.point.topology.family,
                "topology_spec": r.point.topology.describe(),
                "dims": list(r.point.topology.dims) if r.point.topology.dims else None,
                "vcs": r.point.topology.vcs,
                "selection": r.point.selection,
                "pattern": r.point.pattern,
                "rate": r.point.rate,
                "seed": r.point.seed,
                "cycles": r.point.cycles,
                "length": r.point.length,
                "digest": r.digest,
                "seconds": round(r.seconds, 6),
                "cycles_per_sec": round(r.cycles_per_sec, 1),
                "messages_delivered": r.messages_delivered,
                "avg_latency": num(r.avg_latency),
                "throughput": r.throughput,
                "deadlock_cycle": r.deadlock_cycle,
                "error": r.error,
                "metrics": r.metrics,
            }
            for r in report.points
        ],
    }, indent=2)
