"""Latency and throughput statistics for simulation runs."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .message import Message


@dataclass(slots=True)
class SimStats:
    """Accumulated counters; summarize with :meth:`summary`.

    Warmup handling is by message *creation* time: :meth:`summary` takes a
    ``warmup`` cycle count and only messages created at or after it (and
    delivered) contribute to latency statistics, the standard way to skim
    off the cold-start transient.

    The engine's ejection phase updates ``consumed_flits`` / ``_consumed_at``
    directly rather than through :meth:`note_consumed` (one attribute lookup
    instead of a method call per consumed flit); the recorded data -- and
    therefore :meth:`digest` -- is identical either way.
    """

    offered_flits: int = 0
    flit_hops: int = 0
    consumed_flits: int = 0
    delivered: list[Message] = field(default_factory=list)
    _consumed_at: list[int] = field(default_factory=list)

    def note_consumed(self, cycle: int) -> None:
        self.consumed_flits += 1
        self._consumed_at.append(cycle)

    def note_delivered(self, message: Message) -> None:
        self.delivered.append(message)

    def digest(self) -> str:
        """Order-sensitive BLAKE2b digest of everything the run recorded.

        Two simulations are byte-identical iff they offered, moved, consumed,
        and delivered the same flits in the same order with the same
        timestamps -- the determinism regression tests compare this, which is
        far stricter than comparing a :class:`StatsSummary`.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(f"{self.offered_flits}/{self.flit_hops}/{self.consumed_flits}".encode())
        for t in self._consumed_at:
            h.update(f"|{t}".encode())
        for m in self.delivered:
            h.update(
                f"|m{m.mid}:{m.src}>{m.dest}:{m.length}"
                f":{m.created}:{m.started}:{m.finished}:{m.hops}".encode()
            )
        return h.hexdigest()

    # ------------------------------------------------------------------
    def summary(self, *, cycles: int, num_nodes: int, warmup: int = 0) -> "StatsSummary":
        msgs = [m for m in self.delivered if m.created >= warmup]
        lat = np.array([m.latency for m in msgs], dtype=float) if msgs else np.array([])
        net_lat = np.array([m.network_latency for m in msgs], dtype=float) if msgs else np.array([])
        measured = [t for t in self._consumed_at if t >= warmup]
        window = max(cycles - warmup, 1)
        return StatsSummary(
            messages_delivered=len(msgs),
            avg_latency=float(lat.mean()) if lat.size else float("nan"),
            p95_latency=float(np.percentile(lat, 95)) if lat.size else float("nan"),
            max_latency=float(lat.max()) if lat.size else float("nan"),
            avg_network_latency=float(net_lat.mean()) if net_lat.size else float("nan"),
            throughput_flits_per_node_cycle=len(measured) / (window * num_nodes),
            total_flit_hops=self.flit_hops,
        )


@dataclass
class StatsSummary:
    """One run's headline numbers."""

    messages_delivered: int
    avg_latency: float
    p95_latency: float
    max_latency: float
    avg_network_latency: float
    throughput_flits_per_node_cycle: float
    total_flit_hops: int

    def row(self) -> str:
        return (
            f"msgs={self.messages_delivered:6d}  lat={self.avg_latency:8.2f}  "
            f"p95={self.p95_latency:8.2f}  netlat={self.avg_network_latency:8.2f}  "
            f"thpt={self.throughput_flits_per_node_cycle:.4f}"
        )
