"""Messages and flits for the wormhole simulator.

A message is divided into flits: one header flit carrying the routing
information, body flits, and a tail flit (a 1-flit message's single flit is
both header and tail).  Only identity and counters are simulated -- flit
payloads don't exist -- but the flit *discipline* follows Assumptions 3-4 of
the paper exactly: a channel queue accepts all flits of one message before
any flit of another, and a channel is released only when the tail has
traversed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.channel import Channel


@dataclass(slots=True)
class Message:
    """One packet/message in flight (the paper uses the terms interchangeably).

    The simulator tracks, per message, the ordered list of channels it
    currently occupies (tail-most first), how many flits have entered the
    network, and how many have been consumed at the destination.  Slots keep
    the per-message footprint small; at high load tens of thousands of these
    are live at once.
    """

    mid: int
    src: int
    dest: int
    length: int  # flits, including header and tail
    created: int  # cycle the message was handed to the source queue

    # -- dynamic state ---------------------------------------------------
    #: channels currently occupied, oldest (tail-most) first
    held: list[Channel] = field(default_factory=list)
    #: flits that have left the source queue (0 .. length)
    flits_injected: int = 0
    #: flits consumed at the destination (0 .. length)
    flits_consumed: int = 0
    #: cycle the header entered the network (first channel acquired)
    started: int | None = None
    #: cycle the tail flit was consumed
    finished: int | None = None
    #: True once the header has reached the destination node
    header_arrived: bool = False
    #: committed waiting channels while blocked (None = not blocked);
    #: under SPECIFIC waiting this persists until one of them is acquired
    waiting_for: frozenset[Channel] | None = None
    #: cycle at which the message last made progress (for starvation stats)
    last_progress: int = 0
    #: total channels acquired over the message's lifetime (>= shortest
    #: distance; the excess measures misrouting, Section 4's livelock lens)
    hops: int = 0

    @property
    def leading_channel(self) -> Channel | None:
        """The channel whose queue holds the header (None before injection)."""
        return self.held[-1] if self.held else None

    @property
    def delivered(self) -> bool:
        return self.finished is not None

    @property
    def latency(self) -> int | None:
        """Total latency: creation to tail consumption."""
        return None if self.finished is None else self.finished - self.created

    @property
    def network_latency(self) -> int | None:
        """Header injection to tail consumption (excludes source queueing)."""
        if self.finished is None or self.started is None:
            return None
        return self.finished - self.started

    def __repr__(self) -> str:
        return (
            f"<Message {self.mid}: {self.src}->{self.dest} len={self.length} "
            f"held={len(self.held)} inj={self.flits_injected} cons={self.flits_consumed}>"
        )
