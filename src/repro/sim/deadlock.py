"""Runtime deadlock detection: the message wait-for graph (Definition 12).

A blocked message waits on its waiting channels; a deadlock exists when a
set of messages forms a *knot*: every waiting channel of every member is
owned by another member (or by the message itself -- the N=1 case of
Definition 12).  The detector computes the knot by fixpoint elimination:

    start from all blocked messages; repeatedly un-mark any message that
    has a waiting channel which is free or owned by an un-marked message
    (that owner can still make progress, so the channel may yet free);
    whatever remains is deadlocked.

For wait-on-SPECIFIC algorithms the waiting set is the committed designated
set, so a wait-for cycle is a certain deadlock; for wait-on-ANY the knot
condition is exactly Theorem 3's "no waiting channel is guaranteed to
become free".  The report reconstructs the Definition 12 evidence: each
message's occupied channels and the member holding its waiting channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..topology.channel import Channel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import WormholeSimulator


@dataclass
class DeadlockReport:
    """Evidence for a detected deadlock knot."""

    cycle: int
    message_ids: list[int]
    #: per message: (source, dest, held channel labels, waiting channel labels)
    detail: list[tuple[int, int, list[str], list[str]]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.message_ids)

    def describe(self) -> str:
        lines = [f"deadlock detected at cycle {self.cycle}: {len(self.message_ids)} messages"]
        for (src, dest, held, waits), mid in zip(self.detail, self.message_ids):
            lines.append(f"  m{mid}: {src}->{dest} holds [{', '.join(held)}] waits [{', '.join(waits)}]")
        return "\n".join(lines)


class DeadlockDetector:
    """Knot detection over the simulator's live state."""

    def __init__(self, sim: "WormholeSimulator") -> None:
        self.sim = sim

    def _can_release_without_head_progress(self, mid: int, w: Channel) -> bool:
        """Can message ``mid`` free channel ``w`` just by draining forward?

        Even with its header blocked, a message's tail keeps advancing while
        free buffer space remains in the channels it already holds.  ``w``
        frees once every flit that has not yet passed it fits strictly
        downstream of it -- the short-message slack the paper alludes to in
        Section 4 ("messages that fit in the intermediate channel buffers").
        Ignoring this would make the detector cry deadlock on transient
        blockage of short messages.
        """
        sim = self.sim
        m = sim.messages[mid]
        if m.header_arrived:
            return True  # ejection drains it regardless
        try:
            i = m.held.index(w)
        except ValueError:
            return True  # already released
        bufs = sim._buf
        to_pass = (m.length - m.flits_injected) + sum(
            len(bufs[m.held[j].cid]) for j in range(i + 1)
        )
        capacity_ahead = sum(
            sim.config.buffer_depth - len(bufs[m.held[j].cid])
            for j in range(i + 1, len(m.held))
        )
        return to_pass <= capacity_ahead

    def check(self) -> DeadlockReport | None:
        """Return a report if a deadlocked knot currently exists."""
        sim = self.sim
        blocked = {m.mid: m for m in sim.blocked_messages() if m.held}
        if not blocked:
            return None
        marked = set(blocked)
        changed = True
        while changed:
            changed = False
            # sorted iteration: the fixpoint is order-independent, but the
            # sweep order must not depend on set layout for runs to be
            # reproducible flit-for-flit under any PYTHONHASHSEED
            for mid in sorted(marked):
                m = blocked[mid]
                assert m.waiting_for is not None
                for w in sorted(m.waiting_for, key=lambda c: c.cid):
                    owner = sim._owner[w.cid]
                    if owner < 0 or owner not in marked or \
                            self._can_release_without_head_progress(owner, w):
                        # w is free, its owner can still move, or the owner can
                        # drain past w without head progress: m may yet proceed
                        marked.discard(mid)
                        changed = True
                        break
        if not marked:
            return None
        # Self-waiting (owner == mid) counts as deadlocked per Definition 12.
        ids = sorted(marked)
        detail = []
        for mid in ids:
            m = blocked[mid]
            detail.append((
                m.src,
                m.dest,
                [c.label or f"c{c.cid}" for c in m.held],
                [c.label or f"c{c.cid}" for c in sorted(m.waiting_for or (), key=lambda c: c.cid)],
            ))
        return DeadlockReport(cycle=sim.cycle, message_ids=ids, detail=detail)
