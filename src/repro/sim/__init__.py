"""Flit-level wormhole network simulator (the Section 3 system model).

Routers with virtual-channel flow control, per-physical-link flit
multiplexing, non-starving arbitration, synthetic and scripted traffic, and
a runtime deadlock detector that reports Definition-12 knots.
"""

from .config import SimConfig
from .deadlock import DeadlockDetector, DeadlockReport
from .engine import WormholeSimulator
from .message import Message
from .stats import SimStats, StatsSummary
from .sweep import (
    PointResult,
    SimPoint,
    SweepReport,
    SweepRunner,
    clear_build_cache,
    grid_points,
    run_point,
    sweep_table,
    sweep_to_json,
)
from .traffic import (
    PATTERNS,
    BernoulliTraffic,
    CombinedTraffic,
    ScriptedTraffic,
    TrafficSource,
    bit_complement_pattern,
    bit_reverse_pattern,
    hotspot_pattern,
    tornado_pattern,
    transpose_pattern,
    uniform_pattern,
)

__all__ = [
    "PATTERNS",
    "BernoulliTraffic",
    "CombinedTraffic",
    "DeadlockDetector",
    "DeadlockReport",
    "Message",
    "PointResult",
    "ScriptedTraffic",
    "SimConfig",
    "SimPoint",
    "SimStats",
    "StatsSummary",
    "SweepReport",
    "SweepRunner",
    "TrafficSource",
    "WormholeSimulator",
    "bit_complement_pattern",
    "bit_reverse_pattern",
    "clear_build_cache",
    "grid_points",
    "hotspot_pattern",
    "run_point",
    "sweep_table",
    "sweep_to_json",
    "tornado_pattern",
    "transpose_pattern",
    "uniform_pattern",
]
