"""Simulator configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..routing.relation import WaitPolicy
from ..routing.selection import SelectionFunction, first_free


@dataclass
class SimConfig:
    """Knobs of the wormhole simulator.

    Defaults follow the common community settings (Dally & Towles): short
    per-VC buffers, one flit per physical link per cycle, one ejection port
    per node.
    """

    #: flit capacity of each virtual-channel queue
    buffer_depth: int = 4
    #: flits the destination consumes per cycle (Assumption 2 guarantees
    #: eventual consumption; this sets the rate)
    ejection_rate: int = 1
    #: selection function used by the VC allocator (Definition 3).  The
    #: allocator presents candidates ordered (progress, no-U-turn, VC class,
    #: id); the default selection takes the first free one, preserving that
    #: priority.  Re-sorting selections (RandomSelection, highest_vc_first,
    #: ...) impose their own preference instead.
    #:
    #: Note for *stateful* selections (RandomSelection, RoundRobinSelection):
    #: the event-driven allocator only re-invokes the selection when a
    #: blocked message's candidate set may have changed, instead of every
    #: cycle.  The chosen channels are the same for stateless selections;
    #: stateful ones see fewer invocations and hence a different internal
    #: state trajectory than a scan-every-cycle allocator would produce.
    selection: SelectionFunction = field(default=first_free)
    #: override the routing algorithm's wait policy (None = respect it)
    wait_policy_override: WaitPolicy | None = None
    #: order VC-allocation candidates by remaining distance first, so
    #: selection functions prefer progress over detours (how real routers
    #: prioritize their route-computation outputs); disable to expose raw
    #: channel-id order
    prefer_minimal: bool = True
    #: cycles between runtime deadlock-detector sweeps (0 = disabled)
    deadlock_check_interval: int = 64
    #: abort the run as soon as the detector confirms a deadlocked knot
    stop_on_deadlock: bool = True
    #: RNG seed for traffic and stochastic selection
    seed: int = 1
    #: engine kernel backend: "numpy", "pure", or None to resolve from the
    #: environment (``REPRO_NO_NUMPY`` / ``REPRO_BACKEND``) and, failing
    #: that, pick automatically by network size -- the vectorized transmit
    #: precompute amortizes only past a few hundred channels.  Both
    #: backends are byte-identical (the golden matrix and the parity suite
    #: pin this); the knob is purely a performance choice.
    backend: str | None = None
