"""Traffic generation: synthetic patterns and scripted adversarial loads.

The paper's conclusion calls for "simulations with a variety of message
traffic patterns"; these are the standard synthetic patterns of the
interconnection-network literature (Dally & Towles) plus a scripted source
used to replay the deadlock configurations the theory constructs.

A traffic source yields ``(src, dest, length)`` triples per cycle.  Open-loop
Bernoulli injection: each node independently starts a message with
probability ``rate / mean_length`` per cycle, so ``rate`` is the offered
load in flits per node per cycle.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..topology.network import Network


class TrafficSource(Protocol):
    """Per-cycle message generator."""

    def messages_for_cycle(self, cycle: int, rng: np.random.Generator) -> list[tuple[int, int, int]]:
        """Messages to inject this cycle as ``(src, dest, length)``."""
        ...


# ----------------------------------------------------------------------
# destination patterns
# ----------------------------------------------------------------------
def uniform_pattern(network: Network):
    """Destination drawn uniformly among the other nodes."""
    n = network.num_nodes

    def pick(src: int, rng: np.random.Generator) -> int:
        d = int(rng.integers(n - 1))
        return d if d < src else d + 1

    return pick


def bit_complement_pattern(network: Network):
    """dest = bitwise complement of src (power-of-two node counts)."""
    n = network.num_nodes
    if n & (n - 1):
        raise ValueError("bit-complement needs a power-of-two node count")
    mask = n - 1

    def pick(src: int, rng: np.random.Generator) -> int:
        return src ^ mask

    return pick


def bit_reverse_pattern(network: Network):
    """dest = bit-reversed src (power-of-two node counts)."""
    n = network.num_nodes
    if n & (n - 1):
        raise ValueError("bit-reverse needs a power-of-two node count")
    bits = (n - 1).bit_length()

    def pick(src: int, rng: np.random.Generator) -> int:
        return int(f"{src:0{bits}b}"[::-1], 2)

    return pick


def transpose_pattern(network: Network):
    """(x, y) -> (y, x) on a square 2D grid."""
    dims = network.meta.get("dims")
    if not dims or len(dims) != 2 or dims[0] != dims[1]:
        raise ValueError("transpose needs a square 2D mesh/torus")

    def pick(src: int, rng: np.random.Generator) -> int:
        x, y = network.coord(src)
        return network.node_at((y, x))

    return pick


def tornado_pattern(network: Network):
    """Each coordinate advances nearly half-way around its dimension."""
    dims = network.meta.get("dims")
    if not dims:
        raise ValueError("tornado needs a grid topology")

    def pick(src: int, rng: np.random.Generator) -> int:
        coord = network.coord(src)
        shifted = tuple((c + max(d // 2 - 1, 1) * (d > 1)) % d for c, d in zip(coord, dims))
        return network.node_at(shifted)

    return pick


def hotspot_pattern(network: Network, *, hotspots: list[int] | None = None, fraction: float = 0.2):
    """With probability ``fraction`` target a hotspot node, else uniform."""
    uni = uniform_pattern(network)
    spots = hotspots if hotspots is not None else [network.num_nodes - 1]

    def pick(src: int, rng: np.random.Generator) -> int:
        if rng.random() < fraction:
            d = spots[int(rng.integers(len(spots)))]
            if d != src:
                return d
        return uni(src, rng)

    return pick


PATTERNS = {
    "uniform": uniform_pattern,
    "bit-complement": bit_complement_pattern,
    "bit-reverse": bit_reverse_pattern,
    "transpose": transpose_pattern,
    "tornado": tornado_pattern,
    "hotspot": hotspot_pattern,
}


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
class BernoulliTraffic:
    """Open-loop injection at a given flit rate with a destination pattern.

    Parameters
    ----------
    rate:
        Offered load in flits per node per cycle (0..~saturation).
    pattern:
        Name from :data:`PATTERNS` or a ``pick(src, rng) -> dest`` callable.
    length:
        Message length in flits (fixed), or a ``(lo, hi)`` tuple for
        uniformly random lengths.
    """

    def __init__(
        self,
        network: Network,
        *,
        rate: float,
        pattern="uniform",
        length: int | tuple[int, int] = 8,
        stop_at: int | None = None,
    ) -> None:
        self.network = network
        self.rate = rate
        self.length = length
        self.stop_at = stop_at
        if callable(pattern):
            self.pick = pattern
        else:
            self.pick = PATTERNS[pattern](network)

    def _mean_length(self) -> float:
        if isinstance(self.length, tuple):
            return (self.length[0] + self.length[1]) / 2.0
        return float(self.length)

    def _draw_length(self, rng: np.random.Generator) -> int:
        if isinstance(self.length, tuple):
            lo, hi = self.length
            return int(rng.integers(lo, hi + 1))
        return self.length

    def messages_for_cycle(self, cycle: int, rng: np.random.Generator) -> list[tuple[int, int, int]]:
        if self.stop_at is not None and cycle >= self.stop_at:
            return []
        p = self.rate / self._mean_length()
        out: list[tuple[int, int, int]] = []
        fires = rng.random(self.network.num_nodes) < p
        for src in np.flatnonzero(fires):
            src = int(src)
            dest = self.pick(src, rng)
            if dest != src:
                out.append((src, dest, self._draw_length(rng)))
        return out


class ScriptedTraffic:
    """Inject an explicit list of ``(cycle, src, dest, length)`` events.

    Used to replay the deadlock configurations produced by the Theorem 2
    witness constructor and for regression scenarios.
    """

    def __init__(self, events: list[tuple[int, int, int, int]]) -> None:
        self.by_cycle: dict[int, list[tuple[int, int, int]]] = {}
        for t, src, dest, length in events:
            self.by_cycle.setdefault(t, []).append((src, dest, length))

    def messages_for_cycle(self, cycle: int, rng: np.random.Generator) -> list[tuple[int, int, int]]:
        return self.by_cycle.get(cycle, [])


class CombinedTraffic:
    """Union of several sources (e.g. scripted adversary + background load)."""

    def __init__(self, *sources: TrafficSource) -> None:
        self.sources = sources

    def messages_for_cycle(self, cycle: int, rng: np.random.Generator) -> list[tuple[int, int, int]]:
        out: list[tuple[int, int, int]] = []
        for s in self.sources:
            out.extend(s.messages_for_cycle(cycle, rng))
        return out
