"""``python -m repro profile``: cProfile over the named bench scenarios.

The benchmark suite answers "how fast is it"; this module answers "where
does the time go".  Each scenario is a small, deterministic slice of one
of the repository's real workloads -- a simulator run, a full verification,
a sweep -- sized to finish in seconds under the ~3x interpreter overhead
cProfile adds.  The profiler wraps exactly the scenario body (no imports,
no topology construction where the scenario declares it as setup), and the
report surfaces the top-N hotspots by cumulative or total time as a text
table or JSON.

Profiled numbers are for *ranking* call sites, never for speedup claims:
cProfile inflates Python-heavy frames far more than NumPy-heavy ones, so
EXPERIMENTS.md records only wall-clock (``time.perf_counter``) figures.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

#: sort keys accepted by ``--sort`` (pstats names)
SORT_KEYS = ("cumulative", "tottime", "ncalls")


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic workload slice: ``setup() -> body``."""

    name: str
    description: str
    #: returns the zero-argument body the profiler will wrap
    setup: Callable[[], Callable[[], Any]]


def _sim_scenario(algorithm: str, topology: str,
                  pattern: str, rate: float, cycles: int) -> Scenario:
    """``topology`` is a scenario-layer spec string, e.g. ``"mesh:8x8:v2"``."""
    def setup() -> Callable[[], Any]:
        from .sim import SimPoint

        point = SimPoint(
            algorithm=algorithm, topology=topology,
            pattern=pattern, rate=rate, seed=3, cycles=cycles,
        )
        sim = point.build()  # construction stays outside the profile

        def body() -> Any:
            sim.run(cycles)
            return sim.stats.digest()

        return body

    return Scenario(
        name=f"sim-{algorithm}",
        description=(
            f"simulate {algorithm}@{topology} {pattern} "
            f"rate={rate} for {cycles} cycles"
        ),
        setup=setup,
    )


def _verify_scenario(algorithm: str, dims: tuple[int, ...]) -> Scenario:
    def setup() -> Callable[[], Any]:
        from . import scenario

        entry = scenario.get(algorithm)
        ra = entry.instantiate(dims=dims)

        def body() -> Any:
            from .verify import verify

            return verify(ra)

        return body

    dd = ",".join(map(str, dims))
    return Scenario(
        name=f"verify-{algorithm}",
        description=f"full deadlock-freedom verification of {algorithm} ({dd})",
        setup=setup,
    )


def _sweep_scenario() -> Scenario:
    def setup() -> Callable[[], Any]:
        from .sim import SweepRunner, clear_build_cache, grid_points

        clear_build_cache()
        points = grid_points(
            ["e-cube-mesh", "duato-mesh"],
            rates=(0.1, 0.2), seeds=(3,), cycles=400, mesh_dims=(4, 4),
        )

        def body() -> Any:
            return SweepRunner(workers=0).run(points).digests()

        return body

    return Scenario(
        name="sweep-smoke",
        description="in-process 4-point sweep over two mesh algorithms",
        setup=setup,
    )


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        _sim_scenario("e-cube-mesh", "mesh:8x8", "uniform", 0.3, 800),
        _sim_scenario("duato-mesh", "mesh:8x8:v2", "transpose", 0.3, 800),
        _sim_scenario("enhanced-fully-adaptive", "hypercube:5:v2",
                      "bit-reverse", 0.25, 800),
        _verify_scenario("duato-mesh", (8, 8)),
        _verify_scenario("enhanced-fully-adaptive", (4,)),
        _sweep_scenario(),
    )
}


@dataclass
class Hotspot:
    """One pstats row of the top-N report."""

    function: str
    ncalls: int
    tottime: float
    cumtime: float


@dataclass
class ProfileReport:
    """Outcome of profiling one scenario."""

    scenario: str
    description: str
    seconds: float
    total_calls: int
    sort: str
    hotspots: list[Hotspot] = field(default_factory=list)

    def to_text(self) -> str:
        lines = [
            f"scenario: {self.scenario} -- {self.description}",
            f"wall: {self.seconds:.3f}s under cProfile "
            f"({self.total_calls} calls; ranking only, not a speedup figure)",
            "",
            f"{'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function (by {self.sort})",
        ]
        for h in self.hotspots:
            lines.append(
                f"{h.ncalls:>10} {h.tottime:>9.4f} {h.cumtime:>9.4f}  {h.function}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "scenario": self.scenario,
            "description": self.description,
            "seconds": round(self.seconds, 6),
            "total_calls": self.total_calls,
            "sort": self.sort,
            "hotspots": [
                {
                    "function": h.function,
                    "ncalls": h.ncalls,
                    "tottime": round(h.tottime, 6),
                    "cumtime": round(h.cumtime, 6),
                }
                for h in self.hotspots
            ],
        }, indent=2)


def run_profile(scenario: str, *, top: int = 20, sort: str = "cumulative") -> ProfileReport:
    """Profile one named scenario and return its top-``top`` hotspots."""
    if scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {scenario!r}; known: {known}")
    if sort not in SORT_KEYS:
        raise ValueError(f"unknown sort key {sort!r}; known: {', '.join(SORT_KEYS)}")
    spec = SCENARIOS[scenario]
    body = spec.setup()
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    try:
        body()
    finally:
        profiler.disable()
    seconds = time.perf_counter() - t0
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats(sort)
    report = ProfileReport(
        scenario=scenario,
        description=spec.description,
        seconds=seconds,
        total_calls=int(stats.total_calls),
        sort=sort,
    )
    for func in stats.fcn_list[:top] if stats.fcn_list else []:
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, name = func
        if filename.startswith("~"):
            where = name  # builtins print as e.g. "<method 'append' of ...>"
        else:
            short = "/".join(filename.rsplit("/", 2)[-2:])
            where = f"{short}:{lineno}({name})"
        report.hotspots.append(
            Hotspot(function=where, ncalls=int(nc), tottime=tt, cumtime=ct)
        )
    return report
