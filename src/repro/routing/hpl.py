"""Highest Positive Last: the paper's partially adaptive nonminimal mesh
routing algorithm (Section 9.2, Theorem 4).

HPL needs **no virtual channels**, has a *cyclic* channel dependency graph,
and yet is deadlock-free because its channel *waiting* graph is acyclic --
the flagship demonstration that the CWG condition admits algorithms every
acyclic-CDG methodology must reject.  The routing relation genuinely depends
on the input channel (form ``R(c_in, n, d)``), so Duato's technique cannot
be applied to it at all, and it is incoherent even on minimal paths.

The rules, with ``p`` = the highest dimension still requiring a hop in the
negative direction:

* if ``p`` exists, the message may use **any** channel (either direction,
  needed or not -- nonminimal freedom) in any dimension **below** ``p``,
  plus the negative channel of dimension ``p`` itself;
* if the message needs only positive hops, it must take the positive channel
  of the **lowest** needed dimension (increasing dimension order), but may
  instead *misroute* in the negative direction of any dimension **above**
  that one (which resurrects ``p`` and the lower-dimension freedom);
* 180-degree turns are restricted: negative-to-positive is allowed only when
  the positive hop is needed; positive-to-negative only when the message
  needs the negative hop in that dimension *and* in some higher dimension;
* a blocked message **waits** on the negative channel of ``p`` (or, with
  only positive hops left, the positive channel of the lowest needed
  dimension) -- a single specific channel, so Theorem 2 applies.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import RoutingAlgorithm, RoutingError, WaitPolicy


class HighestPositiveLast(RoutingAlgorithm):
    """The Highest Positive Last routing algorithm on an n-D mesh.

    Parameters
    ----------
    misroute:
        Allow the nonminimal moves (lower-than-``p`` freedom and negative
        misrouting above the lowest positive dimension).  ``False`` gives the
        minimal restriction of HPL, useful for adaptiveness comparisons and
        faster exhaustive checks; deadlock freedom holds either way.
    wait_any:
        Use the Section 9.2 "Note" variant that waits on every channel
        moving toward the destination (Theorem 3 regime) instead of the
        single designated waiting channel (Theorem 2 regime, the default).
    """

    name = "highest-positive-last"
    form = "CND"

    def __init__(self, network: Network, *, misroute: bool = True, wait_any: bool = False) -> None:
        super().__init__(network)
        if network.meta.get("topology") not in ("mesh", "hypercube"):
            raise RoutingError(f"{self.name} requires a mesh network")
        self.ndims = len(network.meta["dims"])
        self.misroute = misroute
        self.wait_policy = WaitPolicy.ANY if wait_any else WaitPolicy.SPECIFIC
        self._wait_any = wait_any

    # ------------------------------------------------------------------
    def _deltas(self, node: int, dest: int) -> list[int]:
        here = self.network.coord(node)
        there = self.network.coord(dest)
        return [t - h for h, t in zip(here, there)]

    def _channels(self, node: int, dim: int, sign: int) -> list[Channel]:
        return [
            c
            for c in self.network.out_channels(node)
            if c.meta.get("dim") == dim and c.meta.get("sign") == sign
        ]

    def _turn_allowed(self, c_in: Channel, dim: int, sign: int, deltas: list[int]) -> bool:
        """Apply the 180-degree turn restrictions given the input channel."""
        if not c_in.is_link:
            return True  # at the source: no turn yet
        in_dim = c_in.meta.get("dim")
        in_sign = c_in.meta.get("sign")
        if in_dim != dim or in_sign == sign:
            return True  # not a 180-degree turn
        if sign > 0:
            # negative -> positive: allowed iff the positive hop is needed
            return deltas[dim] > 0
        # positive -> negative: needs the negative hop here AND in a higher dim
        if deltas[dim] >= 0:
            return False
        return any(deltas[q] < 0 for q in range(dim + 1, self.ndims))

    # ------------------------------------------------------------------
    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        deltas = self._deltas(node, dest)
        negs = [d for d in range(self.ndims) if deltas[d] < 0]
        cand: list[tuple[int, int]] = []  # (dim, sign) pairs before turn filter
        if negs:
            p = max(negs)
            cand.append((p, -1))
            for dim in range(p):
                if self.misroute or deltas[dim] != 0:
                    signs = (+1, -1) if self.misroute else ((+1,) if deltas[dim] > 0 else (-1,))
                    for sign in signs:
                        cand.append((dim, sign))
        else:
            low = min(d for d in range(self.ndims) if deltas[d] > 0)
            cand.append((low, +1))
            if self.misroute:
                # Misrouting in the negative direction of dimension ``low``
                # itself or above is permitted (the Section 9.2 example: a
                # message needing only North may turn South when its input
                # channel allows the 180-degree turn); misrouting *below*
                # ``low`` would violate increasing dimension order.
                for q in range(low, self.ndims):
                    cand.append((q, -1))
        out: list[Channel] = []
        for dim, sign in cand:
            if self._turn_allowed(c_in, dim, sign, deltas):
                out.extend(self._channels(node, dim, sign))
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        permitted = self.route(c_in, node, dest)
        if not permitted:
            return frozenset()
        if self._wait_any:
            # the Note variant: wait on any channel moving toward the destination
            deltas = self._deltas(node, dest)
            toward = frozenset(
                c for c in permitted
                if deltas[c.meta["dim"]] * c.meta["sign"] > 0
            )
            return toward or permitted
        deltas = self._deltas(node, dest)
        negs = [d for d in range(self.ndims) if deltas[d] < 0]
        if negs:
            dim, sign = max(negs), -1
        else:
            dim, sign = min(d for d in range(self.ndims) if deltas[d] > 0), +1
        wait = frozenset(c for c in permitted if c.meta.get("dim") == dim and c.meta.get("sign") == sign)
        if not wait:
            raise RoutingError(
                f"{self.name}: designated waiting channel dim={dim} sign={sign} "
                f"not in permitted set at node {node} (input {c_in!r})"
            )
        return wait
