"""Enhanced Fully Adaptive hypercube routing (Section 9.3, Theorems 5-6).

EFA is the paper's fully adaptive *minimal* hypercube algorithm with two
virtual channels per physical channel.  Where every earlier fully adaptive
scheme (Duato's included) forces *nonadaptive* dimension-order routing on
the first VC class, EFA makes the first class partially adaptive:

with ``mu`` = the lowest dimension in which the message still needs to
route,

* the second virtual channel (class index 1) of any needed dimension may be
  used at any time;
* if the message needs to route in the **negative** direction of ``mu``, it
  may use the **first** virtual channel (class index 0) of *any* needed
  dimension;
* if it needs the **positive** direction of ``mu``, the only usable
  first-class channel is that of dimension ``mu`` itself;
* a blocked message waits on ``c^{1,mu}`` -- the first virtual channel of
  the lowest needed dimension (one specific channel, Theorem 2 regime).

The relation depends only on ``(node, dest)`` -- Duato's form -- yet EFA is
**incoherent** (not prefix-closed, Figure 6's example), so Duato's proof
technique still cannot certify it; the CWG condition can, and Theorem 6
shows every one of its first-class restrictions is individually necessary.
:class:`RelaxedEFA` realizes those single-restriction relaxations so the
benchmarks can exhibit the resulting True Cycles and empirical deadlocks.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.hypercube import differing_dimensions
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


class EnhancedFullyAdaptive(NodeDestRouting):
    """The Enhanced Fully Adaptive routing algorithm on a hypercube with 2 VCs.

    Parameters
    ----------
    wait_any:
        Use the Section 9.3 "Note" variant permitting a blocked message to
        wait on any permitted output (Theorem 3 regime; its CWG' equals the
        default algorithm's CWG).  Default: wait on ``c^{1,mu}`` only.
    """

    name = "enhanced-fully-adaptive"

    def __init__(self, network: Network, *, wait_any: bool = False) -> None:
        super().__init__(network)
        if network.meta.get("topology") != "hypercube":
            raise RoutingError(f"{self.name} requires a hypercube network")
        if network.max_vcs() < 2:
            raise RoutingError(f"{self.name} needs 2 virtual channels per link")
        self.dimension: int = network.meta["dimension"]
        self.wait_policy = WaitPolicy.ANY if wait_any else WaitPolicy.SPECIFIC
        self._wait_any = wait_any

    # ------------------------------------------------------------------
    def _needed(self, node: int, dest: int) -> list[int]:
        return differing_dimensions(node, dest)

    def _needs_negative(self, node: int, dim: int) -> bool:
        """Minimal routing flips bit ``dim``; negative means the bit is 1."""
        return bool((node >> dim) & 1)

    def first_class_dims(self, node: int, dest: int) -> list[int]:
        """Needed dimensions whose *first* virtual channel is permitted."""
        needed = self._needed(node, dest)
        if not needed:
            return []
        mu = needed[0]
        if self._needs_negative(node, mu):
            return needed
        return [mu]

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        needed = self._needed(node, dest)
        allowed_first = set(self.first_class_dims(node, dest))
        out: list[Channel] = []
        for dim in needed:
            nbr = node ^ (1 << dim)
            for c in self.network.channels_between(node, nbr):
                if c.vc == 1 or (c.vc == 0 and dim in allowed_first):
                    out.append(c)
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        permitted = self.route_nd(node, dest)
        if not permitted or self._wait_any:
            return permitted
        mu = self._needed(node, dest)[0]
        nbr = node ^ (1 << mu)
        wait = frozenset(c for c in permitted if c.dst == nbr and c.vc == 0)
        if not wait:
            raise RoutingError(f"{self.name}: c^(1,mu) missing from permitted set at node {node}")
        return wait


class RelaxedEFA(EnhancedFullyAdaptive):
    """EFA with one first-class restriction lifted (the Theorem 6 construction).

    Theorem 6: EFA's only restriction is that, when the lowest needed
    dimension ``mu`` requires a positive hop, no first-class channel of a
    higher dimension may be used.  There is one such prohibition per ordered
    pair of dimensions ``(mu, j)`` with ``j > mu``; relaxing any single one
    re-creates a True Cycle in the CWG and therefore a reachable deadlock.

    Parameters
    ----------
    pair:
        The ``(mu, j)`` prohibition to lift, ``mu < j``.  ``None`` lifts all
        of them (a "maximally relaxed" strawman that is unrestricted on both
        VC classes).
    """

    name = "relaxed-efa"

    def __init__(self, network: Network, *, pair: tuple[int, int] | None = None, wait_any: bool = False) -> None:
        super().__init__(network, wait_any=wait_any)
        if pair is not None:
            mu, j = pair
            if not 0 <= mu < j < self.dimension:
                raise RoutingError(f"invalid relaxation pair {pair} for dimension {self.dimension}")
        self.pair = pair

    def first_class_dims(self, node: int, dest: int) -> list[int]:
        needed = self._needed(node, dest)
        if not needed:
            return []
        mu = needed[0]
        if self._needs_negative(node, mu):
            return needed
        if self.pair is None:
            return needed  # all prohibitions lifted
        rmu, rj = self.pair
        if mu == rmu and rj in needed:
            return [mu, rj]  # the single lifted prohibition
        return [mu]
