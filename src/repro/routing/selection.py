"""Selection functions (Definition 3).

A selection function ``S: C x P(C) x Sigma -> C`` picks one output channel
from the route set given the channel statuses.  The routing *relation*
determines deadlock freedom; the selection function only affects
performance -- so these live apart from the relations and are consumed by
the simulator's virtual-channel allocator.

All selection functions here receive the candidate channels in a stable
order (network cid order) together with a ``free`` predicate, and must
return a free candidate or ``None`` when none is free.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Protocol

try:  # numpy only backs RandomSelection's RNG; the verifier stack runs without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None  # type: ignore[assignment]

from ..topology.channel import Channel


class SelectionFunction(Protocol):
    """Callable picking one free channel from an ordered candidate list."""

    def __call__(
        self,
        c_in: Channel,
        candidates: Sequence[Channel],
        free: Callable[[Channel], bool],
    ) -> Channel | None: ...


def first_free(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Deterministic: lowest-cid free candidate.  Good for reproducible tests."""
    for c in candidates:
        if free(c):
            return c
    return None


def straight_first(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Prefer continuing in the same dimension/direction as ``c_in``.

    Falls back to the first free candidate.  Reduces in-network turns, which
    empirically lowers contention for dimension-ordered traffic.
    """
    dim = c_in.meta.get("dim")
    sign = c_in.meta.get("sign")
    if dim is not None:
        for c in candidates:
            if c.meta.get("dim") == dim and c.meta.get("sign") == sign and free(c):
                return c
    return first_free(c_in, candidates, free)


class RandomSelection:
    """Uniformly random free candidate, with an owned RNG for reproducibility."""

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        if np is None:  # pragma: no cover - exercised on numpy-free installs
            raise RuntimeError("RandomSelection needs numpy; install the [fast] extra")
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def __call__(
        self,
        c_in: Channel,
        candidates: Sequence[Channel],
        free: Callable[[Channel], bool],
    ) -> Channel | None:
        free_cands = [c for c in candidates if free(c)]
        if not free_cands:
            return None
        return free_cands[int(self.rng.integers(len(free_cands)))]


class RoundRobinSelection:
    """Rotates the preferred candidate per (node) to spread load evenly."""

    def __init__(self) -> None:
        self._counter: dict[int, int] = {}

    def __call__(
        self,
        c_in: Channel,
        candidates: Sequence[Channel],
        free: Callable[[Channel], bool],
    ) -> Channel | None:
        if not candidates:
            return None
        node = candidates[0].src
        start = self._counter.get(node, 0) % len(candidates)
        self._counter[node] = start + 1
        for i in range(len(candidates)):
            c = candidates[(start + i) % len(candidates)]
            if free(c):
                return c
        return None


def lowest_vc_first(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Prefer low VC indices: drains restricted VC classes before escape VCs.

    For two-class algorithms (Duato's, EFA) this biases traffic onto the
    regulated first class, keeping the adaptive class free as the escape
    valve -- the selection the paper's Section 9 algorithms implicitly assume.
    """
    for c in sorted(candidates, key=lambda ch: (ch.vc, ch.cid)):
        if free(c):
            return c
    return None


def highest_vc_first(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Prefer high VC indices: uses the adaptive class first (ablation foil)."""
    for c in sorted(candidates, key=lambda ch: (-ch.vc, ch.cid)):
        if free(c):
            return c
    return None
