"""Selection functions (Definition 3).

A selection function ``S: C x P(C) x Sigma -> C`` picks one output channel
from the route set given the channel statuses.  The routing *relation*
determines deadlock freedom; the selection function only affects
performance -- so these live apart from the relations and are consumed by
the simulator's virtual-channel allocator.

All selection functions here receive the candidate channels in a stable
order (network cid order) together with a ``free`` predicate, and must
return a free candidate or ``None`` when none is free.

Scenario integration: every policy has a name in :data:`SELECTIONS`
(factories, so stateful policies get a fresh instance per simulator);
:class:`~repro.scenario.ScenarioSpec` carries such a name as its
``selection`` knob and :func:`make_selection` resolves it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any, Protocol

from .._kernel import HAVE_NUMPY, use_numpy
from ..topology.channel import Channel

if TYPE_CHECKING:
    from ..sim.engine import WormholeSimulator

if HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised on numpy-free installs
    np = None  # type: ignore[assignment]


class SelectionFunction(Protocol):
    """Callable picking one free channel from an ordered candidate list."""

    def __call__(
        self,
        c_in: Channel,
        candidates: Sequence[Channel],
        free: Callable[[Channel], bool],
    ) -> Channel | None: ...


def first_free(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Deterministic: lowest-cid free candidate.  Good for reproducible tests."""
    for c in candidates:
        if free(c):
            return c
    return None


def straight_first(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Prefer continuing in the same dimension/direction as ``c_in``.

    Falls back to the first free candidate.  Reduces in-network turns, which
    empirically lowers contention for dimension-ordered traffic.
    """
    dim = c_in.meta.get("dim")
    sign = c_in.meta.get("sign")
    if dim is not None:
        for c in candidates:
            if c.meta.get("dim") == dim and c.meta.get("sign") == sign and free(c):
                return c
    return first_free(c_in, candidates, free)


class RandomSelection:
    """Uniformly random free candidate, with an owned RNG for reproducibility.

    The RNG rides the NumPy kernel gate (:mod:`repro._kernel`): under
    ``REPRO_NO_NUMPY=1`` / ``REPRO_BACKEND=pure`` -- or when NumPy is simply
    not installed -- construction refuses, exactly like every other
    vectorized consumer, instead of silently ignoring the pinned backend.
    """

    def __init__(self, seed: "int | np.random.Generator" = 0) -> None:
        if not use_numpy():  # honors REPRO_NO_NUMPY / REPRO_BACKEND=pure
            raise RuntimeError(
                "RandomSelection needs the numpy backend "
                "(install the [fast] extra and do not force REPRO_BACKEND=pure)")
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def __call__(
        self,
        c_in: Channel,
        candidates: Sequence[Channel],
        free: Callable[[Channel], bool],
    ) -> Channel | None:
        free_cands = [c for c in candidates if free(c)]
        if not free_cands:
            return None
        return free_cands[int(self.rng.integers(len(free_cands)))]


class RoundRobinSelection:
    """Rotates the preferred candidate per (node) to spread load evenly."""

    def __init__(self) -> None:
        self._counter: dict[int, int] = {}

    def __call__(
        self,
        c_in: Channel,
        candidates: Sequence[Channel],
        free: Callable[[Channel], bool],
    ) -> Channel | None:
        if not candidates:
            return None
        node = candidates[0].src
        start = self._counter.get(node, 0) % len(candidates)
        self._counter[node] = start + 1
        for i in range(len(candidates)):
            c = candidates[(start + i) % len(candidates)]
            if free(c):
                return c
        return None


def lowest_vc_first(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Prefer low VC indices: drains restricted VC classes before escape VCs.

    For two-class algorithms (Duato's, EFA) this biases traffic onto the
    regulated first class, keeping the adaptive class free as the escape
    valve -- the selection the paper's Section 9 algorithms implicitly assume.
    """
    for c in sorted(candidates, key=lambda ch: (ch.vc, ch.cid)):
        if free(c):
            return c
    return None


def highest_vc_first(c_in: Channel, candidates: Sequence[Channel], free: Callable[[Channel], bool]) -> Channel | None:
    """Prefer high VC indices: uses the adaptive class first (ablation foil)."""
    for c in sorted(candidates, key=lambda ch: (-ch.vc, ch.cid)):
        if free(c):
            return c
    return None


class CreditSelection:
    """Credit-based congestion-adaptive selection with escape-VC fallback.

    Implements the congestion-aware policy the paper's framework explicitly
    leaves free: among the *adaptive* candidates (``vc >= escape_vcs``) pick
    the free channel whose downstream buffer has the most credits -- free
    slots, read straight from the simulator's SoA buffer state -- breaking
    ties round-robin per node so symmetric neighbours share load.  Only when
    every adaptive candidate is busy or fully backpressured (zero credits)
    does the message fall back to the escape class (``vc < escape_vcs``),
    matching Duato's intent that the escape channels stay a last-resort
    drain rather than a shortcut.

    Deadlock freedom is untouched by construction -- a selection function
    can only pick *within* the verified route set -- so this policy is safe
    on any scenario; it is the default knob of the 3D/pillar scenarios.

    The simulator binds engine state in via :meth:`bind_engine` (called by
    ``WormholeSimulator.__init__`` on any selection exposing that hook).
    Unit tests may instead inject a ``credits`` callable directly.
    """

    def __init__(self, *, escape_vcs: int = 1,
                 credits: Callable[[Channel], int] | None = None) -> None:
        if escape_vcs < 0:
            raise ValueError("escape_vcs must be >= 0")
        self.escape_vcs = escape_vcs
        self._credits = credits
        self._rr: dict[int, int] = {}

    def bind_engine(self, sim: "WormholeSimulator") -> None:
        """Source credits from the simulator's per-channel buffer occupancy."""
        buffers = sim._buf
        depth = sim.config.buffer_depth
        self._credits = lambda c: depth - len(buffers[c.cid])

    def __call__(
        self,
        c_in: Channel,
        candidates: Sequence[Channel],
        free: Callable[[Channel], bool],
    ) -> Channel | None:
        if not candidates:
            return None
        credits = self._credits
        adaptive = [c for c in candidates if c.vc >= self.escape_vcs]
        best: Channel | None = None
        best_credits = 0  # a backpressured (0-credit) adaptive hop never wins
        if adaptive:
            node = adaptive[0].src
            start = self._rr.get(node, 0) % len(adaptive)
            self._rr[node] = start + 1
            for i in range(len(adaptive)):
                c = adaptive[(start + i) % len(adaptive)]
                if not free(c):
                    continue
                have = credits(c) if credits is not None else 1
                if have > best_credits:
                    best, best_credits = c, have
        if best is not None:
            return best
        for c in candidates:  # escape fallback, allocator priority order
            if c.vc < self.escape_vcs and free(c):
                return c
        return None


#: named selection policies; values are factories so stateful policies are
#: fresh per simulator.  ``ScenarioSpec.selection`` holds one of these keys.
SELECTIONS: dict[str, Callable[[], SelectionFunction]] = {
    "first-free": lambda: first_free,
    "straight-first": lambda: straight_first,
    "lowest-vc-first": lambda: lowest_vc_first,
    "highest-vc-first": lambda: highest_vc_first,
    "round-robin": RoundRobinSelection,
    "random": RandomSelection,
    "credit": CreditSelection,
}


def make_selection(name: str, **kwargs: Any) -> SelectionFunction:
    """Instantiate a named selection policy (fresh instance if stateful)."""
    try:
        factory = SELECTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown selection policy {name!r}; have {sorted(SELECTIONS)}") from None
    return factory(**kwargs)  # type: ignore[call-arg]
