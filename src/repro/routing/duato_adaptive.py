"""Duato's fully adaptive routing algorithms (the ICPP'94 / TPDS'93 designs).

The construction the titled paper is famous for: split the virtual channels
into a restricted *escape* class whose extended channel dependency graph is
acyclic, and an unrestricted *adaptive* class a message may use whenever a
channel is free.  Deadlock freedom follows from Duato's theorem because the
escape class forms a connected routing subfunction.

Concretely, with two VCs per link on a mesh or hypercube:

* VC class 0 (escape): dimension-order routing -- only the lowest dimension
  still needing correction, in the needed direction;
* VC class 1 (adaptive): any channel on any minimal path.

On a torus the escape class is the two-VC Dally--Seitz dateline scheme, for
three VCs per link total.

These are the "Duato" curves/bars of Figure 5 and the simulation benches,
and the primary fixture for the Duato-condition verifier: the relation has
form ``R(n, d)``, is coherent, and provides minimal paths, so *both*
necessary-and-sufficient conditions apply to it and must agree.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy
from .torus_vc import DallySeitzTorus


class DuatoFullyAdaptiveMesh(NodeDestRouting):
    """Duato's fully adaptive algorithm on an n-D mesh (2 VCs per link).

    Also serves hypercubes built as ``(2, ..., 2)`` meshes; see
    :class:`DuatoFullyAdaptiveHypercube` for the bit-level variant.
    """

    name = "duato-mesh"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        if network.meta.get("topology") not in ("mesh", "hypercube"):
            raise RoutingError(f"{self.name} requires a mesh-like network")
        if network.max_vcs() < 2:
            raise RoutingError(f"{self.name} needs 2 virtual channels per link")
        self.ndims = len(network.meta["dims"])

    def _escape_dim(self, deltas: list[int]) -> int:
        for dim, delta in enumerate(deltas):
            if delta != 0:
                return dim
        raise AssertionError("called with node == dest")

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        here = self.network.coord(node)
        there = self.network.coord(dest)
        deltas = [t - h for h, t in zip(here, there)]
        esc = self._escape_dim(deltas)
        out: list[Channel] = []
        for c in self.network.out_channels(node):
            dim = c.meta.get("dim")
            sign = c.meta.get("sign")
            if dim is None or deltas[dim] * sign <= 0:
                continue  # not a minimal move
            if c.vc == 1 or (c.vc == 0 and dim == esc):
                out.append(c)
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        permitted = self.route_nd(node, dest)
        if not permitted:
            return frozenset()
        wait = frozenset(c for c in permitted if c.vc == 0)
        if not wait:
            raise RoutingError(f"{self.name}: escape channel missing at node {node}")
        return wait


class DuatoFullyAdaptiveHypercube(DuatoFullyAdaptiveMesh):
    """Duato's fully adaptive hypercube algorithm (2 VCs per link).

    Identical structure to the mesh variant; kept as its own class so the
    Figure-5 and simulator configs can name it directly and so hypercube
    networks built by :func:`repro.topology.build_hypercube` type-check.
    """

    name = "duato-hypercube"

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        if network.meta.get("topology") != "hypercube":
            raise RoutingError(f"{self.name} requires a hypercube network")


class DuatoFullyAdaptiveTorus(NodeDestRouting):
    """Duato's fully adaptive torus algorithm (3 VCs per link).

    Escape class: Dally--Seitz dateline pair at VC indices 0 and 1;
    adaptive class: VC index 2, any minimal move (shortest way around each
    ring, both directions when equidistant).
    """

    name = "duato-torus"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        if network.meta.get("topology") not in ("torus", "ring"):
            raise RoutingError(f"{self.name} requires a torus network")
        if network.max_vcs() < 3:
            raise RoutingError(f"{self.name} needs 3 virtual channels per link")
        self.escape = DallySeitzTorus(network, vc_base=0)
        self.dims: tuple[int, ...] = network.meta["dims"]

    def _minimal_moves(self, node: int, dest: int) -> list[tuple[int, int]]:
        here = self.network.coord(node)
        there = self.network.coord(dest)
        moves: list[tuple[int, int]] = []
        for dim, radix in enumerate(self.dims):
            if here[dim] == there[dim]:
                continue
            fwd = (there[dim] - here[dim]) % radix
            bwd = (here[dim] - there[dim]) % radix
            if fwd <= bwd:
                moves.append((dim, +1))
            if bwd <= fwd:
                moves.append((dim, -1))
        return moves

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        out = set(self.escape.route_nd(node, dest))
        for dim, sign in self._minimal_moves(node, dest):
            for c in self.network.out_channels(node):
                if c.meta.get("dim") == dim and c.meta.get("sign") == sign and c.vc == 2:
                    out.add(c)
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        return frozenset(self.escape.route_nd(node, dest))
