"""Dally--Seitz dimension-order torus routing with dateline virtual channels.

The classic 1987 construction that motivated virtual channels: dimension-order
routing on a k-ary n-cube deadlocks because each ring is a cycle, so each
unidirectional link carries two virtual channels and a message switches from
the "high" class to the "low" class when it crosses the dateline (the
wrap-around link).  Locally this is decided by comparing the current and
destination coordinates, so the relation has Duato's ``R(n, d)`` form and an
acyclic channel dependency graph.

Used here as (a) a baseline verified by the Dally--Seitz checker, (b) the
escape layer inside Duato's fully adaptive torus algorithm, and (c) the
backbone of the Figure-4 ring example.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


class DallySeitzTorus(NodeDestRouting):
    """Dimension-order k-ary n-cube routing with 2 dateline VCs per link.

    VC class 0 ("high") is used while the remaining route in the current
    dimension still crosses the wrap-around link; class 1 ("low") once it no
    longer does.  Ties in direction choice go to the positive direction.

    ``vc_base`` lets the two dateline classes live at VC indices
    ``vc_base`` and ``vc_base + 1`` so adaptive algorithms can stack extra
    classes on the same links.
    """

    name = "dally-seitz-torus"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network, *, vc_base: int = 0) -> None:
        super().__init__(network)
        if network.meta.get("topology") not in ("torus", "ring"):
            raise RoutingError(f"{self.name} requires a torus network")
        self.dims: tuple[int, ...] = network.meta["dims"]
        if network.max_vcs() < vc_base + 2:
            raise RoutingError(f"{self.name} needs >= {vc_base + 2} VCs per link")
        self.vc_base = vc_base
        self.unidirectional = bool(network.meta.get("unidirectional", False))

    def direction(self, dim: int, here: int, there: int) -> int:
        """Travel direction in ``dim``: shortest way around, ties positive."""
        radix = self.dims[dim]
        fwd = (there - here) % radix
        bwd = (here - there) % radix
        if self.unidirectional:
            return +1
        return +1 if fwd <= bwd else -1

    def crosses_dateline(self, dim: int, here: int, there: int, sign: int) -> bool:
        """Does the remaining route in ``dim`` traverse the wrap link?"""
        # Going positive, the wrap link is (radix-1) -> 0: crossed iff the
        # destination coordinate is "behind" us.  Symmetrically going negative.
        if sign > 0:
            return there < here
        return there > here

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        here = self.network.coord(node)
        there = self.network.coord(dest)
        for dim in range(len(self.dims)):
            if here[dim] != there[dim]:
                sign = self.direction(dim, here[dim], there[dim])
                vc = self.vc_base + (0 if self.crosses_dateline(dim, here[dim], there[dim], sign) else 1)
                out = [
                    c
                    for c in self.network.out_channels(node)
                    if c.meta.get("dim") == dim and c.meta.get("sign") == sign and c.vc == vc
                ]
                if not out:
                    raise RoutingError(
                        f"{self.name}: missing channel dim={dim} sign={sign} vc={vc} at node {node}"
                    )
                return frozenset(out)
        return frozenset()
