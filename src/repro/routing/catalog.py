"""Catalog of routing algorithms with their verified properties.

Benchmarks, examples, and the CLI-ish helpers look algorithms up by name
here instead of importing classes directly; each entry records the topology
family it needs, the VC requirement, and which theorem certifies it, so
reports can be generated uniformly.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..topology.network import Network
from .duato_adaptive import (
    DuatoFullyAdaptiveHypercube,
    DuatoFullyAdaptiveMesh,
    DuatoFullyAdaptiveTorus,
)
from .ecube import DimensionOrderHypercube, DimensionOrderMesh
from .efa import EnhancedFullyAdaptive, RelaxedEFA
from .hpl import HighestPositiveLast
from .incoherent import IncoherentExample
from .prior_hypercube import DraperGhoshMECA, LiStyleHypercube, YangTsai
from .relation import RoutingAlgorithm
from .ring_example import RingExample
from .torus_vc import DallySeitzTorus
from .turn_model import NegativeFirst, NorthLast, WestFirst
from .unrestricted import UnrestrictedMinimal


@dataclass(frozen=True)
class CatalogEntry:
    """Metadata for one routing algorithm."""

    name: str
    factory: Callable[[Network], RoutingAlgorithm]
    topology: str
    min_vcs: int
    adaptivity: str  # "nonadaptive" | "partial" | "full"
    deadlock_free: bool
    certified_by: str  # which theorem/condition proves (or refutes) it
    notes: str = ""


CATALOG: dict[str, CatalogEntry] = {}


def _register(entry: CatalogEntry) -> None:
    if entry.name in CATALOG:
        raise ValueError(f"duplicate catalog entry {entry.name}")
    CATALOG[entry.name] = entry


_register(CatalogEntry(
    "e-cube-mesh", DimensionOrderMesh, "mesh", 1, "nonadaptive", True,
    "Dally-Seitz (acyclic CDG)",
))
_register(CatalogEntry(
    "e-cube", DimensionOrderHypercube, "hypercube", 1, "nonadaptive", True,
    "Dally-Seitz (acyclic CDG)",
))
_register(CatalogEntry(
    "dally-seitz-torus", DallySeitzTorus, "torus", 2, "nonadaptive", True,
    "Dally-Seitz (acyclic CDG)", "dateline virtual channels",
))
_register(CatalogEntry(
    "negative-first", NegativeFirst, "mesh", 1, "partial", True,
    "Dally-Seitz (acyclic CDG)", "turn model",
))
_register(CatalogEntry(
    "west-first", WestFirst, "mesh", 1, "partial", True,
    "Dally-Seitz (acyclic CDG)", "turn model, 2D",
))
_register(CatalogEntry(
    "north-last", NorthLast, "mesh", 1, "partial", True,
    "Dally-Seitz (acyclic CDG)", "turn model, 2D",
))
_register(CatalogEntry(
    "highest-positive-last", HighestPositiveLast, "mesh", 1, "partial", True,
    "Theorem 2 (acyclic CWG; CDG is cyclic)",
    "the paper's Section 9.2 algorithm; nonminimal, incoherent, 0 extra VCs",
))
_register(CatalogEntry(
    "enhanced-fully-adaptive", EnhancedFullyAdaptive, "hypercube", 2, "full", True,
    "Theorem 2 (no True Cycles)",
    "the paper's Section 9.3 algorithm; incoherent, partially adaptive first VC class",
))
_register(CatalogEntry(
    "relaxed-efa", RelaxedEFA, "hypercube", 2, "full", False,
    "Theorem 2 necessity (True Cycle exists)", "Theorem 6 relaxation",
))
_register(CatalogEntry(
    "duato-mesh", DuatoFullyAdaptiveMesh, "mesh", 2, "full", True,
    "Duato's condition / Theorem 2", "escape VC class = dimension order",
))
_register(CatalogEntry(
    "duato-hypercube", DuatoFullyAdaptiveHypercube, "hypercube", 2, "full", True,
    "Duato's condition / Theorem 2", "escape VC class = dimension order",
))
_register(CatalogEntry(
    "duato-torus", DuatoFullyAdaptiveTorus, "torus", 3, "full", True,
    "Duato's condition / Theorem 2", "escape = Dally-Seitz dateline pair",
))
_register(CatalogEntry(
    "incoherent-example", IncoherentExample, "figure1", 1, "partial", True,
    "Theorem 3 (CWG' exists); deadlocks under specific-waiting",
    "Duato's Figure-1 incoherent example",
))
_register(CatalogEntry(
    "ring-figure4", RingExample, "figure4", 4, "partial", True,
    "Theorem 2 (all CWG cycles are False Resource Cycles)",
    "Section 7.1 minimal-routing ring",
))
_register(CatalogEntry(
    "unrestricted-minimal", UnrestrictedMinimal, "mesh", 1, "full", False,
    "Theorem 2/3 necessity (True Cycles exist)",
    "the Dally-Seitz negative example: no restrictions at all",
))
_register(CatalogEntry(
    "draper-ghosh-meca", DraperGhoshMECA, "hypercube", 2, "partial", True,
    "Theorem 2 (acyclic CWG)", "Section 9.1 baseline: skip-ahead + strict e-cube escape",
))
_register(CatalogEntry(
    "yang-tsai", YangTsai, "hypercube", 2, "partial", True,
    "Dally-Seitz / Theorem 2", "Section 9.1 baseline: positive phase then negative, twice",
))
_register(CatalogEntry(
    "li-hypercube", LiStyleHypercube, "hypercube", 1, "partial", True,
    "Theorem 2 (acyclic CWG)", "Section 9.1 baseline: 1-VC sign-disciplined partial adaptivity",
))


def make(name: str, network: Network, **kwargs) -> RoutingAlgorithm:
    """Instantiate a cataloged algorithm on ``network``."""
    try:
        entry = CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown routing algorithm {name!r}; have {sorted(CATALOG)}") from None
    return entry.factory(network, **kwargs)  # type: ignore[call-arg]


def entries_for_topology(topology: str) -> list[CatalogEntry]:
    """All catalog entries applicable to a topology family."""
    return [e for e in CATALOG.values() if e.topology == topology]
