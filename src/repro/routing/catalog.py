"""Catalog of routing algorithms, registered as first-class scenarios.

Benchmarks, examples, and the CLI look algorithms up by name here instead of
importing classes directly.  Since the scenario layer landed, this module is
the *population site* of :mod:`repro.scenario`: every entry is a
:class:`~repro.scenario.ScenarioSpec` (relation factory, canonical
verification-sized :class:`~repro.scenario.TopologySpec`, VC requirement,
certifying theorem, expected verdict, selection policy) registered into the
shared registry.  ``CATALOG`` *is* that registry mapping -- existing callers
keep iterating ``sorted(CATALOG)`` and indexing ``CATALOG[name]`` -- and
``CatalogEntry`` is a backward-compatible alias of ``ScenarioSpec``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from .. import scenario
from ..scenario import ScenarioSpec, TopologySpec
from ..topology.network import Network
from .adaptive3d import MinimalAdaptive3D
from .duato_adaptive import (
    DuatoFullyAdaptiveHypercube,
    DuatoFullyAdaptiveMesh,
    DuatoFullyAdaptiveTorus,
)
from .ecube import DimensionOrderHypercube, DimensionOrderMesh
from .efa import EnhancedFullyAdaptive, RelaxedEFA
from .hpl import HighestPositiveLast
from .incoherent import IncoherentExample
from .prior_hypercube import DraperGhoshMECA, LiStyleHypercube, YangTsai
from .relation import RoutingAlgorithm
from .ring_example import RingExample
from .torus_vc import DallySeitzTorus
from .turn_model import NegativeFirst, NorthLast, WestFirst
from .unrestricted import UnrestrictedMinimal

#: backward-compatible name: one registered scenario
CatalogEntry = ScenarioSpec

#: the live scenario registry (shared object, not a copy)
CATALOG: dict[str, ScenarioSpec] = scenario.REGISTRY


def _register(
    name: str,
    factory: Callable[[Network], RoutingAlgorithm],
    family: str,
    min_vcs: int,
    adaptivity: str,
    deadlock_free: bool,
    certified_by: str,
    notes: str = "",
    *,
    dims: Sequence[int] | None = None,
    params: Sequence[tuple[str, Any]] = (),
    selection: str = "first-free",
) -> None:
    scenario.register(ScenarioSpec(
        name=name,
        factory=factory,
        topology=TopologySpec(
            family=family,
            dims=None if dims is None else tuple(dims),
            params=tuple(params),
        ),
        min_vcs=min_vcs,
        adaptivity=adaptivity,
        deadlock_free=deadlock_free,
        certified_by=certified_by,
        notes=notes,
        selection=selection,
    ))


# Canonical dims are the verification-sized instances the batch pipeline and
# the pinned verdict matrices have always used: 4x4 grids, dimension-3 cubes.
_register(
    "e-cube-mesh", DimensionOrderMesh, "mesh", 1, "nonadaptive", True,
    "Dally-Seitz (acyclic CDG)", dims=(4, 4),
)
_register(
    "e-cube", DimensionOrderHypercube, "hypercube", 1, "nonadaptive", True,
    "Dally-Seitz (acyclic CDG)", dims=(3,),
)
_register(
    "dally-seitz-torus", DallySeitzTorus, "torus", 2, "nonadaptive", True,
    "Dally-Seitz (acyclic CDG)", "dateline virtual channels", dims=(4, 4),
)
_register(
    "negative-first", NegativeFirst, "mesh", 1, "partial", True,
    "Dally-Seitz (acyclic CDG)", "turn model", dims=(4, 4),
)
_register(
    "west-first", WestFirst, "mesh", 1, "partial", True,
    "Dally-Seitz (acyclic CDG)", "turn model, 2D", dims=(4, 4),
)
_register(
    "north-last", NorthLast, "mesh", 1, "partial", True,
    "Dally-Seitz (acyclic CDG)", "turn model, 2D", dims=(4, 4),
)
_register(
    "highest-positive-last", HighestPositiveLast, "mesh", 1, "partial", True,
    "Theorem 2 (acyclic CWG; CDG is cyclic)",
    "the paper's Section 9.2 algorithm; nonminimal, incoherent, 0 extra VCs",
    dims=(4, 4),
)
_register(
    "enhanced-fully-adaptive", EnhancedFullyAdaptive, "hypercube", 2, "full", True,
    "Theorem 2 (no True Cycles)",
    "the paper's Section 9.3 algorithm; incoherent, partially adaptive first VC class",
    dims=(3,),
)
_register(
    "relaxed-efa", RelaxedEFA, "hypercube", 2, "full", False,
    "Theorem 2 necessity (True Cycle exists)", "Theorem 6 relaxation", dims=(3,),
)
_register(
    "duato-mesh", DuatoFullyAdaptiveMesh, "mesh", 2, "full", True,
    "Duato's condition / Theorem 2", "escape VC class = dimension order",
    dims=(4, 4),
)
_register(
    "duato-hypercube", DuatoFullyAdaptiveHypercube, "hypercube", 2, "full", True,
    "Duato's condition / Theorem 2", "escape VC class = dimension order",
    dims=(3,),
)
_register(
    "duato-torus", DuatoFullyAdaptiveTorus, "torus", 3, "full", True,
    "Duato's condition / Theorem 2", "escape = Dally-Seitz dateline pair",
    dims=(4, 4),
)
_register(
    "incoherent-example", IncoherentExample, "figure1", 1, "partial", True,
    "Theorem 3 (CWG' exists); deadlocks under specific-waiting",
    "Duato's Figure-1 incoherent example",
)
_register(
    "ring-figure4", RingExample, "figure4", 4, "partial", True,
    "Theorem 2 (all CWG cycles are False Resource Cycles)",
    "Section 7.1 minimal-routing ring",
)
_register(
    "unrestricted-minimal", UnrestrictedMinimal, "mesh", 1, "full", False,
    "Theorem 2/3 necessity (True Cycles exist)",
    "the Dally-Seitz negative example: no restrictions at all", dims=(4, 4),
)
_register(
    "draper-ghosh-meca", DraperGhoshMECA, "hypercube", 2, "partial", True,
    "Theorem 2 (acyclic CWG)",
    "Section 9.1 baseline: skip-ahead + strict e-cube escape", dims=(3,),
)
_register(
    "yang-tsai", YangTsai, "hypercube", 2, "partial", True,
    "Dally-Seitz / Theorem 2",
    "Section 9.1 baseline: positive phase then negative, twice", dims=(3,),
)
_register(
    "li-hypercube", LiStyleHypercube, "hypercube", 1, "partial", True,
    "Theorem 2 (acyclic CWG)",
    "Section 9.1 baseline: 1-VC sign-disciplined partial adaptivity", dims=(3,),
)

# --- the 3D / pillar-sparse scenarios ---------------------------------
_register(
    "adaptive-mesh3d", MinimalAdaptive3D, "mesh3d", 2, "full", True,
    "Duato's condition / Theorem 2",
    "table-driven minimal candidates; vc0 = dimension-ordered escape",
    dims=(3, 3, 3), selection="credit",
)
_register(
    "pillar-wall-3d", MinimalAdaptive3D, "sparse-pillar", 2, "full", True,
    "Duato's condition / Theorem 2",
    "vertical links only on the collinear y=0 pillar wall; BFS-minimal "
    "candidates bend through it, escape stays acyclic",
    dims=(3, 3, 3), params=(("pillars", ((0, 0), (1, 0), (2, 0))),),
    selection="credit",
)
_register(
    "pillar-diag-3d", MinimalAdaptive3D, "sparse-pillar", 2, "full", False,
    "Theorem 2 necessity (True Cycle exists)",
    "two non-collinear pillars: dimension-ordered escape ascends one and "
    "descends the other, closing a True Cycle",
    dims=(3, 3, 3), params=(("pillars", ((0, 0), (2, 2))),),
    selection="credit",
)


def make(name: str, network: Network, **kwargs: Any) -> RoutingAlgorithm:
    """Instantiate a cataloged algorithm on ``network``."""
    try:
        entry = CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown routing algorithm {name!r}; have {sorted(CATALOG)}") from None
    return entry.factory(network, **kwargs)  # type: ignore[call-arg]


def entries_for_topology(topology: str) -> list[ScenarioSpec]:
    """All catalog entries whose canonical topology family is ``topology``."""
    return [e for e in CATALOG.values() if e.family == topology]
