"""Routing relations, algorithms, selection functions, and path tools.

Implements Definitions 2-8 of the paper (routing relations of both the
general ``R(c_in, n, d)`` and Duato's ``R(n, d)`` forms, selection
functions, waiting channels) plus every routing algorithm the paper
discusses: the e-cube and turn-model baselines, Dally--Seitz torus routing,
Duato's fully adaptive algorithms, the paper's own Highest Positive Last
(Section 9.2) and Enhanced Fully Adaptive (Section 9.3), and the worked
examples of Figures 1 and 4.
"""

from .adaptive3d import MinimalAdaptive3D
from .catalog import CATALOG, CatalogEntry, entries_for_topology, make
from .duato_adaptive import (
    DuatoFullyAdaptiveHypercube,
    DuatoFullyAdaptiveMesh,
    DuatoFullyAdaptiveTorus,
)
from .ecube import DimensionOrderHypercube, DimensionOrderMesh
from .efa import EnhancedFullyAdaptive, RelaxedEFA
from .hpl import HighestPositiveLast
from .incoherent import IncoherentExample
from .prior_hypercube import DraperGhoshMECA, LiStyleHypercube, YangTsai
from .paths import count_minimal_paths, count_paths, enumerate_paths, has_route, path_nodes
from .properties import (
    PropertyReport,
    is_coherent,
    is_connected,
    is_fully_adaptive,
    is_minimal,
    is_prefix_closed,
    is_suffix_closed,
    never_revisits_node,
    provides_minimal_path,
)
from .relation import (
    NodeDestRouting,
    RestrictedWaiting,
    RouteEntry,
    RouteTable,
    RoutingAlgorithm,
    RoutingError,
    WaitPolicy,
    as_cnd,
)
from .ring_example import RingExample
from .selection import (
    SELECTIONS,
    CreditSelection,
    RandomSelection,
    RoundRobinSelection,
    SelectionFunction,
    first_free,
    highest_vc_first,
    lowest_vc_first,
    make_selection,
    straight_first,
)
from .torus_vc import DallySeitzTorus
from .turn_model import NegativeFirst, NorthLast, WestFirst
from .unrestricted import UnrestrictedMinimal

__all__ = [
    "CATALOG",
    "CatalogEntry",
    "CreditSelection",
    "DallySeitzTorus",
    "DimensionOrderHypercube",
    "DimensionOrderMesh",
    "DuatoFullyAdaptiveHypercube",
    "DuatoFullyAdaptiveMesh",
    "DuatoFullyAdaptiveTorus",
    "EnhancedFullyAdaptive",
    "HighestPositiveLast",
    "IncoherentExample",
    "MinimalAdaptive3D",
    "NegativeFirst",
    "NodeDestRouting",
    "NorthLast",
    "PropertyReport",
    "RandomSelection",
    "RelaxedEFA",
    "RestrictedWaiting",
    "RouteEntry",
    "RouteTable",
    "RingExample",
    "RoundRobinSelection",
    "RoutingAlgorithm",
    "RoutingError",
    "SELECTIONS",
    "SelectionFunction",
    "WaitPolicy",
    "WestFirst",
    "as_cnd",
    "count_minimal_paths",
    "count_paths",
    "entries_for_topology",
    "enumerate_paths",
    "first_free",
    "has_route",
    "highest_vc_first",
    "is_coherent",
    "is_connected",
    "is_fully_adaptive",
    "is_minimal",
    "is_prefix_closed",
    "is_suffix_closed",
    "lowest_vc_first",
    "make",
    "make_selection",
    "never_revisits_node",
    "path_nodes",
    "provides_minimal_path",
    "straight_first",
    "UnrestrictedMinimal",
    "DraperGhoshMECA",
    "LiStyleHypercube",
    "YangTsai",
]
