"""Unrestricted minimal adaptive routing -- the canonical deadlock-prone
algorithm.

"A routing algorithm with no restrictions on the use of virtual or physical
channels can result in deadlock" (Dally & Seitz, quoted in Section 1).  This
relation permits every minimal move on every virtual channel with no
restrictions whatsoever; on any topology with a cycle (a mesh quadrilateral,
any ring) its CWG has True Cycles and the simulator can realize them.  It
exists as the negative fixture for the verifiers and the empirical deadlock
benchmarks.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


class UnrestrictedMinimal(NodeDestRouting):
    """Any minimal move, any virtual channel, wait on anything.

    Works on any topology with coordinates (mesh/torus/hypercube); minimal
    moves are hops that reduce the distance to the destination.

    ``wait_any=False`` switches to the Theorem-2 regime: a blocked message
    designates the lowest-cid permitted channel and waits for it alone.
    """

    name = "unrestricted-minimal"

    def __init__(self, network: Network, *, wait_any: bool = True) -> None:
        super().__init__(network)
        if "dims" not in network.meta:
            raise RoutingError(f"{self.name} requires a grid-like network")
        self._dist = network.shortest_distances()
        self.wait_policy = WaitPolicy.ANY if wait_any else WaitPolicy.SPECIFIC
        self._wait_any = wait_any

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        d = self._dist[node][dest]
        return frozenset(
            c for c in self.network.out_channels(node)
            if self._dist[c.dst][dest] == d - 1
        )

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        permitted = self.route_nd(node, dest)
        if self._wait_any or not permitted:
            return permitted
        return frozenset([min(permitted, key=lambda c: c.cid)])
