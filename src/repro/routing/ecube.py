"""Nonadaptive dimension-order (e-cube) routing for meshes and hypercubes.

The canonical baseline: correct each dimension in increasing order, one fixed
path per source-destination pair.  Its channel dependency graph is acyclic
(Dally & Seitz 1987), it is coherent, and its degree of adaptiveness is
``1/k!`` at distance ``k`` -- the bottom curve of the paper's Figure 5.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


class DimensionOrderMesh(NodeDestRouting):
    """Dimension-order routing on an n-D mesh (XY routing in 2D).

    Parameters
    ----------
    vc:
        Which virtual channel index to use on each link (``None`` = permit
        every VC of the chosen link; the *physical* path stays unique, so
        the algorithm remains nonadaptive in the Figure-5 sense only when
        the network has one VC per link or ``vc`` is fixed).
    """

    name = "e-cube-mesh"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network, *, vc: int | None = 0) -> None:
        super().__init__(network)
        if network.meta.get("topology") not in ("mesh", "hypercube"):
            raise RoutingError(f"{self.name} requires a mesh-like network, got {network.name}")
        self.vc = vc

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        here = self.network.coord(node)
        there = self.network.coord(dest)
        for dim, (h, t) in enumerate(zip(here, there)):
            if h != t:
                sign = 1 if t > h else -1
                return self._channels(node, dim, sign)
        return frozenset()

    def _channels(self, node: int, dim: int, sign: int) -> frozenset[Channel]:
        out = [
            c
            for c in self.network.out_channels(node)
            if c.meta.get("dim") == dim and c.meta.get("sign") == sign
        ]
        if self.vc is not None:
            out = [c for c in out if c.vc == self.vc]
        if not out:
            raise RoutingError(f"{self.name}: no channel dim={dim} sign={sign} at node {node}")
        return frozenset(out)


class DimensionOrderHypercube(NodeDestRouting):
    """E-cube routing on a binary hypercube: correct the lowest differing bit.

    Equivalent to :class:`DimensionOrderMesh` on the (2,...,2) mesh but works
    directly on node-id bits, matching the Section 9.3 conventions.
    """

    name = "e-cube"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network, *, vc: int | None = 0) -> None:
        super().__init__(network)
        if network.meta.get("topology") != "hypercube":
            raise RoutingError(f"{self.name} requires a hypercube network")
        self.vc = vc

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        low = ((node ^ dest) & -(node ^ dest)).bit_length() - 1  # lowest set bit
        nbr = node ^ (1 << low)
        out = [c for c in self.network.channels_between(node, nbr)]
        if self.vc is not None:
            out = [c for c in out if c.vc == self.vc]
        return frozenset(out)
