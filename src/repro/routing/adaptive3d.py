"""Table-driven minimal-candidate adaptive routing for 3D / pillar-sparse meshes.

The 2D relations in this package derive their candidate sets from coordinate
deltas, which silently assumes BFS distance == Manhattan distance.  On the
pillar-sparse 3D meshes of :mod:`repro.topology.mesh3d` that is false --
minimal routes bend through the surviving pillar columns -- so this relation
is *table driven*: at construction it computes, for every ``(node, dest)``
pair, the set of link channels whose head is strictly closer (by actual BFS
distance) to the destination.

Channel classes (Duato's methodology, Section 7 of the paper):

* **escape, vc 0** -- a single dimension-ordered minimal hop: among the
  strictly-distance-decreasing moves, the one in the lowest dimension
  (negative direction, then lowest neighbour id, on ties).  On a dense mesh
  this degenerates to the classic lowest-unresolved-dimension escape of
  ``duato-mesh``; on a sparse-pillar mesh it follows the BFS-minimal bend
  through a pillar deterministically.
* **adaptive, vc >= 1** -- every minimal hop.

Blocked messages wait specifically on the escape channel
(:attr:`~repro.routing.relation.WaitPolicy.SPECIFIC`).  Because *every*
permitted hop strictly decreases BFS distance, the relation provides minimal
paths and can never revisit a node; coherence (and hence Duato
applicability) plus ECDG acyclicity of the escape subfunction are then
checked -- not assumed -- by the verifiers, and the catalog pins both
verdicts for the registered instances.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


def _escape_key(c: Channel) -> tuple[int, int, int, int]:
    """Dimension-ordered determinism: lowest dim, ``-`` before ``+``, then ids."""
    dim = c.meta.get("dim")
    sign = c.meta.get("sign")
    if dim is None or sign is None:
        raise RoutingError(
            f"channel {c!r} lacks dim/sign metadata; "
            "MinimalAdaptive3D needs a grid-built network")
    return (dim, 0 if sign < 0 else 1, c.dst, c.cid)


class MinimalAdaptive3D(NodeDestRouting):
    """Fully adaptive minimal routing with a dimension-ordered escape VC.

    Works on any grid-built network carrying ``dim``/``sign`` channel
    metadata and at least two virtual channels per link; registered for the
    ``mesh3d`` and ``sparse-pillar`` families.
    """

    form = "ND"
    wait_policy = WaitPolicy.SPECIFIC
    name = "minimal-adaptive-3d"

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        num_vcs = network.max_vcs()
        if num_vcs < 2:
            raise RoutingError(
                f"{self.name} needs an escape VC plus at least one adaptive VC "
                f"(got {num_vcs} VC network)")
        dist = network.shortest_distances()
        n = network.num_nodes
        empty: frozenset[Channel] = frozenset()
        routes: list[frozenset[Channel]] = [empty] * (n * n)
        waits: list[frozenset[Channel]] = [empty] * (n * n)
        for node in range(n):
            out = [c for c in network.out_channels(node) if c.is_link]
            drow = dist[node]
            for dest in range(n):
                if dest == node:
                    continue
                here = drow[dest]
                minimal = [c for c in out if dist[c.dst][dest] == here - 1]
                if not minimal:  # unreachable destination: freeze() forbids this
                    raise RoutingError(
                        f"{self.name}: no minimal move from {node} to {dest}")
                escape = min((c for c in minimal if c.vc == 0), key=_escape_key)
                permitted = frozenset(
                    c for c in minimal if c.vc >= 1) | {escape}
                routes[node * n + dest] = permitted
                waits[node * n + dest] = frozenset((escape,))
        self._routes = routes
        self._waits = waits
        self._n = n

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        return self._routes[node * self._n + dest]

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        return self._waits[node * self._n + dest]
