"""Routing relations, waiting channels, and wait policies (Definitions 2-10).

The paper's central abstraction is a routing relation of the general form
``R: C x N x N -> P(C)``: given the *input channel* a message arrived on, the
*current node*, and the *destination*, the relation supplies the set of
output channels the message may use next.  Restricting attention to the less
general Duato form ``R: N x N -> P(C)`` is exactly what the paper relaxes,
so the base class here takes the input channel everywhere and a mixin marks
relations that ignore it.

Waiting channels (Definition 8) are first-class: when every permitted output
is busy, a blocked message waits on one or more *waiting channels*, which
must be a subset of the permitted outputs.  Two waiting regimes exist:

* :attr:`WaitPolicy.SPECIFIC` -- the algorithm designates a waiting channel
  and the message waits for that channel alone (Theorem 2 applies);
* :attr:`WaitPolicy.ANY` -- the message may acquire whichever permitted
  output frees first (Theorem 3 applies).

Conventions
-----------
* The input channel passed to :meth:`RoutingAlgorithm.route` is always a real
  :class:`~repro.topology.channel.Channel`; a message at its source presents
  the node's *injection channel*.  ``c_in.dst`` must equal ``node``.
* ``route(c_in, node, node)`` (message at destination) returns the empty set;
  delivery is handled by the caller (Assumption 2: always consumed).
* ``route`` must never return injection or ejection channels.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections.abc import Iterable
from typing import NamedTuple

from ..topology.channel import Channel
from ..topology.network import Network


class WaitPolicy(enum.Enum):
    """How a blocked message waits (Section 6's case (1) vs case (2))."""

    #: The message picks one designated waiting channel and waits for it
    #: until it frees (Theorem 2 regime).
    SPECIFIC = "specific"
    #: The message waits on its whole waiting set and takes whichever
    #: permitted channel frees first (Theorem 3 regime).
    ANY = "any"


class RoutingError(ValueError):
    """Raised for malformed routing queries or inconsistent relations."""


class RoutingAlgorithm(ABC):
    """Base class for all routing algorithms (Definition 4).

    Subclasses implement :meth:`route` and optionally override
    :meth:`waiting_channels` (default: every permitted output is a waiting
    channel) and :attr:`wait_policy` (default: :attr:`WaitPolicy.ANY`).

    The class is deliberately stateless per-message: everything the relation
    may consult is the triple ``(c_in, node, dest)`` -- the paper's "only
    local information" restriction.
    """

    #: Relation form: "CND" for R(c_in, n, d), "ND" for R(n, d).
    form: str = "CND"
    #: Waiting regime; drives which theorem the verifier applies.
    wait_policy: WaitPolicy = WaitPolicy.ANY
    #: Human-readable algorithm name for reports.
    name: str = "routing"

    def __init__(self, network: Network) -> None:
        if not network.frozen:
            raise RoutingError("routing algorithms require a frozen network")
        self.network = network

    # ------------------------------------------------------------------
    # the relation
    # ------------------------------------------------------------------
    @abstractmethod
    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        """Output channels permitted for a message at ``node`` heading to ``dest``.

        ``c_in`` is the channel the message arrived on (the injection channel
        when at the source).  Must return a subset of
        ``network.out_channels(node)``; empty iff ``node == dest`` (or the
        relation is broken, which verifiers will flag as not wait-connected).
        """

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        """Channels the message may *wait on* when blocked (Definition 8).

        Must be a subset of ``route(c_in, node, dest)`` and nonempty whenever
        the route set is nonempty, or the algorithm is not wait-connected
        (Definition 10) and therefore not deadlock-free.
        """
        return self.route(c_in, node, dest)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def fingerprint(self, *, transitions=None) -> str:
        """Content-addressed digest of the relation (network + full table).

        Two algorithms with identical reachable routing tables on identical
        networks share a fingerprint regardless of name or implementing
        class; the batch pipeline keys every cached artifact on it.  Pass
        the :class:`~repro.core.transitions.TransitionCache` already built
        for verification to avoid enumerating the table twice.
        """
        from ..pipeline.fingerprint import fingerprint_relation

        return fingerprint_relation(self, transitions=transitions)

    def route_from_source(self, node: int, dest: int) -> frozenset[Channel]:
        """Route set for a newly injected message (input = injection channel)."""
        return self.route(self.network.injection_channel(node), node, dest)

    def check_route_set(self, channels: Iterable[Channel], node: int) -> frozenset[Channel]:
        """Validate a route set: all outputs must leave ``node`` over links."""
        out = frozenset(channels)
        for c in out:
            if not c.is_link or c.src != node:
                raise RoutingError(f"{self.name}: channel {c!r} is not a link output of node {node}")
        return out

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.name} on {self.network.name} "
            f"[form={self.form}, wait={self.wait_policy.value}]"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class NodeDestRouting(RoutingAlgorithm):
    """Routing relation of Duato's restricted form ``R(n, d)`` (Definition 2 variant).

    Subclasses implement :meth:`route_nd`; the input channel is ignored,
    which makes the relation automatically suffix-closed (Definition 6 note).
    """

    form = "ND"

    @abstractmethod
    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        """Output channels for ``(node, dest)``, independent of input channel."""

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        return self.route_nd(node, dest)


class RestrictedWaiting(RoutingAlgorithm):
    """Mixin/wrapper that narrows the waiting set of an existing algorithm.

    Used to express rules like HPL's "if all outputs are busy, wait for the
    negative channel of dimension p" without duplicating the route logic,
    and by the CWG' reduction to realize a reduced waiting discipline.
    """

    def __init__(self, inner: RoutingAlgorithm, wait_policy: WaitPolicy | None = None) -> None:
        super().__init__(inner.network)
        self.inner = inner
        self.name = f"{inner.name}+waiting"
        self.form = inner.form
        self.wait_policy = wait_policy if wait_policy is not None else inner.wait_policy

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        return self.inner.route(c_in, node, dest)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        return self.inner.waiting_channels(c_in, node, dest)


class RouteEntry(NamedTuple):
    """One cached routing decision: everything ``R(c_in, node, dest)`` pins.

    The permitted and waiting channels are stored both as dense channel-id
    tuples (the simulator's fast allocator walks these with integer state
    only) and as :class:`Channel` tuples in the same order (handed to
    custom selection functions, which keep their object interface).
    """

    #: permitted output cids, pre-sorted by the allocator's priority key
    cand_cids: tuple[int, ...]
    #: the same channels as objects, same order
    cand_channels: tuple[Channel, ...]
    #: waiting-channel cids, pre-sorted by the same key
    wait_cids: tuple[int, ...]
    #: the same waiting channels as objects, same order
    wait_channels: tuple[Channel, ...]
    #: the raw waiting set (what a blocked message's ``waiting_for`` holds)
    wait_set: frozenset[Channel]


class RouteTable:
    """Dense cache of a routing relation, indexed by ``(input cid, dest)``.

    The relation ``R(c_in, node, dest)`` is a pure function of the input
    channel and the destination (``node`` is always ``c_in.dst``), so the
    simulator need never call :meth:`RoutingAlgorithm.route` twice for the
    same pair -- yet the original allocator did exactly that every cycle for
    every blocked message, then re-sorted the result with per-message
    closures.  This table computes each entry once, pre-sorted by the
    allocator's ``(remaining distance, U-turn, vc, cid)`` priority key, and
    serves it from a flat list indexed by ``cid * num_nodes + dest``.

    Entries are filled lazily: only ``(c_in, dest)`` pairs traffic actually
    exercises are ever computed, so construction is O(1) even on large
    networks.  ``hits`` / ``misses`` are exposed for observability.

    Parameters
    ----------
    algorithm:
        The relation to cache.
    dist:
        Optional all-pairs distance matrix (``dist[node][dest]``).  When
        given, candidates are ordered progress-first exactly as the
        simulator's ``prefer_minimal`` mode orders them; when ``None``,
        candidates are in raw cid order.
    """

    def __init__(self, algorithm: RoutingAlgorithm, *, dist: list[list[int]] | None = None) -> None:
        self.algorithm = algorithm
        net = algorithm.network
        self._net = net
        self._num_nodes = net.num_nodes
        self._dist = dist
        self._entries: list[RouteEntry | None] = [None] * (net.num_channels * net.num_nodes)
        self.hits = 0
        self.misses = 0

    @property
    def dist(self) -> list[list[int]] | None:
        """The distance matrix the candidate ordering was built with."""
        return self._dist

    def entry(self, c_in_cid: int, dest: int) -> RouteEntry:
        """The cached decision for a header that arrived on ``c_in_cid``."""
        idx = c_in_cid * self._num_nodes + dest
        e = self._entries[idx]
        if e is not None:
            self.hits += 1
            return e
        self.misses += 1
        e = self._build(c_in_cid, dest)
        self._entries[idx] = e
        return e

    def _build(self, c_in_cid: int, dest: int) -> RouteEntry:
        c_in = self._net.channel(c_in_cid)
        node = c_in.dst
        algo = self.algorithm
        permitted = algo.route(c_in, node, dest)
        if type(algo).waiting_channels is RoutingAlgorithm.waiting_channels:
            # default waiting set == route set: skip the second route() call
            waiting = permitted
        else:
            waiting = algo.waiting_channels(c_in, node, dest)
        if self._dist is not None:
            dist = self._dist
            prev = c_in.src if c_in.is_link else -1
            # progress first, then avoid immediate U-turns, then stable
            key = lambda c: (dist[c.dst][dest], c.dst == prev, c.vc, c.cid)  # noqa: E731
        else:
            key = lambda c: c.cid  # noqa: E731
        cands = tuple(sorted(permitted, key=key))
        waits = tuple(sorted(waiting, key=key))
        return RouteEntry(
            cand_cids=tuple(c.cid for c in cands),
            cand_channels=cands,
            wait_cids=tuple(c.cid for c in waits),
            wait_channels=waits,
            wait_set=waiting if isinstance(waiting, frozenset) else frozenset(waiting),
        )

    def stats(self) -> dict[str, int]:
        """Cache-style counters for observability reports."""
        filled = sum(1 for e in self._entries if e is not None)
        return {"hits": self.hits, "misses": self.misses, "entries": filled}


def as_cnd(algorithm: RoutingAlgorithm) -> RoutingAlgorithm:
    """View any algorithm through the general ``R(c_in, n, d)`` interface.

    ND-form relations "can always be converted to routing relations of the
    former type by providing the same set of output channels for every input
    channel" (Section 2); since :class:`NodeDestRouting` already ignores the
    input channel, this is the identity -- it exists so callers can assert
    the conversion direction that *is* always possible, as the paper notes
    the reverse is not.
    """
    return algorithm
