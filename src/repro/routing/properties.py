"""Structural properties of routing algorithms (Definitions 5-7 and friends).

Duato's necessary-and-sufficient condition demands *coherence* (prefix- and
suffix-closure, no node revisits) and a minimal path for every pair; the
paper's whole point is that its own condition needs neither.  These checkers
make the distinction executable: the Section-9 algorithms (HPL, EFA) fail
``is_coherent`` yet pass the CWG condition, and the benchmarks record both.

All checks work by exhaustive path enumeration, so they are meant for the
small-to-medium networks used in verification (the theory side), not for the
large simulation configs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..topology.channel import Channel
from .paths import enumerate_paths, has_route, path_nodes
from .relation import RoutingAlgorithm


@dataclass
class PropertyReport:
    """Outcome of a property check, with a counterexample when it fails."""

    holds: bool
    counterexample: str = ""
    details: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


def is_connected(algorithm: RoutingAlgorithm, *, max_hops: int | None = None) -> PropertyReport:
    """Every ordered pair of distinct nodes has at least one permitted path."""
    net = algorithm.network
    for src in net.nodes:
        for dest in net.nodes:
            if src != dest and not has_route(algorithm, src, dest, max_hops=max_hops):
                return PropertyReport(False, f"no route {src} -> {dest}")
    return PropertyReport(True)


def is_minimal(algorithm: RoutingAlgorithm, *, max_hops: int | None = None) -> PropertyReport:
    """Every permitted path is a shortest path."""
    net = algorithm.network
    dist = net.shortest_distances()
    for src in net.nodes:
        for dest in net.nodes:
            if src == dest:
                continue
            for path in enumerate_paths(algorithm, src, dest, max_hops=max_hops):
                if len(path) != dist[src][dest]:
                    return PropertyReport(
                        False,
                        f"path {src}->{dest} has {len(path)} hops, distance is {dist[src][dest]}",
                        {"path": path},
                    )
    return PropertyReport(True)


def minimal_path_pair(algorithm: RoutingAlgorithm, src: int, dest: int, distance: int) -> PropertyReport:
    """One pair of :func:`provides_minimal_path` (``distance`` = hop distance)."""
    for path in enumerate_paths(algorithm, src, dest, max_hops=distance):
        if len(path) == distance:
            return PropertyReport(True)
    return PropertyReport(False, f"no minimal path permitted {src} -> {dest}")


def provides_minimal_path(algorithm: RoutingAlgorithm) -> PropertyReport:
    """Duato's side condition: some permitted path per pair is minimal.

    (Required by Duato's N&S condition even for nonminimal algorithms;
    *not* required by the CWG condition.)
    """
    net = algorithm.network
    dist = net.shortest_distances()
    for src in net.nodes:
        for dest in net.nodes:
            if src == dest:
                continue
            rep = minimal_path_pair(algorithm, src, dest, dist[src][dest])
            if not rep:
                return rep
    return PropertyReport(True)


def _path_is_permitted(algorithm: RoutingAlgorithm, src: int, dest: int, path: tuple[Channel, ...]) -> bool:
    """Does the relation permit following exactly ``path`` from src to dest?"""
    c_in = algorithm.network.injection_channel(src)
    node = src
    for c in path:
        if c not in algorithm.route(c_in, node, dest):
            return False
        c_in, node = c, c.dst
    return node == dest


def prefix_closed_pair(
    algorithm: RoutingAlgorithm, src: int, dest: int, *, max_hops: int | None = None
) -> PropertyReport:
    """Definition 5 restricted to the permitted paths of one ``(src, dest)`` pair."""
    for path in enumerate_paths(algorithm, src, dest, max_hops=max_hops):
        nodes = path_nodes(path, src)
        for cut in range(1, len(path)):
            mid = nodes[cut]
            if mid == src or mid == dest:
                continue
            # Prefix up to the *first* occurrence of mid, per Definition 5.
            first = nodes.index(mid)
            prefix = path[:first]
            if not _path_is_permitted(algorithm, src, mid, prefix):
                return PropertyReport(
                    False,
                    f"path {src}->{dest} via {mid}: prefix of {len(prefix)} hops not permitted "
                    f"when {mid} is the destination",
                    {"path": path, "prefix": prefix},
                )
    return PropertyReport(True)


def is_prefix_closed(algorithm: RoutingAlgorithm, *, max_hops: int | None = None) -> PropertyReport:
    """Definition 5: permitted path through n_x implies its prefix is permitted to n_x."""
    net = algorithm.network
    for src in net.nodes:
        for dest in net.nodes:
            if src == dest:
                continue
            rep = prefix_closed_pair(algorithm, src, dest, max_hops=max_hops)
            if not rep:
                return rep
    return PropertyReport(True)


def suffix_closed_pair(
    algorithm: RoutingAlgorithm, src: int, dest: int, *, max_hops: int | None = None
) -> PropertyReport:
    """Definition 6 restricted to the permitted paths of one ``(src, dest)`` pair."""
    for path in enumerate_paths(algorithm, src, dest, max_hops=max_hops):
        nodes = path_nodes(path, src)
        for cut in range(1, len(path)):
            mid = nodes[cut]
            if mid == dest:
                continue
            suffix = path[cut:]
            if not _path_is_permitted(algorithm, mid, dest, suffix):
                return PropertyReport(
                    False,
                    f"path {src}->{dest} via {mid}: suffix of {len(suffix)} hops not permitted "
                    f"when {mid} is the source",
                    {"path": path, "suffix": suffix},
                )
    return PropertyReport(True)


def is_suffix_closed(algorithm: RoutingAlgorithm, *, max_hops: int | None = None) -> PropertyReport:
    """Definition 6: permitted path through n_x implies its suffix is permitted from n_x."""
    net = algorithm.network
    for src in net.nodes:
        for dest in net.nodes:
            if src == dest:
                continue
            rep = suffix_closed_pair(algorithm, src, dest, max_hops=max_hops)
            if not rep:
                return rep
    return PropertyReport(True)


def revisit_free_pair(
    algorithm: RoutingAlgorithm, src: int, dest: int, *, max_hops: int
) -> PropertyReport:
    """One pair of :func:`never_revisits_node` (``max_hops`` already resolved)."""
    for path in enumerate_paths(algorithm, src, dest, max_hops=max_hops, simple=False):
        nodes = path_nodes(path, src)
        if len(set(nodes)) != len(nodes):
            return PropertyReport(False, f"path {src}->{dest} revisits a node", {"path": path})
    return PropertyReport(True)


def never_revisits_node(algorithm: RoutingAlgorithm, *, max_hops: int | None = None) -> PropertyReport:
    """No permitted path routes through the same node twice.

    Checked over non-simple enumeration bounded at ``max_hops`` (default:
    ``num_nodes + 1`` hops, enough to expose any revisit on a shortest
    witness).
    """
    net = algorithm.network
    bound = max_hops if max_hops is not None else net.num_nodes + 1
    for src in net.nodes:
        for dest in net.nodes:
            if src == dest:
                continue
            rep = revisit_free_pair(algorithm, src, dest, max_hops=bound)
            if not rep:
                return rep
    return PropertyReport(True)


def is_coherent(algorithm: RoutingAlgorithm, *, max_hops: int | None = None) -> PropertyReport:
    """Definition 7: prefix-closed, suffix-closed, and never revisits a node."""
    for check, label in (
        (is_prefix_closed, "prefix-closed"),
        (is_suffix_closed, "suffix-closed"),
        (never_revisits_node, "node-revisit-free"),
    ):
        rep = check(algorithm, max_hops=max_hops)
        if not rep:
            return PropertyReport(False, f"not {label}: {rep.counterexample}", rep.details)
    return PropertyReport(True)


def is_fully_adaptive(algorithm: RoutingAlgorithm) -> PropertyReport:
    """Every minimal *physical* path is permitted for every pair.

    "All fully adaptive routing algorithms allow a message to use any
    physical channel that is part of a shortest path" (Section 1); virtual
    channel restrictions on those physical channels are allowed.
    """
    net = algorithm.network
    dist = net.shortest_distances()
    for src in net.nodes:
        for dest in net.nodes:
            if src == dest:
                continue
            d = dist[src][dest]
            # Physical node sequences of permitted minimal paths.
            permitted = {
                tuple(path_nodes(p, src))
                for p in enumerate_paths(algorithm, src, dest, max_hops=d)
                if len(p) == d
            }
            # All minimal physical node sequences in the network.
            all_min = _minimal_node_paths(net, src, dest, d, dist)
            missing = all_min - permitted
            if missing:
                return PropertyReport(
                    False,
                    f"{src}->{dest}: {len(missing)} of {len(all_min)} minimal physical paths prohibited",
                    {"missing": sorted(missing)[:4]},
                )
    return PropertyReport(True)


def _minimal_node_paths(net, src: int, dest: int, d: int, dist) -> set[tuple[int, ...]]:
    """All shortest node sequences src..dest in the underlying graph."""
    out: set[tuple[int, ...]] = set()

    def dfs(node: int, acc: list[int]) -> None:
        if node == dest:
            out.add(tuple(acc))
            return
        for nbr in net.neighbors_out(node):
            if dist[nbr][dest] == dist[node][dest] - 1:
                acc.append(nbr)
                dfs(nbr, acc)
                acc.pop()

    dfs(src, [src])
    return out
