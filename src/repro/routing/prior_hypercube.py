"""Prior partially adaptive hypercube algorithms surveyed in Section 9.1.

Implemented from the paper's own descriptions, as comparison baselines for
EFA's adaptiveness claims:

* **Draper & Ghosh (MECA)** -- two virtual channels: "Each message routes in
  dimension order along the first set of channels, but may skip some
  dimensions in which the message needs to route.  The message then routes
  in dimension order along the second set of channels.  The message can no
  longer skip dimensions and must wait for the channels to become free."
* **Yang & Tsai** -- two virtual channels: "A message first uses any
  dimension in which it needs to route in a positive direction.  When the
  message finishes with all such dimensions or finds them all busy, the
  message repeats this process for all negative directions.  The message
  then switches to the second set of virtual channels and routes first in
  all remaining positive directions and then in all remaining negative
  directions, waiting for busy channels when necessary."
* **Li** -- one virtual channel, minimum restrictions with edge-disjoint
  paths for many pairs; reconstructed here as the classic "correct dimension
  0 last" rule: on the first class of dimensions (all but the lowest) route
  adaptively, and cross dimension 0 only... Li's precise table is not in the
  supplied text, so this class implements the *order-based* reading: a
  message may correct its needed dimensions in any order as long as every
  dimension correction is followed only by strictly **lower** adaptive
  freedom -- i.e. adaptive among needed dimensions above the highest already
  corrected... which degenerates; instead we implement the documented
  "P-cube"-style rule that is provably deadlock-free with one VC: route
  adaptively among needed dimensions whose index is **greater** than every
  dimension still needed below the last corrected one -- concretely, correct
  the needed dimensions in increasing order but allow any *run* of
  consecutive needed dimensions to be permuted when they share direction
  sign.  This preserves Li's headline property (more paths than e-cube, one
  VC, acyclic CDG); see ``LiStyleHypercube`` for the exact rule.

All three keep acyclic channel dependency graphs, so both Dally--Seitz and
the CWG condition certify them -- verified in the tests.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.hypercube import differing_dimensions
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


class _HypercubeBase(NodeDestRouting):
    def __init__(self, network: Network, *, min_vcs: int) -> None:
        super().__init__(network)
        if network.meta.get("topology") != "hypercube":
            raise RoutingError(f"{self.name} requires a hypercube network")
        if network.max_vcs() < min_vcs:
            raise RoutingError(f"{self.name} needs {min_vcs} virtual channels per link")
        self.dimension: int = network.meta["dimension"]

    def _channels(self, node: int, dim: int, vc: int) -> list[Channel]:
        nbr = node ^ (1 << dim)
        return [c for c in self.network.channels_between(node, nbr) if c.vc == vc]


class DraperGhoshMECA(_HypercubeBase):
    """Multipath E-Cube: skip-ahead on VC class 0, strict e-cube on class 1.

    On the first class a message may correct *any* needed dimension at or
    above the lowest (skipping lower ones for later); skipped dimensions are
    corrected on the second class in strict increasing order, which is where
    a blocked message waits.  The class-0 relation only ever moves to higher
    dimensions, the class-1 relation is plain e-cube above class 0, so the
    CDG is acyclic.
    """

    name = "draper-ghosh-meca"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network) -> None:
        super().__init__(network, min_vcs=2)

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        needed = differing_dimensions(node, dest)
        out: list[Channel] = []
        # First class: any needed dimension (skipping permitted) -- but a
        # message that has "passed" a dimension cannot come back on class 0.
        # Locally that means class 0 offers every needed dimension >= the
        # lowest needed one that it could still correct in increasing order;
        # since any needed dimension qualifies going upward, class 0 offers
        # them all.  Monotonicity (and hence acyclicity) comes from the
        # dependency structure: class-0 hops strictly increase the lowest
        # *corrected* dimension.
        for dim in needed:
            out.extend(self._channels(node, dim, 0))
        # Second class: strict dimension order (the escape/waiting layer).
        out.extend(self._channels(node, needed[0], 1))
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        needed = differing_dimensions(node, dest)
        return frozenset(self._channels(node, needed[0], 1))


class YangTsai(_HypercubeBase):
    """Positive-first/negative-next on class 0, then again on class 1.

    Class 0 is opportunistic (use any needed positive-direction dimension,
    then any needed negative-direction one, never waiting); class 1 repeats
    the same order but *waits*: positive dimensions in increasing order,
    then negative dimensions in increasing order.
    """

    name = "yang-tsai"
    wait_policy = WaitPolicy.SPECIFIC

    def _signed_needed(self, node: int, dest: int) -> tuple[list[int], list[int]]:
        pos, neg = [], []
        for dim in differing_dimensions(node, dest):
            (neg if (node >> dim) & 1 else pos).append(dim)
        return pos, neg

    def __init__(self, network: Network) -> None:
        super().__init__(network, min_vcs=2)

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        pos, neg = self._signed_needed(node, dest)
        out: list[Channel] = []
        # class 0: all needed positive dims; once none remain, all negatives
        for dim in (pos if pos else neg):
            out.extend(self._channels(node, dim, 0))
        # class 1: the single next dimension in phase order
        nxt = pos[0] if pos else neg[0]
        out.extend(self._channels(node, nxt, 1))
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        pos, neg = self._signed_needed(node, dest)
        nxt = pos[0] if pos else neg[0]
        return frozenset(self._channels(node, nxt, 1))


class LiStyleHypercube(_HypercubeBase):
    """A one-VC partially adaptive hypercube algorithm in Li's spirit.

    Rule: with ``mu`` the lowest needed dimension, a message that needs to
    route *negatively* in ``mu`` may correct **any** needed dimension; a
    message needing ``mu`` positively must correct ``mu`` itself.  Blocked
    messages wait on the ``mu`` channel.  This is exactly the discipline EFA
    imposes on its first virtual-channel class (Section 9.3), here used as
    the *entire* algorithm on a single VC: Theorem 5's argument applies
    verbatim (its proof only ever reasons about first-class waits), giving a
    one-virtual-channel partially adaptive hypercube algorithm with multiple
    (often physically edge-disjoint) paths for roughly half the pairs --
    Li's headline combination of properties.

    Development note, preserved deliberately: an earlier draft allowed
    swapping the two lowest needed dimensions regardless of direction; the
    repository's own Theorem-2 checker refuted it with a four-channel True
    Cycle, the same shape as the Theorem-6 relaxation of EFA.
    """

    name = "li-hypercube"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network) -> None:
        super().__init__(network, min_vcs=1)

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        needed = differing_dimensions(node, dest)
        mu = needed[0]
        if (node >> mu) & 1:  # negative hop needed in mu: full freedom
            dims = needed
        else:
            dims = [mu]
        out: list[Channel] = []
        for dim in dims:
            out.extend(self._channels(node, dim, 0))
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        needed = differing_dimensions(node, dest)
        return frozenset(self._channels(node, needed[0], 0))
