"""The Section 7.1 / Figure 4 ring routing algorithm: a False Resource Cycle
under minimal routing.

The paper routes a ten-node clockwise ring (1D torus) with four virtual
channels per link -- two *classes* selected by destination parity, each with
two *levels* toggled whenever a wrap-around channel is used -- plus a fifth
channel ``cA`` on the link ``n8 -> n9`` that any message crossing that link
may use.  After using ``cA`` a message continues on the *level-2* channel of
the class **opposite** its destination parity ("the message routes either on
c_X2 if the destination is an odd-numbered node, or on c_Y2 if the
destination is an even-numbered node"), and the usual wrap toggle then drops
it back to level 1 past the dateline.

The consequence (Section 7.1): the only CWG cycles are chains that cross the
dateline *twice*, once per class, and **each crossing edge's witness message
must route through ``cA``** -- so any deadlock configuration would need two
messages occupying ``cA`` simultaneously.  Every cycle is therefore a False
Resource Cycle and Theorem 2 gives deadlock freedom, even though the CWG is
cyclic (a checker demanding an acyclic CWG wrongly rejects the algorithm).

Reconstruction note: the scanned text's virtual-channel subscripts are
corrupted, so the class/level naming here is a reconstruction; it satisfies
every legible constraint of Section 7.1 (four VCs + ``cA``, parity classes,
"stays on its channel until a wrap-around channel is used, then switches
``i -> (i+1) mod 2``", the post-``cA`` reassignment quoted above) and
reproduces the claimed behaviour exactly: all CWG cycles require ``cA``
twice.  Setting ``flip_class=False`` (post-``cA`` messages keep their own
class) yields a *single*-witness crossing -- a True Cycle -- and a provably
deadlock-prone algorithm; the benchmarks use it as the contrast case.

VC index layout on every link: 0 = even-class level 1, 1 = even level 2,
2 = odd level 1, 3 = odd level 2; ``cA`` is VC 4 on the extra link.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import RoutingAlgorithm, RoutingError, WaitPolicy


def _vc_index(even_class: bool, level: int) -> int:
    """Map (class, level) to the VC index layout documented above."""
    return (0 if even_class else 2) + (level - 1)


class RingExample(RoutingAlgorithm):
    """The Figure-4 ring routing algorithm (form ``R(c_in, n, d)``).

    Parameters
    ----------
    flip_class:
        ``True`` (the paper's algorithm): after ``cA``, continue on level 2
        of the class *opposite* the destination parity.  ``False``: keep the
        destination-parity class -- the deadlock-prone strawman whose CWG
        contains a True Cycle.
    """

    name = "ring-figure4"
    form = "CND"
    wait_policy = WaitPolicy.SPECIFIC

    def __init__(self, network: Network, *, flip_class: bool = True) -> None:
        super().__init__(network)
        if network.meta.get("topology") != "figure4":
            raise RoutingError(f"{self.name} requires the Figure-4 ring network")
        self.size: int = network.meta["dims"][0]
        self.extra_link: tuple[int, int] = tuple(network.meta["extra_link"])  # type: ignore[assignment]
        self.flip_class = flip_class
        self.cA = network.channel_by_label("cA")
        if not flip_class:
            self.name = "ring-figure4-noflip"

    # ------------------------------------------------------------------
    def _class_level(self, c_in: Channel, dest: int) -> tuple[bool, int]:
        """(even_class, level) for the *next* hop given the input channel."""
        if not c_in.is_link:
            # Fresh injection: class by destination parity, level 1.
            return (dest % 2 == 0, 1)
        if c_in == self.cA:
            # Post-cA reassignment: level 2 of the crossed (or kept) class.
            even = (dest % 2 == 1) if self.flip_class else (dest % 2 == 0)
            return (even, 2)
        even = c_in.vc < 2
        level = 1 + (c_in.vc % 2)
        if c_in.meta.get("wrap"):
            level = 1 if level == 2 else 2  # toggle i -> (i+1) mod 2
        return (even, level)

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        even, level = self._class_level(c_in, dest)
        nxt = (node + 1) % self.size
        vc = _vc_index(even, level)
        out = [c for c in self.network.channels_between(node, nxt) if c.vc == vc]
        if not out:
            raise RoutingError(f"{self.name}: missing vc {vc} on link {node}->{nxt}")
        if (node, nxt) == self.extra_link:
            out.append(self.cA)
        return frozenset(out)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        """The class/level channel only -- never ``cA``.

        A message at node 8 may *use* ``cA`` when it happens to be free but
        always *waits* on its regular virtual channel: the use-vs-wait
        distinction Section 5 introduces as the whole motivation for the
        CWG.  (If ``cA`` were a waiting channel, the even-class level-1
        chain could close a lap through a single ``cA`` journey and the
        algorithm would genuinely deadlock.)
        """
        permitted = self.route(c_in, node, dest)
        regular = frozenset(c for c in permitted if c != self.cA)
        return regular or permitted
