"""Turn-model partially adaptive mesh routing (Glass & Ni).

The turn model breaks every abstract cycle of turns by prohibiting a quarter
of them, giving partially adaptive routing with no virtual channels and an
acyclic channel dependency graph.  The paper's Section 9.2 positions its
Highest Positive Last algorithm against these: negative-first prohibits
``n(n-1)`` 180-degree-free turns absolutely, whereas HPL's restrictions are
conditional.  We implement the three classic 2D variants plus the
n-dimensional negative-first the paper compares against.

All algorithms here are minimal (the optional misrouting extensions of the
originals are not needed for any experiment and would only loosen the
comparisons); all have Duato's ``R(n, d)`` form and are coherent.
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


class _MeshTurnBase(NodeDestRouting):
    wait_policy = WaitPolicy.ANY

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        if network.meta.get("topology") not in ("mesh", "hypercube"):
            raise RoutingError(f"{self.name} requires a mesh network")
        self.ndims = len(network.meta["dims"])

    def _deltas(self, node: int, dest: int) -> list[int]:
        here = self.network.coord(node)
        there = self.network.coord(dest)
        return [t - h for h, t in zip(here, there)]

    def _channels(self, node: int, dim: int, sign: int) -> list[Channel]:
        return [
            c
            for c in self.network.out_channels(node)
            if c.meta.get("dim") == dim and c.meta.get("sign") == sign
        ]


class NegativeFirst(_MeshTurnBase):
    """Negative-first on an n-D mesh: all negative hops before any positive hop.

    At each node the message routes adaptively among the dimensions still
    needing a negative hop; only when none remain may it use positive
    channels (again adaptively).  Prohibits every positive-to-negative turn.
    """

    name = "negative-first"

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        deltas = self._deltas(node, dest)
        out: list[Channel] = []
        negs = [d for d, delta in enumerate(deltas) if delta < 0]
        if negs:
            for dim in negs:
                out.extend(self._channels(node, dim, -1))
        else:
            for dim, delta in enumerate(deltas):
                if delta > 0:
                    out.extend(self._channels(node, dim, +1))
        return frozenset(out)


class WestFirst(_MeshTurnBase):
    """West-first on a 2D mesh: all -x hops first, then adaptive among the rest."""

    name = "west-first"

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        if self.ndims != 2:
            raise RoutingError(f"{self.name} is defined for 2D meshes")

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        dx, dy = self._deltas(node, dest)
        out: list[Channel] = []
        if dx < 0:
            out.extend(self._channels(node, 0, -1))
        else:
            if dx > 0:
                out.extend(self._channels(node, 0, +1))
            if dy != 0:
                out.extend(self._channels(node, 1, +1 if dy > 0 else -1))
        return frozenset(out)


class NorthLast(_MeshTurnBase):
    """North-last on a 2D mesh: +y hops only once nothing else remains.

    Section 9.2 notes HPL restricted to 2D "is similar to north-last ...
    although our routing algorithm permits messages to make more 180-degree
    turns"; this is the comparison baseline.
    """

    name = "north-last"

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        if self.ndims != 2:
            raise RoutingError(f"{self.name} is defined for 2D meshes")

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        dx, dy = self._deltas(node, dest)
        out: list[Channel] = []
        if dx != 0:
            out.extend(self._channels(node, 0, +1 if dx > 0 else -1))
        if dy < 0:
            out.extend(self._channels(node, 1, -1))
        if dy > 0 and dx == 0:
            out.extend(self._channels(node, 1, +1))
        return frozenset(out)
