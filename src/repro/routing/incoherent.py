"""Duato's incoherent example routing algorithm (Figures 1-3, Sections 5-8).

The running example of the paper: minimal routing on the Figure-1 four-node
line, except that a message **destined for n0** may, at node ``n1``, detour
rightward over the extra channel ``cA1`` (and may do so repeatedly), and may
return leftward from ``n2`` over either ``cL2`` or the extra channel ``cB2``.
``cL1``, ``cA1`` and ``cB2`` are thus usable only by dest-``n0`` messages.

The algorithm is incoherent -- a message from ``n1`` to ``n0`` may route
through ``n2`` via ``cA1``, but a message from ``n1`` to ``n2`` may not use
``cA1`` -- so Duato's proof technique cannot touch it.  Its channel waiting
graph contains both True Cycles and a False Resource Cycle (two messages
would have to occupy ``cA1`` simultaneously), and the paper uses it to show:

* waiting on a *specific* channel deadlocks (Theorem 2: True Cycles exist);
* waiting on *any* permitted channel is deadlock-free (Theorem 3: the
  Section-8 reduction finds a wait-connected CWG' with no True Cycles).
"""

from __future__ import annotations

from ..topology.channel import Channel
from ..topology.network import Network
from .relation import NodeDestRouting, RoutingError, WaitPolicy


class IncoherentExample(NodeDestRouting):
    """The Figure-1 incoherent routing algorithm.

    Parameters
    ----------
    wait_any:
        ``True`` (default) -- the Theorem-3 regime under which the paper
        proves the algorithm deadlock-free.  ``False`` models the Theorem-2
        regime (a blocked message commits to one waiting channel), under
        which the paper shows a reachable deadlock exists.
    detour:
        Permit the ``cA1`` detour (the whole point of the example); switch
        off to recover plain minimal routing on the line for baselines.
    """

    name = "incoherent-example"

    def __init__(self, network: Network, *, wait_any: bool = True, detour: bool = True) -> None:
        super().__init__(network)
        if network.meta.get("topology") != "figure1":
            raise RoutingError(f"{self.name} requires the Figure-1 network")
        self.wait_policy = WaitPolicy.ANY if wait_any else WaitPolicy.SPECIFIC
        self.detour = detour
        by = network.channel_by_label
        self.cH = (by("cH0"), by("cH1"), by("cH2"))
        self.cL = (None, by("cL1"), by("cL2"), by("cL3"))
        self.cA1 = by("cA1")
        self.cB2 = by("cB2")

    def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        out: list[Channel] = []
        if dest > node:
            out.append(self.cH[node])
        else:
            out.append(self.cL[node])
            if dest == 0:
                if node == 1 and self.detour:
                    out.append(self.cA1)
                elif node == 2:
                    out.append(self.cB2)
        return frozenset(out)
