"""Path enumeration under a routing relation.

These helpers materialize the set ``R(src, dest)`` of Definition 4 -- every
path a routing algorithm permits between a pair of nodes -- by depth-first
search over routing states ``(input channel, node)``.  They power the
coherence/minimality property checkers, the degree-of-adaptiveness
cross-checks, and the False-Resource-Cycle witness search.

Nonminimal algorithms can permit unboundedly long (even cyclic) paths, so
every enumerator takes a ``max_hops`` bound; ``simple=True`` additionally
forbids revisiting a node, which matches the paths a *coherent* algorithm
may use (Definition 7) and is the right setting for counting.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..topology.channel import Channel
from .relation import RoutingAlgorithm


def enumerate_paths(
    algorithm: RoutingAlgorithm,
    src: int,
    dest: int,
    *,
    max_hops: int | None = None,
    simple: bool = True,
    limit: int | None = None,
) -> Iterator[tuple[Channel, ...]]:
    """Yield every permitted channel path from ``src`` to ``dest``.

    Paths are tuples of link channels in traversal order.  ``max_hops``
    defaults to ``num_nodes`` for simple paths and must be given explicitly
    otherwise (non-simple enumeration without a bound would not terminate
    for nonminimal relations).  ``limit`` caps the number of paths yielded.
    """
    if src == dest:
        yield ()
        return
    net = algorithm.network
    if max_hops is None:
        if not simple:
            raise ValueError("non-simple enumeration requires an explicit max_hops")
        max_hops = net.num_nodes
    count = 0
    stack: list[Channel] = []
    visited = {src}

    def dfs(c_in: Channel, node: int) -> Iterator[tuple[Channel, ...]]:
        nonlocal count
        if node == dest:
            yield tuple(stack)
            count += 1
            return
        if len(stack) >= max_hops:
            return
        for c in sorted(algorithm.route(c_in, node, dest), key=lambda ch: ch.cid):
            if simple and c.dst in visited:
                continue
            stack.append(c)
            if simple:
                visited.add(c.dst)
            yield from dfs(c, c.dst)
            stack.pop()
            if simple:
                visited.discard(c.dst)
            if limit is not None and count >= limit:
                return

    yield from dfs(net.injection_channel(src), src)


def count_paths(
    algorithm: RoutingAlgorithm,
    src: int,
    dest: int,
    *,
    max_hops: int | None = None,
    simple: bool = True,
) -> int:
    """Number of permitted paths from ``src`` to ``dest`` (see enumerate_paths)."""
    return sum(1 for _ in enumerate_paths(algorithm, src, dest, max_hops=max_hops, simple=simple))


def count_minimal_paths(algorithm: RoutingAlgorithm, src: int, dest: int, distance: int) -> int:
    """Number of permitted paths of exactly ``distance`` hops (shortest paths)."""
    return sum(
        1
        for p in enumerate_paths(algorithm, src, dest, max_hops=distance, simple=True)
        if len(p) == distance
    )


def has_route(algorithm: RoutingAlgorithm, src: int, dest: int, *, max_hops: int | None = None) -> bool:
    """True if the relation permits at least one path from ``src`` to ``dest``."""
    for _ in enumerate_paths(algorithm, src, dest, max_hops=max_hops, simple=True, limit=1):
        return True
    return False


def path_nodes(path: tuple[Channel, ...], src: int) -> list[int]:
    """Node sequence visited by a channel path starting at ``src``."""
    nodes = [src]
    for c in path:
        if c.src != nodes[-1]:
            raise ValueError(f"discontinuous path at {c!r} (expected src {nodes[-1]})")
        nodes.append(c.dst)
    return nodes
