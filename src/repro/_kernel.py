"""Backend gate for the vectorized (NumPy) kernels.

Two hot paths in this repository exist in two semantically identical
implementations: a pure-Python reference (the code every proof of
behavior-preservation is written against) and a vectorized NumPy kernel.
This module is the single switch deciding which one runs:

* ``REPRO_NO_NUMPY=1`` forces the pure path everywhere -- the escape hatch
  CI uses to prove the reference implementation still carries the whole
  test suite, and the fallback on machines without NumPy (the ``fast``
  extra pins NumPy; the base install does not need it for correctness);
* ``REPRO_BACKEND=pure|numpy`` pins the backend explicitly;
* otherwise :func:`backend` resolves to ``numpy`` whenever NumPy imports --
  but note both current consumers deliberately do NOT use that default:
  the simulator and the checker's edge collection each default to their
  pure loops because measurement favors them (see EXPERIMENTS.md), and
  consult only :func:`forced_backend` (plus, for the simulator, the
  ``REPRO_SIM_NUMPY_MIN_CHANNELS`` auto-floor) to opt into the kernels.

Both backends are pinned byte-identical by the golden-digest matrix, the
verdict matrices, and the dedicated parity suite
(``tests/test_backend_parity.py``); a divergence is a bug in the
vectorized kernel, never a tolerated drift.

The environment is re-read on every :func:`backend` call (it is two dict
lookups) so tests can flip backends with ``monkeypatch.setenv`` without
reloading modules.  Code that wants a per-object override (e.g.
``SimConfig.backend``) passes it via ``override``.
"""

from __future__ import annotations

import os

try:  # NumPy is an optional accelerator, never a correctness requirement
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY in CI
    _np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "backend", "forced_backend", "use_numpy"]


def forced_backend() -> str | None:
    """The backend the *environment* pins, or ``None`` when it is free.

    Size-aware callers (the simulator) use this to distinguish "the user
    demanded a backend" from "pick whatever is fastest here".
    """
    if os.environ.get("REPRO_NO_NUMPY") == "1":
        return "pure"
    forced = os.environ.get("REPRO_BACKEND")
    if forced is not None and forced not in ("numpy", "pure"):
        raise ValueError(f"unknown kernel backend {forced!r}")
    return forced


def backend(override: str | None = None) -> str:
    """Resolve the active kernel backend: ``"numpy"`` or ``"pure"``.

    Resolution order: ``override`` argument, ``REPRO_NO_NUMPY``,
    ``REPRO_BACKEND``, then ``numpy`` iff importable.
    """
    if override is None:
        if os.environ.get("REPRO_NO_NUMPY") == "1":
            return "pure"
        override = os.environ.get("REPRO_BACKEND")
    if override is not None:
        if override not in ("numpy", "pure"):
            raise ValueError(f"unknown kernel backend {override!r}")
        if override == "numpy" and not HAVE_NUMPY:
            raise RuntimeError("backend 'numpy' requested but numpy is not importable")
        return override
    return "numpy" if HAVE_NUMPY else "pure"


def use_numpy(override: str | None = None) -> bool:
    """True when the resolved backend is the NumPy kernel."""
    return backend(override) == "numpy"
