"""Static analysis for (network, routing relation) pairs.

``repro.analyze`` diagnoses routing relations *without* running the cycle
search: precondition rules (wait-connectivity, coherence, deliverability),
hygiene rules (dead channels, unreachable table entries, asymmetric links,
self-waits), and theorem-aware triage screens that decide many instances
outright -- ``definitely-free`` via a Dally--Seitz ordering certificate or
sink-channel elimination, ``definitely-deadlocking`` via wait-connectivity
failure or a forced cycle on the SCC condensation -- falling back to
``needs-full-check`` for the theorem checker.

Entry points: :func:`analyze` per target, ``python -m repro lint`` for the
catalog / case files / corpus directories, and :func:`triage` for the
pipeline pre-filter and the fuzz oracle.
"""

from .analyzer import AnalysisReport, TargetReport, analyze
from .baseline import apply_baseline, load_baseline, write_baseline
from .diagnostics import Diagnostic, Location, Severity, sort_diagnostics
from .render import RENDERERS, render_json, render_sarif, render_text, sarif_payload
from .rules import REGISTRY, AnalysisContext, Rule, RuleConfig, all_rules, run_rules
from .screens import (
    DEFINITELY_DEADLOCKING,
    DEFINITELY_FREE,
    NEEDS_FULL_CHECK,
    ScreenResult,
    TriageResult,
    triage,
    triage_verdict,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "DEFINITELY_DEADLOCKING",
    "DEFINITELY_FREE",
    "Diagnostic",
    "Location",
    "NEEDS_FULL_CHECK",
    "REGISTRY",
    "RENDERERS",
    "Rule",
    "RuleConfig",
    "ScreenResult",
    "Severity",
    "TargetReport",
    "TriageResult",
    "all_rules",
    "analyze",
    "apply_baseline",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_rules",
    "sarif_payload",
    "sort_diagnostics",
    "triage",
    "triage_verdict",
    "write_baseline",
]
