"""Baseline suppression: accept today's findings, fail only on new ones.

A baseline is a committed JSON file mapping diagnostic fingerprints (see
:meth:`~repro.analyze.diagnostics.Diagnostic.fingerprint` -- target + rule
+ location, message excluded) to a human-readable summary.  ``python -m
repro lint --baseline FILE`` drops any finding whose fingerprint is in the
file, so CI can enforce "zero diagnostics outside the baseline" while the
catalog legitimately trips e.g. the asymmetric-link rule on the paper's
unidirectional rings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .analyzer import AnalysisReport

FORMAT = 1


def load_baseline(path: Path) -> dict[str, str]:
    """Read ``{fingerprint: summary}`` suppressions from ``path``."""
    doc = json.loads(path.read_text())
    if doc.get("format") != FORMAT:
        raise ValueError(
            f"{path}: unsupported baseline format {doc.get('format')!r} "
            f"(expected {FORMAT})"
        )
    sup = doc.get("suppressions", {})
    if not isinstance(sup, dict):
        raise ValueError(f"{path}: 'suppressions' must be an object")
    return {str(k): str(v) for k, v in sup.items()}


def baseline_payload(report: AnalysisReport) -> dict[str, Any]:
    """Build a baseline document suppressing every current finding."""
    suppressions = {
        d.fingerprint(): f"{d.target}: {d.rule} at {d.location.describe()}"
        for t in report.targets
        for d in t.diagnostics
    }
    return {
        "format": FORMAT,
        "suppressions": dict(sorted(suppressions.items())),
    }


def write_baseline(report: AnalysisReport, path: Path) -> int:
    """Write a baseline for ``report``; returns the suppression count."""
    payload = baseline_payload(report)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(payload["suppressions"])


def apply_baseline(report: AnalysisReport, suppressions: dict[str, str]) -> AnalysisReport:
    """Drop suppressed diagnostics in place; records per-target counts."""
    for t in report.targets:
        kept = [d for d in t.diagnostics if d.fingerprint() not in suppressions]
        dropped = len(t.diagnostics) - len(kept)
        if dropped:
            report.suppressed[t.target] = report.suppressed.get(t.target, 0) + dropped
        t.diagnostics = kept
    return report
