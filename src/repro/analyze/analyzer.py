"""Per-target orchestration: run the rule pack + triage over one relation.

:func:`analyze` is the library entry point the CLI, the pipeline, and the
tests share: build an :class:`~repro.analyze.rules.AnalysisContext`, run
the enabled rules, run triage, and fold it into a :class:`TargetReport`.
:class:`AnalysisReport` aggregates targets (a catalog sweep, a corpus
directory) and is what the renderers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.cwg import ChannelWaitingGraph
from ..core.transitions import TransitionCache
from ..deps.cdg import ChannelDependencyGraph
from ..routing.relation import RoutingAlgorithm
from .diagnostics import Diagnostic, Severity, sort_diagnostics
from .rules import AnalysisContext, RuleConfig, run_rules
from .screens import TriageResult


@dataclass
class TargetReport:
    """Everything the analyzer found about one (network, relation) pair."""

    target: str
    network: str
    wait_policy: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    triage: TriageResult | None = None
    #: analysis crashed; the target's diagnostics are incomplete
    error: str = ""

    @property
    def max_severity(self) -> Severity | None:
        return max((d.severity for d in self.diagnostics), default=None)

    def to_json(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "network": self.network,
            "wait_policy": self.wait_policy,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "triage": self.triage.to_json() if self.triage else None,
            "error": self.error,
        }


@dataclass
class AnalysisReport:
    """An ordered collection of target reports plus run-level counters."""

    targets: list[TargetReport] = field(default_factory=list)
    #: diagnostics suppressed by the baseline, per target
    suppressed: dict[str, int] = field(default_factory=dict)

    def add(self, report: TargetReport) -> None:
        self.targets.append(report)

    def finalize(self) -> "AnalysisReport":
        """Canonical order: targets by name, diagnostics already sorted."""
        self.targets.sort(key=lambda t: t.target)
        return self

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return sort_diagnostics(
            [d for t in self.targets for d in t.diagnostics]
        )

    def count(self, severity: Severity) -> int:
        return sum(
            1
            for t in self.targets
            for d in t.diagnostics
            if d.severity is severity
        )

    @property
    def max_severity(self) -> Severity | None:
        return max(
            (d.severity for t in self.targets for d in t.diagnostics),
            default=None,
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "targets": [t.to_json() for t in self.targets],
            "suppressed": dict(sorted(self.suppressed.items())),
            "summary": {
                "targets": len(self.targets),
                "errors": self.count(Severity.ERROR),
                "warnings": self.count(Severity.WARNING),
                "infos": self.count(Severity.INFO),
                "analysis_failures": sum(1 for t in self.targets if t.error),
            },
        }


def analyze(
    algorithm: RoutingAlgorithm,
    *,
    config: RuleConfig | None = None,
    transitions: TransitionCache | None = None,
    cwg: ChannelWaitingGraph | None = None,
    cdg: ChannelDependencyGraph | None = None,
    target: str = "",
) -> TargetReport:
    """Run the full rule pack + triage on one relation.

    Pre-built graphs may be injected (the pipeline shares its cached CWG);
    otherwise they are built lazily -- rules that never touch the CWG never
    pay for it.
    """
    name = target or algorithm.name
    report = TargetReport(
        target=name,
        network=algorithm.network.name,
        wait_policy=algorithm.wait_policy.value,
    )
    ctx = AnalysisContext(algorithm, transitions=transitions, cwg=cwg, cdg=cdg)
    try:
        diagnostics = run_rules(ctx, config)
        report.triage = ctx.triage
    except Exception as exc:  # a crashing rule must not sink the whole run
        report.error = f"{type(exc).__name__}: {exc}"
        return report
    report.diagnostics = sort_diagnostics(
        [d.with_target(name) if d.target != name else d for d in diagnostics]
    )
    return report
