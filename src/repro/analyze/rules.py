"""The rule registry and the initial rule pack.

Rules are small pure functions over an :class:`AnalysisContext` (which
lazily builds and shares the transition cache, CWG, CDG, and triage), each
registered with an id, a default severity, and the paper clause it
encodes.  :class:`RuleConfig` turns rules off or overrides their severity
per run; the CLI and the baseline layer sit on top of that.

Rule pack
---------

========  ========================  ========  ===================================
id        name                      severity  paper clause
========  ========================  ========  ===================================
RR001     not-wait-connected        error     Definition 10 (theorem precondition)
RR002     incoherent-relation       warning   Definitions 5--7 (Duato hypotheses;
                                              *not* required by the CWG theorems)
RR003     unreachable-pair          error     Definitions 1--2 (the relation must
                                              deliver every source/dest pair)
RH101     dead-channel              info      Definition 2 reachability (hardware
                                              no message can ever occupy)
RH102     unreachable-table-entry   info      table entries at routing states no
                                              message reaches (dead relation rows)
RH103     asymmetric-physical-link  info      Definition 1 (one-way adjacencies;
                                              legal, but often an omission)
RH104     self-waiting-channel      warning   Definition 9 (a length-1 CWG cycle;
                                              Section 7.2 decides if it is True)
RT201     forced-deadlock-cycle     error     Theorem 2/3 necessity via the
                                              scc-condensation triage screen
========  ========================  ========  ===================================
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

from ..core.cwg import ChannelWaitingGraph, wait_connected
from ..core.depgraph import bits
from ..core.transitions import TransitionCache
from ..deps.cdg import ChannelDependencyGraph
from ..routing.relation import RoutingAlgorithm
from .diagnostics import Diagnostic, Location, Severity, sort_diagnostics
from .screens import TriageResult, triage


class AnalysisContext:
    """Shared lazily-built state all rules read from.

    One context per analysis target; graphs are built at most once and may
    be injected by callers that already have them (the pipeline does).
    """

    def __init__(
        self,
        algorithm: RoutingAlgorithm,
        *,
        transitions: TransitionCache | None = None,
        cwg: ChannelWaitingGraph | None = None,
        cdg: ChannelDependencyGraph | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.network = algorithm.network
        self.transitions = transitions or (
            cwg.transitions if cwg is not None else TransitionCache(algorithm)
        )
        self._cwg = cwg
        self._cdg = cdg
        self._wait_connectivity: tuple[bool, str] | None = None
        self._triage: TriageResult | None = None

    @property
    def cwg(self) -> ChannelWaitingGraph:
        if self._cwg is None:
            self._cwg = ChannelWaitingGraph(self.algorithm, transitions=self.transitions)
        return self._cwg

    @property
    def cdg(self) -> ChannelDependencyGraph:
        if self._cdg is None:
            self._cdg = ChannelDependencyGraph(self.algorithm, transitions=self.transitions)
        return self._cdg

    @property
    def wait_connectivity(self) -> tuple[bool, str]:
        if self._wait_connectivity is None:
            self._wait_connectivity = wait_connected(
                self.algorithm, transitions=self.transitions
            )
        return self._wait_connectivity

    @property
    def triage(self) -> TriageResult:
        if self._triage is None:
            self._triage = triage(
                self.algorithm,
                transitions=self.transitions,
                cwg=self._cwg,
                cdg=self._cdg,
                cwg_builder=lambda: self.cwg,
            )
        return self._triage


RuleCheck = Callable[[AnalysisContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: identity, default severity, paper clause, check."""

    id: str
    name: str
    severity: Severity
    summary: str
    clause: str
    check: RuleCheck

    def help_text(self) -> str:
        return f"{self.summary} [{self.clause}]"


REGISTRY: dict[str, Rule] = {}


def rule(id: str, name: str, severity: Severity, summary: str, clause: str):
    """Register a rule check function under ``id``."""

    def register(fn: RuleCheck) -> RuleCheck:
        if id in REGISTRY:
            raise ValueError(f"duplicate rule id {id!r}")
        REGISTRY[id] = Rule(id, name, severity, summary, clause, fn)
        return fn

    return register


def resolve_rule(token: str) -> Rule:
    """Look a rule up by id (``RR001``) or name (``not-wait-connected``)."""
    t = token.strip()
    if t.upper() in REGISTRY:
        return REGISTRY[t.upper()]
    for r in REGISTRY.values():
        if r.name == t:
            return r
    raise ValueError(f"unknown rule {token!r}; have {sorted(REGISTRY)}")


@dataclass
class RuleConfig:
    """Per-run rule selection and severity overrides."""

    disabled: frozenset[str] = frozenset()
    #: when nonempty, only these rule ids run
    selected: frozenset[str] = frozenset()
    severities: dict[str, Severity] = field(default_factory=dict)

    @classmethod
    def from_tokens(
        cls,
        *,
        disable: Iterable[str] = (),
        select: Iterable[str] = (),
        severities: dict[str, str] | None = None,
    ) -> "RuleConfig":
        return cls(
            disabled=frozenset(resolve_rule(t).id for t in disable),
            selected=frozenset(resolve_rule(t).id for t in select),
            severities={
                resolve_rule(k).id: Severity.parse(v)
                for k, v in (severities or {}).items()
            },
        )

    def enabled(self, r: Rule) -> bool:
        if r.id in self.disabled:
            return False
        return not self.selected or r.id in self.selected

    def severity_for(self, r: Rule) -> Severity:
        return self.severities.get(r.id, r.severity)


def run_rules(ctx: AnalysisContext, config: RuleConfig | None = None) -> list[Diagnostic]:
    """Run every enabled rule; returns canonically sorted diagnostics."""
    config = config or RuleConfig()
    out: list[Diagnostic] = []
    for rid in sorted(REGISTRY):
        r = REGISTRY[rid]
        if not config.enabled(r):
            continue
        severity = config.severity_for(r)
        for d in r.check(ctx):
            if d.severity is not severity:
                d = d.with_severity(severity)
            out.append(d)
    return sort_diagnostics(out)


# ----------------------------------------------------------------------
# precondition rules
# ----------------------------------------------------------------------
@rule("RR001", "not-wait-connected", Severity.ERROR,
      "the relation is not wait-connected: some reachable state has no "
      "usable waiting channel",
      "Definition 10")
def check_wait_connected(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    ok, why = ctx.wait_connectivity
    if not ok:
        yield Diagnostic(
            rule="RR001", severity=Severity.ERROR,
            message=f"relation is not wait-connected: {why}",
            location=Location("relation"),
            suggestion=(
                "ensure every reachable routing state keeps a nonempty "
                "waiting set inside its route set (Definition 10); the "
                "theorem checker refutes such relations outright"
            ),
        )


@rule("RR002", "incoherent-relation", Severity.WARNING,
      "the relation is not coherent (prefix/suffix closure or node revisits "
      "fail) -- Duato's condition does not apply, only the CWG theorems do",
      "Definitions 5-7")
def check_coherent(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    from ..routing.properties import is_coherent

    rep = is_coherent(ctx.algorithm)
    if not rep:
        yield Diagnostic(
            rule="RR002", severity=Severity.WARNING,
            message=f"relation is not coherent: {rep.counterexample}",
            location=Location("relation"),
            suggestion=(
                "incoherence is legal for the CWG theorems (Section 9 relies "
                "on it) but disqualifies Duato-style escape analysis; verify "
                "with `python -m repro verify`, not the ECDG condition"
            ),
        )


@rule("RR003", "unreachable-pair", Severity.ERROR,
      "some source cannot deliver to some destination under the relation",
      "Definitions 1-2")
def check_pairs_deliverable(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    net = ctx.network
    for dest in net.nodes:
        dt = ctx.transitions[dest]
        for src in net.nodes:
            if src == dest:
                continue
            reach = dt.reachable_from(net.injection_channel(src))
            if not any(c.dst == dest for c in reach):
                yield Diagnostic(
                    rule="RR003", severity=Severity.ERROR,
                    message=f"no permitted path delivers {src} -> {dest}",
                    location=Location("pair", nodes=(src, dest)),
                    suggestion=(
                        "extend the relation (or repair the topology) so every "
                        "ordered node pair has a permitted path; undeliverable "
                        "pairs make every freedom verdict vacuous for them"
                    ),
                )


# ----------------------------------------------------------------------
# hygiene rules
# ----------------------------------------------------------------------
@rule("RH101", "dead-channel", Severity.INFO,
      "a link channel no message can ever occupy, for any destination",
      "Definition 2 reachability")
def check_dead_channels(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    used: set[int] = set()
    for dt in ctx.transitions.all_destinations():
        used.update(c.cid for c in dt.usable)
    dead = sorted(c.cid for c in ctx.network.link_channels if c.cid not in used)
    for cid in dead:
        c = ctx.network.channel(cid)
        yield Diagnostic(
            rule="RH101", severity=Severity.INFO,
            message=(
                f"channel c{cid} ({c.src}->{c.dst} vc{c.vc}) is unreachable "
                "from every injection channel: dead hardware"
            ),
            location=Location("channel", channels=(cid,)),
            suggestion=(
                "remove the channel or extend the relation to use it; dead "
                "channels inflate every graph the checkers build"
            ),
        )


@rule("RH102", "unreachable-table-entry", Severity.INFO,
      "a routing-table entry defined at a state no message ever reaches",
      "Definition 2 reachability")
def check_table_entries(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    case = getattr(ctx.algorithm, "case", None)
    routes = getattr(case, "routes", None)
    if not isinstance(routes, dict):
        return  # only table-backed relations carry an explicit entry list
    net = ctx.network
    reachable: set[str] = set()
    nd = bool(getattr(case, "nd", False))
    for dt in ctx.transitions.all_destinations():
        for c_in, out in dt.succ.items():
            if not out:
                continue
            if nd:
                reachable.add(f"n{c_in.dst}->{dt.dest}")
            elif c_in.is_link:
                reachable.add(f"c{c_in.cid}->{dt.dest}")
            else:
                reachable.add(f"i{c_in.src}->{dt.dest}")
    for key in sorted(routes):
        if key in reachable or not routes[key]:
            continue
        state, _, dest = key.partition("->")
        channels: tuple[int, ...] = ()
        nodes: tuple[int, ...] = ()
        if state.startswith("c") and state[1:].isdigit():
            channels = (int(state[1:]),)
        elif state[1:].isdigit():
            nodes = (int(state[1:]),)
        if dest.isdigit() and int(dest) < net.num_nodes:
            nodes = nodes + (int(dest),)
        yield Diagnostic(
            rule="RH102", severity=Severity.INFO,
            message=f"table entry {key!r} is defined but its state is unreachable",
            location=Location("state", channels=channels, nodes=nodes),
            suggestion="delete the entry; unreachable rows cannot affect any verdict",
        )


@rule("RH103", "asymmetric-physical-link", Severity.INFO,
      "an adjacent node pair is connected in one direction only",
      "Definition 1")
def check_symmetric_links(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    adjacent: set[tuple[int, int]] = set()
    for c in ctx.network.link_channels:
        adjacent.add((c.src, c.dst))
    for (a, b) in sorted(adjacent):
        if (b, a) not in adjacent:
            yield Diagnostic(
                rule="RH103", severity=Severity.INFO,
                message=(
                    f"physical link {a} -> {b} has no reverse channel: "
                    "traffic b->a must route around"
                ),
                location=Location("pair", nodes=(a, b)),
                suggestion=(
                    "one-way adjacencies are legal (the Figure 1/4 rings use "
                    "them) but double-check the omission was intended"
                ),
            )


@rule("RH104", "self-waiting-channel", Severity.WARNING,
      "a channel can wait on itself: a length-1 CWG cycle",
      "Definition 9 / Section 7.2")
def check_self_waits(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for u, v, mask in ctx.cwg.dep.iter_edges():
        if u != v:
            continue
        dests = sorted(bits(mask))
        yield Diagnostic(
            rule="RH104", severity=Severity.WARNING,
            message=(
                f"channel c{u} can wait on itself "
                f"(destinations {dests}): a one-channel CWG cycle"
            ),
            location=Location("channel", channels=(u,)),
            witness=tuple(f"dest {d}" for d in dests),
            suggestion=(
                "a self-wait is a cycle the Section 7.2 classifier must "
                "analyze; if it is a True Cycle the relation deadlocks with "
                "a single message"
            ),
        )


# ----------------------------------------------------------------------
# triage-backed rules
# ----------------------------------------------------------------------
@rule("RT201", "forced-deadlock-cycle", Severity.ERROR,
      "the scc-condensation screen found a forced cycle: a reachable "
      "Definition 12 deadlock configuration exists",
      "Theorem 2/3 necessity")
def check_forced_cycle(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    screen = ctx.triage.screen("scc-condensation")
    if screen is None or screen.outcome != "deadlock":
        return
    cycle = [int(u) for u in screen.witness["cycle"]]
    dests = [int(d) for d in screen.witness["cycle_dests"]]
    witness = tuple(
        f"c{cycle[i]} -> c{cycle[(i + 1) % len(cycle)]} (dest {dests[i]})"
        for i in range(len(cycle))
    )
    yield Diagnostic(
        rule="RT201", severity=Severity.ERROR,
        message=(
            "forced deadlock cycle "
            + "->".join(f"c{u}" for u in cycle) + f"->c{cycle[0]}: "
            "every hop is a source-startable forced wait"
        ),
        location=Location("cycle", channels=tuple(cycle)),
        witness=witness,
        suggestion=(
            "break the cycle: add an escape channel, widen a waiting set "
            "(under wait-on-any), or restrict the relation so some hop "
            "is no longer forced"
        ),
    )


#: re-exported convenience: every rule in id order
def all_rules() -> list[Rule]:
    return [REGISTRY[rid] for rid in sorted(REGISTRY)]


__all__ = [
    "AnalysisContext", "Rule", "RuleConfig", "REGISTRY",
    "all_rules", "resolve_rule", "rule", "run_rules",
]
