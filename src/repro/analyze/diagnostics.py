"""The diagnostic framework: severities, locations, and findings.

A :class:`Diagnostic` is one finding of one rule on one analysis target --
the static-analysis twin of :class:`repro.verify.report.Verdict`.  Where a
verdict answers "is this relation deadlock-free", a diagnostic answers
"what, precisely, is questionable about it", anchored to the graph object
the rule inspected: a channel, a node, an ordered node pair, a routing
state, or the relation as a whole.

Everything here is deterministic by construction: locations carry sorted
channel/node id tuples, diagnostics order under :meth:`Diagnostic.sort_key`
(severity first, then rule, then location), and the baseline identity
(:meth:`Diagnostic.fingerprint`) hashes only the stable anchor -- target,
rule, and location -- so rewording a message never invalidates a committed
suppression.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Any


class Severity(enum.IntEnum):
    """Diagnostic severity; the integer order is the sort order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` for this severity."""
        return {"info": "note", "warning": "warning", "error": "error"}[self.label]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; have {[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Location:
    """Where a finding is anchored: channels, nodes, a pair, or the relation.

    ``kind`` names the anchor flavor (``relation``, ``channel``, ``node``,
    ``pair``, ``state``, ``cycle``); ``channels`` and ``nodes`` carry the
    anchoring ids.  Tuples are stored sorted unless the order is the
    payload (``pair`` keeps (src, dest) order, ``cycle`` keeps walk order).
    """

    kind: str = "relation"
    channels: tuple[int, ...] = ()
    nodes: tuple[int, ...] = ()

    _ORDERED_KINDS = ("pair", "cycle", "state")

    def __post_init__(self) -> None:
        if self.kind not in self._ORDERED_KINDS:
            object.__setattr__(self, "channels", tuple(sorted(self.channels)))
            object.__setattr__(self, "nodes", tuple(sorted(self.nodes)))

    def sort_key(self) -> tuple[str, tuple[int, ...], tuple[int, ...]]:
        return (self.kind, self.channels, self.nodes)

    def describe(self) -> str:
        """Short human rendering, e.g. ``channel c5`` or ``pair 0->3``."""
        if self.kind == "relation":
            return "relation"
        if self.kind == "pair" and len(self.nodes) == 2:
            return f"pair {self.nodes[0]}->{self.nodes[1]}"
        if self.kind == "cycle":
            return "cycle " + "->".join(f"c{c}" for c in self.channels)
        parts = []
        if self.channels:
            parts.append(", ".join(f"c{c}" for c in self.channels))
        if self.nodes:
            parts.append("node" + ("s" if len(self.nodes) > 1 else "")
                         + " " + ", ".join(map(str, self.nodes)))
        return f"{self.kind} " + "; ".join(parts) if parts else self.kind

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "channels": list(self.channels),
            "nodes": list(self.nodes),
        }


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, message, location, witness, fix."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    #: deterministic human-readable witness lines (edges, dests, residues)
    witness: tuple[str, ...] = ()
    #: actionable suggestion, phrased against the paper's conditions
    suggestion: str = ""
    #: the analysis target (catalog name or case file) that produced it
    target: str = ""

    def sort_key(self) -> tuple[Any, ...]:
        return (
            self.target,
            -int(self.severity),
            self.rule,
            self.location.sort_key(),
            self.message,
        )

    def fingerprint(self) -> str:
        """Stable baseline identity: target + rule + location only."""
        blob = "\x1f".join((
            self.target,
            self.rule,
            self.location.kind,
            ",".join(map(str, self.location.channels)),
            ",".join(map(str, self.location.nodes)),
        ))
        return hashlib.blake2b(blob.encode(), digest_size=8).hexdigest()

    def with_severity(self, severity: Severity) -> "Diagnostic":
        return replace(self, severity=severity)

    def with_target(self, target: str) -> "Diagnostic":
        return replace(self, target=target)

    def render(self) -> str:
        """One text-report line (without the witness block)."""
        return (
            f"{self.severity.label:<7} {self.rule:<6} "
            f"{self.location.describe()}: {self.message}"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "location": self.location.to_json(),
            "witness": list(self.witness),
            "suggestion": self.suggestion,
            "target": self.target,
            "fingerprint": self.fingerprint(),
        }


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """The one canonical diagnostic order every renderer and baseline uses."""
    return sorted(diagnostics, key=lambda d: d.sort_key())
