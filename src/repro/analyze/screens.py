"""Theorem-aware triage screens: decide cheap instances without cycle search.

Each screen inspects a structural fact about the relation's graphs and, when
it fires, settles deadlock freedom *in agreement with the theorem checker*
(:func:`repro.verify.necsuf.verify`) -- that agreement is a soundness
contract enforced by the fuzz oracle stack, not a heuristic.  The screens
run in a fixed order, cheapest and most-decisive first:

1. **wait-connectivity** (Definition 10) -- the theorems' precondition.
   Both Theorem 2 and Theorem 3 check it first and refute on failure, so a
   violation is ``definitely-deadlocking`` by the checker's own contract
   (the same :func:`~repro.core.cwg.wait_connected` call, verbatim).
2. **ordering-certificate** -- an inferred Dally--Seitz channel numbering.
   An acyclic CDG admits a strictly increasing numbering; and since every
   CWG edge ``(c1, c2)`` arises from a state path ``c1 ->* c'`` with ``c2``
   in the waiting (hence route) set of ``c'``, each CWG edge embeds in a
   CDG path, so an acyclic CDG forces an acyclic CWG: ``definitely-free``
   under Theorem 2/3 without ever building the CWG.  On failure the edges
   inside CDG cycles (the obstruction to any numbering) are reported.
3. **sink-elimination** -- iteratively strip CWG channels with no outgoing
   waiting dependencies (a channel nothing waits *from* can never sustain a
   cycle).  Empty residue == acyclic CWG == ``definitely-free``; otherwise
   the residue (exactly the channels with a path to a waiting cycle) is the
   witness handed to the next screen.
4. **scc-condensation** -- per nontrivial CWG component, search for a
   *forced cycle*: single-channel states, each directly acquirable from its
   source's injection channel, each waiting on the next (and, under
   wait-on-ANY, with singleton waiting sets, so no adaptivity can dodge).
   Such a cycle is precisely a Section 7.2 True Cycle with single-channel
   segments -- a reachable Definition 12 deadlock configuration --
   so ``definitely-deadlocking`` under Theorem 2 and (via the
   single-waiting-channel argument of the Theorem 3 fast path) Theorem 3.

Anything the screens cannot settle is ``needs-full-check``: the paper's
ring (Figure 4) and the incoherent Section 6 example land here, which is
correct -- their freedom genuinely requires False-Resource-Cycle analysis.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..core.cwg import ChannelWaitingGraph, wait_connected
from ..core.depgraph import find_cycle_adj
from ..core.transitions import TransitionCache
from ..deps.cdg import ChannelDependencyGraph
from ..routing.relation import RoutingAlgorithm, WaitPolicy
from ..verify.report import Verdict

#: triage verdicts
DEFINITELY_FREE = "definitely-free"
DEFINITELY_DEADLOCKING = "definitely-deadlocking"
NEEDS_FULL_CHECK = "needs-full-check"

#: screen names, in execution order
SCREENS = (
    "wait-connectivity",
    "ordering-certificate",
    "sink-elimination",
    "scc-condensation",
)


@dataclass
class ScreenResult:
    """One screen's outcome on one relation."""

    screen: str
    #: "free" | "deadlock" | "undecided" | "pass" (precondition held)
    outcome: str
    detail: str = ""
    #: JSON-safe structured witness (sorted ids, counts)
    witness: dict[str, Any] = field(default_factory=dict)

    @property
    def decided(self) -> bool:
        return self.outcome in ("free", "deadlock")

    def to_json(self) -> dict[str, Any]:
        return {
            "screen": self.screen,
            "outcome": self.outcome,
            "detail": self.detail,
            "witness": self.witness,
        }


@dataclass
class TriageResult:
    """The combined triage verdict with the per-screen trail."""

    verdict: str
    decided_by: str
    screens: list[ScreenResult]

    @property
    def decided(self) -> bool:
        return self.verdict != NEEDS_FULL_CHECK

    def screen(self, name: str) -> ScreenResult | None:
        for s in self.screens:
            if s.screen == name:
                return s
        return None

    def summary(self) -> str:
        trail = " -> ".join(f"{s.screen}:{s.outcome}" for s in self.screens)
        return f"{self.verdict} ({trail})"

    def to_json(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "decided_by": self.decided_by,
            "screens": [s.to_json() for s in self.screens],
        }


# ----------------------------------------------------------------------
# the screens
# ----------------------------------------------------------------------
def wait_connectivity_screen(
    algorithm: RoutingAlgorithm, transitions: TransitionCache
) -> ScreenResult:
    """Definition 10 precondition; failure refutes under Theorem 2/3."""
    ok, why = wait_connected(algorithm, transitions=transitions)
    if ok:
        return ScreenResult("wait-connectivity", "pass",
                            detail="every reachable state has a waiting channel")
    return ScreenResult("wait-connectivity", "deadlock", detail=why)


def ordering_certificate_screen(cdg: ChannelDependencyGraph) -> ScreenResult:
    """Infer a Dally--Seitz numbering; report the violating edges if none."""
    numbering = cdg.numbering()
    if numbering is not None:
        return ScreenResult(
            "ordering-certificate", "free",
            detail=(
                f"strictly increasing channel numbering exists "
                f"({len(numbering)} channels; acyclic CDG forces an acyclic CWG)"
            ),
            witness={"numbering_size": len(numbering),
                     "cdg_edges": cdg.dep.num_edges},
        )
    labels, _ = cdg.dep.scc()
    violating = [
        [u, v] for u, v, _m in cdg.dep.iter_edges() if labels[u] == labels[v]
    ]
    return ScreenResult(
        "ordering-certificate", "undecided",
        detail=(
            f"no channel ordering: {len(violating)} dependency edges lie "
            "inside CDG cycles"
        ),
        witness={"violating_edges": violating, "cdg_edges": cdg.dep.num_edges},
    )


def sink_elimination_screen(cwg: ChannelWaitingGraph) -> ScreenResult:
    """Iteratively strip channels with no outgoing waiting dependencies.

    Kahn's peel on out-degrees: a channel whose waiting out-degree reaches
    zero can never appear on a waiting cycle, so deleting it is sound;
    iterate to a fixpoint.  Empty residue proves the CWG acyclic (Theorem
    2/3 free, given wait-connectivity); the residue is exactly the set of
    channels with a path to some waiting cycle.
    """
    dep = cwg.dep
    n = dep.num_vertices
    outdeg = [dep.indptr[u + 1] - dep.indptr[u] for u in range(n)]
    preds: dict[int, list[int]] = {}
    self_loop = [False] * n
    for u, v, _m in dep.iter_edges():
        if u == v:
            self_loop[u] = True
        preds.setdefault(v, []).append(u)
    # Vertices with edges, peeled outward from the sinks.
    frontier = [u for u in range(n) if outdeg[u] == 0]
    removed = [False] * n
    rounds = 0
    while frontier:
        rounds += 1
        nxt: list[int] = []
        for v in frontier:
            removed[v] = True
            for u in preds.get(v, ()):
                if u != v:
                    outdeg[u] -= 1
                    if outdeg[u] == 0 and not removed[u]:
                        nxt.append(u)
        frontier = sorted(set(nxt))
    residue = [u for u in range(n) if not removed[u]]
    if not residue:
        return ScreenResult(
            "sink-elimination", "free",
            detail=(
                f"all {n} channels eliminated in {rounds} rounds: "
                "the CWG is acyclic"
            ),
            witness={"rounds": rounds, "cwg_edges": dep.num_edges},
        )
    return ScreenResult(
        "sink-elimination", "undecided",
        detail=(
            f"{len(residue)} of {n} channels survive the peel "
            "(each can reach a waiting cycle)"
        ),
        witness={
            "residue": residue,
            "rounds": rounds,
            "self_loops": sorted(u for u in residue if self_loop[u]),
            "cwg_edges": dep.num_edges,
        },
    )


def forced_cycle_screen(cwg: ChannelWaitingGraph) -> ScreenResult:
    """SCC condensation screen: a forced cycle inside some nontrivial
    component is a True Cycle, hence a reachable deadlock configuration.

    A *forced edge* ``c1 -> c2`` for destination ``d`` requires:

    * ``c1`` is usable for ``d`` and directly acquirable from the injection
      channel of its source node (the blocked message exists: inject at
      ``c1.src``, acquire ``c1``, stall);
    * ``c2`` is in the *immediate* waiting set at state ``(c1, d)``;
    * under wait-on-ANY policy, that waiting set is a singleton (the wait
      cannot be redirected, so the cycle survives every CWG').

    A simple cycle of forced edges gives pairwise-disjoint single-channel
    message segments closing a Definition 12 configuration -- exactly the
    Section 7.2 True-Cycle conditions with length-1 holds.
    """
    algorithm, tc = cwg.algorithm, cwg.transitions
    net = algorithm.network
    dep = cwg.dep
    labels, _ = dep.scc()
    counts: dict[int, int] = {}
    for u in range(dep.num_vertices):
        counts[labels[u]] = counts.get(labels[u], 0) + 1
    hot = {u for u in range(dep.num_vertices) if counts[labels[u]] > 1}
    hot.update(u for u, v, _m in dep.iter_edges() if u == v)
    nontrivial = sum(1 for c in counts.values() if c > 1)
    stats = {
        "nontrivial_sccs": nontrivial,
        "largest_scc": max((c for c in counts.values() if c > 1), default=1),
        "hot_channels": len(hot),
    }
    any_policy = algorithm.wait_policy is WaitPolicy.ANY
    edge_dest: dict[tuple[int, int], int] = {}
    for dt in tc.all_destinations():
        for c in dt.usable:
            if c.cid not in hot:
                continue
            waits = dt.wait[c]
            if not waits or (any_policy and len(waits) != 1):
                continue
            if c not in dt.succ.get(net.injection_channel(c.src), frozenset()):
                continue  # not startable at source: no single-channel segment
            for c2 in waits:
                if c2.cid in hot:
                    key = (c.cid, c2.cid)
                    if key not in edge_dest or dt.dest < edge_dest[key]:
                        edge_dest[key] = dt.dest
    adj: dict[int, list[int]] = {}
    for (u, v) in sorted(edge_dest):
        adj.setdefault(u, []).append(v)
    cycle = find_cycle_adj(set(adj) | {v for vs in adj.values() for v in vs}, adj)
    if cycle is None:
        return ScreenResult(
            "scc-condensation", "undecided",
            detail=(
                f"{nontrivial} nontrivial CWG component(s), "
                "no forced cycle among them"
            ),
            witness=dict(stats, forced_edges=len(edge_dest)),
        )
    dests = [edge_dest[(cycle[i], cycle[(i + 1) % len(cycle)])]
             for i in range(len(cycle))]
    return ScreenResult(
        "scc-condensation", "deadlock",
        detail=(
            "forced cycle " + "->".join(f"c{u}" for u in cycle)
            + f"->c{cycle[0]}: each channel is source-startable and must wait "
            "on the next, closing a Definition 12 deadlock configuration"
        ),
        witness=dict(stats, cycle=list(cycle), cycle_dests=dests,
                     forced_edges=len(edge_dest)),
    )


# ----------------------------------------------------------------------
# the combined triage
# ----------------------------------------------------------------------
def triage(
    algorithm: RoutingAlgorithm,
    *,
    transitions: TransitionCache | None = None,
    cwg: ChannelWaitingGraph | None = None,
    cdg: ChannelDependencyGraph | None = None,
    cwg_builder: Callable[[], ChannelWaitingGraph] | None = None,
) -> TriageResult:
    """Run the screens in order; stop at the first decision.

    ``cwg_builder`` lets callers defer (and cache) the CWG construction --
    the ordering certificate decides many instances from the cheaper CDG
    alone, in which case the CWG is never built at all.
    """
    tc = transitions
    if tc is None:
        tc = (cwg.transitions if cwg is not None
              else cdg.transitions if cdg is not None
              else TransitionCache(algorithm))
    screens: list[ScreenResult] = []

    s = wait_connectivity_screen(algorithm, tc)
    screens.append(s)
    if s.outcome == "deadlock":
        return TriageResult(DEFINITELY_DEADLOCKING, s.screen, screens)

    s = ordering_certificate_screen(cdg or ChannelDependencyGraph(algorithm, transitions=tc))
    screens.append(s)
    if s.outcome == "free":
        return TriageResult(DEFINITELY_FREE, s.screen, screens)

    if cwg is None:
        cwg = cwg_builder() if cwg_builder is not None else \
            ChannelWaitingGraph(algorithm, transitions=tc)
    s = sink_elimination_screen(cwg)
    screens.append(s)
    if s.outcome == "free":
        return TriageResult(DEFINITELY_FREE, s.screen, screens)

    s = forced_cycle_screen(cwg)
    screens.append(s)
    if s.outcome == "deadlock":
        return TriageResult(DEFINITELY_DEADLOCKING, s.screen, screens)

    return TriageResult(NEEDS_FULL_CHECK, "", screens)


def triage_verdict(algorithm: RoutingAlgorithm, result: TriageResult) -> Verdict:
    """Synthesize the theorem checker's :class:`Verdict` from a decided triage.

    For the wait-connectivity and acyclic-CWG outcomes this reproduces
    :func:`repro.verify.necsuf.theorem2`/``theorem3`` verdicts *verbatim*
    (same condition, same reason) -- triage merely hoists those early paths
    in front of the expensive machinery.  Forced-cycle refutations carry
    their own reason (the witness cycle differs from the search's), still
    authoritative under the same theorems.
    """
    if not result.decided:
        raise ValueError("triage_verdict requires a decided TriageResult")
    specific = algorithm.wait_policy is WaitPolicy.SPECIFIC
    condition = "Theorem 2" if specific else "Theorem 3"
    screen = result.screen(result.decided_by)
    assert screen is not None
    if result.decided_by == "wait-connectivity":
        return Verdict(algorithm.name, condition, False,
                       reason=f"not wait-connected: {screen.detail}",
                       evidence={"triage": screen.screen})
    if result.verdict == DEFINITELY_FREE:
        reason = ("wait-connected and CWG is acyclic" if specific
                  else "wait-connected and CWG is acyclic (CWG' = CWG)")
        evidence: dict[str, Any] = {"triage": screen.screen}
        if "cwg_edges" in screen.witness:
            evidence["cwg_edges"] = screen.witness["cwg_edges"]
            if specific:
                evidence["cycles"] = 0
        return Verdict(algorithm.name, condition, True, reason=reason,
                       evidence=evidence)
    cycle = screen.witness["cycle"]
    return Verdict(
        algorithm.name, condition, False,
        reason=(
            f"True Cycle of channels {cycle!r}: forced source-startable "
            "waits close a reachable deadlock configuration"
        ),
        evidence={"triage": screen.screen, "cycle": list(cycle),
                  "cycle_dests": list(screen.witness["cycle_dests"])},
    )
