"""Renderers: text for humans, JSON for scripts, SARIF 2.1.0 for CI.

All three are deterministic: they consume the canonical diagnostic order
(:func:`~repro.analyze.diagnostics.sort_diagnostics`), sort targets by
name, and serialize JSON with sorted keys -- two runs over the same inputs
produce byte-identical output, which the determinism tests pin.

The SARIF renderer anchors findings with *logical* locations (channels,
nodes, pairs of the analyzed graph -- there are no source files to point
at) and carries the baseline fingerprint in ``partialFingerprints`` so
GitHub code scanning deduplicates results the same way our own baseline
does.
"""

from __future__ import annotations

import json
from typing import Any

from .analyzer import AnalysisReport, TargetReport
from .diagnostics import Diagnostic, Severity
from .rules import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)
TOOL_NAME = "repro-lint"


# ----------------------------------------------------------------------
# text
# ----------------------------------------------------------------------
def _render_target_text(t: TargetReport, lines: list[str]) -> None:
    triage = t.triage.summary() if t.triage else "triage unavailable"
    lines.append(f"{t.target} ({t.network}, wait-on-{t.wait_policy}): {triage}")
    if t.error:
        lines.append(f"  ANALYSIS FAILED: {t.error}")
    for d in t.diagnostics:
        lines.append("  " + d.render())
        for w in d.witness:
            lines.append(f"      witness: {w}")
        if d.suggestion:
            lines.append(f"      fix: {d.suggestion}")


def render_text(report: AnalysisReport) -> str:
    """Human-readable report, one block per target."""
    lines: list[str] = []
    for t in report.targets:
        _render_target_text(t, lines)
    total_suppressed = sum(report.suppressed.values())
    counts = ", ".join(
        f"{report.count(s)} {s.label}"
        for s in (Severity.ERROR, Severity.WARNING, Severity.INFO)
    )
    lines.append("")
    lines.append(
        f"{len(report.targets)} targets analyzed: {counts}"
        + (f", {total_suppressed} baseline-suppressed" if total_suppressed else "")
    )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# json
# ----------------------------------------------------------------------
def render_json(report: AnalysisReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
def _sarif_rules() -> list[dict[str, Any]]:
    return [
        {
            "id": r.id,
            "name": r.name,
            "shortDescription": {"text": r.summary},
            "fullDescription": {"text": r.help_text()},
            "defaultConfiguration": {"level": r.severity.sarif_level},
            "properties": {"paperClause": r.clause},
        }
        for r in all_rules()
    ]


def _sarif_logical_locations(d: Diagnostic) -> list[dict[str, Any]]:
    loc = d.location
    out: list[dict[str, Any]] = [
        {
            "name": loc.describe(),
            "kind": loc.kind,
            "fullyQualifiedName": f"{d.target}::{loc.describe()}",
        }
    ]
    return out


def _sarif_result(d: Diagnostic, rule_index: dict[str, int]) -> dict[str, Any]:
    message = d.message
    if d.witness:
        message += "\nwitness:\n" + "\n".join(f"  {w}" for w in d.witness)
    if d.suggestion:
        message += f"\nsuggested fix: {d.suggestion}"
    return {
        "ruleId": d.rule,
        "ruleIndex": rule_index[d.rule],
        "level": d.severity.sarif_level,
        "message": {"text": message},
        "locations": [
            {"logicalLocations": _sarif_logical_locations(d)}
        ],
        "partialFingerprints": {"reproDiagnostic/v1": d.fingerprint()},
        "properties": {
            "target": d.target,
            "channels": list(d.location.channels),
            "nodes": list(d.location.nodes),
        },
    }


def sarif_payload(report: AnalysisReport) -> dict[str, Any]:
    """The SARIF 2.1.0 document as a JSON-safe dict."""
    rules = _sarif_rules()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = [
        _sarif_result(d, rule_index)
        for t in report.targets
        for d in t.diagnostics
    ]
    invocation: dict[str, Any] = {
        "executionSuccessful": not any(t.error for t in report.targets),
    }
    failures = [
        {
            "level": "error",
            "message": {"text": f"analysis of {t.target} failed: {t.error}"},
        }
        for t in report.targets
        if t.error
    ]
    if failures:
        invocation["toolExecutionNotifications"] = failures
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/paper-repro/wormhole-necsuf"
                        ),
                        "rules": rules,
                    }
                },
                "invocations": [invocation],
                "results": results,
                "properties": {
                    "targets": [t.target for t in report.targets],
                    "triage": {
                        t.target: (t.triage.verdict if t.triage else "unavailable")
                        for t in report.targets
                    },
                    "suppressedByBaseline": sum(report.suppressed.values()),
                },
            }
        ],
    }


def render_sarif(report: AnalysisReport) -> str:
    return json.dumps(sarif_payload(report), indent=2, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
