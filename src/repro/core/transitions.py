"""Per-destination routing-state transition graphs.

Everything the paper's graph theory needs -- channel dependency graphs,
channel waiting graphs, wait-connectivity, reachability of configurations --
reduces to questions about the *routing-state graph* for a fixed
destination ``d``: states are "the message's most recently acquired channel
is ``c``" (so the message sits at node ``c.dst``), the start states are the
injection channels, and the transitions are exactly the routing relation
``R(c, c.dst, d)``.

:class:`DestinationTransitions` materializes that graph once per destination
and precomputes the derived sets the rest of :mod:`repro.core` consumes:

* ``usable`` -- link channels reachable from any injection channel, i.e.
  channels some message headed to ``d`` can actually occupy;
* ``wait[c]`` -- the waiting channels at state ``c`` (Definition 8);
* ``downstream_wait[c]`` -- the union of ``wait`` over every state reachable
  from ``c`` *including itself*: by Definition 9 (arbitrary message lengths),
  these are precisely the channels some message occupying ``c`` may end up
  waiting on, i.e. the CWG out-neighbourhood contributed by destination ``d``;
* ``upstream[c]`` -- channels from which state ``c`` is reachable: channels a
  message *blocked at* ``c`` might still hold, which is what the CWG'
  reduction's wait-connectivity test needs.

Reachable-set computation runs on the SCC condensation so cyclic
(nonminimal) relations cost the same as acyclic ones.
"""

from __future__ import annotations



import networkx as nx

from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel


class DestinationTransitions:
    """Routing-state graph of ``algorithm`` for one fixed destination."""

    def __init__(self, algorithm: RoutingAlgorithm, dest: int) -> None:
        self.algorithm = algorithm
        self.dest = dest
        net = algorithm.network
        self.succ: dict[Channel, frozenset[Channel]] = {}
        self.wait: dict[Channel, frozenset[Channel]] = {}
        #: injection channels that start a journey to ``dest``
        self.starts: list[Channel] = [
            net.injection_channel(n) for n in net.nodes if n != dest
        ]
        # Forward BFS from the injection channels over the routing relation.
        frontier: list[Channel] = list(self.starts)
        seen: set[Channel] = set(frontier)
        while frontier:
            nxt: list[Channel] = []
            for c in frontier:
                node = c.dst
                if node == dest:
                    self.succ[c] = frozenset()
                    self.wait[c] = frozenset()
                    continue
                out = algorithm.route(c, node, dest)
                self.succ[c] = out
                self.wait[c] = algorithm.waiting_channels(c, node, dest)
                for o in out:
                    if o not in seen:
                        seen.add(o)
                        nxt.append(o)
            frontier = nxt
        #: link channels a message headed to ``dest`` can occupy
        self.usable: frozenset[Channel] = frozenset(c for c in self.succ if c.is_link)
        self._downstream_wait: dict[Channel, frozenset[Channel]] | None = None
        self._upstream: dict[Channel, frozenset[Channel]] | None = None

    # ------------------------------------------------------------------
    def _graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.succ)
        for c, outs in self.succ.items():
            for o in outs:
                g.add_edge(c, o)
        return g

    @property
    def downstream_wait(self) -> dict[Channel, frozenset[Channel]]:
        """CWG out-neighbourhoods: waiting sets over all reachable states."""
        if self._downstream_wait is None:
            self._downstream_wait = self._propagate(forward=True)
        return self._downstream_wait

    @property
    def upstream(self) -> dict[Channel, frozenset[Channel]]:
        """For each state ``c``: link channels a message at ``c`` may hold.

        The reflexive-transitive predecessors of ``c`` in the state graph,
        restricted to link channels (a held injection channel can never be
        another message's waiting channel).
        """
        if self._upstream is None:
            self._upstream = self._propagate(forward=False)
        return self._upstream

    def _propagate(self, *, forward: bool) -> dict[Channel, frozenset[Channel]]:
        """Reflexive-transitive closure aggregation over the SCC condensation.

        forward=True accumulates waiting sets downstream; forward=False
        accumulates held link channels upstream.
        """
        g = self._graph()
        if not forward:
            g = g.reverse(copy=False)
        cond = nx.condensation(g)
        order = list(nx.topological_sort(cond))
        comp_val: dict[int, frozenset[Channel]] = {}
        for comp in reversed(order):
            members = cond.nodes[comp]["members"]
            if forward:
                acc: set[Channel] = set()
                for m in members:
                    acc |= self.wait[m]
            else:
                acc = {m for m in members if m.is_link}
            for succ_comp in cond.successors(comp):
                acc |= comp_val[succ_comp]
            comp_val[comp] = frozenset(acc)
        out: dict[Channel, frozenset[Channel]] = {}
        mapping = cond.graph["mapping"]
        for c in self.succ:
            out[c] = comp_val[mapping[c]]
        if not forward:
            # "May hold while at c" for the *reverse* graph accumulates
            # predecessors of c; but a message at state c holds c itself too
            # (already included since the closure is reflexive over members).
            pass
        return out

    def reachable_from(self, start: Channel) -> frozenset[Channel]:
        """States reachable from ``start`` (inclusive)."""
        seen = {start}
        stack = [start]
        while stack:
            c = stack.pop()
            for o in self.succ.get(c, ()):
                if o not in seen:
                    seen.add(o)
                    stack.append(o)
        return frozenset(seen)


class TransitionCache:
    """Lazily builds and caches :class:`DestinationTransitions` per destination."""

    def __init__(self, algorithm: RoutingAlgorithm) -> None:
        self.algorithm = algorithm
        self._cache: dict[int, DestinationTransitions] = {}

    def __getitem__(self, dest: int) -> DestinationTransitions:
        dt = self._cache.get(dest)
        if dt is None:
            dt = self._cache[dest] = DestinationTransitions(self.algorithm, dest)
        return dt

    def all_destinations(self):
        """Iterate transitions for every node as destination."""
        for dest in self.algorithm.network.nodes:
            yield self[dest]
