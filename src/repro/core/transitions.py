"""Per-destination routing-state transition graphs.

Everything the paper's graph theory needs -- channel dependency graphs,
channel waiting graphs, wait-connectivity, reachability of configurations --
reduces to questions about the *routing-state graph* for a fixed
destination ``d``: states are "the message's most recently acquired channel
is ``c``" (so the message sits at node ``c.dst``), the start states are the
injection channels, and the transitions are exactly the routing relation
``R(c, c.dst, d)``.

:class:`DestinationTransitions` materializes that graph once per destination
and precomputes the derived sets the rest of :mod:`repro.core` consumes:

* ``usable`` -- link channels reachable from any injection channel, i.e.
  channels some message headed to ``d`` can actually occupy;
* ``wait[c]`` -- the waiting channels at state ``c`` (Definition 8);
* ``downstream_wait[c]`` -- the union of ``wait`` over every state reachable
  from ``c`` *including itself*: by Definition 9 (arbitrary message lengths),
  these are precisely the channels some message occupying ``c`` may end up
  waiting on, i.e. the CWG out-neighbourhood contributed by destination ``d``;
* ``upstream[c]`` -- channels from which state ``c`` is reachable: channels a
  message *blocked at* ``c`` might still hold, which is what the CWG'
  reduction's wait-connectivity test needs.

Reachable-set computation runs on the SCC condensation so cyclic
(nonminimal) relations cost the same as acyclic ones.

The canonical derived representation is *cid bitmasks* (``succ_masks``,
``wait_masks``, ``downstream_wait_masks``, ``upstream_masks``): one
arbitrary-precision int per state, bit ``i`` set iff channel ``i`` is in the
set.  The graph builders consume the masks directly
(:meth:`TransitionCache.collect_edge_dests` never touches a
:class:`~repro.topology.channel.Channel` object); the frozenset views
(``downstream_wait`` / ``upstream``) are adapters materialized lazily for
the consumers that still want objects.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from typing import TYPE_CHECKING

from .._kernel import forced_backend
from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel
from .depgraph import bits, tarjan_scc

if TYPE_CHECKING:
    import numpy as np  # noqa: F401  (typing only)


class DestinationTransitions:
    """Routing-state graph of ``algorithm`` for one fixed destination."""

    def __init__(self, algorithm: RoutingAlgorithm, dest: int) -> None:
        self.algorithm = algorithm
        self.dest = dest
        net = algorithm.network
        self.succ: dict[Channel, frozenset[Channel]] = {}
        self.wait: dict[Channel, frozenset[Channel]] = {}
        #: injection channels that start a journey to ``dest``
        self.starts: list[Channel] = [
            net.injection_channel(n) for n in net.nodes if n != dest
        ]
        # The default waiting set *is* the route set; skipping the second
        # relation call halves the walk for every algorithm that does not
        # override waiting_channels (same trick RouteTable._build uses).
        default_wait = (
            type(algorithm).waiting_channels is RoutingAlgorithm.waiting_channels
        )
        # Forward BFS from the injection channels over the routing relation.
        frontier: list[Channel] = list(self.starts)
        seen: set[Channel] = set(frontier)
        while frontier:
            nxt: list[Channel] = []
            for c in frontier:
                node = c.dst
                if node == dest:
                    self.succ[c] = frozenset()
                    self.wait[c] = frozenset()
                    continue
                out = algorithm.route(c, node, dest)
                self.succ[c] = out
                self.wait[c] = out if default_wait \
                    else algorithm.waiting_channels(c, node, dest)
                for o in out:
                    if o not in seen:
                        seen.add(o)
                        nxt.append(o)
            frontier = nxt
        #: link channels a message headed to ``dest`` can occupy
        self.usable: frozenset[Channel] = frozenset(c for c in self.succ if c.is_link)
        #: the same channels as sorted dense cids (the builders' index space)
        self.usable_cids: list[int] = sorted(c.cid for c in self.usable)
        self._succ_masks: dict[int, int] | None = None
        self._wait_masks: dict[int, int] | None = None
        self._downstream_wait_masks: dict[int, int] | None = None
        self._upstream_masks: dict[int, int] | None = None
        self._downstream_wait: dict[Channel, frozenset[Channel]] | None = None
        self._upstream: dict[Channel, frozenset[Channel]] | None = None

    # ------------------------------------------------------------------
    # cid-bitmask views (canonical for the graph builders)
    # ------------------------------------------------------------------
    @staticmethod
    def _as_masks(sets: Mapping[Channel, frozenset[Channel]]) -> dict[int, int]:
        out: dict[int, int] = {}
        for c, members in sets.items():
            m = 0
            for w in members:
                m |= 1 << w.cid
            out[c.cid] = m
        return out

    @property
    def succ_masks(self) -> dict[int, int]:
        """``state cid -> bitmask of successor cids`` (all states)."""
        if self._succ_masks is None:
            self._succ_masks = self._as_masks(self.succ)
        return self._succ_masks

    @property
    def wait_masks(self) -> dict[int, int]:
        """``state cid -> bitmask of immediate waiting-channel cids``."""
        if self._wait_masks is None:
            self._wait_masks = self._as_masks(self.wait)
        return self._wait_masks

    @property
    def downstream_wait_masks(self) -> dict[int, int]:
        """``state cid -> bitmask`` form of :attr:`downstream_wait`."""
        if self._downstream_wait_masks is None:
            self._downstream_wait_masks = self._propagate(forward=True)
        return self._downstream_wait_masks

    @property
    def upstream_masks(self) -> dict[int, int]:
        """``state cid -> bitmask`` form of :attr:`upstream`."""
        if self._upstream_masks is None:
            self._upstream_masks = self._propagate(forward=False)
        return self._upstream_masks

    # ------------------------------------------------------------------
    # frozenset adapter views
    # ------------------------------------------------------------------
    def _materialize(self, masks: dict[int, int]) -> dict[Channel, frozenset[Channel]]:
        channel = self.algorithm.network.channel
        memo: dict[int, frozenset[Channel]] = {}
        out: dict[Channel, frozenset[Channel]] = {}
        for c in self.succ:
            m = masks[c.cid]
            fs = memo.get(m)
            if fs is None:
                fs = memo[m] = frozenset(channel(b) for b in bits(m))
            out[c] = fs
        return out

    @property
    def downstream_wait(self) -> dict[Channel, frozenset[Channel]]:
        """CWG out-neighbourhoods: waiting sets over all reachable states."""
        if self._downstream_wait is None:
            self._downstream_wait = self._materialize(self.downstream_wait_masks)
        return self._downstream_wait

    @property
    def upstream(self) -> dict[Channel, frozenset[Channel]]:
        """For each state ``c``: link channels a message at ``c`` may hold.

        The reflexive-transitive predecessors of ``c`` in the state graph,
        restricted to link channels (a held injection channel can never be
        another message's waiting channel).
        """
        if self._upstream is None:
            self._upstream = self._materialize(self.upstream_masks)
        return self._upstream

    def _propagate(self, *, forward: bool) -> dict[int, int]:
        """Reflexive-transitive closure aggregation over the SCC condensation.

        forward=True accumulates waiting sets downstream; forward=False
        accumulates held link channels upstream.  Runs on the integer
        kernel: the state graph is indexed locally, Tarjan's decomposition
        (labels in reverse topological order -- every inter-component edge
        points to a smaller label) replaces the networkx condensation, and
        the accumulated sets are cid bitmasks OR-ed along condensation
        edges.  Returns ``state cid -> accumulated bitmask``.
        """
        states = list(self.succ)
        idx = {c: i for i, c in enumerate(states)}
        n = len(states)
        indptr = [0] * (n + 1)
        indices: list[int] = []
        if forward:
            for i, c in enumerate(states):
                for o in self.succ[c]:
                    indices.append(idx[o])
                indptr[i + 1] = len(indices)
        else:
            rev: list[list[int]] = [[] for _ in range(n)]
            for i, c in enumerate(states):
                for o in self.succ[c]:
                    rev[idx[o]].append(i)
            for i in range(n):
                indices.extend(rev[i])
                indptr[i + 1] = len(indices)
        labels, ncomp = tarjan_scc(n, indptr, indices)
        comp_val = [0] * ncomp
        if forward:
            wait_masks = self.wait_masks
            for i, c in enumerate(states):
                comp_val[labels[i]] |= wait_masks[c.cid]
        else:
            for i, c in enumerate(states):
                if c.is_link:
                    comp_val[labels[i]] |= 1 << c.cid
        # Successor components always carry smaller labels, so visiting
        # vertices by ascending component label reads only finalized values.
        for i in sorted(range(n), key=lambda v: labels[v]):
            li = labels[i]
            acc = comp_val[li]
            for p in range(indptr[i], indptr[i + 1]):
                lj = labels[indices[p]]
                if lj != li:
                    acc |= comp_val[lj]
            comp_val[li] = acc
        return {c.cid: comp_val[labels[i]] for i, c in enumerate(states)}

    def reachable_from(self, start: Channel) -> frozenset[Channel]:
        """States reachable from ``start`` (inclusive)."""
        seen = {start}
        stack = [start]
        while stack:
            c = stack.pop()
            for o in self.succ.get(c, ()):
                if o not in seen:
                    seen.add(o)
                    stack.append(o)
        return frozenset(seen)


class TransitionCache:
    """Lazily builds and caches :class:`DestinationTransitions` per destination."""

    def __init__(self, algorithm: RoutingAlgorithm) -> None:
        self.algorithm = algorithm
        self._cache: dict[int, DestinationTransitions] = {}

    def __getitem__(self, dest: int) -> DestinationTransitions:
        dt = self._cache.get(dest)
        if dt is None:
            dt = self._cache[dest] = DestinationTransitions(self.algorithm, dest)
        return dt

    def peek(self, dest: int) -> DestinationTransitions | None:
        """The cached transitions for ``dest``, or ``None`` -- never builds."""
        return self._cache.get(dest)

    def store(self, dest: int, dt: DestinationTransitions) -> None:
        """Install externally built transitions (the incremental engine's
        seam: it rebuilds dirty destinations under a recorder and hands the
        result back so subsequent lookups reuse it)."""
        self._cache[dest] = dt

    def invalidate(self, dest: int) -> None:
        """Drop the cached transitions for ``dest`` (no-op when absent)."""
        self._cache.pop(dest, None)

    def all_destinations(self) -> Iterator[DestinationTransitions]:
        """Iterate transitions for every node as destination."""
        for dest in self.algorithm.network.nodes:
            yield self[dest]

    def collect_edge_dests(
        self,
        targets: Callable[[DestinationTransitions], Mapping[int, int]],
    ) -> dict[tuple[int, int], int]:
        """Per-edge destination bitmasks over every destination's state walk.

        The one accumulation loop the CDG and CWG builders share:
        ``targets(dt)`` maps a destination's transitions to the per-state
        out-neighbour *bitmask* mapping that defines the edge set --
        ``dt.succ_masks`` for the CDG's immediate dependencies,
        ``dt.downstream_wait_masks`` for the CWG's occupy-while-waiting
        edges.  Returns ``(src_cid, dst_cid) -> destination bitmask``, the
        exact input :class:`~repro.core.depgraph.DepGraph` takes.

        Under the NumPy backend the per-destination masks are unpacked to
        bit matrices and the destination bits accumulated with a grouped
        bitwise OR; the pure path walks the set bits directly.  Both produce
        the same dict (the payload per edge is order-independent and
        :class:`~repro.core.depgraph.DepGraph` sorts edges on ingest).

        The pure walk is the default: target masks are sparse (a state has
        few out-neighbours), so the dense unpack measures slower from
        ~12x12 meshes up and neutral below (see EXPERIMENTS.md).  The
        NumPy kernel runs only when ``REPRO_BACKEND=numpy`` pins it.
        """
        if forced_backend() == "numpy":
            return self._collect_edge_dests_numpy(targets)
        edges: dict[tuple[int, int], int] = {}
        get = edges.get
        for dt in self.all_destinations():
            bit = 1 << dt.dest
            tmap = targets(dt)
            for a in dt.usable_cids:
                for b in bits(tmap[a]):
                    k = (a, b)
                    edges[k] = get(k, 0) | bit
        return edges

    def _collect_edge_dests_numpy(
        self,
        targets: Callable[[DestinationTransitions], Mapping[int, int]],
    ) -> dict[tuple[int, int], int]:
        import numpy as np

        num_ch = self.algorithm.network.num_channels
        nbytes = (num_ch + 7) // 8
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        dest_parts: list[np.ndarray] = []
        for dt in self.all_destinations():
            cids = dt.usable_cids
            if not cids:
                continue
            tmap = targets(dt)
            packed = b"".join(tmap[a].to_bytes(nbytes, "little") for a in cids)
            bitmat = np.unpackbits(
                np.frombuffer(packed, np.uint8).reshape(len(cids), nbytes),
                axis=1, bitorder="little",
            )
            rows, cols = np.nonzero(bitmat)
            if rows.size == 0:
                continue
            src_parts.append(np.asarray(cids, np.int64)[rows])
            dst_parts.append(cols.astype(np.int64))
            dest_parts.append(np.full(rows.size, dt.dest, np.int64))
        if not src_parts:
            return {}
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        dest = np.concatenate(dest_parts)
        key = src * num_ch + dst
        order = np.argsort(key, kind="stable")
        key = key[order]
        dest = dest[order]
        group_starts = np.flatnonzero(np.r_[True, key[1:] != key[:-1]])
        uniq_key = key[group_starts]
        # destination bitmasks in 64-bit lanes, OR-ed per edge group
        nlanes = (int(dest.max()) >> 6) + 1
        lane_vals: list[np.ndarray] = []
        for lane in range(nlanes):
            in_lane = (dest >> 6) == lane
            vals = np.where(
                in_lane, np.uint64(1) << (dest & 63).astype(np.uint64), np.uint64(0)
            )
            lane_vals.append(np.bitwise_or.reduceat(vals, group_starts))
        edges: dict[tuple[int, int], int] = {}
        srcs = (uniq_key // num_ch).tolist()
        dsts = (uniq_key % num_ch).tolist()
        for i, (a, b) in enumerate(zip(srcs, dsts)):
            m = 0
            for lane in range(nlanes):
                m |= int(lane_vals[lane][i]) << (lane * 64)
            edges[(a, b)] = m
        return edges
