"""Per-destination routing-state transition graphs.

Everything the paper's graph theory needs -- channel dependency graphs,
channel waiting graphs, wait-connectivity, reachability of configurations --
reduces to questions about the *routing-state graph* for a fixed
destination ``d``: states are "the message's most recently acquired channel
is ``c``" (so the message sits at node ``c.dst``), the start states are the
injection channels, and the transitions are exactly the routing relation
``R(c, c.dst, d)``.

:class:`DestinationTransitions` materializes that graph once per destination
and precomputes the derived sets the rest of :mod:`repro.core` consumes:

* ``usable`` -- link channels reachable from any injection channel, i.e.
  channels some message headed to ``d`` can actually occupy;
* ``wait[c]`` -- the waiting channels at state ``c`` (Definition 8);
* ``downstream_wait[c]`` -- the union of ``wait`` over every state reachable
  from ``c`` *including itself*: by Definition 9 (arbitrary message lengths),
  these are precisely the channels some message occupying ``c`` may end up
  waiting on, i.e. the CWG out-neighbourhood contributed by destination ``d``;
* ``upstream[c]`` -- channels from which state ``c`` is reachable: channels a
  message *blocked at* ``c`` might still hold, which is what the CWG'
  reduction's wait-connectivity test needs.

Reachable-set computation runs on the SCC condensation so cyclic
(nonminimal) relations cost the same as acyclic ones.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel
from .depgraph import bits, tarjan_scc


class DestinationTransitions:
    """Routing-state graph of ``algorithm`` for one fixed destination."""

    def __init__(self, algorithm: RoutingAlgorithm, dest: int) -> None:
        self.algorithm = algorithm
        self.dest = dest
        net = algorithm.network
        self.succ: dict[Channel, frozenset[Channel]] = {}
        self.wait: dict[Channel, frozenset[Channel]] = {}
        #: injection channels that start a journey to ``dest``
        self.starts: list[Channel] = [
            net.injection_channel(n) for n in net.nodes if n != dest
        ]
        # Forward BFS from the injection channels over the routing relation.
        frontier: list[Channel] = list(self.starts)
        seen: set[Channel] = set(frontier)
        while frontier:
            nxt: list[Channel] = []
            for c in frontier:
                node = c.dst
                if node == dest:
                    self.succ[c] = frozenset()
                    self.wait[c] = frozenset()
                    continue
                out = algorithm.route(c, node, dest)
                self.succ[c] = out
                self.wait[c] = algorithm.waiting_channels(c, node, dest)
                for o in out:
                    if o not in seen:
                        seen.add(o)
                        nxt.append(o)
            frontier = nxt
        #: link channels a message headed to ``dest`` can occupy
        self.usable: frozenset[Channel] = frozenset(c for c in self.succ if c.is_link)
        self._downstream_wait: dict[Channel, frozenset[Channel]] | None = None
        self._upstream: dict[Channel, frozenset[Channel]] | None = None

    # ------------------------------------------------------------------
    @property
    def downstream_wait(self) -> dict[Channel, frozenset[Channel]]:
        """CWG out-neighbourhoods: waiting sets over all reachable states."""
        if self._downstream_wait is None:
            self._downstream_wait = self._propagate(forward=True)
        return self._downstream_wait

    @property
    def upstream(self) -> dict[Channel, frozenset[Channel]]:
        """For each state ``c``: link channels a message at ``c`` may hold.

        The reflexive-transitive predecessors of ``c`` in the state graph,
        restricted to link channels (a held injection channel can never be
        another message's waiting channel).
        """
        if self._upstream is None:
            self._upstream = self._propagate(forward=False)
        return self._upstream

    def _propagate(self, *, forward: bool) -> dict[Channel, frozenset[Channel]]:
        """Reflexive-transitive closure aggregation over the SCC condensation.

        forward=True accumulates waiting sets downstream; forward=False
        accumulates held link channels upstream.  Runs on the integer
        kernel: the state graph is indexed locally, Tarjan's decomposition
        (labels in reverse topological order -- every inter-component edge
        points to a smaller label) replaces the networkx condensation, and
        the accumulated sets are cid bitmasks OR-ed along condensation
        edges; components sharing a value share one frozenset at the end.
        """
        states = list(self.succ)
        idx = {c: i for i, c in enumerate(states)}
        n = len(states)
        indptr = [0] * (n + 1)
        indices: list[int] = []
        if forward:
            for i, c in enumerate(states):
                for o in self.succ[c]:
                    indices.append(idx[o])
                indptr[i + 1] = len(indices)
        else:
            rev: list[list[int]] = [[] for _ in range(n)]
            for i, c in enumerate(states):
                for o in self.succ[c]:
                    rev[idx[o]].append(i)
            for i in range(n):
                indices.extend(rev[i])
                indptr[i + 1] = len(indices)
        labels, ncomp = tarjan_scc(n, indptr, indices)
        comp_val = [0] * ncomp
        for i, c in enumerate(states):
            if forward:
                m = 0
                for w in self.wait[c]:
                    m |= 1 << w.cid
                comp_val[labels[i]] |= m
            elif c.is_link:
                comp_val[labels[i]] |= 1 << c.cid
        # Successor components always carry smaller labels, so visiting
        # vertices by ascending component label reads only finalized values.
        for i in sorted(range(n), key=lambda v: labels[v]):
            li = labels[i]
            acc = comp_val[li]
            for p in range(indptr[i], indptr[i + 1]):
                lj = labels[indices[p]]
                if lj != li:
                    acc |= comp_val[lj]
            comp_val[li] = acc
        channel = self.algorithm.network.channel
        memo: dict[int, frozenset[Channel]] = {}
        out: dict[Channel, frozenset[Channel]] = {}
        for i, c in enumerate(states):
            m = comp_val[labels[i]]
            fs = memo.get(m)
            if fs is None:
                fs = memo[m] = frozenset(channel(b) for b in bits(m))
            out[c] = fs
        return out

    def reachable_from(self, start: Channel) -> frozenset[Channel]:
        """States reachable from ``start`` (inclusive)."""
        seen = {start}
        stack = [start]
        while stack:
            c = stack.pop()
            for o in self.succ.get(c, ()):
                if o not in seen:
                    seen.add(o)
                    stack.append(o)
        return frozenset(seen)


class TransitionCache:
    """Lazily builds and caches :class:`DestinationTransitions` per destination."""

    def __init__(self, algorithm: RoutingAlgorithm) -> None:
        self.algorithm = algorithm
        self._cache: dict[int, DestinationTransitions] = {}

    def __getitem__(self, dest: int) -> DestinationTransitions:
        dt = self._cache.get(dest)
        if dt is None:
            dt = self._cache[dest] = DestinationTransitions(self.algorithm, dest)
        return dt

    def peek(self, dest: int) -> DestinationTransitions | None:
        """The cached transitions for ``dest``, or ``None`` -- never builds."""
        return self._cache.get(dest)

    def store(self, dest: int, dt: DestinationTransitions) -> None:
        """Install externally built transitions (the incremental engine's
        seam: it rebuilds dirty destinations under a recorder and hands the
        result back so subsequent lookups reuse it)."""
        self._cache[dest] = dt

    def invalidate(self, dest: int) -> None:
        """Drop the cached transitions for ``dest`` (no-op when absent)."""
        self._cache.pop(dest, None)

    def all_destinations(self) -> Iterator[DestinationTransitions]:
        """Iterate transitions for every node as destination."""
        for dest in self.algorithm.network.nodes:
            yield self[dest]

    def collect_edge_dests(
        self,
        targets: Callable[[DestinationTransitions], Mapping[Channel, frozenset[Channel]]],
    ) -> dict[tuple[int, int], int]:
        """Per-edge destination bitmasks over every destination's state walk.

        The one accumulation loop the CDG and CWG builders share:
        ``targets(dt)`` maps a destination's transitions to the per-state
        out-neighbour mapping that defines the edge set -- ``dt.succ`` for
        the CDG's immediate dependencies, ``dt.downstream_wait`` for the
        CWG's occupy-while-waiting edges.  Returns ``(src_cid, dst_cid) ->
        destination bitmask``, the exact input
        :class:`~repro.core.depgraph.DepGraph` takes.
        """
        edges: dict[tuple[int, int], int] = {}
        get = edges.get
        for dt in self.all_destinations():
            bit = 1 << dt.dest
            tmap = targets(dt)
            for c1 in dt.usable:
                a = c1.cid
                for c2 in tmap[c1]:
                    k = (a, c2.cid)
                    edges[k] = get(k, 0) | bit
        return edges
