"""The integer-indexed dependency-graph kernel shared by every checker.

PR 2 rebuilt the *simulator* hot path on dense integer arrays; this module
does the same for the *checker* paths.  Every graph the paper's theory
manipulates -- the CDG (Dally & Seitz), the CWG (Definition 9), Duato's
extended CDG -- is a directed graph over the network's channel-id space with
a small integer payload per edge (destination witnesses for CDG/CWG,
dependency types for the ECDG).  :class:`DepGraph` stores exactly that:

* vertices are the dense channel ids ``0 .. num_channels-1`` -- the same id
  space :class:`~repro.routing.relation.RouteTable` and the SoA simulator
  state use, so no translation layer sits between the simulator and the
  checkers;
* adjacency is CSR (``indptr`` / ``indices`` arrays, rows sorted), so
  traversals touch flat integer lists instead of hash tables of
  :class:`~repro.topology.channel.Channel` objects;
* the per-edge payload is a single arbitrary-precision int used as a
  bitmask (destination ``d`` realizes a CWG/CDG edge iff bit ``d`` is set),
  so witness bookkeeping is bit arithmetic, not per-edge Python sets.

Cycle questions are answered SCC-first: Tarjan's algorithm decomposes the
graph once, acyclicity and single-cycle extraction read the decomposition
directly, and only full enumeration falls back to Johnson's algorithm --
run *inside* each nontrivial SCC, never on the whole graph.  On the acyclic
CWGs that dominate the catalog this replaces the exhaustive
``networkx``-based search (seconds on an 8x8 mesh) with a linear scan.

Channel-level views (``edge_dests`` dicts, ``networkx`` graphs) remain
available as adapters on the builder classes; this kernel is what the
verifiers and the Section 8 reduction actually execute on.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator, Mapping
from typing import TYPE_CHECKING

from ..topology.channel import Channel

if TYPE_CHECKING:
    from ..topology.network import Network


def bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of_ints(values: Iterable[int]) -> int:
    """Bitmask with one bit per integer in ``values``."""
    m = 0
    for v in values:
        m |= 1 << v
    return m


# ----------------------------------------------------------------------
# Tarjan SCC over raw CSR arrays (reused by transitions' local graphs)
# ----------------------------------------------------------------------
def tarjan_scc(num_vertices: int, indptr: list[int], indices: list[int]) -> tuple[list[int], int]:
    """Strongly connected components of a CSR graph, iteratively.

    Returns ``(labels, count)``.  Labels are assigned in **reverse
    topological order** of the condensation: for every edge ``u -> v``
    crossing components, ``labels[u] > labels[v]``.  Processing components
    in increasing label order therefore visits successors first (the order
    downstream accumulations want); decreasing order is a topological order.
    """
    UNSEEN = -1
    disc = [UNSEEN] * num_vertices
    low = [0] * num_vertices
    labels = [UNSEEN] * num_vertices
    on_stack = bytearray(num_vertices)
    scc_stack: list[int] = []
    counter = 0
    ncomp = 0
    for root in range(num_vertices):
        if disc[root] != UNSEEN:
            continue
        work: list[list[int]] = [[root, indptr[root]]]
        while work:
            frame = work[-1]
            v = frame[0]
            if disc[v] == UNSEEN:
                disc[v] = low[v] = counter
                counter += 1
                scc_stack.append(v)
                on_stack[v] = 1
            advanced = False
            ptr = frame[1]
            end = indptr[v + 1]
            while ptr < end:
                w = indices[ptr]
                ptr += 1
                if disc[w] == UNSEEN:
                    frame[1] = ptr
                    work.append([w, indptr[w]])
                    advanced = True
                    break
                if on_stack[w] and low[w] < low[v]:
                    low[v] = low[w]
            if advanced:
                continue
            work.pop()
            if low[v] == disc[v]:
                while True:
                    w = scc_stack.pop()
                    on_stack[w] = 0
                    labels[w] = ncomp
                    if w == v:
                        break
                ncomp += 1
            if work:
                u = work[-1][0]
                if low[v] < low[u]:
                    low[u] = low[v]
    return labels, ncomp


def _scc_sets(vertices: set[int], adj: Mapping[int, list[int]]) -> list[set[int]]:
    """SCCs of the subgraph induced on ``vertices`` (dict-adjacency variant)."""
    order = sorted(vertices)
    index = {v: i for i, v in enumerate(order)}
    n = len(order)
    indptr = [0] * (n + 1)
    indices: list[int] = []
    for i, v in enumerate(order):
        for w in adj.get(v, ()):
            if w in vertices:
                indices.append(index[w])
        indptr[i + 1] = len(indices)
    labels, ncomp = tarjan_scc(n, indptr, indices)
    comps: list[set[int]] = [set() for _ in range(ncomp)]
    for i, v in enumerate(order):
        comps[labels[i]].add(v)
    return comps


def find_cycle_adj(vertices: set[int], adj: Mapping[int, list[int]]) -> list[int] | None:
    """One directed cycle of a dict-adjacency graph, or ``None`` when acyclic.

    SCC-first and deterministic (lowest-label nontrivial component, start at
    its lowest vertex, walk the lowest in-component successor) -- the
    dict-adjacency twin of :meth:`DepGraph.find_cycle_cids`, chosen to
    return the same witness on the same graph.
    """
    for u in sorted(vertices):
        if u in adj.get(u, ()):
            return [u]
    nontrivial = [c for c in _scc_sets(vertices, adj) if len(c) > 1]
    if not nontrivial:
        return None
    comp = nontrivial[0]
    start = min(comp)
    path = [start]
    pos = {start: 0}
    v = start
    while True:
        v = min(w for w in adj[v] if w in comp)
        if v in pos:
            return path[pos[v]:]
        pos[v] = len(path)
        path.append(v)


def iter_cycles_adj(adj: Mapping[int, list[int]]) -> Iterator[list[int]]:
    """Every simple cycle of a dict-adjacency graph (self-loops included).

    Johnson's algorithm, applied only inside nontrivial strongly connected
    components -- the SCC decomposition both skips acyclic regions entirely
    and bounds each enumeration to its component.  Self-loops (ascending)
    come first, then per-component enumeration.
    """
    loopless: dict[int, list[int]] = {}
    for u in sorted(adj):
        nbrs = adj[u]
        if u in nbrs:
            yield [u]
        trimmed = [w for w in nbrs if w != u]
        if trimmed:
            loopless[u] = trimmed
    adj = loopless
    stack_sccs = [scc for scc in _scc_sets(set(adj), adj) if len(scc) > 1]
    while stack_sccs:
        scc = stack_sccs.pop()
        start = min(scc)
        path = [start]
        blocked = {start}
        closed: set[int] = set()
        B: dict[int, set[int]] = {}
        nbr_stack = [[w for w in adj[start] if w in scc]]
        while nbr_stack:
            nbrs = nbr_stack[-1]
            this = path[-1]
            if nbrs:
                w = nbrs.pop()
                if w == start:
                    yield path[:]
                    closed.update(path)
                elif w not in blocked:
                    path.append(w)
                    nbr_stack.append([x for x in adj[w] if x in scc])
                    closed.discard(w)
                    blocked.add(w)
                    continue
            if not nbrs:
                if this in closed:
                    # cascade unblock
                    relax = [this]
                    while relax:
                        v = relax.pop()
                        if v in blocked:
                            blocked.discard(v)
                            relax.extend(B.pop(v, ()))
                else:
                    for w in adj[this]:
                        if w in scc and this not in B.setdefault(w, set()):
                            B[w].add(this)
                nbr_stack.pop()
                path.pop()
        scc.discard(start)
        stack_sccs.extend(s for s in _scc_sets(scc, adj) if len(s) > 1)


class DepGraph:
    """An integer-indexed dependency graph with per-edge payload bitmasks.

    Vertices are the channel ids of ``network`` (all of them -- builders
    decide which subset they consider "their" vertex set; isolated vertices
    cost nothing in CSR).  ``edge_masks`` maps ``(src_cid, dst_cid)`` to a
    nonzero payload mask.
    """

    __slots__ = ("network", "num_vertices", "indptr", "indices", "masks",
                 "_scc", "_rev", "_fingerprint")

    def __init__(self, network: Network, edge_masks: Mapping[tuple[int, int], int]) -> None:
        self.network = network
        self.num_vertices = n = network.num_channels
        items = sorted(edge_masks.items())
        indptr = [0] * (n + 1)
        indices = [0] * len(items)
        masks = [0] * len(items)
        for i, ((u, v), m) in enumerate(items):
            indptr[u + 1] += 1
            indices[i] = v
            masks[i] = m
        for u in range(n):
            indptr[u + 1] += indptr[u]
        self.indptr = indptr
        self.indices = indices
        self.masks = masks
        self._scc: tuple[list[int], int] | None = None
        self._rev: tuple[list[int], list[int]] | None = None
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def edge_cids(self) -> list[tuple[int, int]]:
        """All edges as ``(src_cid, dst_cid)``, sorted."""
        out: list[tuple[int, int]] = []
        indptr, indices = self.indptr, self.indices
        for u in range(self.num_vertices):
            for i in range(indptr[u], indptr[u + 1]):
                out.append((u, indices[i]))
        return out

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(src_cid, dst_cid, payload_mask)``, sorted by (src, dst)."""
        indptr, indices, masks = self.indptr, self.indices, self.masks
        for u in range(self.num_vertices):
            for i in range(indptr[u], indptr[u + 1]):
                yield u, indices[i], masks[i]

    def succ_cids(self, u: int) -> list[int]:
        """Out-neighbour cids of ``u`` (ascending)."""
        return self.indices[self.indptr[u]:self.indptr[u + 1]]

    def _edge_index(self, u: int, v: int) -> int:
        lo, hi = self.indptr[u], self.indptr[u + 1]
        i = bisect_left(self.indices, v, lo, hi)
        if i < hi and self.indices[i] == v:
            return i
        return -1

    def has_edge(self, u: int, v: int) -> bool:
        return self._edge_index(u, v) >= 0

    def mask_of(self, u: int, v: int) -> int:
        """Payload mask of edge ``(u, v)`` (0 when absent)."""
        i = self._edge_index(u, v)
        return self.masks[i] if i >= 0 else 0

    def target_cids(self) -> set[int]:
        """All cids that appear as an edge target."""
        return set(self.indices)

    def channel_edges(self) -> list[tuple[Channel, Channel]]:
        """Channel-object view of :meth:`edge_cids` (adapter for reports)."""
        ch = self.network.channel
        return [(ch(u), ch(v)) for u, v in self.edge_cids()]

    # ------------------------------------------------------------------
    # SCC-first cycle structure
    # ------------------------------------------------------------------
    def scc(self) -> tuple[list[int], int]:
        """Cached Tarjan decomposition: ``(labels, num_components)``."""
        if self._scc is None:
            self._scc = tarjan_scc(self.num_vertices, self.indptr, self.indices)
        return self._scc

    def refresh_scc_from(self, old: "DepGraph", touched: Iterable[int]) -> dict[str, int]:
        """Delta-aware Tarjan refresh against the predecessor graph ``old``.

        Tarjan labels depend only on the CSR structure (``indptr`` /
        ``indices``, never the payload masks), so a payload-only delta
        transfers the old decomposition verbatim -- no Tarjan runs at all.
        A structural delta recomputes the canonical decomposition (witness
        extraction must stay bit-identical to a cold build, so labels are
        never stitched together incrementally) but bounds its blast radius
        with the dirty-SCC frontier: :func:`dirty_components` over ``old``
        and ``touched`` (the endpoints of every added or removed edge) names
        the only components whose membership may change, every other
        component is checked to survive with its exact membership, and the
        frontier sizes are returned for observability.  ``touched`` from a
        delta that was *not* actually applied makes the frontier unsound --
        the returned ``scc_frontier_violations`` counter (0 in any correct
        run) is the tripwire the differential tests pin.
        """
        stats = {
            "scc_transferred": 0,
            "scc_dirty_components": 0,
            "scc_dirty_vertices": 0,
            "scc_reused_components": 0,
            "scc_frontier_violations": 0,
        }
        if (
            old.num_vertices == self.num_vertices
            and old.indptr == self.indptr
            and old.indices == self.indices
        ):
            self._scc = old.scc()
            stats["scc_transferred"] = 1
            stats["scc_reused_components"] = self._scc[1]
            return stats
        if old.num_vertices != self.num_vertices:
            _, ncomp = self.scc()
            stats["scc_dirty_components"] = ncomp
            stats["scc_dirty_vertices"] = self.num_vertices
            return stats
        dirty = dirty_components(old, touched)
        old_labels, old_ncomp = old.scc()
        new_labels, new_ncomp = self.scc()
        old_sizes = [0] * old_ncomp
        new_sizes = [0] * new_ncomp
        for v in range(self.num_vertices):
            old_sizes[old_labels[v]] += 1
            new_sizes[new_labels[v]] += 1
        # Differential guard: a component outside the frontier must map
        # one-to-one onto a new component with identical membership.
        image: dict[int, int] = {}
        violations = 0
        for v in range(self.num_vertices):
            lo = old_labels[v]
            if lo in dirty:
                continue
            ln = image.setdefault(lo, new_labels[v])
            if ln != new_labels[v] or new_sizes[ln] != old_sizes[lo]:
                violations += 1
        stats["scc_dirty_components"] = len(dirty)
        stats["scc_dirty_vertices"] = sum(old_sizes[c] for c in dirty)
        stats["scc_reused_components"] = old_ncomp - len(dirty)
        stats["scc_frontier_violations"] = violations
        return stats

    def _self_loops(self) -> list[int]:
        indptr, indices = self.indptr, self.indices
        return [
            u for u in range(self.num_vertices)
            for i in range(indptr[u], indptr[u + 1]) if indices[i] == u
        ]

    def is_acyclic(self) -> bool:
        """True iff the graph has no directed cycle (self-loops included)."""
        labels, ncomp = self.scc()
        return ncomp == self.num_vertices and not self._self_loops()

    def topo_cids(self) -> list[int] | None:
        """The vertex ids in a topological order, or ``None`` if cyclic.

        Tarjan labels are a reverse topological order of the (singleton)
        components, so sorting by decreasing label is a valid order.
        """
        if not self.is_acyclic():
            return None
        labels, _ = self.scc()
        return sorted(range(self.num_vertices), key=lambda v: -labels[v])

    def find_cycle_cids(self) -> list[int] | None:
        """One directed cycle as a cid list, or ``None`` when acyclic.

        SCC-first: a self-loop or any nontrivial component certifies a
        cycle; the witness walk stays inside that component, so no global
        search happens.  Deterministic (lowest-cid component member, lowest
        successor first).
        """
        loops = self._self_loops()
        if loops:
            return [loops[0]]
        labels, ncomp = self.scc()
        if ncomp == self.num_vertices:
            return None
        counts = [0] * ncomp
        for v in range(self.num_vertices):
            counts[labels[v]] += 1
        target = min(
            (labels[v] for v in range(self.num_vertices) if counts[labels[v]] > 1),
            default=None,
        )
        assert target is not None
        comp = [v for v in range(self.num_vertices) if labels[v] == target]
        start = comp[0]
        inside = set(comp)
        path = [start]
        pos = {start: 0}
        v = start
        while True:
            v = next(w for w in self.succ_cids(v) if w in inside)
            if v in pos:
                return path[pos[v]:]
            pos[v] = len(path)
            path.append(v)

    # ------------------------------------------------------------------
    # full enumeration: Johnson inside each nontrivial SCC
    # ------------------------------------------------------------------
    def iter_cycle_cids(self) -> Iterator[list[int]]:
        """Every simple cycle as a cid list (self-loops included).

        Delegates to :func:`iter_cycles_adj`: Johnson's algorithm inside
        each nontrivial strongly connected component only.
        """
        indptr = self.indptr
        adj = {
            u: self.succ_cids(u)
            for u in range(self.num_vertices)
            if indptr[u] != indptr[u + 1]
        }
        yield from iter_cycles_adj(adj)

    # ------------------------------------------------------------------
    # reachability helpers (the True-Cycle search's pruning substrate)
    # ------------------------------------------------------------------
    def _reverse_csr(self) -> tuple[list[int], list[int]]:
        """Cached transposed adjacency (counting sort; built once per graph)."""
        if self._rev is None:
            n = self.num_vertices
            indptr, indices = self.indptr, self.indices
            rindptr = [0] * (n + 1)
            for v in indices:
                rindptr[v + 1] += 1
            for v in range(n):
                rindptr[v + 1] += rindptr[v]
            rindices = [0] * len(indices)
            pos = list(rindptr)
            for u in range(n):
                for i in range(indptr[u], indptr[u + 1]):
                    v = indices[i]
                    rindices[pos[v]] = u
                    pos[v] += 1
            self._rev = (rindptr, rindices)
        return self._rev

    def reverse_reachable(self, target: int, *, min_cid: int = 0) -> set[int]:
        """Cids with a path to ``target`` through vertices ``>= min_cid``.

        The canonical-rotation pruning of the True-Cycle search: a cycle
        canonicalized at ``target`` only visits cids at least ``target``,
        so segments waiting outside this set can never close the cycle.
        The transposed adjacency is cached on the graph (one counting sort),
        so per-target calls cost only the traversal -- the ``min_cid`` cut
        is applied while walking instead of while building.
        """
        if target < min_cid or target >= self.num_vertices:
            return set()
        rindptr, rindices = self._reverse_csr()
        seen: set[int] = set()
        frontier = [target]
        while frontier:
            v = frontier.pop()
            for i in range(rindptr[v], rindptr[v + 1]):
                u = rindices[i]
                if u >= min_cid and u not in seen:
                    seen.add(u)
                    frontier.append(u)
        return seen

    # ------------------------------------------------------------------
    # content addressing
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content-addressed digest of the CSR arrays (see pipeline docs)."""
        if self._fingerprint is None:
            from ..pipeline.fingerprint import fingerprint_depgraph

            self._fingerprint = fingerprint_depgraph(self)
        return self._fingerprint

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int | bool]:
        """Headline structure facts (the CLI's ``graph-stats`` payload)."""
        labels, ncomp = self.scc()
        counts = [0] * ncomp
        for v in range(self.num_vertices):
            counts[labels[v]] += 1
        nontrivial = [c for c in counts if c > 1]
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "self_loops": len(self._self_loops()),
            "sccs": ncomp,
            "nontrivial_sccs": len(nontrivial),
            "largest_scc": max(nontrivial, default=1),
            "acyclic": self.is_acyclic(),
        }

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:
        return (
            f"<DepGraph {self.num_vertices} vertices, {self.num_edges} edges, "
            f"{'acyclic' if self.is_acyclic() else 'cyclic'}>"
        )


def channel_adjacency(network: "Network") -> DepGraph:
    """The link-channel adjacency digraph: ``c -> c'`` iff ``head(c) == tail(c')``.

    The coarsest dependency structure a network supports -- every CDG, CWG,
    and ECDG is a subgraph of it, and the existence decider's incremental
    session refreshes its Tarjan decomposition through
    :meth:`DepGraph.refresh_scc_from` to bound which certificates a link
    delta can invalidate.  Payload masks are 1 (pure structure).
    """
    edges: dict[tuple[int, int], int] = {}
    for c in network.link_channels:
        for c2 in network.out_channels(c.dst):
            edges[(c.cid, c2.cid)] = 1
    return DepGraph(network, edges)


def dirty_components(dep: DepGraph, touched: Iterable[int]) -> set[int]:
    """Condensation labels of ``dep`` whose SCC membership a delta may change.

    ``touched`` holds the endpoints of every edge a structural delta adds to
    or removes from ``dep`` (the *old* graph).  A vertex changes component
    only through a cycle that uses an added edge or an old cycle broken by a
    removed edge; in both cases every affected old component lies on a path
    segment between touched vertices, so it both *reaches* a touched
    component and is *reachable from* one in the old condensation.  The
    dirty frontier is therefore the intersection of the forward and backward
    condensation closures of the touched components; everything outside it
    keeps its membership verbatim (which
    :meth:`DepGraph.refresh_scc_from` verifies differentially).
    """
    labels, ncomp = dep.scc()
    seeds = {labels[v] for v in touched if 0 <= v < dep.num_vertices}
    if not seeds:
        return set()
    fwd: list[set[int]] = [set() for _ in range(ncomp)]
    rev: list[set[int]] = [set() for _ in range(ncomp)]
    indptr, indices = dep.indptr, dep.indices
    for u in range(dep.num_vertices):
        lu = labels[u]
        for i in range(indptr[u], indptr[u + 1]):
            lv = labels[indices[i]]
            if lv != lu:
                fwd[lu].add(lv)
                rev[lv].add(lu)

    def closure(adj: list[set[int]]) -> set[int]:
        seen = set(seeds)
        stack = list(seeds)
        while stack:
            comp = stack.pop()
            for nxt in adj[comp]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    return closure(fwd) & closure(rev)
