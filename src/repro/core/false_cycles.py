"""True Cycles vs. False Resource Cycles (Section 7).

A cycle in the CWG is only a *potential* deadlock: each edge ``(c_i,
c_{i+1})`` must be realized by a message that occupies ``c_i`` (plus every
channel between ``c_i`` and where it blocks) while waiting on ``c_{i+1}``,
and in a deadlock configuration all those held channels must be
simultaneously occupied by *distinct* messages.  When every realization of
the cycle forces two messages to occupy a common channel, the cycle is a
**False Resource Cycle** -- physically impossible, hence harmless.
Otherwise it is a **True Cycle**, and Theorem 2's necessity construction
turns it into a reachable deadlock.

This module mechanizes the Section 7.2 test:

1. per cycle edge, enumerate *witness segments* -- channel paths
   ``c_i = p_0 -> p_1 -> ... -> p_m`` permitted for some destination with
   ``c_{i+1}`` in the waiting set at ``p_m``;
2. search (with backtracking) for one segment per edge such that all chosen
   segments are pairwise channel-disjoint -- the channels each message holds
   in the configuration;
3. for algorithms that are not suffix-closed, additionally check each
   message can *reach* its segment head: either a source adjacent to it may
   acquire it directly, or a pre-path from some injection channel exists
   that avoids every held channel (pre-path channels are released before the
   deadlock closes, so they may overlap each other -- "shared consecutively
   rather than simultaneously").

The paper notes there is no complete algorithm for the last corner (shared
pre-cycle channels whose consecutive use cannot be ordered); the classifier
returns :attr:`CycleClass.UNDETERMINED` there, and every verifier treats
UNDETERMINED as potentially true -- conservative in the safe direction (a
routing algorithm is never certified deadlock-free on an unresolved cycle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..topology.channel import Channel
from .cwg import ChannelWaitingGraph
from .cycles import Cycle


class CycleClass(enum.Enum):
    TRUE = "true"
    FALSE_RESOURCE = "false-resource"
    #: in-cycle disjointness holds but pre-cycle reachability could not be
    #: resolved without sharing; treated as TRUE by all verifiers
    UNDETERMINED = "undetermined"


@dataclass
class Segment:
    """One edge's witness: the channels its message holds, in order."""

    dest: int
    path: tuple[Channel, ...]  # p_0 .. p_m, all held by the message
    waits_on: Channel

    @property
    def held(self) -> frozenset[Channel]:
        return frozenset(self.path)


@dataclass
class Classification:
    """Outcome of classifying one CWG cycle."""

    cycle: Cycle
    kind: CycleClass
    #: for TRUE: the channel-disjoint witness, one segment per cycle edge
    witness: list[Segment] = field(default_factory=list)
    #: for FALSE_RESOURCE / UNDETERMINED: human-readable reason
    reason: str = ""

    @property
    def is_true(self) -> bool:
        return self.kind is CycleClass.TRUE

    @property
    def possibly_true(self) -> bool:
        return self.kind is not CycleClass.FALSE_RESOURCE


class CycleClassifier:
    """Section 7.2 classifier bound to one CWG.

    Parameters
    ----------
    max_segment_len:
        Longest witness segment explored per edge (default: the number of
        link channels -- segments are simple channel paths so this is
        exhaustive).
    max_segments_per_edge:
        Cap on enumerated witnesses per edge before the search gives up and
        reports UNDETERMINED (never triggered on the paper's examples).
    """

    def __init__(
        self,
        cwg: ChannelWaitingGraph,
        *,
        max_segment_len: int | None = None,
        max_segments_per_edge: int = 5000,
    ) -> None:
        self.cwg = cwg
        self.algorithm = cwg.algorithm
        self.transitions = cwg.transitions
        n_link = len(cwg.algorithm.network.link_channels)
        self.max_segment_len = max_segment_len if max_segment_len is not None else n_link
        self.max_segments_per_edge = max_segments_per_edge

    # ------------------------------------------------------------------
    # witness segment enumeration
    # ------------------------------------------------------------------
    def segments_for_edge(self, a: Channel, b: Channel) -> list[Segment]:
        """All witness segments realizing CWG edge ``(a, b)``, shortest first."""
        out: list[Segment] = []
        for dest in sorted(self.cwg.destinations_for((a, b))):
            dt = self.transitions[dest]
            if a not in dt.usable:
                continue
            path: list[Channel] = [a]
            on_path = {a}

            def dfs(c: Channel) -> None:
                if len(out) >= self.max_segments_per_edge:
                    return
                if b in dt.wait.get(c, ()):
                    out.append(Segment(dest, tuple(path), b))
                if len(path) >= self.max_segment_len:
                    return
                for nxt in sorted(dt.succ.get(c, ()), key=lambda ch: ch.cid):
                    if nxt in on_path:
                        continue
                    path.append(nxt)
                    on_path.add(nxt)
                    dfs(nxt)
                    path.pop()
                    on_path.discard(nxt)

            dfs(a)
        out.sort(key=lambda s: len(s.path))
        return out

    # ------------------------------------------------------------------
    # pre-cycle reachability (phase 2)
    # ------------------------------------------------------------------
    def _startable_at_source(self, seg: Segment) -> bool:
        """Can a message *sourced* at the segment head's tail acquire it?"""
        dt = self.transitions[seg.dest]
        head = seg.path[0]
        inj = self.algorithm.network.injection_channel(head.src)
        return head in dt.succ.get(inj, frozenset())

    def _prepath_avoiding(self, seg: Segment, forbidden: frozenset[Channel]) -> bool:
        """Is there a path from some injection to the segment head avoiding
        ``forbidden`` channels (other messages' held channels)?"""
        dt = self.transitions[seg.dest]
        head = seg.path[0]
        seen: set[Channel] = set()
        stack: list[Channel] = [c for c in dt.starts]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            for nxt in dt.succ.get(c, ()):
                if nxt == head:
                    return True
                if nxt.is_link and nxt in forbidden:
                    continue
                if nxt not in seen:
                    stack.append(nxt)
        return False

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def classify(self, cycle: Cycle) -> Classification:
        """Run the Section 7.2 test on ``cycle``."""
        edges = cycle.edges
        per_edge = [self.segments_for_edge(a, b) for a, b in edges]
        for i, segs in enumerate(per_edge):
            if not segs:
                return Classification(
                    cycle, CycleClass.FALSE_RESOURCE,
                    reason=f"edge {edges[i][0]!r} -> {edges[i][1]!r} has no witness segment",
                )
            if len(segs) >= self.max_segments_per_edge:
                return Classification(
                    cycle, CycleClass.UNDETERMINED,
                    reason="segment enumeration capped; raise max_segments_per_edge",
                )

        # Phase 1: backtracking search for pairwise channel-disjoint segments,
        # most-constrained edge first.
        order = sorted(range(len(edges)), key=lambda i: len(per_edge[i]))
        chosen: list[Segment | None] = [None] * len(edges)

        def search(pos: int, used: frozenset[Channel]) -> bool:
            if pos == len(order):
                return True
            idx = order[pos]
            for seg in per_edge[idx]:
                if used & seg.held:
                    continue
                chosen[idx] = seg
                if search(pos + 1, used | seg.held):
                    return True
                chosen[idx] = None
            return False

        if not search(0, frozenset()):
            return Classification(
                cycle, CycleClass.FALSE_RESOURCE,
                reason="no channel-disjoint assignment of witness segments exists",
            )
        witness = [seg for seg in chosen if seg is not None]

        # Phase 2: each message must be able to come to hold its segment head
        # without occupying another message's held channel.
        all_held: frozenset[Channel] = frozenset().union(*(s.held for s in witness))
        for seg in witness:
            if self._startable_at_source(seg):
                continue
            others = all_held - seg.held
            if not self._prepath_avoiding(seg, others):
                return Classification(
                    cycle, CycleClass.UNDETERMINED,
                    witness=witness,
                    reason=(
                        f"segment starting at {seg.path[0]!r} (dest {seg.dest}) is only "
                        "reachable through channels held by other messages in the cycle"
                    ),
                )
        return Classification(cycle, CycleClass.TRUE, witness=witness)

    def classify_all(self, cycles: list[Cycle]) -> list[Classification]:
        return [self.classify(cy) for cy in cycles]
