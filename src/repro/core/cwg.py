"""The channel waiting graph (Definition 9) -- the paper's central object.

The CWG has a vertex per (virtual) channel and an arc ``(c1, c2)`` whenever
some message, on some permitted path, can *occupy* ``c1`` while *waiting on*
``c2``.  Because message lengths are arbitrary (Assumption 1 / the note
under Definition 9), "occupy while waiting" means ``c2`` is a waiting
channel at *any* routing state reachable after acquiring ``c1`` -- not just
the immediately next hop.  The CWG is a subgraph of the channel dependency
graph restricted to dependencies that can actually stall a message, which
is why requiring it to be (True-Cycle-)acyclic is strictly weaker than every
acyclic-CDG condition.

:class:`ChannelWaitingGraph` is a thin builder over the integer kernel: one
transition walk (shared with the CDG builder via
:meth:`~repro.core.transitions.TransitionCache.collect_edge_dests`) emits a
:class:`~repro.core.depgraph.DepGraph` whose per-edge bitmask records the
destinations that realize each edge; the False-Resource-Cycle classifier
re-derives concrete witness paths from those destinations on demand.
Channel-object views (``edge_dests``, ``graph()``) are adapters over the
kernel and materialize lazily.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import networkx as nx

from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel
from .depgraph import DepGraph, bits
from .transitions import TransitionCache


class ChannelWaitingGraph:
    """The CWG of a routing algorithm, with per-edge destination witnesses."""

    kind = "CWG"

    def __init__(self, algorithm: RoutingAlgorithm, *, transitions: TransitionCache | None = None) -> None:
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        #: the integer-indexed kernel all checkers execute on
        self.dep: DepGraph = DepGraph(
            algorithm.network,
            self.transitions.collect_edge_dests(lambda dt: dt.downstream_wait_masks),
        )
        self._edge_dests: dict[tuple[Channel, Channel], set[int]] | None = None

    # ------------------------------------------------------------------
    # Channel-level adapter views
    # ------------------------------------------------------------------
    @property
    def edge_dests(self) -> dict[tuple[Channel, Channel], set[int]]:
        """edge -> destinations whose traffic realizes it (adapter view)."""
        if self._edge_dests is None:
            channel = self.algorithm.network.channel
            self._edge_dests = {
                (channel(u), channel(v)): set(bits(m))
                for u, v, m in self.dep.iter_edges()
            }
        return self._edge_dests

    # ------------------------------------------------------------------
    # content-addressed cache hooks (repro.pipeline)
    # ------------------------------------------------------------------
    def cache_payload(self) -> list[list[Any]]:
        """JSON-safe edge list ``[[src_cid, dst_cid, [dests...]], ...]``."""
        return [[u, v, list(bits(m))] for u, v, m in self.dep.iter_edges()]

    @classmethod
    def from_cached_edges(
        cls,
        algorithm: RoutingAlgorithm,
        payload: list[list[Any]],
        *,
        transitions: TransitionCache | None = None,
    ) -> ChannelWaitingGraph:
        """Rebuild a graph from :meth:`cache_payload` output without rerunning
        the per-destination waiting-set propagation.  The payload must have
        been produced for an identical ``(network, relation)`` pair -- the
        pipeline guarantees that by fingerprinting both.
        """
        self = cls.__new__(cls)
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        masks: dict[tuple[int, int], int] = {}
        for a, b, dests in payload:
            m = 0
            for d in dests:
                m |= 1 << d
            masks[(a, b)] = m
        self.dep = DepGraph(algorithm.network, masks)
        self._edge_dests = None
        return self

    @classmethod
    def from_depgraph(
        cls,
        algorithm: RoutingAlgorithm,
        dep: DepGraph,
        *,
        transitions: TransitionCache | None = None,
    ) -> ChannelWaitingGraph:
        """Wrap an already-assembled kernel (the incremental engine's seam).

        ``dep`` must be the CWG kernel of exactly this ``algorithm`` -- the
        incremental session maintains it delta-by-delta and proves the
        equivalence by digest against a cold build.
        """
        self = cls.__new__(cls)
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        self.dep = dep
        self._edge_dests = None
        return self

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> list[Channel]:
        """All link channels of the network (including unused ones)."""
        return self.algorithm.network.link_channels

    @property
    def edges(self) -> list[tuple[Channel, Channel]]:
        return self.dep.channel_edges()

    def graph(self, *, removed: Iterable[tuple[Channel, Channel]] = ()) -> nx.DiGraph:
        """networkx view of the CWG, optionally with ``removed`` edges deleted."""
        g = nx.DiGraph()
        g.add_nodes_from(self.vertices)
        skip = set(removed)
        for e in self.edges:
            if e not in skip:
                g.add_edge(*e)
        return g

    def is_acyclic(self) -> bool:
        return self.dep.is_acyclic()

    def destinations_for(self, edge: tuple[Channel, Channel]) -> frozenset[int]:
        a, b = edge
        return frozenset(bits(self.dep.mask_of(a.cid, b.cid)))

    def __contains__(self, edge: tuple[Channel, Channel]) -> bool:
        a, b = edge
        return self.dep.has_edge(a.cid, b.cid)

    def __len__(self) -> int:
        return self.dep.num_edges

    def __repr__(self) -> str:
        return (
            f"<{self.kind} of {self.algorithm.name}: "
            f"{len(self.vertices)} channels, {len(self.dep)} edges>"
        )


def wait_connected(
    algorithm: RoutingAlgorithm, *, transitions: TransitionCache | None = None
) -> tuple[bool, str]:
    """Definition 10: every reachable routing state has a waiting channel.

    Returns ``(holds, counterexample_description)``.  A state is a pair
    (input channel, node=channel head) reached by some message; at every
    state short of the destination, the waiting set must be a nonempty
    subset of the route set.
    """
    cache = transitions or TransitionCache(algorithm)
    for dt in cache.all_destinations():
        for c, out in dt.succ.items():
            if c.dst == dt.dest:
                continue
            w = dt.wait[c]
            if not w:
                return False, (
                    f"state (input={c!r}, node={c.dst}, dest={dt.dest}) has no waiting channel"
                )
            if not w <= out:
                return False, (
                    f"waiting set at (input={c!r}, node={c.dst}, dest={dt.dest}) "
                    f"is not a subset of the route set"
                )
            if not out:
                return False, (
                    f"state (input={c!r}, node={c.dst}, dest={dt.dest}) has no output channel"
                )
    return True, ""
