"""The paper's primary contribution, mechanized.

* :mod:`~repro.core.depgraph` -- the integer-indexed CSR graph kernel every
  dependency/waiting graph compiles to and every checker executes on;
* :mod:`~repro.core.transitions` -- per-destination routing-state graphs,
  the substrate all graph constructions share;
* :mod:`~repro.core.cwg` -- the channel waiting graph (Definition 9) and
  wait-connectivity (Definition 10);
* :mod:`~repro.core.cycles` -- simple-cycle enumeration;
* :mod:`~repro.core.false_cycles` -- the Section 7.2 True vs. False
  Resource Cycle classifier;
* :mod:`~repro.core.reduction` -- the Section 8 CWG -> CWG' methodology.
"""

from .cwg import ChannelWaitingGraph, wait_connected
from .cycles import Cycle, CycleExplosion, find_cycles, find_one_cycle, has_cycle, iter_simple_cycles
from .depgraph import DepGraph, bits, mask_of_ints, tarjan_scc
from .false_cycles import Classification, CycleClass, CycleClassifier, Segment
from .reduction import CWGReducer, ReductionResult, ReductionStep
from .transitions import DestinationTransitions, TransitionCache

__all__ = [
    "CWGReducer",
    "ChannelWaitingGraph",
    "Classification",
    "Cycle",
    "CycleClass",
    "CycleClassifier",
    "CycleExplosion",
    "DepGraph",
    "DestinationTransitions",
    "ReductionResult",
    "ReductionStep",
    "Segment",
    "TransitionCache",
    "bits",
    "find_cycles",
    "find_one_cycle",
    "has_cycle",
    "iter_simple_cycles",
    "mask_of_ints",
    "tarjan_scc",
    "wait_connected",
]
