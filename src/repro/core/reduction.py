"""The Section 8 design methodology: reducing the CWG to a CWG'.

For routing algorithms that let a blocked message wait on *any* permitted
output (Theorem 3 regime), deadlock freedom holds iff edges can be removed
from the CWG -- i.e. the waiting discipline can be narrowed -- until no True
Cycle remains, while the algorithm stays **wait-connected for CWG'**
(Definition 10): at every reachable routing state, some waiting channel's
dependency *from the input channel* must survive in CWG'.  Because routing
uses only local information the discipline is per-state, so the test is
exact and cheap: a waiting channel ``w`` survives at state ``(c_in, d)``
iff the edge ``(c_in, w)`` has not been removed.

The algorithm follows the paper's six steps literally, including the
bookkeeping sets (``edges`` = the cycle, ``attempted`` = tried removals,
``removed`` = current removals -- the paper's three per-cycle sets) and the
ordered resolved-cycle list used for backtracking.  Cycles already broken by
an earlier removal are skipped, and False Resource Cycles are filtered out
up front by the Section 7.2 classifier.

Worst case this is exponential (the paper says as much); the networks it is
meant for -- the Figure 1-4 examples and small meshes/cubes -- are tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.channel import Channel
from .cwg import ChannelWaitingGraph
from .cycles import find_cycles
from .false_cycles import Classification, CycleClassifier

Edge = tuple[Channel, Channel]


@dataclass
class ReductionStep:
    """One step of the Section 8 trace (for the worked-example benchmark)."""

    action: str  # "remove" | "reject" | "backtrack" | "skip"
    cycle_index: int | None
    edge: Edge | None = None
    note: str = ""

    def __str__(self) -> str:
        e = ""
        if self.edge is not None:
            a, b = self.edge
            e = f" ({a.label or a.cid} -> {b.label or b.cid})"
        c = f" sigma_{self.cycle_index + 1}" if self.cycle_index is not None else ""
        return f"{self.action}{c}{e}{(': ' + self.note) if self.note else ''}"


@dataclass
class ReductionResult:
    """Outcome of the CWG -> CWG' search."""

    success: bool
    removed: frozenset[Edge]
    true_cycles: list[Classification]
    false_cycles: list[Classification]
    steps: list[ReductionStep] = field(default_factory=list)
    reason: str = ""

    def cwg_prime_edges(self, cwg: ChannelWaitingGraph) -> list[Edge]:
        """Edges of the resulting CWG' (original edges minus removals)."""
        return [e for e in cwg.edges if e not in self.removed]


class CWGReducer:
    """Runs the Section 8 reduction on a :class:`ChannelWaitingGraph`."""

    def __init__(
        self,
        cwg: ChannelWaitingGraph,
        *,
        classifier: CycleClassifier | None = None,
        cycle_limit: int | None = 100_000,
    ) -> None:
        self.cwg = cwg
        self.classifier = classifier or CycleClassifier(cwg)
        self.cycle_limit = cycle_limit

    # ------------------------------------------------------------------
    # wait-connectivity under a removal set
    # ------------------------------------------------------------------
    def surviving_waits(self, removed: frozenset[Edge]) -> dict[tuple[int, int], frozenset[Channel]] | None:
        """Per-state surviving waiting sets, or ``None`` if some state has none.

        Definition 10 "wait-connected for CWG'": at every reachable routing
        state there must remain a waiting channel ``w`` whose dependency
        *from the input channel* ``(c_in, w)`` is still in CWG'.  (Edges from
        channels held further upstream may be removed freely -- they encode
        dependencies that Theorem 3's argument shows cannot by themselves
        sustain a deadlock once every leading dependency is covered.)

        Keys are ``(input_channel_cid, dest)``; values are the surviving
        waiting channels.  Injection-channel states always survive: the CWG
        has no vertices for injection channels, so no edge of theirs can be
        removed.
        """
        out: dict[tuple[int, int], frozenset[Channel]] = {}
        for dt in self.cwg.transitions.all_destinations():
            for c, waits in dt.wait.items():
                if c.dst == dt.dest:
                    continue
                if c.is_link:
                    ok = frozenset(w for w in waits if (c, w) not in removed)
                else:
                    ok = waits
                if not ok:
                    return None
                out[(c.cid, dt.dest)] = ok
        return out

    def is_wait_connected(self, removed: frozenset[Edge]) -> bool:
        return self.surviving_waits(removed) is not None

    # ------------------------------------------------------------------
    # the Section 8 backtracking search
    # ------------------------------------------------------------------
    def run(self) -> ReductionResult:
        """Execute steps 1-6 of the Section 8 algorithm."""
        # Step 1: list all cycles; Step 2: drop False Resource Cycles.
        cycles = find_cycles(self.cwg.dep, limit=self.cycle_limit)
        classifications = self.classifier.classify_all(cycles)
        true_cls = [cl for cl in classifications if cl.possibly_true]
        false_cls = [cl for cl in classifications if not cl.possibly_true]
        steps: list[ReductionStep] = []
        if not true_cls:
            return ReductionResult(True, frozenset(), true_cls, false_cls, steps,
                                   reason="no True Cycles: CWG' = CWG")

        edge_lists: list[list[Edge]] = [list(cl.cycle.edges) for cl in true_cls]
        n = len(edge_lists)
        attempted: list[set[Edge]] = [set() for _ in range(n)]
        removal_of: list[Edge | None] = [None] * n  # the edge removed for sigma_i
        resolved_order: list[int] = []  # explicitly resolved cycles, in order
        removed: set[Edge] = set()

        def next_unresolved() -> int | None:
            for j in range(n):
                if removal_of[j] is not None or j in resolved_order:
                    continue
                if any(e in removed for e in edge_lists[j]):
                    continue  # auto-broken by an earlier removal (step 5 skip)
                return j
            return None

        i: int | None = 0
        while True:
            if i is None:
                # all cycles resolved or auto-broken
                return ReductionResult(True, frozenset(removed), true_cls, false_cls, steps)
            # Step 3: try to remove an edge of sigma_i keeping wait-connectivity.
            progressed = False
            for e in edge_lists[i]:
                if e in attempted[i] or e in removed:
                    continue
                candidate = frozenset(removed | {e})
                if self.is_wait_connected(candidate):
                    removed.add(e)
                    removal_of[i] = e
                    attempted[i].add(e)
                    resolved_order.append(i)
                    steps.append(ReductionStep("remove", i, e))
                    progressed = True
                    break
                attempted[i].add(e)
                steps.append(ReductionStep("reject", i, e, "breaks wait-connectivity"))
            if progressed:
                i = next_unresolved()
                continue
            # Step 4: dead end -- backtrack to the previously resolved cycle.
            steps.append(ReductionStep("backtrack", i, None, "every edge breaks wait-connectivity"))
            attempted[i].clear()
            if not resolved_order:
                # Step 6 failure: backtracked past sigma_1 with all edges tried.
                return ReductionResult(
                    False, frozenset(), true_cls, false_cls, steps,
                    reason="no wait-connected CWG' without True Cycles exists",
                )
            prev = resolved_order.pop()
            prev_edge = removal_of[prev]
            assert prev_edge is not None
            removed.discard(prev_edge)
            removal_of[prev] = None
            # leave prev_edge in attempted[prev]: it has already been tried
            steps.append(ReductionStep("backtrack", prev, prev_edge, "retrying with a different edge"))
            i = prev
