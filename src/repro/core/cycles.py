"""Cycle enumeration over channel graphs.

Section 8's reduction needs the explicit list ``L`` of all simple cycles of
the CWG, and the False-Resource-Cycle test of Section 7.2 operates on one
cycle at a time.  Cycles are represented as :class:`Cycle` -- an immutable,
canonically rotated tuple of channels -- so they can live in sets and the
reduction's bookkeeping (the paper's ``E_C`` / ``E_R`` / ``E_T`` sets) stays
readable.

Enumeration uses Johnson's algorithm via :func:`networkx.simple_cycles`
(which includes length-1 self-loops: a message waiting on a channel it
occupies itself is the ``N = 1`` deadlock of Definition 12).  A ``limit``
guards against the worst-case exponential cycle count the paper warns about.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import networkx as nx

from ..topology.channel import Channel


class CycleExplosion(RuntimeError):
    """Raised when a graph has more simple cycles than the configured limit."""


@dataclass(frozen=True)
class Cycle:
    """A simple directed cycle of channels, canonically rotated.

    ``channels[i] -> channels[(i+1) % len]`` are the cycle's edges; the
    rotation starts at the minimum cid so equal cycles compare equal.
    """

    channels: tuple[Channel, ...]

    @staticmethod
    def from_nodes(nodes: Iterable[Channel]) -> "Cycle":
        seq = tuple(nodes)
        if not seq:
            raise ValueError("empty cycle")
        k = min(range(len(seq)), key=lambda i: seq[i].cid)
        return Cycle(seq[k:] + seq[:k])

    @property
    def edges(self) -> tuple[tuple[Channel, Channel], ...]:
        n = len(self.channels)
        return tuple((self.channels[i], self.channels[(i + 1) % n]) for i in range(n))

    def __len__(self) -> int:
        return len(self.channels)

    def __repr__(self) -> str:
        names = " -> ".join(c.label or f"c{c.cid}" for c in self.channels)
        return f"<Cycle {names} -> ...>"


def iter_simple_cycles(graph: nx.DiGraph, *, limit: int | None = 100_000) -> Iterator[Cycle]:
    """Yield every simple cycle of ``graph`` as a canonical :class:`Cycle`."""
    count = 0
    for nodes in nx.simple_cycles(graph):
        if limit is not None and count >= limit:
            raise CycleExplosion(f"more than {limit} simple cycles; raise the limit explicitly")
        yield Cycle.from_nodes(nodes)
        count += 1


def find_cycles(graph: nx.DiGraph, *, limit: int | None = 100_000) -> list[Cycle]:
    """All simple cycles, sorted shortest-first then by channel ids."""
    cycles = list(iter_simple_cycles(graph, limit=limit))
    cycles.sort(key=lambda cy: (len(cy), tuple(c.cid for c in cy.channels)))
    return cycles


def has_cycle(graph: nx.DiGraph) -> bool:
    """Fast acyclicity test (no enumeration)."""
    return not nx.is_directed_acyclic_graph(graph)


def find_one_cycle(graph: nx.DiGraph) -> Cycle | None:
    """A single witness cycle, or ``None`` if the graph is acyclic."""
    try:
        edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return Cycle.from_nodes(e[0] for e in edges)
