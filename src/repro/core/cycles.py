"""Cycle enumeration over channel graphs.

Section 8's reduction needs the explicit list ``L`` of all simple cycles of
the CWG, and the False-Resource-Cycle test of Section 7.2 operates on one
cycle at a time.  Cycles are represented as :class:`Cycle` -- an immutable,
canonically rotated tuple of channels -- so they can live in sets and the
reduction's bookkeeping (the paper's ``E_C`` / ``E_R`` / ``E_T`` sets) stays
readable.

Every function here accepts either a :class:`networkx.DiGraph` whose nodes
are channels (the historical adapter view) or a
:class:`~repro.core.depgraph.DepGraph` directly; both run on the integer
kernel.  Acyclicity and single-witness extraction read Tarjan's SCC
decomposition (no search on acyclic graphs); full enumeration is Johnson's
algorithm confined to nontrivial components, which includes length-1
self-loops: a message waiting on a channel it occupies itself is the
``N = 1`` deadlock of Definition 12.  A ``limit`` guards against the
worst-case exponential cycle count the paper warns about.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from typing import Any, Union

import networkx as nx

from ..topology.channel import Channel
from .depgraph import DepGraph, find_cycle_adj, iter_cycles_adj, tarjan_scc

#: graphs the cycle routines operate on
GraphLike = Union["nx.DiGraph", DepGraph]


class CycleExplosion(RuntimeError):
    """Raised when a graph has more simple cycles than the configured limit."""


@dataclass(frozen=True)
class Cycle:
    """A simple directed cycle of channels, canonically rotated.

    ``channels[i] -> channels[(i+1) % len]`` are the cycle's edges; the
    rotation starts at the minimum cid so equal cycles compare equal.
    """

    channels: tuple[Channel, ...]

    @staticmethod
    def from_nodes(nodes: Iterable[Channel]) -> Cycle:
        seq = tuple(nodes)
        if not seq:
            raise ValueError("empty cycle")
        k = min(range(len(seq)), key=lambda i: seq[i].cid)
        return Cycle(seq[k:] + seq[:k])

    @property
    def edges(self) -> tuple[tuple[Channel, Channel], ...]:
        n = len(self.channels)
        return tuple((self.channels[i], self.channels[(i + 1) % n]) for i in range(n))

    def __len__(self) -> int:
        return len(self.channels)

    def __repr__(self) -> str:
        names = " -> ".join(c.label or f"c{c.cid}" for c in self.channels)
        return f"<Cycle {names} -> ...>"


def _localize(graph: nx.DiGraph) -> tuple[list[Any], dict[int, list[int]]]:
    """Index an nx graph's nodes as dense local ints: ``(nodes, adjacency)``.

    Nodes are ordered by ``cid`` when they carry one (channels always do),
    so results are independent of graph insertion order.
    """
    nodes = list(graph.nodes)
    try:
        nodes.sort(key=lambda n: n.cid)
    except AttributeError:
        nodes.sort(key=repr)
    index = {n: i for i, n in enumerate(nodes)}
    adj = {
        index[u]: sorted(index[v] for v in graph.successors(u))
        for u in nodes
        if graph.out_degree(u)
    }
    return nodes, adj


def iter_simple_cycles(graph: GraphLike, *, limit: int | None = 100_000) -> Iterator[Cycle]:
    """Yield every simple cycle of ``graph`` as a canonical :class:`Cycle`.

    ``graph`` may be an ``nx.DiGraph`` over channels or a ``DepGraph``.

    ``limit`` bounds how many cycles are yielded: the iterator yields
    **exactly** ``limit`` cycles and then raises :class:`CycleExplosion`
    when the graph contains at least one more (so a graph with ``<= limit``
    cycles never raises).  ``limit=0`` therefore raises on the first cycle
    of any cyclic graph while completing silently on an acyclic one, and
    ``limit=None`` disables the guard entirely.
    """
    nodeof: Callable[[int], Channel]
    raw: Iterator[list[int]]
    if isinstance(graph, DepGraph):
        nodeof = graph.network.channel
        raw = graph.iter_cycle_cids()
    else:
        nodes, adj = _localize(graph)
        nodeof = nodes.__getitem__
        raw = iter_cycles_adj(adj)
    count = 0
    for cyc in raw:
        if limit is not None and count >= limit:
            raise CycleExplosion(f"more than {limit} simple cycles; raise the limit explicitly")
        yield Cycle.from_nodes(nodeof(i) for i in cyc)
        count += 1


def find_cycles(graph: GraphLike, *, limit: int | None = 100_000) -> list[Cycle]:
    """All simple cycles, sorted shortest-first then by channel ids.

    Same ``limit`` contract as :func:`iter_simple_cycles`: raises
    :class:`CycleExplosion` only when the cycle count exceeds ``limit``.
    """
    cycles = list(iter_simple_cycles(graph, limit=limit))
    cycles.sort(key=lambda cy: (len(cy), tuple(c.cid for c in cy.channels)))
    return cycles


def has_cycle(graph: GraphLike) -> bool:
    """Fast acyclicity test (SCC decomposition, no enumeration)."""
    if isinstance(graph, DepGraph):
        return not graph.is_acyclic()
    nodes, adj = _localize(graph)
    n = len(nodes)
    indptr = [0] * (n + 1)
    indices: list[int] = []
    for i in range(n):
        nbrs = adj.get(i, ())
        if i in nbrs:
            return True
        indices.extend(nbrs)
        indptr[i + 1] = len(indices)
    _, ncomp = tarjan_scc(n, indptr, indices)
    return ncomp != n


def find_one_cycle(graph: GraphLike) -> Cycle | None:
    """A single witness cycle, or ``None`` if the graph is acyclic.

    SCC-first: on an acyclic graph this is one Tarjan pass, and on a cyclic
    one the witness walk stays inside the first nontrivial component.
    """
    if isinstance(graph, DepGraph):
        cyc = graph.find_cycle_cids()
        if cyc is None:
            return None
        return Cycle.from_nodes(graph.network.channel(i) for i in cyc)
    nodes, adj = _localize(graph)
    cyc = find_cycle_adj(set(range(len(nodes))), adj)
    if cyc is None:
        return None
    return Cycle.from_nodes(nodes[i] for i in cyc)
