"""Direct search for True Cycles, without enumerating all simple cycles.

The number of simple cycles in a CWG can be astronomically larger than the
number of *True* cycles (the Figure-4 ring has hundreds of thousands of
simple cycles, none of them true), so Theorem 2's question -- "does any True
Cycle exist?" -- is answered here by searching directly over *witness
segments* instead of over cycles:

* a **segment** from channel ``a`` is a permitted channel path
  ``a = p_0 -> ... -> p_m`` (for some destination) together with a waiting
  channel ``b`` at its final state: one message of a deadlock configuration,
  holding exactly the path and waiting on ``b``;
* a **True Cycle** is a sequence of segments ``s_0 .. s_{k-1}`` with
  ``waited(s_i) = head(s_{i+1 mod k})`` whose held channel sets are pairwise
  disjoint (Section 7.2's channel-disjointness requirement, with the
  segment-head normalization: any deadlock configuration can be shrunk so
  each message holds exactly the channels from the waited channel onward).

The DFS explores segments shortest-first, canonicalizes cycles by their
minimum head cid, and prunes on channel disjointness -- which is what makes
the ring feasible: every lap-closing segment chain needs the shared ``cA``
channel twice and dies immediately.

Pre-cycle reachability (phase 2 of Section 7.2) is applied to each candidate
before it is reported TRUE; candidates failing it are collected as
UNDETERMINED, mirroring :class:`repro.core.false_cycles.CycleClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.channel import Channel
from .cwg import ChannelWaitingGraph
from .cycles import Cycle
from .false_cycles import Classification, CycleClass, CycleClassifier, Segment


@dataclass
class SearchOutcome:
    """Result of the direct True-Cycle search."""

    #: a True Cycle witness, if one was found
    true_cycle: Classification | None = None
    #: candidates whose pre-cycle reachability could not be resolved
    undetermined: list[Classification] = field(default_factory=list)
    #: search was exhaustive (no cap hit); a None true_cycle is then a proof
    exhaustive: bool = True
    nodes_explored: int = 0

    @property
    def proves_no_true_cycle(self) -> bool:
        return self.true_cycle is None and not self.undetermined and self.exhaustive


class TrueCycleSearch:
    """Depth-first search for a True Cycle over witness segments.

    Parameters
    ----------
    max_nodes:
        Cap on DFS nodes; exceeded => ``exhaustive=False`` in the outcome
        (verifiers then refuse to certify).
    max_segment_len:
        Longest segment explored (default: all -- segments are simple
        channel paths, bounded by the channel count).
    """

    def __init__(
        self,
        cwg: ChannelWaitingGraph,
        *,
        max_nodes: int = 2_000_000,
        max_segment_len: int | None = None,
        single_wait_only: bool = False,
        any_wait_blocked: bool = False,
    ) -> None:
        """``single_wait_only``: only accept witness segments whose final
        routing state has exactly one waiting channel.  A True Cycle built
        from such segments deadlocks even under wait-on-ANY semantics (each
        blocked message's *entire* waiting set is held), and no CWG'
        reduction can remove its edges -- the sound fast path Theorem 3's
        necessity check uses before attempting the full Section 8 search.

        ``any_wait_blocked``: the general form of the same idea -- accept a
        closed chain only if each segment's *entire* waiting set at its
        blocking state is contained in the union of channels the chain
        holds (self-held channels count: a message never releases a channel
        it occupies while blocked).  Such a configuration is a Definition 12
        deadlock under wait-on-ANY semantics, so a hit is an authoritative
        deadlock verdict even for adaptive any-waiting algorithms; messages
        may span several cycle channels, which ``single_wait_only`` cannot
        express."""
        self.cwg = cwg
        self.single_wait_only = single_wait_only
        self.any_wait_blocked = any_wait_blocked
        self.classifier = CycleClassifier(cwg, max_segment_len=max_segment_len or 10**9)
        n_link = len(cwg.algorithm.network.link_channels)
        self.max_segment_len = max_segment_len if max_segment_len is not None else n_link
        self.max_nodes = max_nodes
        self._segments: dict[Channel, list[Segment]] = {}
        #: alternative destinations per (path, waited) for phase-2 retries
        self._alt_dests: dict[tuple[tuple[Channel, ...], Channel], list[int]] = {}
        # Channels that appear as CWG edge targets: only these can be waited
        # on, hence only these can head a segment in a cycle.
        channel = cwg.algorithm.network.channel
        self._waitable: set[Channel] = {channel(b) for b in cwg.dep.target_cids()}

    # ------------------------------------------------------------------
    def segments_from(self, head: Channel) -> list[Segment]:
        """Witness segments starting at ``head``, pruned and shortest-first.

        Two sound reductions keep the list small (memoized per head):

        * segments with identical ``(path, waits_on)`` for different
          destinations are merged (alternative destinations are retained in
          :attr:`_alt_dests` for the phase-2 startability check);
        * a segment whose held set is a strict superset of another segment
          with the same waited channel is dominated and dropped -- swapping
          in the smaller segment preserves disjointness, and a phase-2
          failure only ever downgrades TRUE to UNDETERMINED, which verifiers
          already refuse to certify.
        """
        cached = self._segments.get(head)
        if cached is not None:
            return cached
        raw: dict[tuple[tuple[Channel, ...], Channel], set[int]] = {}
        for dest in self.cwg.algorithm.network.nodes:
            dt = self.cwg.transitions[dest]
            if head not in dt.usable:
                continue
            path = [head]
            on_path = {head}

            def dfs(c: Channel) -> None:
                waits = dt.wait.get(c, ())
                if not self.single_wait_only or len(waits) == 1:
                    for b in waits:
                        if b in self._waitable:
                            raw.setdefault((tuple(path), b), set()).add(dest)
                if len(path) >= self.max_segment_len:
                    return
                for nxt in sorted(dt.succ.get(c, ()), key=lambda ch: ch.cid):
                    if nxt in on_path:
                        continue
                    path.append(nxt)
                    on_path.add(nxt)
                    dfs(nxt)
                    path.pop()
                    on_path.discard(nxt)

            dfs(head)
        # Domination filter per waited channel: keep held-set-minimal segments.
        by_wait: dict[Channel, list[tuple[tuple[Channel, ...], frozenset[Channel], set[int]]]] = {}
        for (path_t, b), dests in raw.items():
            by_wait.setdefault(b, []).append((path_t, frozenset(path_t), dests))
        out: list[Segment] = []
        for b, group in by_wait.items():
            group.sort(key=lambda t: len(t[1]))
            kept: list[tuple[tuple[Channel, ...], frozenset[Channel], set[int]]] = []
            for path_t, held, dests in group:
                if any(k_held <= held for _, k_held, _ in kept):
                    continue
                kept.append((path_t, held, dests))
            for path_t, held, dests in kept:
                seg = Segment(min(dests), path_t, b)
                self._alt_dests[(path_t, b)] = sorted(dests)
                out.append(seg)
        out.sort(key=lambda s: (len(s.path), s.waits_on.cid, s.dest))
        self._segments[head] = out
        return out

    # ------------------------------------------------------------------
    def search(self) -> SearchOutcome:
        """Find a True Cycle or prove none exists."""
        outcome = SearchOutcome()
        heads = sorted(self._waitable, key=lambda c: c.cid)
        budget = self.max_nodes

        for start in heads:
            chain: list[Segment] = []
            reach = self._can_reach(start)

            def dfs(head: Channel, used: frozenset[Channel]) -> bool:
                nonlocal budget
                budget -= 1
                if budget <= 0:
                    outcome.exhaustive = False
                    return False
                for seg in self.segments_from(head):
                    # canonical form: no head below the start channel
                    if seg.waits_on.cid < start.cid:
                        continue
                    if used & seg.held:
                        continue  # violates pairwise channel-disjointness
                    if seg.waits_on == start:
                        chain.append(seg)
                        if self._accept(chain, outcome):
                            return True
                        chain.pop()
                        continue
                    if seg.waits_on not in reach:
                        continue  # cannot lead back to the start channel
                    chain.append(seg)
                    if dfs(seg.waits_on, used | seg.held):
                        return True
                    chain.pop()
                return False

            if dfs(start, frozenset()):
                break
            if not outcome.exhaustive:
                break
        outcome.nodes_explored = self.max_nodes - budget
        return outcome

    def _can_reach(self, start: Channel) -> frozenset[Channel]:
        """Channels with a CWG path back to ``start`` through cids >= start's.

        Any cycle canonicalized at ``start`` visits only such channels, so
        the DFS prunes every segment waiting outside this set.
        """
        channel = self.cwg.algorithm.network.channel
        cids = self.cwg.dep.reverse_reachable(start.cid, min_cid=start.cid)
        return frozenset(channel(c) for c in cids)

    def _accept(self, chain: list[Segment], outcome: SearchOutcome) -> bool:
        """Phase-2 check a closed chain; record it appropriately.

        Each segment may carry alternative destinations (merged during
        enumeration); startability is granted if *any* of them passes.
        """
        cycle = Cycle.from_nodes([s.path[0] for s in chain])
        witness: list[Segment] = []
        all_held: frozenset[Channel] = frozenset().union(*(s.held for s in chain))
        for seg in chain:
            others = all_held - seg.held
            chosen: Segment | None = None
            blockable = not self.any_wait_blocked
            for dest in self._alt_dests.get((seg.path, seg.waits_on), [seg.dest]):
                if self.any_wait_blocked:
                    waits = self.cwg.transitions[dest].wait.get(seg.path[-1], ())
                    if not frozenset(waits) <= all_held:
                        continue  # an escape wait exists: not ANY-wait-blocked
                    blockable = True
                cand = Segment(dest, seg.path, seg.waits_on)
                if self.classifier._startable_at_source(cand) or \
                        self.classifier._prepath_avoiding(cand, others):
                    chosen = cand
                    break
            if not blockable:
                # No destination makes this message fully blocked: the chain
                # is not an any-wait deadlock candidate at all, so it is
                # discarded without counting as UNDETERMINED.
                return False
            if chosen is None:
                outcome.undetermined.append(Classification(
                    cycle, CycleClass.UNDETERMINED, witness=list(chain),
                    reason=(
                        f"segment at {seg.path[0]!r} reachable only through "
                        "channels held by other messages (all destinations tried)"
                    ),
                ))
                return False
            witness.append(chosen)
        outcome.true_cycle = Classification(cycle, CycleClass.TRUE, witness=witness)
        return True


@dataclass
class ConfigOutcome:
    """Result of the exhaustive any-wait deadlock-configuration search."""

    #: a Definition 12 configuration for wait-on-any semantics, if found
    deadlock: list[Segment] | None = None
    #: closed configurations whose reachability could not be resolved
    undetermined: list[list[Segment]] = field(default_factory=list)
    #: search completed within budget; then a None deadlock (with no
    #: undetermined configurations) proves deadlock freedom
    exhaustive: bool = True
    nodes_explored: int = 0

    @property
    def proves_deadlock_free(self) -> bool:
        return self.deadlock is None and not self.undetermined and self.exhaustive


class AnyWaitConfigSearch:
    """Exhaustive search for wait-on-any deadlock *configurations*.

    Under wait-on-any semantics a blocked message is stuck only when its
    **entire** waiting set is occupied, so a Definition 12 deadlock is a set
    of messages -- pairwise channel-disjoint, each reachable -- whose held
    channels jointly cover every member's full waiting set.  Such a set need
    not be a single cycle: a message's waits may be pinned by several
    different members (a braid), which cycle-based searches cannot express,
    and conversely a configuration may be absent even though every per-state
    *specific* narrowing of the waiting discipline deadlocks (the paper's
    incoherent example: no reachable state holds both waiting channels of
    the critical state at once).  This search decides the question exactly,
    up to the Section 7.2 reachability check: closed configurations that
    fail it are reported ``undetermined`` rather than dropped, so
    ``proves_deadlock_free`` never lies.

    The worklist DFS grows a candidate set one member per uncovered waiting
    channel.  Members are normalized to start at their first channel that
    some member waits on (dropping an acquisition prefix keeps a
    configuration valid), so candidate segments head at waited-on channels
    and the member covering an uncovered wait may carry it anywhere along
    its path.  Configurations are canonicalized by their minimum head.
    """

    def __init__(
        self,
        cwg: ChannelWaitingGraph,
        *,
        max_nodes: int = 200_000,
        max_segment_len: int | None = None,
    ) -> None:
        self.cwg = cwg
        self.classifier = CycleClassifier(cwg, max_segment_len=max_segment_len or 10**9)
        n_link = len(cwg.algorithm.network.link_channels)
        self.max_segment_len = max_segment_len if max_segment_len is not None else n_link
        self.max_nodes = max_nodes
        channel = cwg.algorithm.network.channel
        self._waitable: frozenset[Channel] = frozenset(
            channel(b) for b in cwg.dep.target_cids()
        )
        #: blocked-message segments (dest, path, full waiting set), per head
        self._segments: dict[Channel, list[tuple[Segment, frozenset[Channel]]]] = {}

    def segments_from(self, head: Channel) -> list[tuple[Segment, frozenset[Channel]]]:
        """All blocked-message segments starting at ``head``.

        Unlike the cycle search there is no destination merging and no
        held-set domination: a longer path covers more waits, so neither
        reduction is sound here.  Each segment is paired with its full
        waiting set; its ``waits_on`` is the set's minimum (for witness
        display only).
        """
        cached = self._segments.get(head)
        if cached is not None:
            return cached
        out: list[tuple[Segment, frozenset[Channel]]] = []
        for dest in self.cwg.algorithm.network.nodes:
            dt = self.cwg.transitions[dest]
            if head not in dt.usable:
                continue
            path = [head]
            on_path = {head}

            def dfs(c: Channel) -> None:
                waits = frozenset(dt.wait.get(c, ()))
                if waits:
                    seg = Segment(dest, tuple(path), min(waits, key=lambda ch: ch.cid))
                    out.append((seg, waits))
                if len(path) >= self.max_segment_len:
                    return
                for nxt in sorted(dt.succ.get(c, ()), key=lambda ch: ch.cid):
                    if nxt in on_path:
                        continue
                    path.append(nxt)
                    on_path.add(nxt)
                    dfs(nxt)
                    path.pop()
                    on_path.discard(nxt)

            dfs(head)
        out.sort(key=lambda t: (len(t[0].path), t[0].dest,
                                tuple(c.cid for c in t[0].path)))
        self._segments[head] = out
        return out

    def search(self) -> ConfigOutcome:
        """Find a deadlock configuration or prove none exists."""
        outcome = ConfigOutcome()
        budget = self.max_nodes
        heads = sorted(self._waitable, key=lambda c: c.cid)

        for start in heads:
            chosen: list[tuple[Segment, frozenset[Channel]]] = []

            def dfs(held: frozenset[Channel], pending: frozenset[Channel]) -> bool:
                nonlocal budget
                budget -= 1
                if budget <= 0:
                    outcome.exhaustive = False
                    return False
                if not pending:
                    return self._accept(chosen, held, outcome)
                w = min(pending, key=lambda c: c.cid)
                # every member of a canonical configuration heads at or
                # above the start channel; the cover may carry ``w``
                # anywhere along its path
                for h in heads:
                    if h.cid < start.cid:
                        continue
                    for seg, waits in self.segments_from(h):
                        if w not in seg.held or held & seg.held:
                            continue
                        nheld = held | seg.held
                        chosen.append((seg, waits))
                        if dfs(nheld, (pending | waits) - nheld):
                            return True
                        chosen.pop()
                        if not outcome.exhaustive:
                            return False
                return False

            for seg, waits in self.segments_from(start):
                chosen.append((seg, waits))
                if dfs(seg.held, waits - seg.held):
                    outcome.nodes_explored = self.max_nodes - budget
                    return outcome
                chosen.pop()
                if not outcome.exhaustive:
                    outcome.nodes_explored = self.max_nodes - budget
                    return outcome
        outcome.nodes_explored = self.max_nodes - budget
        return outcome

    def _accept(
        self,
        chosen: list[tuple[Segment, frozenset[Channel]]],
        held: frozenset[Channel],
        outcome: ConfigOutcome,
    ) -> bool:
        """Reachability-check a closed configuration (Section 7.2 phase 2)."""
        config = [seg for seg, _ in chosen]
        for seg in config:
            others = held - seg.held
            if not (self.classifier._startable_at_source(seg) or
                    self.classifier._prepath_avoiding(seg, others)):
                outcome.undetermined.append(list(config))
                return False
        outcome.deadlock = config
        return True
