"""Verification reports: structured verdicts with evidence.

Every verifier returns a :class:`Verdict` carrying the boolean answer, the
condition applied, and the evidence (a witness cycle and deadlock
configuration sketch when unsafe; graph statistics and -- where relevant --
the CWG' or escape layer when safe), so benchmarks and examples can print
the same tables regardless of which condition ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Verdict:
    """Outcome of a deadlock-freedom verification."""

    algorithm: str
    condition: str
    deadlock_free: bool
    #: authoritative ("iff") or merely sufficient/not-applicable
    necessary_and_sufficient: bool = True
    reason: str = ""
    #: free-form structured evidence (cycle witnesses, edge counts, ...)
    evidence: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.deadlock_free

    def summary(self) -> str:
        verdict = "DEADLOCK-FREE" if self.deadlock_free else "NOT deadlock-free"
        strength = "iff" if self.necessary_and_sufficient else "sufficient-only"
        line = f"[{self.condition}] {self.algorithm}: {verdict} ({strength})"
        if self.reason:
            line += f" -- {self.reason}"
        return line

    def __str__(self) -> str:
        return self.summary()


class VerificationError(RuntimeError):
    """Raised when a condition is applied outside its hypotheses."""
