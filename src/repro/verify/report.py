"""Verification reports: structured verdicts with evidence.

Every verifier returns a :class:`Verdict` carrying the boolean answer, the
condition applied, and the evidence (a witness cycle and deadlock
configuration sketch when unsafe; graph statistics and -- where relevant --
the CWG' or escape layer when safe), so benchmarks and examples can print
the same tables regardless of which condition ran.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Verdict:
    """Outcome of a deadlock-freedom verification."""

    algorithm: str
    condition: str
    deadlock_free: bool
    #: authoritative ("iff") or merely sufficient/not-applicable
    necessary_and_sufficient: bool = True
    reason: str = ""
    #: free-form structured evidence (cycle witnesses, edge counts, ...)
    evidence: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.deadlock_free

    def summary(self) -> str:
        verdict = "DEADLOCK-FREE" if self.deadlock_free else "NOT deadlock-free"
        strength = "iff" if self.necessary_and_sufficient else "sufficient-only"
        line = f"[{self.condition}] {self.algorithm}: {verdict} ({strength})"
        if self.reason:
            line += f" -- {self.reason}"
        return line

    def __str__(self) -> str:
        return self.summary()


class VerificationError(RuntimeError):
    """Raised when a condition is applied outside its hypotheses."""


# ----------------------------------------------------------------------
# deterministic witness ordering
# ----------------------------------------------------------------------
def _witness_key(value: Any) -> tuple[int, float, str]:
    """Total order over heterogeneous witness members.

    Channels sort by ``cid``, numbers numerically, everything else by its
    string form -- never by hash or insertion order, so two processes (or
    two ``PYTHONHASHSEED`` values) always agree.
    """
    cid = getattr(value, "cid", None)
    if cid is not None:
        return (0, float(cid), "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    return (2, 0.0, str(value))


def ordered_witness(values: Iterable[Any]) -> list[Any]:
    """Sort an unordered witness collection (channels, nodes, labels)
    into the one canonical order every report and renderer uses."""
    return sorted(values, key=_witness_key)


def stable_evidence(evidence: dict[str, Any]) -> dict[str, Any]:
    """Recursively canonicalize evidence: sets become sorted lists and
    nested dicts get sorted keys, so serialized verdicts are
    byte-reproducible across runs and process-pool workers."""

    def canon(v: Any) -> Any:
        if isinstance(v, (set, frozenset)):
            return ordered_witness(v)
        if isinstance(v, dict):
            return {k: canon(v[k]) for k in sorted(v, key=str)}
        if isinstance(v, (list, tuple)):
            return [canon(x) for x in v]
        return v

    return {k: canon(evidence[k]) for k in evidence}
