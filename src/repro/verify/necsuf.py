"""The paper's necessary-and-sufficient condition (Theorems 1, 2, 3).

* :func:`theorem1` -- sufficiency: wait-connected + acyclic CWG.
* :func:`theorem2` -- iff, for algorithms that wait on a **specific**
  channel: wait-connected and the CWG has no True Cycles.
* :func:`theorem3` -- iff, for algorithms that wait on **any** permitted
  channel: some wait-connected subgraph CWG' has no True Cycles (found by
  the Section 8 reduction).
* :func:`verify` -- dispatches on the algorithm's :class:`WaitPolicy`.

When a True Cycle exists under Theorem 2, the verdict's evidence includes
the witness produced by the Section 7.2 classifier -- the per-edge message
segments from which the Theorem 2 necessity proof constructs a reachable
deadlock configuration; :func:`deadlock_configuration` turns that witness
into an explicit Definition 12 configuration the simulator tests replay.

UNDETERMINED cycle classifications (the corner Section 7.2 leaves open) are
treated as True: a verdict of "deadlock-free" is only ever issued when every
cycle is *provably* a False Resource Cycle, so unsoundness is impossible;
at worst the verifier is incomplete and says so in the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cwg import ChannelWaitingGraph, wait_connected
from ..core.cycles import find_cycles, find_one_cycle
from ..core.false_cycles import CycleClass, CycleClassifier, Segment
from ..core.reduction import CWGReducer
from ..routing.relation import RoutingAlgorithm, WaitPolicy
from ..topology.channel import Channel
from .report import Verdict


@dataclass
class DeadlockConfiguration:
    """An explicit Definition 12 deadlock configuration.

    ``messages[i]`` holds ``held[i]`` (in acquisition order) and waits on
    ``waits_on[i]``, which is held by message ``(i + 1) % n``.
    """

    sources: list[int]
    dests: list[int]
    held: list[tuple[Channel, ...]]
    waits_on: list[Channel]

    def __len__(self) -> int:
        return len(self.dests)

    def describe(self) -> str:
        lines = []
        for i in range(len(self.dests)):
            chain = ", ".join(c.label or f"c{c.cid}" for c in self.held[i])
            w = self.waits_on[i]
            lines.append(
                f"m{i + 1}: {self.sources[i]} -> {self.dests[i]}, holds [{chain}], "
                f"waits on {w.label or w.cid}"
            )
        return "\n".join(lines)


def deadlock_configuration(witness: list[Segment]) -> DeadlockConfiguration:
    """Build the Definition 12 configuration from a True Cycle witness."""
    return DeadlockConfiguration(
        sources=[seg.path[0].src for seg in witness],
        dests=[seg.dest for seg in witness],
        held=[seg.path for seg in witness],
        waits_on=[seg.waits_on for seg in witness],
    )


# ----------------------------------------------------------------------
# Theorem 1: sufficiency via an acyclic CWG
# ----------------------------------------------------------------------
def theorem1(algorithm: RoutingAlgorithm, *, cwg: ChannelWaitingGraph | None = None) -> Verdict:
    """Theorem 1: wait-connected + acyclic CWG => deadlock-free."""
    cwg = cwg or ChannelWaitingGraph(algorithm)
    wc, why = wait_connected(algorithm, transitions=cwg.transitions)
    if not wc:
        return Verdict(algorithm.name, "Theorem 1", False, necessary_and_sufficient=False,
                       reason=f"not wait-connected: {why}")
    cycle = find_one_cycle(cwg.dep)
    if cycle is None:
        return Verdict(algorithm.name, "Theorem 1", True, necessary_and_sufficient=False,
                       reason="wait-connected and CWG is acyclic",
                       evidence={"cwg_edges": len(cwg)})
    return Verdict(algorithm.name, "Theorem 1", False, necessary_and_sufficient=False,
                   reason=f"CWG has a cycle {cycle!r} (apply Theorem 2/3 to classify it)",
                   evidence={"cycle": cycle, "cwg_edges": len(cwg)})


# ----------------------------------------------------------------------
# Theorem 2: iff, specific-waiting algorithms
# ----------------------------------------------------------------------
def theorem2(
    algorithm: RoutingAlgorithm,
    *,
    cwg: ChannelWaitingGraph | None = None,
    enumerate_cycles: bool = False,
    cycle_limit: int | None = 100_000,
    max_nodes: int = 2_000_000,
) -> Verdict:
    """Theorem 2: (specific-waiting) deadlock-free iff wait-connected and
    the CWG has no True Cycles.

    By default True Cycles are found (or refuted) with the direct
    segment-chain search of :class:`~repro.core.deadlock_search.TrueCycleSearch`,
    which stays feasible when the CWG has a huge number of simple cycles.
    ``enumerate_cycles=True`` switches to enumerate-then-classify (Section
    7.2 applied cycle by cycle) and reports the full cycle census in the
    evidence -- what the figure benchmarks use on the small examples.
    """
    cwg = cwg or ChannelWaitingGraph(algorithm)
    wc, why = wait_connected(algorithm, transitions=cwg.transitions)
    if not wc:
        return Verdict(algorithm.name, "Theorem 2", False,
                       reason=f"not wait-connected: {why}")
    if find_one_cycle(cwg.dep) is None:
        return Verdict(algorithm.name, "Theorem 2", True,
                       reason="wait-connected and CWG is acyclic",
                       evidence={"cwg_edges": len(cwg), "cycles": 0})
    if enumerate_cycles:
        return _theorem2_enumerated(algorithm, cwg, cycle_limit)

    from ..core.deadlock_search import TrueCycleSearch

    outcome = TrueCycleSearch(cwg, max_nodes=max_nodes).search()
    if outcome.true_cycle is not None:
        cls = outcome.true_cycle
        return Verdict(
            algorithm.name, "Theorem 2", False,
            reason=f"True Cycle {cls.cycle!r}: a reachable deadlock configuration exists",
            evidence={
                "cycle": cls.cycle,
                "classification": cls,
                "deadlock_configuration": deadlock_configuration(cls.witness),
            },
        )
    if outcome.undetermined:
        cls = outcome.undetermined[0]
        return Verdict(
            algorithm.name, "Theorem 2", False, necessary_and_sufficient=False,
            reason=f"cycle {cls.cycle!r} could not be proved False Resource: {cls.reason}",
            evidence={"classification": cls},
        )
    if not outcome.exhaustive:
        return Verdict(
            algorithm.name, "Theorem 2", False, necessary_and_sufficient=False,
            reason="search budget exhausted before proving absence of True Cycles",
            evidence={"nodes_explored": outcome.nodes_explored},
        )
    return Verdict(
        algorithm.name, "Theorem 2", True,
        reason="wait-connected; CWG is cyclic but every cycle is a False Resource Cycle",
        evidence={"cwg_edges": len(cwg), "nodes_explored": outcome.nodes_explored},
    )


def _theorem2_enumerated(
    algorithm: RoutingAlgorithm,
    cwg: ChannelWaitingGraph,
    cycle_limit: int | None,
) -> Verdict:
    """Enumerate-and-classify variant of Theorem 2 (full cycle census)."""
    cycles = find_cycles(cwg.dep, limit=cycle_limit)
    classifier = CycleClassifier(cwg)
    n_false = 0
    for cy in cycles:
        cls = classifier.classify(cy)
        if cls.kind is CycleClass.FALSE_RESOURCE:
            n_false += 1
            continue
        if cls.kind is CycleClass.UNDETERMINED:
            return Verdict(
                algorithm.name, "Theorem 2", False, necessary_and_sufficient=False,
                reason=f"cycle {cy!r} could not be proved False Resource: {cls.reason}",
                evidence={"cycle": cy, "classification": cls, "cycles": len(cycles)},
            )
        config = deadlock_configuration(cls.witness)
        return Verdict(
            algorithm.name, "Theorem 2", False,
            reason=f"True Cycle {cy!r}: a reachable deadlock configuration exists",
            evidence={
                "cycle": cy,
                "classification": cls,
                "deadlock_configuration": config,
                "false_cycles_skipped": n_false,
                "cycles": len(cycles),
            },
        )
    return Verdict(
        algorithm.name, "Theorem 2", True,
        reason=f"wait-connected; all {len(cycles)} CWG cycles are False Resource Cycles",
        evidence={"cwg_edges": len(cwg), "cycles": len(cycles), "false_cycles": n_false},
    )


# ----------------------------------------------------------------------
# Theorem 3: iff, any-waiting algorithms
# ----------------------------------------------------------------------
def theorem3(
    algorithm: RoutingAlgorithm,
    *,
    cwg: ChannelWaitingGraph | None = None,
    cycle_limit: int | None = 100_000,
    max_nodes: int = 2_000_000,
) -> Verdict:
    """Theorem 3: (any-waiting) deadlock-free iff some wait-connected CWG'
    has no True Cycles (searched with the Section 8 reduction).

    Before attempting the full reduction, a fast sound *negative* check
    runs: a True Cycle whose every blocked message has a single waiting
    channel deadlocks even under wait-on-ANY semantics and survives every
    CWG' (its edges are irremovable without breaking wait-connectivity), so
    finding one settles the question without enumerating cycles.
    """
    cwg = cwg or ChannelWaitingGraph(algorithm)
    wc, why = wait_connected(algorithm, transitions=cwg.transitions)
    if not wc:
        return Verdict(algorithm.name, "Theorem 3", False,
                       reason=f"not wait-connected: {why}")
    if find_one_cycle(cwg.dep) is None:
        return Verdict(algorithm.name, "Theorem 3", True,
                       reason="wait-connected and CWG is acyclic (CWG' = CWG)",
                       evidence={"cwg_edges": len(cwg)})

    from ..core.cycles import CycleExplosion
    from ..core.deadlock_search import TrueCycleSearch

    fast = TrueCycleSearch(cwg, max_nodes=max_nodes, single_wait_only=True).search()
    if fast.true_cycle is not None:
        cls = fast.true_cycle
        return Verdict(
            algorithm.name, "Theorem 3", False,
            reason=(
                f"True Cycle {cls.cycle!r} of single-waiting-channel states: "
                "it survives every wait-connected CWG'"
            ),
            evidence={
                "cycle": cls.cycle,
                "classification": cls,
                "deadlock_configuration": deadlock_configuration(cls.witness),
            },
        )

    # Fast positive path: try narrowed per-state waiting disciplines as
    # CWG' candidates.  Any per-state selection w(c_in, d) from the waiting
    # sets induces a wait-connected CWG' (Definition 10 holds by
    # construction); if its closure has no True Cycles, Theorem 3 certifies
    # the algorithm without enumerating the full CWG's cycles.  (This is
    # exactly how the paper handles the wait-on-any variants of its Section
    # 9 algorithms: "CWG' is restricted to the first virtual channel in the
    # lowest dimension".)
    for label, key in (
        ("lowest VC class", lambda c: (c.vc, c.cid)),
        ("lowest cid", lambda c: c.cid),
    ):
        narrowed = _NarrowedWaiting(algorithm, key)
        ncwg = ChannelWaitingGraph(narrowed)
        if find_one_cycle(ncwg.dep) is None:
            return Verdict(
                algorithm.name, "Theorem 3", True,
                reason=f"wait-connected CWG' with acyclic closure found (waiting narrowed to {label})",
                evidence={"cwg_edges": len(cwg), "cwg_prime_edges": len(ncwg)},
            )
        outcome = TrueCycleSearch(ncwg, max_nodes=max_nodes).search()
        if outcome.proves_no_true_cycle:
            return Verdict(
                algorithm.name, "Theorem 3", True,
                reason=(
                    f"wait-connected CWG' with no True Cycles found "
                    f"(waiting narrowed to {label})"
                ),
                evidence={"cwg_edges": len(cwg), "cwg_prime_edges": len(ncwg)},
            )

    reducer = CWGReducer(cwg, cycle_limit=cycle_limit)
    try:
        result = reducer.run()
    except CycleExplosion as exc:
        return Verdict(
            algorithm.name, "Theorem 3", False, necessary_and_sufficient=False,
            reason=f"Section 8 reduction infeasible: {exc}",
            evidence={"cwg_edges": len(cwg)},
        )
    if result.success:
        return Verdict(
            algorithm.name, "Theorem 3", True,
            reason=(
                "wait-connected CWG' with no True Cycles found "
                f"({len(result.removed)} edges removed, "
                f"{len(result.true_cycles)} True Cycles resolved, "
                f"{len(result.false_cycles)} False Resource Cycles ignored)"
            ),
            evidence={"reduction": result, "cwg_edges": len(cwg)},
        )
    return Verdict(
        algorithm.name, "Theorem 3", False,
        reason=result.reason,
        evidence={"reduction": result},
    )


class _NarrowedWaiting(RoutingAlgorithm):
    """A per-state single-waiting-channel narrowing of an algorithm.

    Same routing relation; the waiting set at every state is collapsed to
    the minimum element under ``key``.  Used by Theorem 3 as a cheap CWG'
    candidate generator.
    """

    def __init__(self, inner: RoutingAlgorithm, key) -> None:
        super().__init__(inner.network)
        self.inner = inner
        self.key = key
        self.name = f"{inner.name}#narrowed"
        self.form = inner.form
        self.wait_policy = WaitPolicy.SPECIFIC

    def route(self, c_in, node, dest):
        return self.inner.route(c_in, node, dest)

    def waiting_channels(self, c_in, node, dest):
        waits = self.inner.waiting_channels(c_in, node, dest)
        if not waits:
            return waits
        return frozenset([min(waits, key=self.key)])


# ----------------------------------------------------------------------
def verify(algorithm: RoutingAlgorithm, **kwargs) -> Verdict:
    """Apply the paper's condition matching the algorithm's wait policy."""
    if algorithm.wait_policy is WaitPolicy.SPECIFIC:
        return theorem2(algorithm, **kwargs)
    return theorem3(algorithm, **kwargs)
