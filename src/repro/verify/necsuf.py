"""The paper's necessary-and-sufficient condition (Theorems 1, 2, 3).

* :func:`theorem1` -- sufficiency: wait-connected + acyclic CWG.
* :func:`theorem2` -- iff, for algorithms that wait on a **specific**
  channel: wait-connected and the CWG has no True Cycles.
* :func:`theorem3` -- iff, for algorithms that wait on **any** permitted
  channel: some wait-connected subgraph CWG' has no True Cycles (found by
  the Section 8 reduction).
* :func:`verify` -- dispatches on the algorithm's :class:`WaitPolicy`.

When a True Cycle exists under Theorem 2, the verdict's evidence includes
the witness produced by the Section 7.2 classifier -- the per-edge message
segments from which the Theorem 2 necessity proof constructs a reachable
deadlock configuration; :func:`deadlock_configuration` turns that witness
into an explicit Definition 12 configuration the simulator tests replay.

UNDETERMINED cycle classifications (the corner Section 7.2 leaves open) are
treated as True: a verdict of "deadlock-free" is only ever issued when every
cycle is *provably* a False Resource Cycle, so unsoundness is impossible;
at worst the verifier is incomplete and says so in the verdict.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..core.cwg import ChannelWaitingGraph, wait_connected
from ..core.cycles import find_cycles, find_one_cycle
from ..core.false_cycles import CycleClass, CycleClassifier, Segment
from ..core.reduction import CWGReducer
from ..routing.relation import RoutingAlgorithm, WaitPolicy
from ..topology.channel import Channel
from .report import Verdict


@dataclass
class DeadlockConfiguration:
    """An explicit Definition 12 deadlock configuration.

    ``messages[i]`` holds ``held[i]`` (in acquisition order) and waits on
    ``waits_on[i]``, which is held by message ``(i + 1) % n``.
    """

    sources: list[int]
    dests: list[int]
    held: list[tuple[Channel, ...]]
    waits_on: list[Channel]

    def __len__(self) -> int:
        return len(self.dests)

    def describe(self) -> str:
        lines: list[str] = []
        for i in range(len(self.dests)):
            chain = ", ".join(c.label or f"c{c.cid}" for c in self.held[i])
            w = self.waits_on[i]
            lines.append(
                f"m{i + 1}: {self.sources[i]} -> {self.dests[i]}, holds [{chain}], "
                f"waits on {w.label or w.cid}"
            )
        return "\n".join(lines)


def deadlock_configuration(witness: list[Segment]) -> DeadlockConfiguration:
    """Build the Definition 12 configuration from a True Cycle witness."""
    return DeadlockConfiguration(
        sources=[seg.path[0].src for seg in witness],
        dests=[seg.dest for seg in witness],
        held=[seg.path for seg in witness],
        waits_on=[seg.waits_on for seg in witness],
    )


# ----------------------------------------------------------------------
# Theorem 1: sufficiency via an acyclic CWG
# ----------------------------------------------------------------------
def theorem1(algorithm: RoutingAlgorithm, *, cwg: ChannelWaitingGraph | None = None) -> Verdict:
    """Theorem 1: wait-connected + acyclic CWG => deadlock-free."""
    cwg = cwg or ChannelWaitingGraph(algorithm)
    wc, why = wait_connected(algorithm, transitions=cwg.transitions)
    if not wc:
        return Verdict(algorithm.name, "Theorem 1", False, necessary_and_sufficient=False,
                       reason=f"not wait-connected: {why}")
    cycle = find_one_cycle(cwg.dep)
    if cycle is None:
        return Verdict(algorithm.name, "Theorem 1", True, necessary_and_sufficient=False,
                       reason="wait-connected and CWG is acyclic",
                       evidence={"cwg_edges": len(cwg)})
    return Verdict(algorithm.name, "Theorem 1", False, necessary_and_sufficient=False,
                   reason=f"CWG has a cycle {cycle!r} (apply Theorem 2/3 to classify it)",
                   evidence={"cycle": cycle, "cwg_edges": len(cwg)})


# ----------------------------------------------------------------------
# Theorem 2: iff, specific-waiting algorithms
# ----------------------------------------------------------------------
def theorem2(
    algorithm: RoutingAlgorithm,
    *,
    cwg: ChannelWaitingGraph | None = None,
    enumerate_cycles: bool = False,
    cycle_limit: int | None = 100_000,
    max_nodes: int = 2_000_000,
) -> Verdict:
    """Theorem 2: (specific-waiting) deadlock-free iff wait-connected and
    the CWG has no True Cycles.

    By default True Cycles are found (or refuted) with the direct
    segment-chain search of :class:`~repro.core.deadlock_search.TrueCycleSearch`,
    which stays feasible when the CWG has a huge number of simple cycles.
    ``enumerate_cycles=True`` switches to enumerate-then-classify (Section
    7.2 applied cycle by cycle) and reports the full cycle census in the
    evidence -- what the figure benchmarks use on the small examples.
    """
    cwg = cwg or ChannelWaitingGraph(algorithm)
    wc, why = wait_connected(algorithm, transitions=cwg.transitions)
    if not wc:
        return Verdict(algorithm.name, "Theorem 2", False,
                       reason=f"not wait-connected: {why}")
    if find_one_cycle(cwg.dep) is None:
        return Verdict(algorithm.name, "Theorem 2", True,
                       reason="wait-connected and CWG is acyclic",
                       evidence={"cwg_edges": len(cwg), "cycles": 0})
    if enumerate_cycles:
        return _theorem2_enumerated(algorithm, cwg, cycle_limit)

    from ..core.deadlock_search import TrueCycleSearch

    outcome = TrueCycleSearch(cwg, max_nodes=max_nodes).search()
    if outcome.true_cycle is not None:
        cls = outcome.true_cycle
        return Verdict(
            algorithm.name, "Theorem 2", False,
            reason=f"True Cycle {cls.cycle!r}: a reachable deadlock configuration exists",
            evidence={
                "cycle": cls.cycle,
                "classification": cls,
                "deadlock_configuration": deadlock_configuration(cls.witness),
            },
        )
    if outcome.undetermined:
        cls = outcome.undetermined[0]
        return Verdict(
            algorithm.name, "Theorem 2", False, necessary_and_sufficient=False,
            reason=f"cycle {cls.cycle!r} could not be proved False Resource: {cls.reason}",
            evidence={"classification": cls},
        )
    if not outcome.exhaustive:
        return Verdict(
            algorithm.name, "Theorem 2", False, necessary_and_sufficient=False,
            reason="search budget exhausted before proving absence of True Cycles",
            evidence={"nodes_explored": outcome.nodes_explored},
        )
    return Verdict(
        algorithm.name, "Theorem 2", True,
        reason="wait-connected; CWG is cyclic but every cycle is a False Resource Cycle",
        evidence={"cwg_edges": len(cwg), "nodes_explored": outcome.nodes_explored},
    )


def _theorem2_enumerated(
    algorithm: RoutingAlgorithm,
    cwg: ChannelWaitingGraph,
    cycle_limit: int | None,
) -> Verdict:
    """Enumerate-and-classify variant of Theorem 2 (full cycle census)."""
    cycles = find_cycles(cwg.dep, limit=cycle_limit)
    classifier = CycleClassifier(cwg)
    n_false = 0
    for cy in cycles:
        cls = classifier.classify(cy)
        if cls.kind is CycleClass.FALSE_RESOURCE:
            n_false += 1
            continue
        if cls.kind is CycleClass.UNDETERMINED:
            return Verdict(
                algorithm.name, "Theorem 2", False, necessary_and_sufficient=False,
                reason=f"cycle {cy!r} could not be proved False Resource: {cls.reason}",
                evidence={"cycle": cy, "classification": cls, "cycles": len(cycles)},
            )
        config = deadlock_configuration(cls.witness)
        return Verdict(
            algorithm.name, "Theorem 2", False,
            reason=f"True Cycle {cy!r}: a reachable deadlock configuration exists",
            evidence={
                "cycle": cy,
                "classification": cls,
                "deadlock_configuration": config,
                "false_cycles_skipped": n_false,
                "cycles": len(cycles),
            },
        )
    return Verdict(
        algorithm.name, "Theorem 2", True,
        reason=f"wait-connected; all {len(cycles)} CWG cycles are False Resource Cycles",
        evidence={"cwg_edges": len(cwg), "cycles": len(cycles), "false_cycles": n_false},
    )


# ----------------------------------------------------------------------
# Theorem 3: iff, any-waiting algorithms
# ----------------------------------------------------------------------
def theorem3(
    algorithm: RoutingAlgorithm,
    *,
    cwg: ChannelWaitingGraph | None = None,
    cycle_limit: int | None = 100_000,
    max_nodes: int = 2_000_000,
) -> Verdict:
    """Theorem 3: (any-waiting) deadlock-free iff some wait-connected CWG'
    has no True Cycles (searched with the Section 8 reduction).

    Before attempting the full reduction, a sound *negative* check runs: a
    True Cycle in which every blocked message's **entire** waiting set is
    held within the configuration (self-held channels included) deadlocks
    even under wait-on-ANY semantics -- no message has an escape channel to
    wait for -- so finding one settles the question without enumerating
    cycles.  Messages may span several cycle channels; restricting the
    check to single-waiting-channel states would miss exactly those
    configurations.
    """
    cwg = cwg or ChannelWaitingGraph(algorithm)
    wc, why = wait_connected(algorithm, transitions=cwg.transitions)
    if not wc:
        return Verdict(algorithm.name, "Theorem 3", False,
                       reason=f"not wait-connected: {why}")
    if find_one_cycle(cwg.dep) is None:
        return Verdict(algorithm.name, "Theorem 3", True,
                       reason="wait-connected and CWG is acyclic (CWG' = CWG)",
                       evidence={"cwg_edges": len(cwg)})

    from ..core.cycles import CycleExplosion
    from ..core.deadlock_search import TrueCycleSearch

    fast = TrueCycleSearch(cwg, max_nodes=max_nodes, any_wait_blocked=True).search()
    if fast.true_cycle is not None:
        cls = fast.true_cycle
        return Verdict(
            algorithm.name, "Theorem 3", False,
            reason=(
                f"True Cycle {cls.cycle!r} with every waiting set held "
                "within the configuration: it deadlocks under wait-on-any"
            ),
            evidence={
                "cycle": cls.cycle,
                "classification": cls,
                "deadlock_configuration": deadlock_configuration(cls.witness),
            },
        )

    # Fast positive path: try narrowed per-state waiting disciplines as
    # CWG' candidates.  Any per-state selection w(c_in, d) from the waiting
    # sets induces a wait-connected CWG' (Definition 10 holds by
    # construction); if its closure has no True Cycles, Theorem 3 certifies
    # the algorithm without enumerating the full CWG's cycles.  (This is
    # exactly how the paper handles the wait-on-any variants of its Section
    # 9 algorithms: "CWG' is restricted to the first virtual channel in the
    # lowest dimension".)
    narrowings: tuple[tuple[str, Callable[[Channel], Any]], ...] = (
        ("lowest VC class", lambda c: (c.vc, c.cid)),
        ("lowest cid", lambda c: c.cid),
    )
    for label, key in narrowings:
        narrowed = _NarrowedWaiting(algorithm, key)
        ncwg = ChannelWaitingGraph(narrowed)
        if find_one_cycle(ncwg.dep) is None:
            return Verdict(
                algorithm.name, "Theorem 3", True,
                reason=f"wait-connected CWG' with acyclic closure found (waiting narrowed to {label})",
                evidence={"cwg_edges": len(cwg), "cwg_prime_edges": len(ncwg)},
            )
        outcome = TrueCycleSearch(ncwg, max_nodes=max_nodes).search()
        if outcome.proves_no_true_cycle:
            return Verdict(
                algorithm.name, "Theorem 3", True,
                reason=(
                    f"wait-connected CWG' with no True Cycles found "
                    f"(waiting narrowed to {label})"
                ),
                evidence={"cwg_edges": len(cwg), "cwg_prime_edges": len(ncwg)},
            )

    # A reduction certificate must be *verified* before it is trusted.  The
    # reduction's wait-connectivity test only protects the immediate wait
    # edge of each state, but a message can realize a removed edge by having
    # already ACQUIRED both endpoints: two messages each spanning two
    # channels of a cycle deadlock under wait-on-any even though every
    # single-message cycle was broken.  So each candidate is checked the
    # same way the narrowing fast path is: the surviving per-state waits
    # define a specific-waiting discipline whose full (downstream-
    # propagated) CWG must have no True Cycles.  Soundness: in an original
    # any-wait deadlock every retained waiting channel of every message is
    # held within the configuration, so chasing one retained wait per
    # message yields a message cycle that the verification search would
    # find -- a candidate it certifies therefore transfers to the original.
    #
    # A witness that survives verification is repaired *per state*: the
    # offending waiting channel is dropped (or swapped for a different
    # original one) at the exact ``(channel, destination)`` state where the
    # witness blocks.  Edge removal cannot express this -- a CWG edge is
    # shared by every destination, and breaking it for all of them can
    # break Definition 10 at states the witness never visits.
    reducer = CWGReducer(cwg, cycle_limit=cycle_limit)
    try:
        result = reducer.run()
    except CycleExplosion as exc:
        return _theorem3_config_decision(algorithm, cwg, None, max_nodes, Verdict(
            algorithm.name, "Theorem 3", False, necessary_and_sufficient=False,
            reason=f"Section 8 reduction infeasible: {exc}",
            evidence={"cwg_edges": len(cwg)},
        ))
    if not result.success:
        # Edge-granular exhaustion does not rule out a per-state discipline,
        # and the any-wait deadlock search above found nothing: undecided
        # unless the configuration search below settles it.
        return _theorem3_config_decision(algorithm, cwg, result, max_nodes, Verdict(
            algorithm.name, "Theorem 3", False, necessary_and_sufficient=False,
            reason=f"{result.reason} (edge removals exhausted): cannot certify",
            evidence={"reduction": result},
        ))
    surviving = dict(reducer.surviving_waits(result.removed) or {})
    seen_disciplines = {frozenset(surviving.items())}
    for _ in range(32):
        ncwg = ChannelWaitingGraph(_ReducedWaiting(algorithm, surviving))
        if find_one_cycle(ncwg.dep) is None:
            break
        check = TrueCycleSearch(ncwg, max_nodes=max_nodes).search()
        if check.proves_no_true_cycle:
            break
        cls = check.true_cycle or (check.undetermined[0] if check.undetermined else None)
        if cls is None:
            return _theorem3_config_decision(algorithm, cwg, result, max_nodes, Verdict(
                algorithm.name, "Theorem 3", False, necessary_and_sufficient=False,
                reason="CWG' verification budget exhausted: cannot certify",
                evidence={"reduction": result, "cwg_edges": len(cwg)},
            ))
        if not _repair_discipline(surviving, cls.witness, cwg) or \
                frozenset(surviving.items()) in seen_disciplines:
            return _theorem3_config_decision(algorithm, cwg, result, max_nodes, Verdict(
                algorithm.name, "Theorem 3", False, necessary_and_sufficient=False,
                reason=(
                    "every per-state specific narrowing of the waiting "
                    "discipline admits a True Cycle: cannot certify"
                ),
                evidence={"reduction": result, "cycle": cls.cycle,
                          "cwg_edges": len(cwg)},
            ))
        seen_disciplines.add(frozenset(surviving.items()))
    else:
        return _theorem3_config_decision(algorithm, cwg, result, max_nodes, Verdict(
            algorithm.name, "Theorem 3", False, necessary_and_sufficient=False,
            reason=(
                "Section 8 reduction did not converge on a verified CWG' "
                "within 32 repair rounds: cannot certify"
            ),
            evidence={"cwg_edges": len(cwg)},
        ))
    return Verdict(
        algorithm.name, "Theorem 3", True,
        reason=(
            "wait-connected CWG' with no True Cycles found "
            f"({len(result.removed)} edges removed, "
            f"{len(result.true_cycles)} True Cycles resolved, "
            f"{len(result.false_cycles)} False Resource Cycles ignored)"
        ),
        evidence={"reduction": result, "cwg_edges": len(cwg)},
    )


def _repair_discipline(
    surviving: dict[tuple[int, int], frozenset[Channel]],
    witness: list[Segment],
    cwg: ChannelWaitingGraph,
) -> bool:
    """Narrow the per-state waiting discipline to kill a surviving witness.

    Each witness segment blocks at its final channel (for its destination)
    on ``waits_on``; removing that channel from the state's waiting set
    eliminates this witness exactly.  A state may only be narrowed while it
    keeps at least one waiting channel (Definition 10 per state); when the
    offender is the state's last survivor but the *original* discipline
    offers alternatives, the state is re-widened to those instead.  Returns
    False when no state of the witness can be changed.
    """
    swap: tuple[tuple[int, int], frozenset[Channel]] | None = None
    for seg in witness:
        tail = seg.path[-1]
        key = (tail.cid, seg.dest)
        original = frozenset(cwg.transitions[seg.dest].wait.get(tail, ()))
        cur = surviving.get(key, original)
        if seg.waits_on not in cur:
            continue
        if len(cur) > 1:
            surviving[key] = cur - {seg.waits_on}
            return True
        alts = original - {seg.waits_on}
        if alts and swap is None:
            swap = (key, alts)
    if swap is not None:
        surviving[swap[0]] = swap[1]
        return True
    return False


def _theorem3_config_decision(
    algorithm: RoutingAlgorithm,
    cwg: ChannelWaitingGraph,
    reduction: Any,
    max_nodes: int,
    fallback: Verdict,
) -> Verdict:
    """Decide Theorem 3 exactly when the certificate searches are stuck.

    Neither direction of the fast machinery is complete: the cycle searches
    miss braided deadlocks (a message pinned by several others), and a
    per-state specific narrowing can be impossible even though the
    algorithm is deadlock-free under wait-on-any -- the paper's incoherent
    example deadlocks under *every* specific choice at its critical state,
    yet no reachable configuration occupies both waiting channels at once.
    The exhaustive configuration search settles both sides; only when it
    exceeds its budget (or hits a reachability-undetermined configuration)
    is the non-authoritative ``fallback`` verdict returned.
    """
    from ..core.deadlock_search import AnyWaitConfigSearch

    outcome = AnyWaitConfigSearch(cwg, max_nodes=max(max_nodes // 10, 10_000)).search()
    if outcome.deadlock is not None:
        return Verdict(
            algorithm.name, "Theorem 3", False,
            reason=(
                "deadlock configuration found: every message's full waiting "
                "set is occupied within the configuration"
            ),
            evidence={
                "deadlock_configuration": deadlock_configuration(outcome.deadlock),
                "cwg_edges": len(cwg),
            },
        )
    if outcome.proves_deadlock_free:
        evidence: dict[str, Any] = {
            "cwg_edges": len(cwg),
            "nodes_explored": outcome.nodes_explored,
        }
        if reduction is not None:
            evidence["reduction"] = reduction
        return Verdict(
            algorithm.name, "Theorem 3", True,
            reason=(
                "exhaustive configuration search: no reachable set of "
                "messages occupies every member's full waiting set"
            ),
            evidence=evidence,
        )
    return fallback


class _ReducedWaiting(RoutingAlgorithm):
    """The CWG' waiting discipline as a specific-waiting algorithm.

    Routes are unchanged; the waiting set at every reachable state is the
    per-state set that survived the Section 8 removals.  Used by Theorem 3
    to verify a reduction certificate on the full downstream-propagated CWG.
    """

    def __init__(
        self,
        inner: RoutingAlgorithm,
        surviving: dict[tuple[int, int], frozenset[Channel]],
    ) -> None:
        super().__init__(inner.network)
        self.inner = inner
        self.surviving = surviving
        self.name = f"{inner.name}#cwg-prime"
        self.form = inner.form
        self.wait_policy = WaitPolicy.SPECIFIC

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        return self.inner.route(c_in, node, dest)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        waits = self.inner.waiting_channels(c_in, node, dest)
        return self.surviving.get((c_in.cid, dest), waits)


class _NarrowedWaiting(RoutingAlgorithm):
    """A per-state single-waiting-channel narrowing of an algorithm.

    Same routing relation; the waiting set at every state is collapsed to
    the minimum element under ``key``.  Used by Theorem 3 as a cheap CWG'
    candidate generator.
    """

    def __init__(self, inner: RoutingAlgorithm, key: Callable[[Channel], Any]) -> None:
        super().__init__(inner.network)
        self.inner = inner
        self.key = key
        self.name = f"{inner.name}#narrowed"
        self.form = inner.form
        self.wait_policy = WaitPolicy.SPECIFIC

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        return self.inner.route(c_in, node, dest)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        waits = self.inner.waiting_channels(c_in, node, dest)
        if not waits:
            return waits
        return frozenset([min(waits, key=self.key)])


# ----------------------------------------------------------------------
def verify(algorithm: RoutingAlgorithm, **kwargs: Any) -> Verdict:
    """Apply the paper's condition matching the algorithm's wait policy."""
    if algorithm.wait_policy is WaitPolicy.SPECIFIC:
        return theorem2(algorithm, **kwargs)
    return theorem3(algorithm, **kwargs)
