"""Duato's necessary-and-sufficient condition (the titled ICPP'94 paper).

For a routing relation of the form ``R(n, d)`` that is *coherent* and
*provides a minimal path for every pair*, deadlock freedom holds **iff**
there exists a connected routing subfunction ``R1`` whose extended channel
dependency graph -- direct, indirect, direct-cross, and indirect-cross
dependencies -- is acyclic.

:func:`duato_condition` checks one candidate escape set;
:func:`search_escape` tries the natural candidates (each virtual-channel
class, unions of classes, and the whole channel set) -- sufficient for every
algorithm in this repository; the general search is exponential, which the
supplied paper cites as motivation for the CWG approach.

Applicability is enforced, not assumed: the verifier first confirms the
relation has Duato's form and is coherent/minimal-path-providing, and
reports "not applicable" otherwise -- this is exactly the gap (HPL, EFA,
the incoherent example) that the supplied paper's condition closes.
"""

from __future__ import annotations

from collections.abc import Callable
from itertools import combinations

from ..core.cycles import find_one_cycle
from ..core.transitions import TransitionCache
from ..deps.ecdg import EscapeSpec, ExtendedChannelDependencyGraph, escape_by_vc
from ..routing.properties import is_coherent, provides_minimal_path
from ..routing.relation import RoutingAlgorithm
from .report import Verdict

#: signature of the applicability hook :func:`search_escape` accepts
ApplicabilityFn = Callable[..., tuple[bool, str]]


def applicability(algorithm: RoutingAlgorithm, *, max_hops: int | None = None) -> tuple[bool, str]:
    """Are Duato's hypotheses satisfied?  (form, coherence, minimal paths)"""
    if algorithm.form != "ND":
        return False, f"routing relation has form {algorithm.form}, Duato requires R(n, d)"
    coh = is_coherent(algorithm, max_hops=max_hops)
    if not coh:
        return False, f"not coherent: {coh.counterexample}"
    minp = provides_minimal_path(algorithm)
    if not minp:
        return False, f"no minimal path for some pair: {minp.counterexample}"
    return True, ""


def duato_condition(
    algorithm: RoutingAlgorithm,
    escape: EscapeSpec,
    *,
    check_applicability: bool = True,
    max_hops: int | None = None,
    ecdg_cls: type[ExtendedChannelDependencyGraph] = ExtendedChannelDependencyGraph,
    transitions: TransitionCache | None = None,
) -> Verdict:
    """Apply Duato's condition with a given escape set / subfunction.

    ``ecdg_cls`` is a seam for alternative ECDG builders; the fuzz
    subsystem's deliberately broken variants use it to prove the oracle
    stack can catch a checker that drops a dependency type.  ``transitions``
    hands the ECDG an already-populated per-destination transition cache
    (the incremental engine shares one across re-verifications).
    """
    if check_applicability:
        ok, why = applicability(algorithm, max_hops=max_hops)
        if not ok:
            return Verdict(
                algorithm.name, "Duato", False, necessary_and_sufficient=False,
                reason=f"condition not applicable: {why}",
                evidence={"applicable": False},
            )
    ecdg = ecdg_cls(algorithm, escape, transitions=transitions)
    connected, why = ecdg.subfunction_connected()
    if not connected:
        return Verdict(
            algorithm.name, "Duato", False, necessary_and_sufficient=False,
            reason=f"candidate R1 not connected: {why}",
            evidence={"applicable": True, "r1_connected": False},
        )
    cycle = find_one_cycle(ecdg.dep)
    if cycle is None:
        return Verdict(
            algorithm.name, "Duato", True,
            reason="connected routing subfunction with acyclic extended CDG",
            evidence={"applicable": True, "ecdg_edges": len(ecdg),
                      "escape_channels": len(ecdg.escape_union())},
        )
    return Verdict(
        algorithm.name, "Duato", False, necessary_and_sufficient=False,
        reason=f"extended CDG of this R1 has a cycle {cycle!r} (another R1 may exist)",
        evidence={"applicable": True, "ecdg_edges": len(ecdg), "cycle": cycle},
    )


def search_escape(
    algorithm: RoutingAlgorithm,
    *,
    max_hops: int | None = None,
    max_class_union: int = 2,
    ecdg_cls: type[ExtendedChannelDependencyGraph] = ExtendedChannelDependencyGraph,
    transitions: TransitionCache | None = None,
    applicability_fn: ApplicabilityFn | None = None,
) -> Verdict:
    """Search the natural escape-set candidates for a certifying R1.

    Candidates: each virtual-channel class alone, unions of up to
    ``max_class_union`` classes, and the full channel set.  If one certifies
    the algorithm the verdict is authoritative ("iff" direction satisfied by
    exhibition); if none does, the verdict reports failure of the *search*,
    not a proof of deadlock (the complete search is exponential).

    ``applicability_fn`` substitutes for :func:`applicability` (same
    signature and messages); the incremental engine injects a memoizing
    variant whose per-pair coherence cells survive across deltas.
    """
    check = applicability_fn if applicability_fn is not None else applicability
    ok, why = check(algorithm, max_hops=max_hops)
    if not ok:
        return Verdict(
            algorithm.name, "Duato", False, necessary_and_sufficient=False,
            reason=f"condition not applicable: {why}",
            evidence={"applicable": False},
        )
    vcs = sorted({c.vc for c in algorithm.network.link_channels})
    candidates: list[tuple[str, EscapeSpec]] = []
    for r in range(1, min(max_class_union, len(vcs)) + 1):
        for combo in combinations(vcs, r):
            candidates.append((f"vc classes {combo}", escape_by_vc(algorithm, combo)))
    candidates.append(("all channels", frozenset(algorithm.network.link_channels)))
    tried: list[str] = []
    for label, esc in candidates:
        verdict = duato_condition(algorithm, esc, check_applicability=False,
                                  ecdg_cls=ecdg_cls, transitions=transitions)
        tried.append(label)
        if verdict.deadlock_free:
            verdict.reason += f" (escape = {label})"
            verdict.evidence["escape_label"] = label
            return verdict
    return Verdict(
        algorithm.name, "Duato", False, necessary_and_sufficient=False,
        reason=f"no certifying escape set among candidates: {tried}",
        evidence={"applicable": True, "tried": tried},
    )
