"""Existence of *any* deadlock-free routing relation on an arbitrary network.

Every other module in :mod:`repro.verify` answers "is this *given* relation
deadlock-free?".  This one answers the prior question Mendlovic & Matias
(arXiv:2503.04583) pose: does the channel digraph admit *any* deadlock-free
routing relation at all?  The decision procedure works on the network's link
channels viewed as a directed multigraph (each virtual channel is its own
arc -- exactly the vertex set of the CDG/CWG kernels) and is two-sided
constructive:

* **YES** comes with a *channel ordering certificate*: a permutation of the
  link channels such that every ordered node pair ``(s, d)`` is connected by
  a path whose channels are strictly increasing in the order.  The
  certificate is machine-checked by :func:`simulate_schedule` -- a linear
  "one-way gossip" pass: process the arcs in order, each arc ``u -> v``
  merging ``sources[u]`` into ``sources[v]``; the order is valid iff every
  node ends up holding every source.  From any valid ordering,
  :func:`synthesize_witness` emits a concrete deterministic routing relation
  (wait-on-SPECIFIC, acyclic CWG by construction) that the independently
  implemented Theorem checker then certifies -- so a YES is never taken on
  faith.
* **NO** comes with a *forced-precedence cycle*: a cyclic chain of
  constraints ``a < b``, each certified by a node pair ``(s, d)`` such that
  every ``s -> d`` path uses channel ``b`` and every ``s -> tail(b)`` path
  uses channel ``a`` (so in any ordering realizing all pairs, ``a`` must
  come strictly before ``b``).  A cycle of such constraints is
  unsatisfiable, hence no valid ordering -- and, via the equivalence below,
  no deadlock-free relation -- exists.  :meth:`Obstruction.verify` rechecks
  every constraint from raw reachability, and the cycle is *minimal*:
  dropping any single constraint breaks it.

Why channel orderability captures existence
-------------------------------------------
*Sufficiency*: given a valid ordering, route each message along a strictly
increasing path and let it wait (SPECIFIC) on the designated next channel.
Every waiting-dependency then goes strictly up the order, so the CWG is
acyclic and Theorem 2 certifies deadlock freedom.  This direction is not
argued abstractly -- the synthesizer builds the relation and the theorem
checker certifies it on every YES.

*Necessity*: a deadlock-free relation yields an acyclic immediate-wait
structure on some subrelation reaching all pairs; a topological order of it
is a valid channel ordering.  Networks that defeat every ordering (the
unidirectional ring is the smallest example) defeat every relation: the
forced-precedence cycle names channel demands that any all-pairs relation
must serialize and cannot.  The fuzz campaign pins this direction
empirically: the ``existence`` oracle claims deadlock for *every* generated
relation on a NO network, so a single deadlock-free relation certified by
any other checker on such a network is a reported contradiction.

Decision tiers (all certificates re-verified, nothing authoritative without
one, except a NO from the exhaustive search itself):

1. cheap constructive screens -- an up/down spanning-tree schedule for
   networks whose every link has a reverse link, then greedy gossip
   maximization (several tie-breaks); any candidate that simulates complete
   is a YES;
2. the forced-precedence obstruction screen (polynomial, sound for NO);
3. an exhaustive memoized search over useful gossip schedules for small
   digraphs (authoritative both ways; any completing schedule can be
   reordered so every fired arc is useful when fired, so restricting to
   useful moves loses nothing);
4. otherwise UNDETERMINED -- the verdict claims nothing and the fuzz oracle
   treats it as silent.

:func:`brute_force_existence` is the independent reference for tiny
digraphs: plain enumeration of every channel permutation.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import TYPE_CHECKING, Any

from ..core.depgraph import bits, find_cycle_adj

if TYPE_CHECKING:
    from ..routing.relation import RoutingAlgorithm
    from ..topology.network import Network

__all__ = [
    "ExistenceVerdict",
    "ForcedStep",
    "Obstruction",
    "Witness",
    "brute_force_existence",
    "decide_existence",
    "forced_cycle",
    "schedule_from_triples",
    "schedule_triples",
    "simulate_schedule",
    "synthesize_witness",
]


# ----------------------------------------------------------------------
# the gossip simulation (certificate checker for YES)
# ----------------------------------------------------------------------
def _link_cids(network: Network) -> list[int]:
    return [c.cid for c in network.link_channels]


def simulate_schedule(network: Network, schedule: tuple[int, ...] | list[int]) -> tuple[bool, int]:
    """Run the one-way gossip pass for ``schedule`` (a sequence of link cids).

    Returns ``(complete, essential)``: whether every node ends up holding
    every source, and the length of the shortest completing prefix
    (``len(schedule)`` when incomplete).  Linear in ``len(schedule)`` --
    each arc is one bitmask merge.
    """
    n = network.num_nodes
    full = (1 << n) - 1
    sources = [1 << v for v in range(n)]
    if all(m == full for m in sources):
        return True, 0
    essential = len(schedule)
    done = False
    for i, cid in enumerate(schedule):
        ch = network.channel(cid)
        merged = sources[ch.dst] | sources[ch.src]
        if merged != sources[ch.dst]:
            sources[ch.dst] = merged
            if not done and all(m == full for m in sources):
                essential = i + 1
                done = True
    return done, essential


def verify_schedule(network: Network, schedule: tuple[int, ...]) -> bool:
    """True iff ``schedule`` is a permutation of the link cids and completes."""
    cids = _link_cids(network)
    if sorted(schedule) != sorted(cids):
        return False
    complete, _ = simulate_schedule(network, schedule)
    return complete


def schedule_triples(network: Network, schedule: tuple[int, ...]) -> tuple[tuple[int, int, int], ...]:
    """Schedule as ``(src, dst, vc)`` triples -- stable across cid renumbering."""
    out: list[tuple[int, int, int]] = []
    for cid in schedule:
        ch = network.channel(cid)
        out.append((ch.src, ch.dst, ch.vc))
    return tuple(out)


def schedule_from_triples(
    network: Network, triples: tuple[tuple[int, int, int], ...]
) -> tuple[int, ...] | None:
    """Map ``(src, dst, vc)`` triples back to cids; ``None`` if any is absent."""
    index: dict[tuple[int, int, int], int] = {
        (c.src, c.dst, c.vc): c.cid for c in network.link_channels
    }
    out: list[int] = []
    for t in triples:
        cid = index.get(t)
        if cid is None:
            return None
        out.append(cid)
    return tuple(out)


# ----------------------------------------------------------------------
# YES screens: constructive schedule candidates (always re-verified)
# ----------------------------------------------------------------------
def _tree_schedule(network: Network) -> list[int] | None:
    """Up/down schedule over a spanning tree of the bidirectional sublinks.

    When a spanning tree exists whose every edge has link channels in both
    directions, firing all child->parent arcs deepest-first and then all
    parent->child arcs shallowest-first routes every source through the
    root to every node; remaining arcs are appended (extra arcs at the top
    of an order never break it).
    """
    n = network.num_nodes
    if n == 0:
        return []
    pair: dict[tuple[int, int], int] = {}
    for c in network.link_channels:
        key = (c.src, c.dst)
        if key not in pair or c.cid < pair[key]:
            pair[key] = c.cid
    undirected: dict[int, list[int]] = {v: [] for v in range(n)}
    for (u, v) in pair:
        if (v, u) in pair:
            undirected[u].append(v)
    parent: dict[int, int] = {0: -1}
    depth = {0: 0}
    order = [0]
    frontier = [0]
    while frontier:
        u = frontier.pop(0)
        for v in sorted(undirected[u]):
            if v not in parent:
                parent[v] = u
                depth[v] = depth[u] + 1
                order.append(v)
                frontier.append(v)
    if len(parent) != n:
        return None
    up = sorted((v for v in parent if parent[v] >= 0), key=lambda v: -depth[v])
    down = sorted((v for v in parent if parent[v] >= 0), key=lambda v: depth[v])
    schedule = [pair[(v, parent[v])] for v in up]
    schedule += [pair[(parent[v], v)] for v in down]
    used = set(schedule)
    schedule += [c.cid for c in network.link_channels if c.cid not in used]
    return schedule


def _greedy_schedule(network: Network, *, reverse_ties: bool = False) -> list[int] | None:
    """Fire the useful arc adding the most new (source, node) facts."""
    n = network.num_nodes
    full = (1 << n) - 1
    sources = [1 << v for v in range(n)]
    arcs = [(c.cid, c.src, c.dst) for c in network.link_channels]
    remaining = dict.fromkeys(range(len(arcs)))
    schedule: list[int] = []
    while any(m != full for m in sources):
        best = -1
        best_key: tuple[int, int] | None = None
        for i in remaining:
            cid, u, v = arcs[i]
            gain = bin(sources[u] & ~sources[v]).count("1")
            if gain == 0:
                continue
            key = (gain, cid if reverse_ties else -cid)
            if best_key is None or key > best_key:
                best_key = key
                best = i
        if best < 0:
            return None
        cid, u, v = arcs[best]
        sources[v] |= sources[u]
        schedule.append(cid)
        del remaining[best]
    schedule += sorted(arcs[i][0] for i in remaining)
    return schedule


def _screen_schedules(network: Network) -> tuple[str, tuple[int, ...]] | None:
    """First screen whose candidate schedule verifies, with its method tag."""
    candidates: list[tuple[str, list[int] | None]] = [
        ("tree-screen", _tree_schedule(network)),
        ("greedy-screen", _greedy_schedule(network)),
        ("greedy-screen", _greedy_schedule(network, reverse_ties=True)),
    ]
    for method, cand in candidates:
        if cand is None:
            continue
        schedule = tuple(cand)
        if verify_schedule(network, schedule):
            return method, schedule
    return None


# ----------------------------------------------------------------------
# NO screen: forced-precedence obstruction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ForcedStep:
    """One forced precedence ``before < after``, certified by a node pair.

    Every ``source -> dest`` path uses channel ``after``, and every
    ``source -> tail(after)`` path uses channel ``before`` -- so any
    channel ordering realizing the pair must place ``before`` strictly
    before ``after``.
    """

    before: int
    after: int
    source: int
    dest: int

    def verify(self, network: Network) -> bool:
        ch = network.channel(self.after)
        return (
            not _reaches_without(network, self.source, self.dest, self.after)
            and not _reaches_without(network, self.source, ch.src, self.before)
        )

    def to_json(self) -> dict[str, int]:
        return {
            "before": self.before,
            "after": self.after,
            "source": self.source,
            "dest": self.dest,
        }


@dataclass(frozen=True)
class Obstruction:
    """A machine-checkable witness that no valid channel ordering exists.

    ``kind == "forced-cycle"``: ``steps`` chain into a cycle
    (``steps[i].after == steps[i+1].before``, wrapping), so the forced
    precedences are cyclic and unsatisfiable.  A single step with
    ``before == after`` is the degenerate one-step cycle.  The witness is
    minimal under single-edge removal: every step is load-bearing, since
    dropping any one leaves an acyclic chain.

    ``kind == "exhausted"``: the exhaustive schedule search proved NO but
    no forced-precedence cycle exists at this granularity; the certificate
    is the (re-runnable) search itself.
    """

    steps: tuple[ForcedStep, ...]
    kind: str = "forced-cycle"

    def cycle(self) -> tuple[int, ...]:
        """The cyclically ordered channel cids the steps chain through."""
        return tuple(s.before for s in self.steps)

    def verify(self, network: Network) -> bool:
        if self.kind != "forced-cycle" or not self.steps:
            return False
        k = len(self.steps)
        for i, step in enumerate(self.steps):
            if step.after != self.steps[(i + 1) % k].before:
                return False
            if not step.verify(network):
                return False
        return len(set(self.cycle())) == k

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "steps": [s.to_json() for s in self.steps]}


def _reaches_without(network: Network, source: int, target: int, banned: int) -> bool:
    """Can ``source`` reach ``target`` over link channels other than ``banned``?"""
    if source == target:
        return True
    seen = 1 << source
    frontier = [source]
    while frontier:
        u = frontier.pop()
        for c in network.out_channels(u):
            if c.cid == banned:
                continue
            v = c.dst
            if not (seen >> v) & 1:
                if v == target:
                    return True
                seen |= 1 << v
                frontier.append(v)
    return False


def _unavoidable_masks(network: Network) -> dict[int, list[int]]:
    """Per link cid ``b``: bitmask, per source, of nodes unreachable without ``b``."""
    n = network.num_nodes
    full = (1 << n) - 1
    out: dict[int, list[int]] = {}
    for banned in _link_cids(network):
        row: list[int] = []
        for s in range(n):
            seen = 1 << s
            frontier = [s]
            while frontier:
                u = frontier.pop()
                for c in network.out_channels(u):
                    if c.cid == banned:
                        continue
                    v = c.dst
                    if not (seen >> v) & 1:
                        seen |= 1 << v
                        frontier.append(v)
            row.append(full & ~seen)
        out[banned] = row
    return out


def forced_cycle(network: Network, *, per_edge: bool = False) -> Obstruction | None:
    """Find a forced-precedence cycle, or ``None`` when the screen is silent.

    ``per_edge=True`` is the deliberately broken scope the planted fuzz
    variant uses: each constraint edge is inspected in isolation (only the
    degenerate one-step cycles ``b < b`` can fire), never the strongly
    connected components of the whole constraint digraph -- which is where
    every real obstruction lives.
    """
    unavoid = _unavoidable_masks(network)
    cids = _link_cids(network)
    tail = {cid: network.channel(cid).src for cid in cids}
    # adjacency of the constraint digraph over cids, one witness per edge
    adj: dict[int, list[int]] = {cid: [] for cid in cids}
    witness: dict[tuple[int, int], tuple[int, int]] = {}
    for b in cids:
        row_b = unavoid[b]
        for s in range(network.num_nodes):
            dests = row_b[s]
            if not dests:
                continue
            tb = tail[b]
            for a in cids:
                if (unavoid[a][s] >> tb) & 1:
                    if (a, b) not in witness:
                        witness[(a, b)] = (s, next(bits(dests)))
                        adj[a].append(b)
    for (a, b), (s, d) in sorted(witness.items()):
        if a == b:
            return Obstruction(steps=(ForcedStep(before=a, after=b, source=s, dest=d),))
    if per_edge:
        return None
    cycle = find_cycle_adj(set(cids), adj)
    if cycle is None:
        return None
    steps: list[ForcedStep] = []
    k = len(cycle)
    for i, a in enumerate(cycle):
        b = cycle[(i + 1) % k]
        s, d = witness[(a, b)]
        steps.append(ForcedStep(before=a, after=b, source=s, dest=d))
    return Obstruction(steps=tuple(steps))


# ----------------------------------------------------------------------
# exhaustive memoized search (authoritative on small digraphs)
# ----------------------------------------------------------------------
class _Budget(Exception):
    pass


def _exact_search(network: Network, max_states: int) -> tuple[bool, tuple[int, ...] | None, int]:
    """Exhaustive search over useful gossip schedules.

    Returns ``(exists, schedule, states_visited)``.  Sound restrictions:
    only *useful* firings are tried (any completing schedule reorders into
    one whose every fired arc merges new sources, unfired arcs appended);
    parallel arcs are canonicalized (identical ``(src, dst)`` arcs are
    interchangeable, so only the lowest-cid unfired copy fires); states
    failing the *relaxed closure* bound (merge every remaining arc
    repeatedly without consuming it -- an over-approximation of anything a
    schedule could still achieve) are cut immediately.  Raises
    :class:`_Budget` past ``max_states`` distinct states.
    """
    n = network.num_nodes
    full = (1 << n) - 1
    arcs = [(c.cid, c.src, c.dst) for c in network.link_channels]
    a_count = len(arcs)
    group: dict[tuple[int, int], list[int]] = {}
    for i, (_, u, v) in enumerate(arcs):
        group.setdefault((u, v), []).append(i)
    failed: set[tuple[int, tuple[int, ...]]] = set()
    states = 0

    def closure_ok(remaining: int, sources: list[int]) -> bool:
        relaxed = list(sources)
        changed = True
        while changed:
            changed = False
            for i in bits(remaining):
                _, u, v = arcs[i]
                merged = relaxed[v] | relaxed[u]
                if merged != relaxed[v]:
                    relaxed[v] = merged
                    changed = True
        return all(m == full for m in relaxed)

    def canonical_moves(remaining: int, sources: list[int]) -> list[int]:
        moves: list[int] = []
        for members in group.values():
            for i in members:
                if (remaining >> i) & 1:
                    _, u, v = arcs[i]
                    if sources[u] & ~sources[v]:
                        moves.append(i)
                    break
        return moves

    def search(remaining: int, sources: list[int], fired: list[int]) -> tuple[int, ...] | None:
        nonlocal states
        if all(m == full for m in sources):
            tail = sorted(arcs[i][0] for i in bits(remaining))
            return tuple(fired + tail)
        key = (remaining, tuple(sources))
        if key in failed:
            return None
        states += 1
        if states > max_states:
            raise _Budget
        if not closure_ok(remaining, sources):
            failed.add(key)
            return None
        for i in canonical_moves(remaining, sources):
            cid, u, v = arcs[i]
            saved = sources[v]
            sources[v] |= sources[u]
            fired.append(cid)
            found = search(remaining & ~(1 << i), sources, fired)
            fired.pop()
            sources[v] = saved
            if found is not None:
                return found
        failed.add(key)
        return None

    initial = [1 << v for v in range(n)]
    schedule = search((1 << a_count) - 1, initial, [])
    return schedule is not None, schedule, states


def brute_force_existence(network: Network, *, limit: int = 100_000) -> tuple[bool, tuple[int, ...] | None]:
    """Plain enumeration over every channel permutation (tiny digraphs only).

    The independent reference the differential tests pin
    :func:`decide_existence` against; raises :class:`ValueError` when the
    factorial search space exceeds ``limit`` permutations.
    """
    cids = _link_cids(network)
    count = 1
    for i in range(2, len(cids) + 1):
        count *= i
        if count > limit:
            raise ValueError(
                f"{len(cids)}! permutations exceed the brute-force limit {limit}"
            )
    for perm in itertools.permutations(cids):
        complete, _ = simulate_schedule(network, perm)
        if complete:
            return True, tuple(perm)
    return False, None


# ----------------------------------------------------------------------
# the verdict
# ----------------------------------------------------------------------
@dataclass
class ExistenceVerdict:
    """Outcome of the existence decision, certificate included.

    ``exists`` is ``None`` when undetermined (every tier passed); such a
    verdict claims nothing (``authoritative`` is ``False``).  ``schedule``
    carries the YES certificate, ``obstruction`` the NO certificate.
    """

    network: str
    num_nodes: int
    num_channels: int
    exists: bool | None
    authoritative: bool
    method: str
    schedule: tuple[int, ...] | None = None
    obstruction: Obstruction | None = None
    reason: str = ""
    evidence: dict[str, Any] = field(default_factory=dict)

    def verify(self, network: Network) -> bool:
        """Re-check the carried certificate against the network from scratch."""
        if self.exists is True:
            return self.schedule is not None and verify_schedule(network, self.schedule)
        if self.exists is False:
            if self.obstruction is None:
                return False
            if self.obstruction.kind == "forced-cycle":
                return self.obstruction.verify(network)
            # an exhausted-search NO re-runs the (deterministic) search
            exists, _, _ = _exact_search(network, max_states=10_000_000)
            return not exists
        return True

    def to_json(self) -> dict[str, Any]:
        return {
            "network": self.network,
            "num_nodes": self.num_nodes,
            "num_channels": self.num_channels,
            "exists": self.exists,
            "authoritative": self.authoritative,
            "method": self.method,
            "schedule": list(self.schedule) if self.schedule is not None else None,
            "obstruction": self.obstruction.to_json() if self.obstruction else None,
            "reason": self.reason,
        }

    def digest(self) -> str:
        """Content digest of the verdict payload (delta-matrix pinning)."""
        payload = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return blake2b(payload.encode(), digest_size=16).hexdigest()

    def describe(self) -> str:
        state = {True: "YES", False: "NO", None: "UNDETERMINED"}[self.exists]
        return f"{self.network}: existence={state} via {self.method} ({self.reason})"


def decide_existence(
    network: Network,
    *,
    exact_arcs: int = 12,
    max_states: int = 200_000,
    obstruction_arcs: int = 220,
) -> ExistenceVerdict:
    """Decide whether any deadlock-free routing relation exists on ``network``.

    Tiers: constructive YES screens, the exhaustive search when the digraph
    has at most ``exact_arcs`` link channels (authoritative both ways,
    state-budgeted by ``max_states``), the forced-precedence NO screen up
    to ``obstruction_arcs`` channels, otherwise UNDETERMINED.
    """
    cids = _link_cids(network)
    base: dict[str, Any] = {
        "network": network.name,
        "num_nodes": network.num_nodes,
        "num_channels": len(cids),
    }
    if network.num_nodes <= 1:
        return ExistenceVerdict(
            exists=True, authoritative=True, method="trivial",
            schedule=tuple(cids), reason="single node: no pairs to route", **base,
        )
    screened = _screen_schedules(network)
    if screened is not None:
        method, schedule = screened
        return ExistenceVerdict(
            exists=True, authoritative=True, method=method, schedule=schedule,
            reason="verified channel-ordering certificate", **base,
        )
    if len(cids) <= exact_arcs:
        try:
            exists, schedule, states = _exact_search(network, max_states)
        except _Budget:
            pass
        else:
            if exists:
                return ExistenceVerdict(
                    exists=True, authoritative=True, method="exact-search",
                    schedule=schedule, evidence={"states": states},
                    reason="verified channel-ordering certificate (exhaustive search)",
                    **base,
                )
            obstruction = forced_cycle(network)
            if obstruction is None:
                obstruction = Obstruction(steps=(), kind="exhausted")
            return ExistenceVerdict(
                exists=False, authoritative=True, method="exact-search",
                obstruction=obstruction, evidence={"states": states},
                reason="exhaustive schedule search found no valid channel ordering",
                **base,
            )
    if len(cids) <= obstruction_arcs:
        obstruction = forced_cycle(network)
        if obstruction is not None:
            return ExistenceVerdict(
                exists=False, authoritative=True, method="forced-cycle",
                obstruction=obstruction,
                reason="cyclic forced-precedence constraints defeat every ordering",
                **base,
            )
    return ExistenceVerdict(
        exists=None, authoritative=False, method="undetermined",
        reason="screens silent and digraph too large for the exhaustive search",
        **base,
    )


# ----------------------------------------------------------------------
# the constructive synthesizer
# ----------------------------------------------------------------------
@dataclass
class Witness:
    """A synthesized routing relation realizing an existence YES.

    ``kind`` records which synthesis tier produced it: ``"nd-minimal"`` (a
    deterministic minimal-path ``R(n, d)`` relation accepted only after
    *both* the theorem and Duato checkers certified it at synthesis time)
    or ``"cnd-ordered"`` (the general increasing-path ``R(c, n, d)``
    relation read off the ordering certificate; Duato's condition does not
    apply to CND relations, the theorem checker must certify it).
    ``table`` holds the explicit route cells in the fuzz table-key grammar
    (``n{node}->{dest}`` / ``c{cid}->{dest}`` / ``i{node}->{dest}``).
    """

    algorithm: RoutingAlgorithm
    kind: str
    table: dict[str, list[int]]

    @property
    def nd(self) -> bool:
        return self.kind == "nd-minimal"


def _cnd_ordered_table(network: Network, schedule: tuple[int, ...]) -> dict[str, list[int]]:
    """Deterministic increasing-path routes from an ordering certificate.

    Per destination, ``good`` channels (those starting a strictly
    increasing path to the destination) are computed by one pass down the
    order; each state then takes the lowest-ranked good channel above its
    input.  A valid certificate makes every reachable state routable; an
    invalid one leaves gaps the theorem checker flags as not
    wait-connected (the fuzz oracle's teeth against bogus YES claims).
    """
    rank = {cid: i for i, cid in enumerate(schedule)}
    by_rank = sorted(rank, key=lambda cid: rank[cid])
    table: dict[str, list[int]] = {}
    for dest in range(network.num_nodes):
        good: set[int] = set()
        for cid in reversed(by_rank):
            ch = network.channel(cid)
            if ch.dst == dest or any(
                c.cid in good and rank[c.cid] > rank[cid]
                for c in network.out_channels(ch.dst)
            ):
                good.add(cid)

        def next_cid(node: int, floor: int, dest: int = dest, good: set[int] = good) -> int | None:
            best: int | None = None
            for c in network.out_channels(node):
                r = rank[c.cid]
                if r > floor and c.cid in good and (best is None or r < rank[best]):
                    best = c.cid
            return best

        # walk reachable states: injection first, then channel inputs
        pending: list[tuple[str, int, int]] = [
            (f"i{s}->{dest}", s, -1) for s in range(network.num_nodes) if s != dest
        ]
        seen: set[str] = set()
        while pending:
            key, node, floor = pending.pop()
            if key in seen:
                continue
            seen.add(key)
            nxt = next_cid(node, floor)
            if nxt is None:
                table[key] = []
                continue
            table[key] = [nxt]
            ch = network.channel(nxt)
            if ch.dst != dest:
                pending.append((f"c{nxt}->{dest}", ch.dst, rank[nxt]))
    return table


def _nd_minimal_assignment(
    network: Network, *, repair_rounds: int | None = None
) -> dict[tuple[int, int], int] | None:
    """A deterministic minimal-path ``(node, dest) -> cid`` choice whose
    joint consecutive-dependency graph is acyclic, or ``None``.

    Greedy lowest-cid choices plus bounded cycle repair: while the joint
    dependency graph is cyclic, advance the first on-cycle cell that still
    has an untried minimal candidate.  Deterministic; gives up after the
    repair budget.
    """
    dist = network.shortest_distances()
    cells: list[tuple[int, int]] = []
    cand: dict[tuple[int, int], list[int]] = {}
    for dest in range(network.num_nodes):
        for node in range(network.num_nodes):
            if node == dest or dist[node][dest] < 0:
                continue
            mins = sorted(
                c.cid for c in network.out_channels(node)
                if dist[c.dst][dest] == dist[node][dest] - 1
            )
            if not mins:
                return None
            cells.append((node, dest))
            cand[(node, dest)] = mins
    choice = {cell: 0 for cell in cells}
    if repair_rounds is None:
        repair_rounds = 4 * len(network.link_channels) + 16

    def dep_adj() -> tuple[dict[int, list[int]], dict[tuple[int, int], list[tuple[int, int]]]]:
        adj: dict[int, list[int]] = {}
        labels: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for (node, dest), idx in choice.items():
            g = cand[(node, dest)][idx]
            head = network.channel(g).dst
            if head == dest:
                continue
            g2 = cand[(head, dest)][choice[(head, dest)]]
            adj.setdefault(g, []).append(g2)
            labels.setdefault((g, g2), []).append((node, dest))
        return adj, labels

    for _ in range(repair_rounds):
        adj, labels = dep_adj()
        vertices = set(adj)
        for targets in adj.values():
            vertices.update(targets)
        cycle = find_cycle_adj(vertices, adj)
        if cycle is None:
            return {
                cell: cand[cell][idx] for cell, idx in choice.items()
            }
        advanced = False
        k = len(cycle)
        for i in range(k):
            edge = (cycle[i], cycle[(i + 1) % k])
            for cell in labels.get(edge, []):
                if choice[cell] + 1 < len(cand[cell]):
                    choice[cell] += 1
                    advanced = True
                    break
            if advanced:
                break
        if not advanced:
            return None
    return None


def _witness_tables(
    network: Network, schedule: tuple[int, ...]
) -> tuple[str, dict[str, list[int]]]:
    """Pick the synthesis tier: certified ND-minimal if possible, else CND."""
    from ..routing.properties import is_coherent, provides_minimal_path

    assignment = _nd_minimal_assignment(network)
    if assignment is not None:
        table = {
            f"n{node}->{dest}": [cid] for (node, dest), cid in assignment.items()
        }
        algo = _build_witness(network, "nd-minimal", table)
        if is_coherent(algo) and provides_minimal_path(algo):
            from . import duato, necsuf

            theorem_ok = necsuf.verify(algo).deadlock_free
            duato_ok = duato.search_escape(algo).deadlock_free
            if theorem_ok and duato_ok:
                return "nd-minimal", table
    return "cnd-ordered", _cnd_ordered_table(network, schedule)


def _build_witness(
    network: Network, kind: str, table: dict[str, list[int]]
) -> RoutingAlgorithm:
    from ..routing.relation import NodeDestRouting, RoutingAlgorithm, WaitPolicy
    from ..topology.channel import Channel

    if kind == "nd-minimal":

        class _NdWitness(NodeDestRouting):
            name = "existence-witness-nd"
            wait_policy = WaitPolicy.SPECIFIC

            def route_nd(self, node: int, dest: int) -> frozenset[Channel]:
                cids = table.get(f"n{node}->{dest}", [])
                return frozenset(self.network.channel(c) for c in cids)

        return _NdWitness(network)

    class _CndWitness(RoutingAlgorithm):
        name = "existence-witness-cnd"
        form = "CND"
        wait_policy = WaitPolicy.SPECIFIC

        def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
            if node == dest:
                return frozenset()
            key = f"c{c_in.cid}->{dest}" if c_in.is_link else f"i{node}->{dest}"
            cids = table.get(key, [])
            return frozenset(self.network.channel(c) for c in cids)

    return _CndWitness(network)


def synthesize_witness(network: Network, schedule: tuple[int, ...]) -> Witness:
    """Emit a concrete routing relation realizing an ordering certificate.

    Tier 1 tries a deterministic minimal-path ND relation and keeps it only
    when the theorem *and* Duato checkers both certify it (some orderable
    networks -- the bidirectional odd ring on one virtual channel is the
    smallest -- admit no deadlock-free minimal deterministic relation at
    all, so this tier cannot always win).  Tier 2 reads the increasing-path
    CND relation straight off the certificate; its CWG is acyclic by
    construction and the theorem checker must certify it.
    """
    kind, table = _witness_tables(network, schedule)
    return Witness(algorithm=_build_witness(network, kind, table), kind=kind, table=table)
