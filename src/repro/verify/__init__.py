"""Deadlock-freedom verifiers.

Three generations of theory, all mechanized:

* :func:`~repro.verify.dally_seitz.dally_seitz` -- acyclic CDG (1987);
* :func:`~repro.verify.duato.duato_condition` / ``search_escape`` --
  Duato's extended-CDG condition (the titled ICPP'94 paper);
* :func:`~repro.verify.necsuf.theorem1/2/3` / ``verify`` -- the channel
  waiting graph condition of the supplied text, applicable to any routing
  relation using local information.
"""

from .dally_seitz import dally_seitz, is_nonadaptive
from .duato import applicability, duato_condition, search_escape
from .necsuf import (
    DeadlockConfiguration,
    deadlock_configuration,
    theorem1,
    theorem2,
    theorem3,
    verify,
)
from .report import VerificationError, Verdict, ordered_witness, stable_evidence

__all__ = [
    "DeadlockConfiguration",
    "VerificationError",
    "Verdict",
    "applicability",
    "dally_seitz",
    "deadlock_configuration",
    "duato_condition",
    "is_nonadaptive",
    "ordered_witness",
    "search_escape",
    "stable_evidence",
    "theorem1",
    "theorem2",
    "theorem3",
    "verify",
]
