"""Deadlock-freedom verifiers.

Three generations of theory, all mechanized:

* :func:`~repro.verify.dally_seitz.dally_seitz` -- acyclic CDG (1987);
* :func:`~repro.verify.duato.duato_condition` / ``search_escape`` --
  Duato's extended-CDG condition (the titled ICPP'94 paper);
* :func:`~repro.verify.necsuf.theorem1/2/3` / ``verify`` -- the channel
  waiting graph condition of the supplied text, applicable to any routing
  relation using local information;
* :func:`~repro.verify.existence.decide_existence` -- the network-level
  question those three presuppose an answer to: does *any* deadlock-free
  relation exist on this channel digraph (Mendlovic--Matias,
  arXiv:2503.04583), with a constructive witness either way.
"""

from .dally_seitz import dally_seitz, is_nonadaptive
from .duato import applicability, duato_condition, search_escape
from .existence import (
    ExistenceVerdict,
    Obstruction,
    Witness,
    brute_force_existence,
    decide_existence,
    simulate_schedule,
    synthesize_witness,
)
from .necsuf import (
    DeadlockConfiguration,
    deadlock_configuration,
    theorem1,
    theorem2,
    theorem3,
    verify,
)
from .report import VerificationError, Verdict, ordered_witness, stable_evidence

__all__ = [
    "DeadlockConfiguration",
    "ExistenceVerdict",
    "Obstruction",
    "VerificationError",
    "Verdict",
    "Witness",
    "applicability",
    "brute_force_existence",
    "dally_seitz",
    "deadlock_configuration",
    "decide_existence",
    "duato_condition",
    "is_nonadaptive",
    "ordered_witness",
    "search_escape",
    "simulate_schedule",
    "stable_evidence",
    "synthesize_witness",
    "theorem1",
    "theorem2",
    "theorem3",
    "verify",
]
