"""The Dally--Seitz condition: an acyclic channel dependency graph.

Necessary and sufficient for *nonadaptive* routing; sufficient only for
adaptive routing.  Exposed both as a verifier and as the ablation foil the
benchmarks use: HPL's CDG is cyclic (Dally--Seitz rejects it) while its CWG
is acyclic (Theorem 2 certifies it).
"""

from __future__ import annotations

from ..deps.cdg import ChannelDependencyGraph
from ..core.cycles import find_one_cycle
from ..routing.relation import RoutingAlgorithm
from .report import Verdict


def is_nonadaptive(algorithm: RoutingAlgorithm) -> bool:
    """Does the relation ever offer more than one output channel?"""
    net = algorithm.network
    for dest in net.nodes:
        for node in net.nodes:
            if node == dest:
                continue
            inputs = [net.injection_channel(node), *net.in_channels(node)]
            for c_in in inputs:
                if len(algorithm.route(c_in, node, dest)) > 1:
                    return False
    return True


def dally_seitz(
    algorithm: RoutingAlgorithm,
    *,
    cdg: ChannelDependencyGraph | None = None,
    nonadaptive: bool | None = None,
) -> Verdict:
    """Apply the acyclic-CDG condition.

    The verdict is an "iff" only for nonadaptive algorithms; for adaptive
    ones an acyclic CDG still certifies deadlock freedom, but a cyclic CDG
    proves nothing (the verdict then reports ``deadlock_free=False`` with
    ``necessary_and_sufficient=False``, i.e. "cannot certify").

    ``nonadaptive`` skips the exhaustive :func:`is_nonadaptive` scan when
    the caller has already computed it (it must equal what the scan would
    return -- the incremental engine recomputes it per check and passes it
    here only so the cost lands in its own metrics bucket).
    """
    cdg = cdg or ChannelDependencyGraph(algorithm)
    if nonadaptive is None:
        nonadaptive = is_nonadaptive(algorithm)
    cycle = find_one_cycle(cdg.dep)
    if cycle is None:
        numbering = cdg.numbering()
        return Verdict(
            algorithm.name, "Dally-Seitz", True,
            necessary_and_sufficient=nonadaptive,
            reason="CDG is acyclic (strictly increasing channel numbering exists)",
            evidence={"cdg_edges": len(cdg), "numbering_size": len(numbering or {})},
        )
    return Verdict(
        algorithm.name, "Dally-Seitz", False,
        necessary_and_sufficient=nonadaptive,
        reason=(
            f"CDG has a cycle {cycle!r}"
            + ("" if nonadaptive else " (adaptive algorithm: condition cannot certify either way)")
        ),
        evidence={"cdg_edges": len(cdg), "cycle": cycle},
    )
