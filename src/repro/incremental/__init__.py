"""Incremental re-verification: deltas, overlays, and stateful sessions.

The paper's verifiers decide one frozen ``(network, relation)`` pair; this
package keeps a *changing* pair continuously verified.  A
:class:`~repro.incremental.session.IncrementalSession` holds the relation
behind an :class:`~repro.incremental.overlay.OverlayRouting` view, applies
:mod:`~repro.incremental.deltas` (link faults and repairs, table-cell
edits, virtual-channel additions), and re-runs the theorem, Duato, and
Dally--Seitz checkers rebuilding only what each delta's recorded footprint
touches -- with a hard contract that every verdict is bit-identical to a
cold full rebuild (:meth:`IncrementalSession.full_check`), which the
metamorphic test battery and the fuzz campaign's incremental oracle pin.
"""

from .deltas import (
    Delta,
    LinkDown,
    LinkUp,
    TableEdit,
    VcAdd,
    delta_from_json,
    delta_to_json,
    format_delta,
    parse_delta,
    parse_table_key,
)
from .existence import (
    ExistenceDecision,
    ExistenceSession,
    default_link_flap,
    semantic_digest,
)
from .overlay import OverlayRouting, RouteRecorder
from .session import (
    FullCheckResult,
    IncrementalSession,
    ReverifyResult,
    default_fault_pair,
    default_table_edit,
)

__all__ = [
    "Delta",
    "ExistenceDecision",
    "ExistenceSession",
    "FullCheckResult",
    "IncrementalSession",
    "LinkDown",
    "LinkUp",
    "OverlayRouting",
    "ReverifyResult",
    "RouteRecorder",
    "TableEdit",
    "VcAdd",
    "default_fault_pair",
    "default_link_flap",
    "default_table_edit",
    "delta_from_json",
    "delta_to_json",
    "format_delta",
    "parse_delta",
    "parse_table_key",
    "semantic_digest",
]
