"""Delta-aware incremental re-verification sessions.

A :class:`IncrementalSession` owns one routing relation (an
:class:`~repro.incremental.overlay.OverlayRouting` over a base algorithm)
and keeps every artifact the verifiers consume hot across a stream of
:mod:`~repro.incremental.deltas`:

* per-destination transition graphs, rebuilt only for *dirty* destinations
  -- a destination is dirty iff the changed channel appears in some
  pre-mask route/waiting set one of its queries consulted (recorded by the
  overlay's :class:`~repro.incremental.overlay.RouteRecorder`; soundness is
  an induction on the deterministic query trace: the first diverging query
  is made by both the cached and a fresh walk, and its pre-mask set
  contains the changed channel);
* the CWG and CDG kernels, re-merged from per-destination edge sets and
  refreshed through :meth:`~repro.core.depgraph.DepGraph.refresh_scc_from`
  -- payload-only deltas transfer the Tarjan decomposition verbatim,
  structural deltas recompute it canonically while the dirty-SCC frontier
  bounds and audits the blast radius;
* Duato's per-pair coherence/minimality cells, invalidated by the same
  recorded (destination, channel) footprints and injected into
  :func:`~repro.verify.duato.search_escape` as a drop-in
  ``applicability_fn``.

The correctness contract is *bit-identical equivalence*: for any delta
sequence, :meth:`IncrementalSession.check` must produce the same verdicts
-- same booleans, same reasons, same witness evidence, hence the same
:func:`~repro.pipeline.cache.verdicts_digest` -- as
:meth:`IncrementalSession.full_check`, which rebuilds everything from
scratch.  The metamorphic test battery and the fuzz oracle both pin
exactly that equality.

``stale_scc=True`` builds the deliberately broken variant the fuzz
campaign plants: link deltas skip the dirty-destination expansion
entirely, so the session keeps verifying yesterday's graphs.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..analyze.screens import triage, triage_verdict
from ..core.cwg import ChannelWaitingGraph
from ..core.depgraph import DepGraph, bits
from ..core.transitions import DestinationTransitions, TransitionCache
from ..deps.cdg import ChannelDependencyGraph
from ..pipeline.cache import VerificationCache, cached_verdict, verdicts_digest
from ..pipeline.engine import CONDITIONS, DEFAULT_CONDITIONS, JobSpec, build_topology
from ..pipeline.fingerprint import (
    _hasher as _fp_hasher,
    relation_header,
    relation_segment,
)
from ..pipeline.observability import StageMetrics
from ..routing.catalog import make
from ..routing.properties import (
    PropertyReport,
    minimal_path_pair,
    prefix_closed_pair,
    revisit_free_pair,
    suffix_closed_pair,
)
from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel
from ..verify import dally_seitz, search_escape, verify
from ..verify.dally_seitz import is_nonadaptive
from ..verify.report import Verdict
from .deltas import Delta, LinkDown, LinkUp, TableEdit, VcAdd, parse_table_key
from .overlay import OverlayRouting, RouteRecorder

#: the coherence sub-checks in the exact order :func:`is_coherent` runs them
_COHERENCE_KINDS = (
    ("prefix", "prefix-closed"),
    ("suffix", "suffix-closed"),
    ("revisit", "node-revisit-free"),
)


@dataclass
class ReverifyResult:
    """One incremental re-verification: verdicts plus provenance."""

    algorithm: str
    delta: Delta | None
    fingerprint: str
    verdicts: dict[str, Verdict]
    digest: str
    seconds: float
    cached: int = 0
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def deadlock_free(self) -> bool:
        return all(v.deadlock_free for v in self.verdicts.values())

    def describe(self) -> str:
        flags = " ".join(
            f"{k}={'T' if v.deadlock_free else 'F'}" for k, v in self.verdicts.items()
        )
        return (
            f"{self.algorithm}: {flags} digest={self.digest[:12]} "
            f"({self.seconds * 1000:.1f}ms, {self.cached} cached, "
            f"{self.stats.get('dirty_destinations', 0)} dirty dests)"
        )


@dataclass
class FullCheckResult:
    """A cold from-scratch check of the session's current relation."""

    verdicts: dict[str, Verdict]
    digest: str
    seconds: float

    @property
    def deadlock_free(self) -> bool:
        return all(v.deadlock_free for v in self.verdicts.values())


class IncrementalSession:
    """Stateful re-verification of one relation under a stream of deltas.

    ``algorithm`` is the base relation; alternatively build from a
    :class:`~repro.pipeline.engine.JobSpec` (required for :class:`VcAdd`,
    which must re-instantiate the topology).  ``conditions`` defaults to
    the spec's conditions or the engine's full set.  ``triage`` mirrors
    the batch engine's screen-first theorem path; :meth:`full_check` honors
    the same flag so the equivalence contract compares like with like.
    """

    def __init__(
        self,
        algorithm: RoutingAlgorithm | None = None,
        *,
        spec: JobSpec | None = None,
        conditions: tuple[str, ...] | None = None,
        cache: VerificationCache | None = None,
        metrics: StageMetrics | None = None,
        triage: bool = False,
        stale_scc: bool = False,
    ) -> None:
        if algorithm is None:
            if spec is None:
                raise ValueError("need an algorithm or a JobSpec")
            self._vcs = spec.vcs or 1
            algorithm = make(
                spec.algorithm, build_topology(spec.topology, spec.dims, self._vcs)
            )
        else:
            self._vcs = len({c.vc for c in algorithm.network.link_channels}) or 1
        if conditions is None:
            conditions = spec.conditions if spec is not None else DEFAULT_CONDITIONS
        for key in conditions:
            if key not in CONDITIONS:
                raise ValueError(f"unknown condition {key!r}; have {sorted(CONDITIONS)}")
        self.base: RoutingAlgorithm = algorithm
        self.spec = spec
        self.conditions: tuple[str, ...] = tuple(conditions)
        self.cache = cache
        self.metrics = metrics if metrics is not None else StageMetrics()
        self.triage = triage
        self.stale_scc = stale_scc
        #: accumulated deltas, in network-independent coordinates
        self._down_triples: set[tuple[int, int, int]] = set()
        self._edits: dict[str, TableEdit] = {}
        self._reset()

    @classmethod
    def from_spec(cls, spec: JobSpec, **kwargs: Any) -> IncrementalSession:
        return cls(spec=spec, **kwargs)

    # ------------------------------------------------------------------
    # full (re)build -- session start and VcAdd
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        net = self.base.network
        self._link_index: dict[tuple[int, int, int], Channel] = {
            (c.src, c.dst, c.vc): c for c in net.link_channels
        }
        down: set[Channel] = set()
        for t in sorted(self._down_triples):
            c = self._link_index.get(t)
            if c is None:
                raise ValueError(f"down link {t} does not exist in {net.name}")
            down.add(c)
        self.overlay = OverlayRouting(self.base, down=frozenset(down))
        self.tc = TransitionCache(self.overlay)
        self._dist = net.shortest_distances()
        #: dest -> pre-mask channel bitmask its transition walk consulted
        self._relevant: dict[int, int] = {}
        #: per-destination (src_cid, dst_cid) edge sets for both kernels
        self._cwg_edges: dict[int, set[tuple[int, int]]] = {}
        self._cdg_edges: dict[int, set[tuple[int, int]]] = {}
        self._dep: DepGraph | None = None
        self._cdg_dep: DepGraph | None = None
        #: (kind, src, dest) -> (report, consulted dests, consulted channels)
        self._cells: dict[tuple[str, int, int], tuple[PropertyReport, frozenset[int], int]] = {}
        #: cached relation-fingerprint pieces; segments keyed by destination
        self._fp_header: bytes | None = None
        self._fp_segments: dict[int, bytes] = {}
        pending = list(self._edits.values())
        self._edits = {}
        for edit in pending:
            self._apply_edit(edit)
        with self.metrics.timer("incremental:rebuild"):
            for dest in net.nodes:
                self._build_dt(dest)
            stats = self._refresh_graphs()
        stats["dirty_destinations"] = net.num_nodes
        self._last_stats = stats

    # ------------------------------------------------------------------
    # dirty-destination transition rebuilds
    # ------------------------------------------------------------------
    def _build_dt(self, dest: int) -> None:
        rec = RouteRecorder()
        self.overlay.begin_recording(rec)
        try:
            dt = DestinationTransitions(self.overlay, dest)
        finally:
            self.overlay.end_recording()
        self.tc.store(dest, dt)
        self._relevant[dest] = rec.mask
        self._fp_segments.pop(dest, None)
        cw: set[tuple[int, int]] = set()
        cd: set[tuple[int, int]] = set()
        dw = dt.downstream_wait_masks
        succ_masks = dt.succ_masks
        for a in dt.usable_cids:
            for b in bits(dw[a]):
                cw.add((a, b))
            for b in bits(succ_masks[a]):
                cd.add((a, b))
        self._cwg_edges[dest] = cw
        self._cdg_edges[dest] = cd

    def _refresh_graphs(self) -> dict[str, int]:
        """Re-merge the per-destination edge sets and refresh both kernels."""
        net = self.base.network
        cwg_masks: dict[tuple[int, int], int] = {}
        cdg_masks: dict[tuple[int, int], int] = {}
        for dest, edges in self._cwg_edges.items():
            bit = 1 << dest
            for k in edges:
                cwg_masks[k] = cwg_masks.get(k, 0) | bit
        for dest, edges in self._cdg_edges.items():
            bit = 1 << dest
            for k in edges:
                cdg_masks[k] = cdg_masks.get(k, 0) | bit
        stats: dict[str, int] = {}
        old, old_cdg = self._dep, self._cdg_dep
        self._dep = DepGraph(net, cwg_masks)
        self._cdg_dep = DepGraph(net, cdg_masks)
        if old is not None and old_cdg is not None:
            for prefix, new_dep, old_dep in (
                ("cwg", self._dep, old),
                ("cdg", self._cdg_dep, old_cdg),
            ):
                touched: set[int] = set()
                old_keys = {(u, v) for u, v, _ in old_dep.iter_edges()}
                new_keys = {(u, v) for u, v, _ in new_dep.iter_edges()}
                for u, v in old_keys.symmetric_difference(new_keys):
                    touched.add(u)
                    touched.add(v)
                for k, v2 in new_dep.refresh_scc_from(old_dep, touched).items():
                    stats[f"{prefix}_{k}"] = v2
                    self.metrics.count(f"{prefix}_{k}", v2)
        return stats

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def apply(self, delta: Delta) -> dict[str, int]:
        """Apply one delta; rebuild only what its footprint touches."""
        with self.metrics.timer("incremental:apply"):
            return self._apply(delta)

    def _apply(self, delta: Delta) -> dict[str, int]:
        dirty: set[int] = set()
        if isinstance(delta, (LinkDown, LinkUp)):
            triple = (delta.src, delta.dst, delta.vc)
            c = self._link_index.get(triple)
            if c is None:
                raise ValueError(
                    f"no link channel {delta.src}->{delta.dst} vc{delta.vc} "
                    f"in {self.base.network.name}"
                )
            if isinstance(delta, LinkDown):
                self._down_triples.add(triple)
            else:
                self._down_triples.discard(triple)
            self.overlay.down = frozenset(
                self._link_index[t] for t in self._down_triples
            )
            if not self.stale_scc:
                # Sound by the recorder induction; the planted broken
                # variant skips exactly this expansion.
                bit = 1 << c.cid
                dirty = {d for d, m in self._relevant.items() if m & bit}
                self._invalidate_cells_channel(c.cid)
        elif isinstance(delta, TableEdit):
            dest = self._apply_edit(delta)
            dirty = {dest}
            self._invalidate_cells_dest(dest)
        elif isinstance(delta, VcAdd):
            if self.spec is None:
                raise ValueError("VcAdd needs a session built from a JobSpec")
            if delta.count < 1:
                raise ValueError("VcAdd.count must be positive")
            self._vcs += delta.count
            # Channel ids renumber with the vc count; cid-keyed overrides
            # cannot be translated, so a vc change drops them.
            self._edits.clear()
            self.base = make(
                self.spec.algorithm,
                build_topology(self.spec.topology, self.spec.dims, self._vcs),
            )
            self._reset()
            return dict(self._last_stats)
        else:
            raise TypeError(f"unknown delta {delta!r}")
        for d in sorted(dirty):
            self._build_dt(d)
        stats = self._refresh_graphs()
        stats["dirty_destinations"] = len(dirty)
        self.metrics.count("dirty_destinations", len(dirty))
        self._last_stats = stats
        return stats

    def _apply_edit(self, edit: TableEdit) -> int:
        """Validate and install (or clear) one table-cell override."""
        tag, ident, dest = parse_table_key(edit.key)
        net = self.base.network
        form = self.overlay.form
        if (form == "ND") != (tag == "n"):
            raise ValueError(
                f"table key {edit.key!r} (tag {tag!r}) does not match form {form}"
            )
        if not 0 <= dest < net.num_nodes:
            raise ValueError(f"destination {dest} out of range in {edit.key!r}")
        if tag == "c":
            if not 0 <= ident < net.num_channels:
                raise ValueError(f"channel {ident} out of range in {edit.key!r}")
            c_in = net.channel(ident)
            if not c_in.is_link:
                raise ValueError(f"key {edit.key!r} names a non-link input channel")
            node = c_in.dst
        else:
            if not 0 <= ident < net.num_nodes:
                raise ValueError(f"node {ident} out of range in {edit.key!r}")
            node = ident
        if node == dest:
            raise ValueError(f"key {edit.key!r} routes at the destination itself")
        if edit.routes is None:
            self._edits.pop(edit.key, None)
            self.overlay.edits.pop(edit.key, None)
            return dest
        routes = frozenset(net.channel(cid) for cid in edit.routes)
        for c in routes:
            if not c.is_link or c.src != node:
                raise ValueError(f"route channel {c!r} does not leave node {node}")
        wait_cids = edit.waits if edit.waits is not None else edit.routes
        waits = frozenset(net.channel(cid) for cid in wait_cids)
        if not waits <= routes:
            raise ValueError("waiting channels must be a subset of the route set")
        self._edits[edit.key] = edit
        self.overlay.edits[edit.key] = (routes, waits)
        return dest

    # ------------------------------------------------------------------
    # memoized Duato applicability (per-pair cells)
    # ------------------------------------------------------------------
    def _invalidate_cells_channel(self, cid: int) -> None:
        bit = 1 << cid
        self._cells = {k: v for k, v in self._cells.items() if not v[2] & bit}

    def _invalidate_cells_dest(self, dest: int) -> None:
        self._cells = {k: v for k, v in self._cells.items() if dest not in v[1]}

    def _pair_cell(
        self, kind: str, src: int, dest: int, max_hops: int | None
    ) -> PropertyReport:
        key = (kind, src, dest)
        hit = self._cells.get(key)
        if hit is not None:
            self.metrics.count("cell_hits")
            return hit[0]
        rec = RouteRecorder()
        self.overlay.begin_recording(rec)
        try:
            if kind == "prefix":
                rep = prefix_closed_pair(self.overlay, src, dest, max_hops=max_hops)
            elif kind == "suffix":
                rep = suffix_closed_pair(self.overlay, src, dest, max_hops=max_hops)
            elif kind == "revisit":
                bound = (
                    max_hops if max_hops is not None
                    else self.base.network.num_nodes + 1
                )
                rep = revisit_free_pair(self.overlay, src, dest, max_hops=bound)
            else:
                rep = minimal_path_pair(self.overlay, src, dest, self._dist[src][dest])
        finally:
            self.overlay.end_recording()
        self._cells[key] = (rep, frozenset(rec.dests), rec.mask)
        self.metrics.count("cell_misses")
        return rep

    def _applicability(
        self, algorithm: RoutingAlgorithm | None = None, *, max_hops: int | None = None
    ) -> tuple[bool, str]:
        """Memoizing twin of :func:`repro.verify.duato.applicability`.

        Byte-identical messages, pair-by-pair evaluation in the exact order
        the originals iterate, per-pair results cached across deltas (keyed
        by the pair only -- one ``max_hops`` per session, which
        :func:`search_escape` satisfies).
        """
        form = self.overlay.form
        if form != "ND":
            return False, f"routing relation has form {form}, Duato requires R(n, d)"
        net = self.base.network
        for kind, label in _COHERENCE_KINDS:
            for src in net.nodes:
                for dest in net.nodes:
                    if src == dest:
                        continue
                    rep = self._pair_cell(kind, src, dest, max_hops)
                    if not rep:
                        return (
                            False,
                            f"not coherent: not {label}: {rep.counterexample}",
                        )
        for src in net.nodes:
            for dest in net.nodes:
                if src == dest:
                    continue
                rep = self._pair_cell("minimal", src, dest, max_hops)
                if not rep:
                    return False, f"no minimal path for some pair: {rep.counterexample}"
        return True, ""

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    @staticmethod
    def _theorem_verdict(
        ra: RoutingAlgorithm,
        tc: TransitionCache,
        cwg_builder: Callable[[], ChannelWaitingGraph],
        use_triage: bool,
    ) -> Verdict:
        built: list[ChannelWaitingGraph] = []

        def build() -> ChannelWaitingGraph:
            if not built:
                built.append(cwg_builder())
            return built[0]

        if use_triage:
            tri = triage(ra, transitions=tc, cwg_builder=build)
            if tri.decided:
                return triage_verdict(ra, tri)
        return verify(ra, cwg=build())

    def _compute(self, key: str) -> Verdict:
        if key == "theorem":
            dep = self._dep
            assert dep is not None
            return self._theorem_verdict(
                self.overlay,
                self.tc,
                lambda: ChannelWaitingGraph.from_depgraph(
                    self.overlay, dep, transitions=self.tc
                ),
                self.triage,
            )
        if key == "duato":
            return search_escape(
                self.overlay, transitions=self.tc, applicability_fn=self._applicability
            )
        cdg_dep = self._cdg_dep
        assert cdg_dep is not None
        # nonadaptive is recomputed every check: it quantifies over *all*
        # states, including ones unreachable in the current overlay, so it
        # is not derivable from the dirty-destination bookkeeping.
        return dally_seitz(
            self.overlay,
            cdg=ChannelDependencyGraph.from_depgraph(
                self.overlay, cdg_dep, transitions=self.tc
            ),
            nonadaptive=is_nonadaptive(self.overlay),
        )

    def _fingerprint(self) -> str:
        """Relation fingerprint from per-destination cached segments.

        Byte-identical to :func:`fingerprint_relation` on the overlay: the
        header and each destination segment are produced by the same
        helpers, and a segment is only reused while the destination's
        transition table is untouched (it is dropped whenever
        :meth:`_build_dt` rebuilds that destination).
        """
        if self._fp_header is None:
            self._fp_header = relation_header(self.overlay)
        h = _fp_hasher()
        h.update(self._fp_header)
        for dest in self.overlay.network.nodes:
            seg = self._fp_segments.get(dest)
            if seg is None:
                seg = relation_segment(dest, self.tc[dest])
                self._fp_segments[dest] = seg
            h.update(seg)
        return h.hexdigest()

    def check(self, delta: Delta | None = None) -> ReverifyResult:
        """Verify the current relation through every session condition."""
        t0 = time.perf_counter()
        with self.metrics.timer("incremental:fingerprint"):
            fp = self._fingerprint()
        verdicts: dict[str, Verdict] = {}
        cached_n = 0
        for key in self.conditions:
            with self.metrics.timer(f"incremental:{key}"):
                verdict, was_cached = cached_verdict(
                    self.overlay, key, lambda k=key: self._compute(k),
                    self.cache, fingerprint=fp,
                )
            verdicts[key] = verdict
            cached_n += int(was_cached)
        digest = verdicts_digest([verdicts[k] for k in self.conditions])
        seconds = time.perf_counter() - t0
        self.metrics.observe("reverify_seconds", seconds)
        self.metrics.count("reverifications")
        return ReverifyResult(
            algorithm=self.overlay.name,
            delta=delta,
            fingerprint=fp,
            verdicts=verdicts,
            digest=digest,
            seconds=seconds,
            cached=cached_n,
            stats=dict(self._last_stats),
        )

    def baseline(self) -> ReverifyResult:
        """The session's initial (no-delta) verification."""
        return self.check()

    def reverify(self, delta: Delta) -> ReverifyResult:
        """Apply one delta and re-verify: the service's unit of work."""
        self.apply(delta)
        return self.check(delta)

    def full_check(self) -> FullCheckResult:
        """Cold from-scratch verification of the current relation.

        Builds a fresh overlay (same accumulated deltas), a fresh transition
        cache, and every graph from nothing; never consults the
        verification cache.  This is the ground truth the equivalence
        contract compares :meth:`check` against.
        """
        t0 = time.perf_counter()
        fresh = OverlayRouting(
            self.base, down=self.overlay.down, edits=dict(self.overlay.edits)
        )
        ftc = TransitionCache(fresh)
        verdicts: dict[str, Verdict] = {}
        for key in self.conditions:
            if key == "theorem":
                verdicts[key] = self._theorem_verdict(
                    fresh, ftc,
                    lambda: ChannelWaitingGraph(fresh, transitions=ftc),
                    self.triage,
                )
            elif key == "duato":
                verdicts[key] = search_escape(fresh, transitions=ftc)
            else:
                verdicts[key] = dally_seitz(
                    fresh, cdg=ChannelDependencyGraph(fresh, transitions=ftc)
                )
        digest = verdicts_digest([verdicts[k] for k in self.conditions])
        return FullCheckResult(
            verdicts=verdicts, digest=digest, seconds=time.perf_counter() - t0
        )


# ----------------------------------------------------------------------
# canonical delta scenarios (delta matrix, fuzz oracle, CLI defaults)
# ----------------------------------------------------------------------
def default_fault_pair(session: IncrementalSession) -> tuple[LinkDown, LinkUp]:
    """The canonical (fault, repair) pair: the busiest link channel.

    Deterministic: the link channel consulted by the most destinations,
    lowest cid on ties.
    """
    best: Channel | None = None
    best_count = 0
    for c in sorted(session.base.network.link_channels, key=lambda c: c.cid):
        bit = 1 << c.cid
        n = sum(1 for m in session._relevant.values() if m & bit)
        if n > best_count:
            best, best_count = c, n
    if best is None:
        raise ValueError("no link channel is used by any destination")
    return (
        LinkDown(best.src, best.dst, best.vc),
        LinkUp(best.src, best.dst, best.vc),
    )


def default_table_edit(session: IncrementalSession) -> tuple[TableEdit, TableEdit]:
    """The canonical (edit, revert) pair for this session's relation.

    Prefers *thinning*: the first reachable state (destination-major,
    input-cid-minor) offering at least two routes loses its highest-cid
    option.  Fully deterministic relations fall back to *redirecting* the
    first single-route state onto a different outgoing link of its node.
    The revert clears the override.
    """
    overlay = session.overlay
    net = session.base.network
    fallback: tuple[str, tuple[int, ...]] | None = None
    for dest in sorted(net.nodes):
        dt = session.tc[dest]
        for c in sorted(dt.succ, key=lambda ch: ch.cid):
            if c.dst == dest:
                continue
            routes = dt.succ[c]
            if not routes:
                continue
            key = overlay.table_key(c, c.dst, dest)
            if key in overlay.edits:
                continue
            if len(routes) >= 2:
                keep = sorted(routes, key=lambda ch: ch.cid)[:-1]
                waits = sorted(
                    (w.cid for w in dt.wait[c] if w in set(keep))
                )
                edit = TableEdit(
                    key,
                    routes=tuple(ch.cid for ch in keep),
                    waits=tuple(waits),
                )
                return edit, TableEdit(key)
            if fallback is None:
                node = c.dst
                alts = [
                    ch for ch in net.link_channels
                    if ch.src == node and ch not in routes
                ]
                if alts:
                    alt = min(alts, key=lambda ch: ch.cid)
                    fallback = (key, (alt.cid,))
    if fallback is not None:
        key, cids = fallback
        return TableEdit(key, routes=cids), TableEdit(key)
    raise ValueError("relation offers no editable table cell")
