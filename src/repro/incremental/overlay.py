"""A routing relation with faults and table overrides applied as a view.

:class:`OverlayRouting` wraps a base algorithm and applies the session's
accumulated deltas at query time: table-cell overrides first (keyed by the
same grammar as :mod:`repro.incremental.deltas`), then the down-channel mask.
The network object itself is never mutated -- a failed channel still exists
(so channel ids, fingerprints of the topology, and distance matrices are
stable); it is merely removed from every route and waiting set, exactly the
semantics of the simulator's ``fail_channel``.

The overlay is also the session's *instrumentation point*: while a
:class:`RouteRecorder` is attached, every query records the destination it
was for and the **pre-mask** channels it consulted.  Those consulted sets
drive the session's sound invalidation rules -- a link going down or up can
only change behavior observable through a query whose base route/waiting set
contains that channel, and the first diverging query of any deterministic
consumer (a transition walk, a coherence pair check) is one both the cached
run and a fresh run perform.  Recording is off during verification proper,
so the overlay behaves as a plain relation there.
"""

from __future__ import annotations

from ..routing.relation import RoutingAlgorithm
from ..topology.channel import Channel

_EMPTY: frozenset[Channel] = frozenset()


class RouteRecorder:
    """Accumulates the destinations and pre-mask channels queries consulted."""

    __slots__ = ("dests", "mask")

    def __init__(self) -> None:
        self.dests: set[int] = set()
        self.mask: int = 0

    def note(self, dest: int, channels: frozenset[Channel]) -> None:
        self.dests.add(dest)
        m = self.mask
        for c in channels:
            m |= 1 << c.cid
        self.mask = m


class OverlayRouting(RoutingAlgorithm):
    """``base`` with down channels masked and table cells overridden.

    ``down`` is a frozenset of :class:`Channel` objects removed from every
    route and waiting set; ``edits`` maps a table key to its overriding
    ``(routes, waits)`` frozensets (already validated by the session).
    Form, wait policy, and name are the base algorithm's -- an overlay with
    no deltas is observationally identical to its base.
    """

    def __init__(
        self,
        base: RoutingAlgorithm,
        *,
        down: frozenset[Channel] = _EMPTY,
        edits: dict[str, tuple[frozenset[Channel], frozenset[Channel]]] | None = None,
    ) -> None:
        super().__init__(base.network)
        self.base = base
        self.name = base.name
        self.form = base.form
        self.wait_policy = base.wait_policy
        self.down: frozenset[Channel] = frozenset(down)
        self.edits: dict[str, tuple[frozenset[Channel], frozenset[Channel]]] = dict(edits or {})
        self._recorder: RouteRecorder | None = None

    # ------------------------------------------------------------------
    def table_key(self, c_in: Channel, node: int, dest: int) -> str:
        """The TableCase-grammar key identifying this query's table cell."""
        if self.form == "ND":
            return f"n{node}->{dest}"
        if c_in.is_link:
            return f"c{c_in.cid}->{dest}"
        return f"i{node}->{dest}"

    # ------------------------------------------------------------------
    def begin_recording(self, recorder: RouteRecorder) -> None:
        self._recorder = recorder

    def end_recording(self) -> None:
        self._recorder = None

    # ------------------------------------------------------------------
    # the relation
    # ------------------------------------------------------------------
    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return _EMPTY
        hit = self.edits.get(self.table_key(c_in, node, dest)) if self.edits else None
        routes = hit[0] if hit is not None else self.base.route(c_in, node, dest)
        if self._recorder is not None:
            self._recorder.note(dest, routes)
        if self.down and routes:
            return routes - self.down
        return routes

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return _EMPTY
        hit = self.edits.get(self.table_key(c_in, node, dest)) if self.edits else None
        waits = hit[1] if hit is not None else self.base.waiting_channels(c_in, node, dest)
        if self._recorder is not None:
            self._recorder.note(dest, waits)
        if self.down and waits:
            return waits - self.down
        return waits
