"""The delta model: reconfiguration events over a network + routing relation.

The serving story ("is this reconfiguration still deadlock-free?") needs a
vocabulary for *what changed* that is small enough to reason about and rich
enough to cover the fault-injection scenarios the simulator already
exercises: a link (virtual channel) failing and being repaired, a single
routing-table entry being edited, and a virtual-channel class being added.

Deltas are plain frozen data -- identified by stable coordinates, never by
live objects -- so they serialize (JSON and a compact one-line string form),
replay deterministically, and survive the channel-id renumbering a
:class:`VcAdd` implies:

* :class:`LinkDown` / :class:`LinkUp` name a link channel by its
  ``(src, dst, vc)`` triple, which is stable across rebuilds;
* :class:`TableEdit` names a routing-table cell by the same key grammar the
  fuzz subsystem's :class:`~repro.fuzz.table.TableCase` uses --
  ``n{node}->{dest}`` for ND-form relations, ``c{cid}->{dest}`` /
  ``i{node}->{dest}`` for CND-form -- with the new route set as channel ids
  (``routes=None`` clears the override, restoring the base relation);
* :class:`VcAdd` grows every physical link by ``count`` virtual channels
  (a build parameter, so it forces a session rebuild).

The semantics live in :mod:`repro.incremental.overlay` (what a delta does to
the relation) and :mod:`repro.incremental.session` (what it invalidates).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class LinkDown:
    """Link channel ``(src, dst, vc)`` fails: removed from every route set."""

    src: int
    dst: int
    vc: int = 0

    kind = "link-down"


@dataclass(frozen=True)
class LinkUp:
    """Link channel ``(src, dst, vc)`` is repaired (inverse of LinkDown)."""

    src: int
    dst: int
    vc: int = 0

    kind = "link-up"


@dataclass(frozen=True)
class TableEdit:
    """Override one routing-table cell (``routes=None`` clears the override).

    ``key`` follows the TableCase grammar; ``routes`` are link-channel ids
    that must leave the keyed node; ``waits`` (optional) must be a subset of
    ``routes`` and defaults to the whole route set.
    """

    key: str
    routes: tuple[int, ...] | None = None
    waits: tuple[int, ...] | None = None

    kind = "table-edit"


@dataclass(frozen=True)
class VcAdd:
    """Add ``count`` virtual channels per physical link (session rebuild)."""

    count: int = 1

    kind = "vc-add"


Delta = Union[LinkDown, LinkUp, TableEdit, VcAdd]

#: key grammar shared with repro.fuzz.table: n{node}->{dest} (ND form),
#: c{cid}->{dest} (CND, link input), i{node}->{dest} (CND, injection input)
_KEY_RE = re.compile(r"^([nci])(\d+)->(\d+)$")


def parse_table_key(key: str) -> tuple[str, int, int]:
    """Split a table key into ``(tag, id, dest)``; raises ValueError when malformed."""
    m = _KEY_RE.match(key)
    if m is None:
        raise ValueError(f"malformed table key {key!r} (expected n<node>-><dest>, "
                         f"c<cid>-><dest>, or i<node>-><dest>)")
    return m.group(1), int(m.group(2)), int(m.group(3))


# ----------------------------------------------------------------------
# JSON round trip
# ----------------------------------------------------------------------
def delta_to_json(delta: Delta) -> dict[str, Any]:
    """JSON-safe payload; inverse of :func:`delta_from_json`."""
    if isinstance(delta, (LinkDown, LinkUp)):
        return {"kind": delta.kind, "src": delta.src, "dst": delta.dst, "vc": delta.vc}
    if isinstance(delta, TableEdit):
        out: dict[str, Any] = {"kind": delta.kind, "key": delta.key}
        if delta.routes is not None:
            out["routes"] = list(delta.routes)
        if delta.waits is not None:
            out["waits"] = list(delta.waits)
        return out
    if isinstance(delta, VcAdd):
        return {"kind": delta.kind, "count": delta.count}
    raise TypeError(f"not a delta: {delta!r}")


def delta_from_json(payload: dict[str, Any]) -> Delta:
    kind = payload.get("kind")
    if kind == "link-down":
        return LinkDown(int(payload["src"]), int(payload["dst"]), int(payload.get("vc", 0)))
    if kind == "link-up":
        return LinkUp(int(payload["src"]), int(payload["dst"]), int(payload.get("vc", 0)))
    if kind == "table-edit":
        routes = payload.get("routes")
        waits = payload.get("waits")
        return TableEdit(
            str(payload["key"]),
            routes=None if routes is None else tuple(int(r) for r in routes),
            waits=None if waits is None else tuple(int(w) for w in waits),
        )
    if kind == "vc-add":
        return VcAdd(int(payload.get("count", 1)))
    raise ValueError(f"unknown delta kind {kind!r}")


# ----------------------------------------------------------------------
# compact one-line form (the CLI's --delta grammar)
# ----------------------------------------------------------------------
def format_delta(delta: Delta) -> str:
    """Compact string form; inverse of :func:`parse_delta`.

    ``down:0>1@0`` / ``up:0>1@0`` / ``edit:n3->7=1,2|1`` (routes, optional
    waits after ``|``; ``edit:n3->7`` clears) / ``vc:+1``.
    """
    if isinstance(delta, (LinkDown, LinkUp)):
        tag = "down" if isinstance(delta, LinkDown) else "up"
        return f"{tag}:{delta.src}>{delta.dst}@{delta.vc}"
    if isinstance(delta, TableEdit):
        if delta.routes is None:
            return f"edit:{delta.key}"
        text = f"edit:{delta.key}=" + ",".join(map(str, delta.routes))
        if delta.waits is not None:
            text += "|" + ",".join(map(str, delta.waits))
        return text
    if isinstance(delta, VcAdd):
        return f"vc:+{delta.count}"
    raise TypeError(f"not a delta: {delta!r}")


def _parse_cids(text: str) -> tuple[int, ...]:
    return tuple(int(p) for p in text.split(",") if p != "")


def parse_delta(text: str) -> Delta:
    """Parse the compact form produced by :func:`format_delta`."""
    tag, sep, rest = text.partition(":")
    if not sep:
        raise ValueError(f"malformed delta {text!r} (expected '<kind>:...')")
    if tag in ("down", "up"):
        m = re.match(r"^(\d+)>(\d+)@(\d+)$", rest)
        if m is None:
            raise ValueError(f"malformed link delta {text!r} (expected '{tag}:SRC>DST@VC')")
        cls = LinkDown if tag == "down" else LinkUp
        return cls(int(m.group(1)), int(m.group(2)), int(m.group(3)))
    if tag == "edit":
        key, eq, spec = rest.partition("=")
        parse_table_key(key)  # validate early, before a session sees it
        if not eq:
            return TableEdit(key)
        routes_text, bar, waits_text = spec.partition("|")
        return TableEdit(
            key,
            routes=_parse_cids(routes_text),
            waits=_parse_cids(waits_text) if bar else None,
        )
    if tag == "vc":
        m = re.match(r"^\+(\d+)$", rest)
        if m is None:
            raise ValueError(f"malformed vc delta {text!r} (expected 'vc:+N')")
        return VcAdd(int(m.group(1)))
    raise ValueError(f"unknown delta kind {tag!r} in {text!r}")
